#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace rtsm::kpn {

/// Tokens moved per CSDF phase on one port (index = phase).
using PhaseRates = std::vector<std::uint32_t>;

/// Binds one port of an implementation to a channel of the application.
struct PortSpec {
  /// The application channel this port reads from / writes to.
  ChannelId channel;
  /// Tokens consumed (input port) or produced (output port) in each phase.
  PhaseRates rates;
};

/// One concrete realisation of a process for one tile type, specified as a
/// Cyclo-Static Dataflow actor (paper Table 1).
///
/// All phase vectors (wcet_cc and every port's rates) must have the same
/// length; one pass through the phases is one CSDF *cycle*. A cycle may move
/// only a fraction of a symbol (e.g. Freq.off/ARM moves 8 of 64 tokens per
/// cycle and therefore runs 8 cycles per symbol).
struct Implementation {
  /// Display name, e.g. "iOFDM@MONTIUM".
  std::string name;

  /// Tile type this implementation runs on (resolved by name against the
  /// platform, keeping the application model hardware-independent).
  std::string tile_type;

  /// Worst-case execution time of each phase, in clock cycles of the tile.
  std::vector<std::uint32_t> wcet_cc;

  /// One entry per incoming channel of the process.
  std::vector<PortSpec> inputs;

  /// One entry per outgoing channel of the process.
  std::vector<PortSpec> outputs;

  /// Average energy for processing one symbol, in nanojoule (Table 1).
  double energy_nj_per_symbol = 0.0;

  /// Static memory demand (code + state + reserved FIFO space), bytes.
  std::uint64_t memory_bytes = 0;

  /// Number of CSDF phases.
  [[nodiscard]] std::size_t phase_count() const { return wcet_cc.size(); }

  /// Sum of all phase WCETs: execution time of one full CSDF cycle.
  [[nodiscard]] std::uint64_t cycle_wcet_cc() const;

  /// Tokens moved per CSDF cycle on @p port.
  [[nodiscard]] static std::uint64_t tokens_per_cycle(const PortSpec& port);

  /// Structural check of this implementation alone: non-empty phases, equal
  /// phase vector lengths, no all-zero port. Throws rtsm::Error on failure.
  void validate_shape() const;
};

/// Convenience builders for the run-length phase notation of the paper,
/// e.g. phases({{8, 2}, {0, 1}, {8, 8}}) = <8^2, 0, 8^8>.
struct PhaseRun {
  std::uint32_t value;
  std::uint32_t repeat;
};

/// Expands run-length encoded phases into a flat rate vector.
[[nodiscard]] PhaseRates phases(std::initializer_list<PhaseRun> runs);

/// n phases of the same value.
[[nodiscard]] PhaseRates uniform_phases(std::uint32_t value, std::size_t n);

}  // namespace rtsm::kpn
