#pragma once

#include <cstdint>
#include <optional>

namespace rtsm::kpn {

/// Quality-of-Service constraints of an application, part of the
/// Application Level Specification (ALS).
///
/// A streaming application processes one "symbol" (application iteration)
/// per period; the HIPERLAN/2 receiver consumes one OFDM symbol every 4 us.
struct QosConstraints {
  /// Required sustained iteration period in nanoseconds (throughput).
  std::uint64_t symbol_period_ns = 4000;

  /// Optional bound on source-to-sink latency of one symbol, in nanoseconds.
  std::optional<std::uint64_t> max_latency_ns;

  /// Symbols per (MAC) frame; informational, used by workload descriptions.
  std::uint32_t frame_symbols = 500;
};

}  // namespace rtsm::kpn
