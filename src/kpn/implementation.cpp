#include "kpn/implementation.hpp"

#include <numeric>

#include "util/error.hpp"

namespace rtsm::kpn {

std::uint64_t Implementation::cycle_wcet_cc() const {
  return std::accumulate(wcet_cc.begin(), wcet_cc.end(), std::uint64_t{0});
}

std::uint64_t Implementation::tokens_per_cycle(const PortSpec& port) {
  return std::accumulate(port.rates.begin(), port.rates.end(),
                         std::uint64_t{0});
}

void Implementation::validate_shape() const {
  require(!wcet_cc.empty(), "implementation '" + name + "' has no phases");
  const std::size_t n = wcet_cc.size();
  for (const auto& port : inputs) {
    require(port.rates.size() == n,
            "implementation '" + name +
                "': input port phase count mismatches WCET phases");
    require(tokens_per_cycle(port) > 0,
            "implementation '" + name + "': input port never reads a token");
  }
  for (const auto& port : outputs) {
    require(port.rates.size() == n,
            "implementation '" + name +
                "': output port phase count mismatches WCET phases");
    require(tokens_per_cycle(port) > 0,
            "implementation '" + name + "': output port never writes a token");
  }
  require(energy_nj_per_symbol >= 0.0,
          "implementation '" + name + "': negative energy");
}

PhaseRates phases(std::initializer_list<PhaseRun> runs) {
  PhaseRates out;
  for (const PhaseRun& run : runs) {
    for (std::uint32_t i = 0; i < run.repeat; ++i) out.push_back(run.value);
  }
  return out;
}

PhaseRates uniform_phases(std::uint32_t value, std::size_t n) {
  return PhaseRates(n, value);
}

}  // namespace rtsm::kpn
