#include "kpn/application.hpp"

#include <algorithm>
#include <unordered_set>

#include "graph/digraph.hpp"
#include "util/error.hpp"

namespace rtsm::kpn {

Application::Application(std::string name, QosConstraints qos)
    : name_(std::move(name)), qos_(qos) {
  require(qos_.symbol_period_ns > 0, "application requires a positive period");
}

ProcessId Application::add_process(const std::string& name) {
  for (const Process& p : processes_) {
    require(p.name != name, "duplicate process name '" + name + "'");
  }
  processes_.push_back(Process{name, {}, std::nullopt});
  in_channels_.emplace_back();
  out_channels_.emplace_back();
  return ProcessId{static_cast<ProcessId::value_type>(processes_.size() - 1)};
}

ProcessId Application::add_fixture(const std::string& name,
                                   const std::string& pinned_tile) {
  const ProcessId id = add_process(name);
  processes_[id.value()].pinned_tile = pinned_tile;
  return id;
}

ChannelId Application::connect(ProcessId src, ProcessId dst,
                               std::uint32_t tokens_per_symbol,
                               std::uint32_t token_bytes) {
  check_process(src);
  check_process(dst);
  require(src != dst, "self-loop channels are not supported");
  require(tokens_per_symbol > 0, "channel must carry at least one token");
  require(token_bytes > 0, "token size must be positive");
  const std::string cname =
      processes_[src.value()].name + "->" + processes_[dst.value()].name;
  channels_.push_back(Channel{cname, src, dst, tokens_per_symbol, token_bytes});
  const ChannelId id{static_cast<ChannelId::value_type>(channels_.size() - 1)};
  out_channels_[src.value()].push_back(id);
  in_channels_[dst.value()].push_back(id);
  return id;
}

ImplementationId Application::add_implementation(ProcessId process,
                                                 Implementation impl) {
  check_process(process);
  impl.validate_shape();
  auto& impls = processes_[process.value()].implementations;
  impls.push_back(std::move(impl));
  return ImplementationId{
      static_cast<ImplementationId::value_type>(impls.size() - 1)};
}

const Process& Application::process(ProcessId id) const {
  check_process(id);
  return processes_[id.value()];
}

const Channel& Application::channel(ChannelId id) const {
  check_channel(id);
  return channels_[id.value()];
}

const Implementation& Application::implementation(ProcessId process,
                                                  ImplementationId impl) const {
  const Process& p = this->process(process);
  require(impl.valid() && impl.value() < p.implementations.size(),
          "implementation id out of range for process '" + p.name + "'");
  return p.implementations[impl.value()];
}

std::vector<ProcessId> Application::process_ids() const {
  std::vector<ProcessId> ids;
  ids.reserve(processes_.size());
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    ids.emplace_back(static_cast<ProcessId::value_type>(i));
  }
  return ids;
}

std::vector<ChannelId> Application::channel_ids() const {
  std::vector<ChannelId> ids;
  ids.reserve(channels_.size());
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    ids.emplace_back(static_cast<ChannelId::value_type>(i));
  }
  return ids;
}

const std::vector<ChannelId>& Application::in_channels(ProcessId id) const {
  check_process(id);
  return in_channels_[id.value()];
}

const std::vector<ChannelId>& Application::out_channels(ProcessId id) const {
  check_process(id);
  return out_channels_[id.value()];
}

ProcessId Application::process_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i].name == name) {
      return ProcessId{static_cast<ProcessId::value_type>(i)};
    }
  }
  throw Error("unknown process '" + name + "' in application '" + name_ + "'");
}

double Application::tokens_per_second(ChannelId id) const {
  const Channel& c = channel(id);
  return static_cast<double>(c.tokens_per_symbol) * 1e9 /
         static_cast<double>(qos_.symbol_period_ns);
}

double Application::bits_per_second(ChannelId id) const {
  const Channel& c = channel(id);
  return tokens_per_second(id) * 8.0 * c.token_bytes;
}

std::uint64_t Application::cycles_per_symbol(ProcessId process,
                                             ImplementationId impl) const {
  const Implementation& im = implementation(process, impl);
  std::optional<std::uint64_t> cycles;
  auto account = [&](const PortSpec& port) {
    const Channel& c = channel(port.channel);
    const std::uint64_t per_cycle = Implementation::tokens_per_cycle(port);
    require(per_cycle > 0, "implementation '" + im.name + "': dead port");
    require(c.tokens_per_symbol % per_cycle == 0,
            "implementation '" + im.name + "': " +
                std::to_string(c.tokens_per_symbol) +
                " tokens/symbol on channel '" + c.name +
                "' is not a multiple of " + std::to_string(per_cycle) +
                " tokens/cycle");
    const std::uint64_t n = c.tokens_per_symbol / per_cycle;
    require(!cycles || *cycles == n,
            "implementation '" + im.name +
                "': ports imply different cycles-per-symbol counts");
    cycles = n;
  };
  for (const PortSpec& port : im.inputs) account(port);
  for (const PortSpec& port : im.outputs) account(port);
  require(cycles.has_value(),
          "implementation '" + im.name + "' has no ports");
  return *cycles;
}

void Application::validate() const {
  require(!processes_.empty(), "application '" + name_ + "' has no processes");

  // Topology: weak connectivity over the KPN.
  graph::Digraph g;
  g.add_nodes(processes_.size());
  for (const Channel& c : channels_) {
    g.add_arc(NodeId{c.src.value()}, NodeId{c.dst.value()});
  }
  require(g.is_weakly_connected(),
          "application '" + name_ + "' is not weakly connected");

  for (std::size_t pi = 0; pi < processes_.size(); ++pi) {
    const Process& p = processes_[pi];
    const ProcessId pid{static_cast<ProcessId::value_type>(pi)};
    require(!p.implementations.empty(),
            "process '" + p.name + "' has no implementation");

    for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
      const Implementation& im = p.implementations[ii];
      im.validate_shape();

      // Ports must cover exactly the process's channels, each once.
      auto check_ports = [&](const std::vector<PortSpec>& ports,
                             const std::vector<ChannelId>& expected,
                             const char* direction) {
        require(ports.size() == expected.size(),
                "implementation '" + im.name + "' covers " +
                    std::to_string(ports.size()) + " " + direction +
                    " ports, process has " + std::to_string(expected.size()));
        std::unordered_set<ChannelId> seen;
        for (const PortSpec& port : ports) {
          check_channel(port.channel);
          require(seen.insert(port.channel).second,
                  "implementation '" + im.name + "' binds channel twice");
          require(std::find(expected.begin(), expected.end(), port.channel) !=
                      expected.end(),
                  "implementation '" + im.name +
                      "' binds a channel not connected to its process");
        }
      };
      check_ports(im.inputs, in_channels_[pi], "input");
      check_ports(im.outputs, out_channels_[pi], "output");

      // Rate consistency: integral, identical cycles-per-symbol across ports.
      (void)cycles_per_symbol(
          pid,
          ImplementationId{static_cast<ImplementationId::value_type>(ii)});
    }
  }
}

void Application::check_process(ProcessId id) const {
  require(id.valid() && id.value() < processes_.size(),
          "process id out of range in application '" + name_ + "'");
}

void Application::check_channel(ChannelId id) const {
  require(id.valid() && id.value() < channels_.size(),
          "channel id out of range in application '" + name_ + "'");
}

}  // namespace rtsm::kpn
