#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kpn/implementation.hpp"
#include "kpn/qos.hpp"
#include "util/ids.hpp"

namespace rtsm::kpn {

/// A point-to-point FIFO channel of the KPN (an edge of Figure 1).
struct Channel {
  std::string name;
  ProcessId src;
  ProcessId dst;
  /// Tokens transported per application iteration (per OFDM symbol).
  std::uint32_t tokens_per_symbol = 0;
  /// Size of one token in bytes (32-bit complex samples -> 4).
  std::uint32_t token_bytes = 4;
};

/// A process (node of the KPN). Regular processes carry one or more
/// alternative implementations; *fixtures* (A/D converter, Sink) are pinned
/// to a named tile and have exactly one implementation describing their
/// interface timing.
struct Process {
  std::string name;
  std::vector<Implementation> implementations;
  /// Name of the platform tile this process is pre-bound to, if any.
  std::optional<std::string> pinned_tile;

  [[nodiscard]] bool is_fixture() const { return pinned_tile.has_value(); }
};

/// A streaming application: KPN topology + per-process implementation
/// alternatives + QoS constraints. Together these form the Application
/// Level Specification (ALS) of the paper.
///
/// The class maintains referential integrity on construction; full semantic
/// validation (rate consistency etc.) is performed by validate().
class Application {
 public:
  Application(std::string name, QosConstraints qos);

  /// Adds a mappable process. Name must be unique within the application.
  ProcessId add_process(const std::string& name);

  /// Adds a fixture process pinned to platform tile @p pinned_tile.
  ProcessId add_fixture(const std::string& name,
                        const std::string& pinned_tile);

  /// Adds a FIFO channel carrying @p tokens_per_symbol tokens per iteration.
  ChannelId connect(ProcessId src, ProcessId dst,
                    std::uint32_t tokens_per_symbol,
                    std::uint32_t token_bytes = 4);

  /// Registers an implementation alternative for @p process.
  ImplementationId add_implementation(ProcessId process, Implementation impl);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const QosConstraints& qos() const { return qos_; }

  [[nodiscard]] std::size_t process_count() const { return processes_.size(); }
  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }

  [[nodiscard]] const Process& process(ProcessId id) const;
  [[nodiscard]] const Channel& channel(ChannelId id) const;

  /// Implementation @p impl of process @p process.
  [[nodiscard]] const Implementation& implementation(
      ProcessId process, ImplementationId impl) const;

  /// Ids of all processes, in insertion (pipeline) order.
  [[nodiscard]] std::vector<ProcessId> process_ids() const;

  /// Ids of all channels, in insertion order.
  [[nodiscard]] std::vector<ChannelId> channel_ids() const;

  /// Channels entering / leaving @p process, in insertion order.
  [[nodiscard]] const std::vector<ChannelId>& in_channels(ProcessId) const;
  [[nodiscard]] const std::vector<ChannelId>& out_channels(ProcessId) const;

  /// Process id by name; throws rtsm::Error if unknown.
  [[nodiscard]] ProcessId process_by_name(const std::string& name) const;

  /// Sustained token rate demanded of @p channel, tokens per second.
  [[nodiscard]] double tokens_per_second(ChannelId id) const;

  /// Payload rate of @p channel in bits per second.
  [[nodiscard]] double bits_per_second(ChannelId id) const;

  /// Number of CSDF cycles implementation @p impl of @p process executes per
  /// symbol. Throws rtsm::Error if the implementation's port rates are not an
  /// integral divisor of the channel's per-symbol token count, or if ports
  /// disagree.
  [[nodiscard]] std::uint64_t cycles_per_symbol(ProcessId process,
                                                ImplementationId impl) const;

  /// Full semantic validation: every process has >= 1 implementation, every
  /// implementation's ports cover exactly the process's channels, rates are
  /// integral and mutually consistent, the KPN is weakly connected, and
  /// per-symbol token totals match the channel annotation. Throws
  /// rtsm::Error with a precise message on the first violation.
  void validate() const;

 private:
  void check_process(ProcessId id) const;
  void check_channel(ChannelId id) const;

  std::string name_;
  QosConstraints qos_;
  std::vector<Process> processes_;
  std::vector<Channel> channels_;
  std::vector<std::vector<ChannelId>> in_channels_;
  std::vector<std::vector<ChannelId>> out_channels_;
};

}  // namespace rtsm::kpn
