#include "graph/digraph.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace rtsm::graph {

NodeId Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return NodeId{static_cast<NodeId::value_type>(out_.size() - 1)};
}

void Digraph::add_nodes(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) add_node();
}

std::size_t Digraph::add_arc(NodeId from, NodeId to) {
  check_node(from);
  check_node(to);
  arcs_.push_back(Arc{from, to});
  const std::size_t index = arcs_.size() - 1;
  out_[from.value()].push_back(index);
  in_[to.value()].push_back(index);
  return index;
}

const Arc& Digraph::arc(std::size_t index) const {
  require(index < arcs_.size(), "Digraph::arc index out of range");
  return arcs_[index];
}

const std::vector<std::size_t>& Digraph::out_arcs(NodeId node) const {
  check_node(node);
  return out_[node.value()];
}

const std::vector<std::size_t>& Digraph::in_arcs(NodeId node) const {
  check_node(node);
  return in_[node.value()];
}

std::optional<std::vector<NodeId>> Digraph::topological_order() const {
  std::vector<std::size_t> indegree(node_count(), 0);
  for (const Arc& a : arcs_) ++indegree[a.to.value()];

  std::queue<NodeId> ready;
  for (std::size_t n = 0; n < node_count(); ++n) {
    if (indegree[n] == 0) {
      ready.push(NodeId{static_cast<NodeId::value_type>(n)});
    }
  }

  std::vector<NodeId> order;
  order.reserve(node_count());
  while (!ready.empty()) {
    const NodeId n = ready.front();
    ready.pop();
    order.push_back(n);
    for (const std::size_t arc_index : out_[n.value()]) {
      const NodeId m = arcs_[arc_index].to;
      if (--indegree[m.value()] == 0) ready.push(m);
    }
  }
  if (order.size() != node_count()) return std::nullopt;
  return order;
}

bool Digraph::is_weakly_connected() const {
  if (node_count() == 0) return true;
  std::vector<bool> seen(node_count(), false);
  std::vector<NodeId> stack{NodeId{0}};
  seen[0] = true;
  std::size_t visited = 0;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    ++visited;
    auto visit = [&](NodeId m) {
      if (!seen[m.value()]) {
        seen[m.value()] = true;
        stack.push_back(m);
      }
    };
    for (const std::size_t a : out_[n.value()]) visit(arcs_[a].to);
    for (const std::size_t a : in_[n.value()]) visit(arcs_[a].from);
  }
  return visited == node_count();
}

std::vector<NodeId> Digraph::reachable_from(NodeId start) const {
  check_node(start);
  std::vector<bool> seen(node_count(), false);
  std::vector<NodeId> stack{start};
  std::vector<NodeId> result;
  seen[start.value()] = true;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    result.push_back(n);
    for (const std::size_t a : out_[n.value()]) {
      const NodeId m = arcs_[a].to;
      if (!seen[m.value()]) {
        seen[m.value()] = true;
        stack.push_back(m);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<NodeId> Digraph::sources() const {
  std::vector<NodeId> result;
  for (std::size_t n = 0; n < node_count(); ++n) {
    if (in_[n].empty()) {
      result.push_back(NodeId{static_cast<NodeId::value_type>(n)});
    }
  }
  return result;
}

std::vector<NodeId> Digraph::sinks() const {
  std::vector<NodeId> result;
  for (std::size_t n = 0; n < node_count(); ++n) {
    if (out_[n].empty()) {
      result.push_back(NodeId{static_cast<NodeId::value_type>(n)});
    }
  }
  return result;
}

void Digraph::check_node(NodeId node) const {
  require(node.valid() && node.value() < node_count(),
          "Digraph: node id out of range");
}

}  // namespace rtsm::graph
