#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace rtsm::graph {

/// A directed edge between two nodes of a Digraph.
struct Arc {
  NodeId from;
  NodeId to;
};

/// Minimal directed multigraph used as the structural backbone of the KPN
/// and CSDF models.
///
/// Nodes and arcs are identified by dense indices, so NodeId/arc indices are
/// stable across the graph's lifetime (no removal is supported — application
/// and platform models are built once and then analysed).
class Digraph {
 public:
  /// Adds a node and returns its id.
  NodeId add_node();

  /// Adds @p count nodes.
  void add_nodes(std::size_t count);

  /// Adds a directed arc; both endpoints must exist.
  /// Returns the arc's dense index.
  std::size_t add_arc(NodeId from, NodeId to);

  [[nodiscard]] std::size_t node_count() const { return out_.size(); }
  [[nodiscard]] std::size_t arc_count() const { return arcs_.size(); }

  [[nodiscard]] const Arc& arc(std::size_t index) const;

  /// Indices of arcs leaving @p node.
  [[nodiscard]] const std::vector<std::size_t>& out_arcs(NodeId node) const;

  /// Indices of arcs entering @p node.
  [[nodiscard]] const std::vector<std::size_t>& in_arcs(NodeId node) const;

  /// Topological order of node ids, or nullopt if the graph has a cycle.
  [[nodiscard]] std::optional<std::vector<NodeId>> topological_order() const;

  /// True when no directed cycle exists.
  [[nodiscard]] bool is_acyclic() const {
    return topological_order().has_value();
  }

  /// True when the underlying undirected graph is connected
  /// (vacuously true for the empty graph).
  [[nodiscard]] bool is_weakly_connected() const;

  /// All nodes reachable from @p start by directed arcs (including start).
  [[nodiscard]] std::vector<NodeId> reachable_from(NodeId start) const;

  /// Nodes with no incoming arcs.
  [[nodiscard]] std::vector<NodeId> sources() const;

  /// Nodes with no outgoing arcs.
  [[nodiscard]] std::vector<NodeId> sinks() const;

 private:
  void check_node(NodeId node) const;

  std::vector<Arc> arcs_;
  std::vector<std::vector<std::size_t>> out_;
  std::vector<std::vector<std::size_t>> in_;
};

}  // namespace rtsm::graph
