#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include "audit/mutex.hpp"
#include "noc/link_load.hpp"
#include "noc/route.hpp"

namespace rtsm::noc {

/// Which routing algorithm a cached route came from; part of the cache key
/// (an XY route is not a valid answer to a shortest-path query).
enum class RoutePolicy : std::uint8_t { Shortest, Xy };

struct RouteCacheOptions {
  /// Route-entry bound across all platforms (FIFO eviction beyond it).
  std::size_t max_entries = 4096;
};

/// Counters of the route cache (value snapshot; thread-safe read).
struct RouteCacheStats {
  std::uint64_t lookups = 0;
  /// Cached route admissible under the live load — returned without any
  /// graph search.
  std::uint64_t hits = 0;
  /// No cached route yet; the idle-network route was computed and stored.
  std::uint64_t misses = 0;
  /// Cached route blocked by live congestion — fell back to a live search.
  std::uint64_t fallbacks = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_rate() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// Thread-safe memo of NoC routes, shared across every router of a manager
/// (step-3 channel routing, shape materialisation and defrag/migration
/// replans all funnel through it) — the step-3 analogue of the step-4
/// verify::Engine cache.
///
/// Keyed by (platform identity, policy, src, dst); the NoC parameters are
/// the platform's, so the platform pointer covers them. Each entry stores
/// the policy's route on the *idle* network (computed once with zero
/// demand, whose admissible-link graph is a superset of every loaded one).
/// A lookup validates the cached route link-by-link against the live load
/// and the actual demand:
///  - XY routes are load-independent, so validation equals exactly the
///    fits() checks route_xy() would have made;
///  - for shortest routes, if every cached link still admits the demand the
///    live search provably returns this very route: the live admissible
///    graph is a subgraph of the idle one that still contains the cached
///    path, so shortest distances along it are unchanged and the per-node
///    smallest-predecessor tie-break picks the same parent chain (the
///    argmin of a superset that lies in the subset is the subset's argmin).
/// When validation fails the cache falls back to a live search. Either way
/// the result is bit-identical to the uncached call.
class RouteCache {
 public:
  explicit RouteCache(RouteCacheOptions options = {});

  /// Cached equivalent of route_shortest()/route_xy() (selected by
  /// @p policy) on @p load; identical results, amortised O(path length).
  [[nodiscard]] std::optional<Path> route(const LinkLoad& load,
                                          RoutePolicy policy, TileId src,
                                          TileId dst,
                                          double demand_tokens_per_s);

  [[nodiscard]] RouteCacheStats stats() const;

  /// Drops all cached routes (stats are kept).
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const RouteCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    /// The idle-network route; nullopt when even the idle network has none
    /// (then no loaded network has one either — a cacheable negative).
    std::optional<Path> idle_route;
  };

  /// Per-platform state: an idle LinkLoad to run cold searches against,
  /// plus this platform's route entries.
  struct PlatformEntry {
    explicit PlatformEntry(const arch::Platform& platform) : idle(platform) {}
    LinkLoad idle;
    std::unordered_map<std::uint64_t, Entry> routes;
  };

  static std::uint64_t key_of(RoutePolicy policy, TileId src, TileId dst) {
    return (static_cast<std::uint64_t>(src.value()) << 33) |
           (static_cast<std::uint64_t>(dst.value()) << 1) |
           static_cast<std::uint64_t>(policy);
  }

  RouteCacheOptions options_;

  /// Innermost of the mapper-shared cache locks: held only around map
  /// bookkeeping, released before any live graph search.
  mutable audit::Mutex mutex_{audit::LockRank::kRouteCache, "noc.route_cache"};
  RouteCacheStats stats_ RTSM_GUARDED_BY(mutex_);
  /// Keyed by platform identity. Platforms must outlive the cache (they
  /// already must outlive every LinkLoad handed to route()).
  std::unordered_map<const arch::Platform*, PlatformEntry> platforms_
      RTSM_GUARDED_BY(mutex_);
  /// Insertion order across platforms, for FIFO eviction at max_entries.
  std::deque<std::pair<const arch::Platform*, std::uint64_t>> order_
      RTSM_GUARDED_BY(mutex_);
};

/// Shared constructor tail of every mapper that routes: returns @p cache
/// unchanged when set, a fresh private cache when @p enabled, and null
/// otherwise (mirrors verify::ensure_engine()).
[[nodiscard]] inline std::shared_ptr<RouteCache> ensure_route_cache(
    bool enabled, std::shared_ptr<RouteCache> cache) {
  if (enabled && cache == nullptr) return std::make_shared<RouteCache>();
  return cache;
}

}  // namespace rtsm::noc
