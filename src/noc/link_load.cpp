#include "noc/link_load.hpp"

#include <numeric>

#include "util/approx.hpp"
#include "util/error.hpp"

namespace rtsm::noc {

std::size_t Path::rr_hops(const arch::Platform& platform) const {
  std::size_t hops = 0;
  for (const LinkId link : links) {
    if (platform.link(link).kind == arch::LinkKind::RouterToRouter) ++hops;
  }
  return hops;
}

std::vector<RouterId> Path::routers(const arch::Platform& platform) const {
  std::vector<RouterId> result;
  for (const LinkId link : links) {
    const arch::Link& l = platform.link(link);
    switch (l.kind) {
      case arch::LinkKind::Inject:
        result.push_back(l.to_router);
        break;
      case arch::LinkKind::RouterToRouter:
        result.push_back(l.to_router);
        break;
      case arch::LinkKind::Eject:
        break;  // from_router already recorded by the previous link
    }
  }
  return result;
}

LinkLoad::LinkLoad(const arch::Platform& platform)
    : platform_(&platform), reserved_(platform.link_count(), 0.0) {}

LinkLoad::LinkLoad(const LinkLoad& other)
    : platform_(other.platform_), reserved_(other.reserved_) {}

LinkLoad& LinkLoad::operator=(const LinkLoad& other) {
  if (this == &other) return *this;
  platform_ = other.platform_;
  reserved_ = other.reserved_;
  return *this;
}

double LinkLoad::reserved(LinkId link) const {
  require(link.valid() && link.value() < reserved_.size(),
          "link id out of range");
  return reserved_[link.value()];
}

double LinkLoad::residual(LinkId link) const {
  return platform_->link(link).capacity_tokens_per_s - reserved(link);
}

bool LinkLoad::fits(LinkId link, double demand) const {
  const double cap = platform_->link(link).capacity_tokens_per_s;
  return reserved(link) + demand <= cap * (1.0 + kSlack);
}

void LinkLoad::reserve(LinkId link, double demand) {
  require(demand >= 0, "negative link demand");
  require(fits(link, demand), "link over-reservation");
  reserved_[link.value()] += demand;
  if (listener_ != nullptr) listener_->on_link_reserve(link, demand);
}

void LinkLoad::release(LinkId link, double demand) {
  require(demand >= 0, "negative link demand");
  double& r = reserved_[link.value()];
  r = r > demand ? r - demand : 0.0;
  if (listener_ != nullptr) listener_->on_link_release(link, demand);
}

void LinkLoad::reserve_path(const Path& path, double demand) {
  // Validate the whole path first so a failed reservation is atomic. The
  // message is only formatted on failure — this loop is on the commit hot
  // path.
  for (const LinkId link : path.links) {
    if (!fits(link, demand)) {
      throw Error("path over-reservation on link " +
                  std::to_string(link.value()));
    }
  }
  for (const LinkId link : path.links) reserve(link, demand);
}

void LinkLoad::release_path(const Path& path, double demand) {
  for (const LinkId link : path.links) release(link, demand);
}

double LinkLoad::total_reserved() const {
  return std::accumulate(reserved_.begin(), reserved_.end(), 0.0);
}

bool LinkLoad::approx_equals(const LinkLoad& other, double rel_eps) const {
  if (platform_ != other.platform_) return false;
  for (std::size_t i = 0; i < reserved_.size(); ++i) {
    if (!approx_equal(reserved_[i], other.reserved_[i], rel_eps)) {
      return false;
    }
  }
  return true;
}

}  // namespace rtsm::noc
