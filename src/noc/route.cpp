#include "noc/route.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace rtsm::noc {

namespace {

std::optional<Path> finish_path(const LinkLoad& load, TileId src, TileId dst,
                                std::vector<LinkId> rr_links,
                                double demand) {
  const arch::Platform& p = load.platform();
  Path path;
  path.src_tile = src;
  path.dst_tile = dst;
  const LinkId inject = p.inject_link(src);
  const LinkId eject = p.eject_link(dst);
  if (!load.fits(inject, demand) || !load.fits(eject, demand)) {
    return std::nullopt;
  }
  path.links.push_back(inject);
  path.links.insert(path.links.end(), rr_links.begin(), rr_links.end());
  path.links.push_back(eject);
  return path;
}

}  // namespace

std::optional<Path> route_shortest(const LinkLoad& load, TileId src,
                                   TileId dst, double demand_tokens_per_s) {
  const arch::Platform& p = load.platform();
  if (src == dst) return Path{src, dst, {}};

  const RouterId start = p.tile_router(src);
  const RouterId goal = p.tile_router(dst);

  // Uniform-cost search over routers; admissible links only. Parent links
  // chosen so the router index sequence is lexicographically minimal among
  // shortest routes (deterministic tie-break).
  const std::size_t n = p.router_count();
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(n, kInf);
  std::vector<LinkId> parent_link(n);

  // (dist, router)
  using Entry = std::pair<std::uint32_t, RouterId::value_type>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;
  dist[start.value()] = 0;
  open.emplace(0, start.value());

  while (!open.empty()) {
    const auto [d, rv] = open.top();
    open.pop();
    if (d > dist[rv]) continue;
    const RouterId r{rv};
    for (const LinkId lid : p.router_out_links(r)) {
      if (!load.fits(lid, demand_tokens_per_s)) continue;
      const RouterId next = p.link(lid).to_router;
      const std::uint32_t nd = d + 1;
      auto& best = dist[next.value()];
      if (nd < best) {
        best = nd;
        parent_link[next.value()] = lid;
        open.emplace(nd, next.value());
      } else if (nd == best && parent_link[next.value()].valid()) {
        // Prefer the predecessor with the smaller router index for a
        // deterministic, lexicographically minimal route.
        const RouterId cur_pred = p.link(parent_link[next.value()]).from_router;
        if (r.value() < cur_pred.value()) parent_link[next.value()] = lid;
      }
    }
  }

  if (dist[goal.value()] == kInf) return std::nullopt;

  std::vector<LinkId> rr;
  for (RouterId r = goal; r != start;) {
    const LinkId lid = parent_link[r.value()];
    rr.push_back(lid);
    r = p.link(lid).from_router;
  }
  std::reverse(rr.begin(), rr.end());
  return finish_path(load, src, dst, std::move(rr), demand_tokens_per_s);
}

std::optional<Path> route_xy(const LinkLoad& load, TileId src, TileId dst,
                             double demand_tokens_per_s) {
  const arch::Platform& p = load.platform();
  if (src == dst) return Path{src, dst, {}};

  auto [x, y] = p.router_pos(p.tile_router(src));
  const auto [gx, gy] = p.router_pos(p.tile_router(dst));

  std::vector<LinkId> rr;
  auto step_to = [&](std::uint32_t nx, std::uint32_t ny) -> bool {
    const RouterId from = p.router_at(x, y);
    const RouterId to = p.router_at(nx, ny);
    for (const LinkId lid : p.router_out_links(from)) {
      if (p.link(lid).to_router != to) continue;
      if (!load.fits(lid, demand_tokens_per_s)) return false;
      rr.push_back(lid);
      x = nx;
      y = ny;
      return true;
    }
    return false;
  };

  while (x != gx) {
    if (!step_to(x < gx ? x + 1 : x - 1, y)) return std::nullopt;
  }
  while (y != gy) {
    if (!step_to(x, y < gy ? y + 1 : y - 1)) return std::nullopt;
  }
  return finish_path(load, src, dst, std::move(rr), demand_tokens_per_s);
}

}  // namespace rtsm::noc
