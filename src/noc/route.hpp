#pragma once

#include <optional>

#include "noc/link_load.hpp"

namespace rtsm::noc {

/// Capacity-aware shortest path between two tiles.
///
/// Finds a minimal-hop route whose every link (NI and router-to-router) has
/// residual capacity for @p demand_tokens_per_s; among equal-length routes
/// the lexicographically smallest router sequence is chosen, making results
/// deterministic. Returns an empty path for src == dst and nullopt when no
/// admissible route exists.
[[nodiscard]] std::optional<Path> route_shortest(const LinkLoad& load,
                                                 TileId src, TileId dst,
                                                 double demand_tokens_per_s);

/// Dimension-ordered (X then Y) route, the classic deterministic baseline.
///
/// Returns nullopt when any link on the fixed XY route lacks capacity —
/// unlike route_shortest it cannot detour around congestion.
[[nodiscard]] std::optional<Path> route_xy(const LinkLoad& load, TileId src,
                                           TileId dst,
                                           double demand_tokens_per_s);

}  // namespace rtsm::noc
