#pragma once

#include <cstdint>
#include <vector>

#include "arch/platform.hpp"
#include "util/ids.hpp"

namespace rtsm::noc {

/// A unicast route for one channel through the NoC.
///
/// links = [inject, rr..., eject] for inter-tile routes; an intra-tile route
/// (producer and consumer on the same tile) has no links at all.
struct Path {
  TileId src_tile;
  TileId dst_tile;
  std::vector<LinkId> links;

  /// Number of router-to-router links (the Manhattan distance for minimal
  /// routes; the quantity estimated by mapping step 2).
  [[nodiscard]] std::size_t rr_hops(const arch::Platform& platform) const;

  /// Routers traversed, in order (empty for intra-tile routes).
  [[nodiscard]] std::vector<RouterId> routers(
      const arch::Platform& platform) const;

  [[nodiscard]] bool is_intra_tile() const { return links.empty(); }
};

/// Observer of individual link reservation changes.
///
/// core::ResourceState registers itself on its own LinkLoad so mutations
/// made through links() (step-3 route reservations, path releases) reach
/// its version counter and delta journal. The listener pointer is
/// deliberately dropped by the copy constructor and left untouched by copy
/// assignment: a snapshot must never journal into its source, and an
/// overwritten scratch must keep observing itself.
class LinkLoadListener {
 public:
  virtual ~LinkLoadListener() = default;
  virtual void on_link_reserve(LinkId link, double demand) = 0;
  virtual void on_link_release(LinkId link, double demand) = 0;
};

/// Guaranteed-throughput reservation state of all NoC links.
///
/// Tracks the token rate reserved on every link; routing only considers
/// links whose residual capacity covers a channel's demand, which is how the
/// predictable NoC of the paper admits new connections.
class LinkLoad {
 public:
  /// Relative slack tolerating float accumulation across many reservations.
  /// Public so out-of-state admission probes (core::mapping_fits) can
  /// replicate fits() bit-for-bit without a state copy.
  static constexpr double kSlack = 1e-9;

  explicit LinkLoad(const arch::Platform& platform);

  /// Copies reservations but not the listener: a snapshot observes nobody.
  LinkLoad(const LinkLoad& other);

  /// Copies reservations; the destination keeps its own listener.
  LinkLoad& operator=(const LinkLoad& other);

  [[nodiscard]] const arch::Platform& platform() const { return *platform_; }

  /// Tokens per second currently reserved on @p link.
  [[nodiscard]] double reserved(LinkId link) const;

  /// Capacity still available on @p link, tokens per second.
  [[nodiscard]] double residual(LinkId link) const;

  /// True when @p demand tokens/s fit on @p link (with relative slack for
  /// floating-point accumulation).
  [[nodiscard]] bool fits(LinkId link, double demand) const;

  /// Adds @p demand to the link's reservation. Throws rtsm::Error when the
  /// reservation would exceed capacity.
  void reserve(LinkId link, double demand);

  /// Removes @p demand from the link's reservation (clamped at zero).
  void release(LinkId link, double demand);

  /// Reserves @p demand on every link of @p path.
  void reserve_path(const Path& path, double demand);

  /// Releases @p demand from every link of @p path.
  void release_path(const Path& path, double demand);

  /// Sum of reserved rate over all links (a congestion metric).
  [[nodiscard]] double total_reserved() const;

  /// True when every link's reservation matches @p other within a relative
  /// tolerance (see ResourceState::approx_equals for why reservations made
  /// in different orders can only be compared approximately).
  [[nodiscard]] bool approx_equals(const LinkLoad& other,
                                   double rel_eps = 1e-9) const;

  /// Registers @p listener for reserve/release notifications (null to
  /// unregister). Exactly one listener; not owned.
  void set_listener(LinkLoadListener* listener) { listener_ = listener; }

 private:
  const arch::Platform* platform_;
  std::vector<double> reserved_;
  LinkLoadListener* listener_ = nullptr;
};

}  // namespace rtsm::noc
