#pragma once

#include <cstdint>
#include <vector>

#include "arch/platform.hpp"
#include "util/ids.hpp"

namespace rtsm::noc {

/// A unicast route for one channel through the NoC.
///
/// links = [inject, rr..., eject] for inter-tile routes; an intra-tile route
/// (producer and consumer on the same tile) has no links at all.
struct Path {
  TileId src_tile;
  TileId dst_tile;
  std::vector<LinkId> links;

  /// Number of router-to-router links (the Manhattan distance for minimal
  /// routes; the quantity estimated by mapping step 2).
  [[nodiscard]] std::size_t rr_hops(const arch::Platform& platform) const;

  /// Routers traversed, in order (empty for intra-tile routes).
  [[nodiscard]] std::vector<RouterId> routers(
      const arch::Platform& platform) const;

  [[nodiscard]] bool is_intra_tile() const { return links.empty(); }
};

/// Guaranteed-throughput reservation state of all NoC links.
///
/// Tracks the token rate reserved on every link; routing only considers
/// links whose residual capacity covers a channel's demand, which is how the
/// predictable NoC of the paper admits new connections.
class LinkLoad {
 public:
  explicit LinkLoad(const arch::Platform& platform);

  [[nodiscard]] const arch::Platform& platform() const { return *platform_; }

  /// Tokens per second currently reserved on @p link.
  [[nodiscard]] double reserved(LinkId link) const;

  /// Capacity still available on @p link, tokens per second.
  [[nodiscard]] double residual(LinkId link) const;

  /// True when @p demand tokens/s fit on @p link (with relative slack for
  /// floating-point accumulation).
  [[nodiscard]] bool fits(LinkId link, double demand) const;

  /// Adds @p demand to the link's reservation. Throws rtsm::Error when the
  /// reservation would exceed capacity.
  void reserve(LinkId link, double demand);

  /// Removes @p demand from the link's reservation (clamped at zero).
  void release(LinkId link, double demand);

  /// Reserves @p demand on every link of @p path.
  void reserve_path(const Path& path, double demand);

  /// Releases @p demand from every link of @p path.
  void release_path(const Path& path, double demand);

  /// Sum of reserved rate over all links (a congestion metric).
  [[nodiscard]] double total_reserved() const;

  /// True when every link's reservation matches @p other within a relative
  /// tolerance (see ResourceState::approx_equals for why reservations made
  /// in different orders can only be compared approximately).
  [[nodiscard]] bool approx_equals(const LinkLoad& other,
                                   double rel_eps = 1e-9) const;

 private:
  const arch::Platform* platform_;
  std::vector<double> reserved_;
};

}  // namespace rtsm::noc
