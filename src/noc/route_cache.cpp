#include "noc/route_cache.hpp"

namespace rtsm::noc {

namespace {

std::optional<Path> live_route(const LinkLoad& load, RoutePolicy policy,
                               TileId src, TileId dst, double demand) {
  return policy == RoutePolicy::Xy ? route_xy(load, src, dst, demand)
                                   : route_shortest(load, src, dst, demand);
}

}  // namespace

RouteCache::RouteCache(RouteCacheOptions options) : options_(options) {}

// Drops the lock before any live graph search (misses and congested
// fallbacks), which clang's analysis cannot follow through the
// std::unique_lock — opted out; lockdep still audits both transitions.
std::optional<Path> RouteCache::route(
    const LinkLoad& load, RoutePolicy policy, TileId src, TileId dst,
    double demand_tokens_per_s) RTSM_NO_THREAD_SAFETY_ANALYSIS {
  if (src == dst) return Path{src, dst, {}};  // intra-tile: nothing to cache

  audit::UniqueLock lock(mutex_);
  ++stats_.lookups;
  const arch::Platform& platform = load.platform();
  PlatformEntry& pe =
      platforms_.try_emplace(&platform, platform).first->second;
  const std::uint64_t key = key_of(policy, src, dst);

  auto it = pe.routes.find(key);
  if (it == pe.routes.end()) {
    ++stats_.misses;
    Entry entry;
    entry.idle_route = live_route(pe.idle, policy, src, dst, 0.0);
    it = pe.routes.emplace(key, std::move(entry)).first;
    order_.emplace_back(&platform, key);
    while (order_.size() > options_.max_entries) {
      const auto [victim_platform, victim_key] = order_.front();
      order_.pop_front();
      if (const auto vit = platforms_.find(victim_platform);
          vit != platforms_.end()) {
        vit->second.routes.erase(victim_key);
        ++stats_.evictions;
      }
    }
    // The just-inserted entry may have been the eviction victim (bound of
    // 0 or 1); re-find instead of trusting the iterator.
    it = pe.routes.find(key);
    if (it == pe.routes.end()) {
      lock.unlock();
      return live_route(load, policy, src, dst, demand_tokens_per_s);
    }
  } else {
    // A found entry either validates (hit) or falls back below.
    bool admissible = it->second.idle_route.has_value();
    if (admissible) {
      for (const LinkId link : it->second.idle_route->links) {
        if (!load.fits(link, demand_tokens_per_s)) {
          admissible = false;
          break;
        }
      }
      if (admissible) {
        ++stats_.hits;
        return it->second.idle_route;
      }
      ++stats_.fallbacks;
      lock.unlock();
      return live_route(load, policy, src, dst, demand_tokens_per_s);
    }
    // Idle network has no route at all: no loaded network has one either.
    ++stats_.hits;
    return std::nullopt;
  }

  // Fresh miss: validate the idle route against the live load like a hit
  // would (no extra search when the network is lightly loaded).
  if (!it->second.idle_route.has_value()) return std::nullopt;
  for (const LinkId link : it->second.idle_route->links) {
    if (!load.fits(link, demand_tokens_per_s)) {
      lock.unlock();
      return live_route(load, policy, src, dst, demand_tokens_per_s);
    }
  }
  return it->second.idle_route;
}

RouteCacheStats RouteCache::stats() const {
  const audit::LockGuard lock(mutex_);
  return stats_;
}

void RouteCache::clear() {
  const audit::LockGuard lock(mutex_);
  platforms_.clear();
  order_.clear();
}

std::size_t RouteCache::size() const {
  const audit::LockGuard lock(mutex_);
  return order_.size();
}

}  // namespace rtsm::noc
