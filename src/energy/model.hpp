#pragma once

#include <cstdint>

#include "kpn/application.hpp"
#include "noc/link_load.hpp"

namespace rtsm::energy {

/// Energy cost parameters of the platform.
///
/// Processing energy comes from the implementation descriptors (paper
/// Table 1). The paper does not quantify NoC energy; the defaults here make
/// communication a realistic ~10% of processing energy for the HIPERLAN/2
/// case (see DESIGN.md assumption 9) and are configurable for studies.
struct EnergyModel {
  /// Energy for moving one token across one router-to-router hop
  /// (router traversal + link), nanojoule.
  double hop_nj_per_token = 0.1;

  /// Fixed per-token cost of NI injection + ejection, nanojoule.
  double ni_nj_per_token = 0.05;

  /// Energy per symbol for processing @p impl (from its descriptor).
  [[nodiscard]] double processing_nj(const kpn::Implementation& impl) const {
    return impl.energy_nj_per_symbol;
  }

  /// Communication energy per symbol for a channel crossing @p rr_hops
  /// router-to-router links (0 hops = same tile = free).
  [[nodiscard]] double comm_nj(std::uint32_t tokens_per_symbol,
                               std::size_t rr_hops) const {
    if (rr_hops == 0) return 0.0;
    return tokens_per_symbol *
           (hop_nj_per_token * static_cast<double>(rr_hops) + ni_nj_per_token);
  }

  /// Communication energy of a routed channel per symbol.
  [[nodiscard]] double comm_nj(const kpn::Channel& channel,
                               const noc::Path& path,
                               const arch::Platform& platform) const {
    return comm_nj(channel.tokens_per_symbol, path.rr_hops(platform));
  }
};

}  // namespace rtsm::energy
