#include "energy/model.hpp"

// EnergyModel is header-only today; this translation unit anchors the
// library target and keeps room for calibrated, table-driven models.
