#pragma once

#include <string>

#include "arch/platform.hpp"
#include "kpn/application.hpp"

namespace rtsm::io {

/// Renders an application to the library's line-oriented text format.
///
/// The format is stable, human-editable and loss-free for everything the
/// mapper consumes: QoS, processes/fixtures, channels, and CSDF
/// implementation descriptors with run-length phase vectors, e.g.
///
///   application "HIPERLAN/2 receiver"
///   period_ns 4000
///   fixture "A/D" pinned "A/D"
///   process "Pfx.rem."
///   channel "A/D" -> "Pfx.rem." tokens 80 token_bytes 4
///   impl "Pfx.rem." "Pfx.rem.@ARM" type "ARM" energy 60 memory 8192
///     wcet 18^18
///     input 0 rates 8^2,8,0,8,0,8,0,8,0,8,0,8,0,8,0,8,0
///     output 1 rates 0^2,0,8,0,8,0,8,0,8,0,8,0,8,0,8,0,8
///   end
[[nodiscard]] std::string save_application(const kpn::Application& app);

/// Parses the text format back into an application.
/// Throws rtsm::Error with a line number on malformed input.
[[nodiscard]] kpn::Application load_application(const std::string& text);

/// Renders a platform to the text format:
///
///   platform "paper 3x3 MPSoC" mesh 3 3
///   noc capacity 200000000 router_cc 4 clock_hz 200000000 hop_buffer 4
///   type "ARM" clock_hz 200000000
///   tile "ARM1" type "ARM" at 0 0 memory 65536 slots 1
///   end
[[nodiscard]] std::string save_platform(const arch::Platform& platform);

/// Parses the platform text format.
/// Throws rtsm::Error with a line number on malformed input.
[[nodiscard]] arch::Platform load_platform(const std::string& text);

}  // namespace rtsm::io
