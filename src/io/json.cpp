#include "io/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace rtsm::io {

namespace {

[[noreturn]] void kind_error(const char* wanted, JsonValue::Kind got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw Error(std::string("JSON value is ") +
              kNames[static_cast<int>(got)] + ", expected " + wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) kind_error("bool", kind_);
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::Number) kind_error("number", kind_);
  return number_;
}

std::uint64_t JsonValue::as_uint() const {
  if (kind_ != Kind::Number) kind_error("number", kind_);
  // Re-parse the raw text: 64-bit counters round-trip exactly even where
  // a double would lose precision.
  return std::strtoull(text_.c_str(), nullptr, 10);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) kind_error("string", kind_);
  return text_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::Array) kind_error("array", kind_);
  return array_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (kind_ != Kind::Object) kind_error("object", kind_);
  const auto it = object_.find(key);
  require(it != object_.end(), "JSON object has no key \"" + key + "\"");
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  return kind_ == Kind::Object && object_.count(key) > 0;
}

const JsonValue& JsonValue::get(const std::string& key,
                                const JsonValue& fallback) const {
  if (kind_ != Kind::Object) kind_error("object", kind_);
  const auto it = object_.find(key);
  return it == object_.end() ? fallback : it->second;
}

/// Recursive-descent parser over the byte string; @p pos tracks the
/// current offset for error messages.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    require(pos_ == text_.size(),
            "trailing garbage after JSON document at byte " +
                std::to_string(pos_));
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at byte " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::string(literal).size();
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Bool;
        if (consume_literal("true")) {
          v.bool_ = true;
        } else if (consume_literal("false")) {
          v.bool_ = false;
        } else {
          fail("malformed literal");
        }
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("malformed literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = parse_string();
      expect(':');
      v.object_.emplace(key.text_, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue v;
    v.kind_ = JsonValue::Kind::String;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.text_ += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': v.text_ += '"'; break;
        case '\\': v.text_ += '\\'; break;
        case '/': v.text_ += '/'; break;
        case 'b': v.text_ += '\b'; break;
        case 'f': v.text_ += '\f'; break;
        case 'n': v.text_ += '\n'; break;
        case 'r': v.text_ += '\r'; break;
        case 't': v.text_ += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // The library's writers only \u-escape control characters; emit
          // UTF-8 for anything else so foreign documents stay readable.
          if (code < 0x80) {
            v.text_ += static_cast<char>(code);
          } else if (code < 0x800) {
            v.text_ += static_cast<char>(0xc0 | (code >> 6));
            v.text_ += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            v.text_ += static_cast<char>(0xe0 | (code >> 12));
            v.text_ += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            v.text_ += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      eat_digits();
    }
    if (!digits) fail("malformed number");
    JsonValue v;
    v.kind_ = JsonValue::Kind::Number;
    v.text_ = text_.substr(start, pos_ - start);
    v.number_ = std::strtod(v.text_.c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace rtsm::io
