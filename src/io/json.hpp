#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace rtsm::io {

/// Minimal JSON document model for the library's machine-readable
/// artefacts (persisted scenario traces, bench JSON). The writers in this
/// repo emit JSON by hand (see runtime::StatsReport::to_json and the bench
/// write_json helpers); this is the matching *reader*, so record/replay
/// round-trips and tests can consume what was written without an external
/// dependency. It parses the JSON subset those writers produce: objects,
/// arrays, double-quoted strings with the common escapes, numbers, bools
/// and null. Numbers are held as double (plus the raw text for exact
/// unsigned round-trips), which covers every counter the library writes.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }

  /// Typed accessors; each throws rtsm::Error on a kind mismatch so a
  /// malformed document fails loudly at the offending key.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;

  /// Object member; throws when this is not an object or @p key is absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// True when this is an object containing @p key.
  [[nodiscard]] bool has(const std::string& key) const;
  /// Object member, or @p fallback when absent (still throws when this is
  /// not an object) — forward-compatible reads of optional fields.
  [[nodiscard]] const JsonValue& get(const std::string& key,
                                     const JsonValue& fallback) const;

  static JsonValue make_null() { return JsonValue(); }

 private:
  friend class JsonParser;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  /// Raw number text as parsed (exact integer round-trips) or the string
  /// payload.
  std::string text_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses @p text into a document. Throws rtsm::Error with a byte offset
/// on malformed input or trailing garbage.
[[nodiscard]] JsonValue parse_json(const std::string& text);

/// Escapes @p s for embedding in a JSON string literal (shared convention
/// with runtime::StatsReport::to_json).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace rtsm::io
