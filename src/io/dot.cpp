#include "io/dot.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

namespace rtsm::io {

namespace {

std::string sanitize(const std::string& name) {
  std::string out = "n";
  for (const char ch : name) {
    out += (std::isalnum(static_cast<unsigned char>(ch)) != 0) ? ch : '_';
  }
  return out;
}

}  // namespace

std::string kpn_to_dot(const kpn::Application& app) {
  std::ostringstream os;
  os << "digraph \"" << app.name() << "\" {\n  rankdir=LR;\n";
  for (const ProcessId pid : app.process_ids()) {
    const kpn::Process& p = app.process(pid);
    os << "  " << sanitize(p.name) << " [label=\"" << p.name << "\""
       << (p.is_fixture() ? ", shape=box" : ", shape=ellipse") << "];\n";
  }
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    os << "  " << sanitize(app.process(c.src).name) << " -> "
       << sanitize(app.process(c.dst).name) << " [label=\""
       << c.tokens_per_symbol << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string platform_to_dot(const arch::Platform& platform) {
  std::ostringstream os;
  os << "graph \"" << platform.name() << "\" {\n  node [shape=box];\n";
  for (std::uint32_t y = 0; y < platform.mesh_height(); ++y) {
    for (std::uint32_t x = 0; x < platform.mesh_width(); ++x) {
      const RouterId r = platform.router_at(x, y);
      os << "  R" << r.value() << " [label=\"R\", shape=circle, pos=\"" << x
         << "," << platform.mesh_height() - 1 - y << "!\"];\n";
      if (x + 1 < platform.mesh_width()) {
        os << "  R" << r.value() << " -- R"
           << platform.router_at(x + 1, y).value() << ";\n";
      }
      if (y + 1 < platform.mesh_height()) {
        os << "  R" << r.value() << " -- R"
           << platform.router_at(x, y + 1).value() << ";\n";
      }
    }
  }
  for (const TileId tid : platform.tile_ids()) {
    const arch::Tile& t = platform.tile(tid);
    os << "  " << sanitize(t.name) << " [label=\"" << t.name << "\\n("
       << platform.tile_type(t.type).name << ")\"];\n";
    os << "  " << sanitize(t.name) << " -- R"
       << platform.tile_router(tid).value() << " [style=dashed];\n";
  }
  os << "}\n";
  return os.str();
}

std::string csdf_to_dot(const csdf::Graph& graph) {
  std::ostringstream os;
  os << "digraph csdf {\n  rankdir=LR;\n";
  for (const ActorId aid : graph.actor_ids()) {
    const csdf::Actor& a = graph.actor(aid);
    os << "  a" << aid.value() << " [label=\"" << a.name << "\\n|phases|="
       << a.phase_count() << "\"];\n";
  }
  for (const EdgeId eid : graph.edge_ids()) {
    const csdf::Edge& e = graph.edge(eid);
    os << "  a" << e.src.value() << " -> a" << e.dst.value() << " [label=\"";
    if (e.capacity) os << "cap=" << *e.capacity;
    else os << "cap=inf";
    if (e.initial_tokens > 0) os << ", init=" << e.initial_tokens;
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string platform_ascii(const arch::Platform& platform,
                           const kpn::Application* app,
                           const core::Mapping* mapping) {
  // Cell text: "TileName(TYPE)[procs]" or "." for bare routers.
  const std::uint32_t w = platform.mesh_width();
  const std::uint32_t h = platform.mesh_height();
  std::vector<std::string> cell(static_cast<std::size_t>(w) * h, "(router)");

  for (const TileId tid : platform.tile_ids()) {
    const arch::Tile& t = platform.tile(tid);
    std::string text = t.name + ":" + platform.tile_type(t.type).name;
    if (app != nullptr && mapping != nullptr) {
      std::string procs;
      for (const ProcessId pid : app->process_ids()) {
        if (mapping->is_assigned(pid) && mapping->tile_of(pid) == tid) {
          if (!procs.empty()) procs += ",";
          procs += app->process(pid).name;
        }
      }
      if (!procs.empty()) text += " <- {" + procs + "}";
    }
    cell[static_cast<std::size_t>(t.y) * w + t.x] = text;
  }

  std::size_t width = 0;
  for (const auto& c : cell) width = std::max(width, c.size());

  std::ostringstream os;
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      const std::string& c = cell[static_cast<std::size_t>(y) * w + x];
      os << "[R] " << c << std::string(width - c.size(), ' ');
      os << (x + 1 < w ? "  " : "");
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace rtsm::io
