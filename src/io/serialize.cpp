#include "io/serialize.hpp"

#include <charconv>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace rtsm::io {

namespace {

// ------------------------------------------------------------- writing

/// Run-length encodes a phase vector: 18^18 or 8^2,8,0.
std::string encode_rates(const std::vector<std::uint32_t>& values) {
  std::string out;
  std::size_t i = 0;
  while (i < values.size()) {
    std::size_t run = 1;
    while (i + run < values.size() && values[i + run] == values[i]) ++run;
    if (!out.empty()) out += ",";
    out += std::to_string(values[i]);
    if (run > 1) out += "^" + std::to_string(run);
    i += run;
  }
  return out;
}

std::string quoted(const std::string& s) {
  // Names never contain quotes in this library; assert rather than escape.
  require(s.find('"') == std::string::npos,
          "serialised names must not contain quotes: " + s);
  return "\"" + s + "\"";
}

// ------------------------------------------------------------- parsing

/// Minimal tokenizer: whitespace-separated words, quoted strings, with
/// line tracking for error messages.
class Tokens {
 public:
  explicit Tokens(const std::string& text) {
    std::size_t line = 1;
    std::size_t i = 0;
    while (i < text.size()) {
      const char ch = text[i];
      if (ch == '\n') {
        ++line;
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(ch)) != 0) {
        ++i;
        continue;
      }
      if (ch == '#') {  // comment to end of line
        while (i < text.size() && text[i] != '\n') ++i;
        continue;
      }
      if (ch == '"') {
        const std::size_t end = text.find('"', i + 1);
        require(end != std::string::npos,
                "line " + std::to_string(line) + ": unterminated string");
        tokens_.push_back({text.substr(i + 1, end - i - 1), line, true});
        i = end + 1;
        continue;
      }
      std::size_t end = i;
      while (end < text.size() &&
             std::isspace(static_cast<unsigned char>(text[end])) == 0 &&
             text[end] != '"' && text[end] != '#') {
        ++end;
      }
      tokens_.push_back({text.substr(i, end - i), line, false});
      i = end;
    }
  }

  [[nodiscard]] bool done() const { return pos_ >= tokens_.size(); }

  [[nodiscard]] const std::string& peek() const {
    require(!done(), "unexpected end of input");
    return tokens_[pos_].text;
  }

  std::string next() {
    require(!done(), "unexpected end of input");
    return tokens_[pos_++].text;
  }

  void expect(const std::string& word) {
    const std::string got = next();
    require(got == word, "line " + std::to_string(line()) + ": expected '" +
                             word + "', got '" + got + "'");
  }

  std::uint64_t next_u64() {
    const std::string word = next();
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(word.data(), word.data() + word.size(), value);
    require(ec == std::errc{} && ptr == word.data() + word.size(),
            "line " + std::to_string(line()) + ": expected integer, got '" +
                word + "'");
    return value;
  }

  double next_double() {
    const std::string word = next();
    try {
      std::size_t used = 0;
      const double value = std::stod(word, &used);
      require(used == word.size(), "trailing garbage");
      return value;
    } catch (const std::exception&) {
      throw Error("line " + std::to_string(line()) +
                  ": expected number, got '" + word + "'");
    }
  }

  [[nodiscard]] std::size_t line() const {
    return tokens_[pos_ > 0 ? pos_ - 1 : 0].line;
  }

 private:
  struct Token {
    std::string text;
    std::size_t line;
    bool quoted;
  };
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

/// Parses "8^2,8,0" into a rate vector.
std::vector<std::uint32_t> decode_rates(const std::string& word,
                                        std::size_t line) {
  std::vector<std::uint32_t> out;
  std::size_t i = 0;
  auto parse_number = [&](const char* what) -> std::uint32_t {
    std::uint32_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(word.data() + i, word.data() + word.size(), value);
    require(ec == std::errc{} && ptr != word.data() + i,
            "line " + std::to_string(line) + ": bad " + what + " in rates '" +
                word + "'");
    i = static_cast<std::size_t>(ptr - word.data());
    return value;
  };
  while (i < word.size()) {
    const std::uint32_t value = parse_number("value");
    std::uint32_t repeat = 1;
    if (i < word.size() && word[i] == '^') {
      ++i;
      repeat = parse_number("repeat");
    }
    for (std::uint32_t r = 0; r < repeat; ++r) out.push_back(value);
    if (i < word.size()) {
      require(word[i] == ',', "line " + std::to_string(line) +
                                  ": expected ',' in rates '" + word + "'");
      ++i;
    }
  }
  require(!out.empty(),
          "line " + std::to_string(line) + ": empty rate vector");
  return out;
}

}  // namespace

std::string save_application(const kpn::Application& app) {
  std::ostringstream os;
  // Energies must survive the round trip bit-exactly.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "application " << quoted(app.name()) << "\n";
  os << "period_ns " << app.qos().symbol_period_ns << "\n";
  os << "frame_symbols " << app.qos().frame_symbols << "\n";
  if (app.qos().max_latency_ns) {
    os << "max_latency_ns " << *app.qos().max_latency_ns << "\n";
  }
  for (const ProcessId pid : app.process_ids()) {
    const kpn::Process& p = app.process(pid);
    if (p.is_fixture()) {
      os << "fixture " << quoted(p.name) << " pinned " << quoted(*p.pinned_tile)
         << "\n";
    } else {
      os << "process " << quoted(p.name) << "\n";
    }
  }
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    os << "channel " << quoted(app.process(c.src).name) << " -> "
       << quoted(app.process(c.dst).name) << " tokens " << c.tokens_per_symbol
       << " token_bytes " << c.token_bytes << "\n";
  }
  for (const ProcessId pid : app.process_ids()) {
    const kpn::Process& p = app.process(pid);
    for (const kpn::Implementation& im : p.implementations) {
      os << "impl " << quoted(p.name) << " " << quoted(im.name) << " type "
         << quoted(im.tile_type) << " energy " << im.energy_nj_per_symbol
         << " memory " << im.memory_bytes << "\n";
      os << "  wcet " << encode_rates(im.wcet_cc) << "\n";
      for (const kpn::PortSpec& port : im.inputs) {
        os << "  input " << port.channel.value() << " rates "
           << encode_rates(port.rates) << "\n";
      }
      for (const kpn::PortSpec& port : im.outputs) {
        os << "  output " << port.channel.value() << " rates "
           << encode_rates(port.rates) << "\n";
      }
    }
  }
  os << "end\n";
  return os.str();
}

kpn::Application load_application(const std::string& text) {
  Tokens tokens(text);
  tokens.expect("application");
  const std::string name = tokens.next();

  kpn::QosConstraints qos;
  // QoS keys may appear before the first process.
  while (!tokens.done()) {
    const std::string& key = tokens.peek();
    if (key == "period_ns") {
      tokens.next();
      qos.symbol_period_ns = tokens.next_u64();
    } else if (key == "frame_symbols") {
      tokens.next();
      qos.frame_symbols = static_cast<std::uint32_t>(tokens.next_u64());
    } else if (key == "max_latency_ns") {
      tokens.next();
      qos.max_latency_ns = tokens.next_u64();
    } else {
      break;
    }
  }

  kpn::Application app(name, qos);
  while (!tokens.done()) {
    const std::string keyword = tokens.next();
    if (keyword == "end") {
      app.validate();
      return app;
    }
    if (keyword == "process") {
      app.add_process(tokens.next());
    } else if (keyword == "fixture") {
      const std::string pname = tokens.next();
      tokens.expect("pinned");
      app.add_fixture(pname, tokens.next());
    } else if (keyword == "channel") {
      const ProcessId src = app.process_by_name(tokens.next());
      tokens.expect("->");
      const ProcessId dst = app.process_by_name(tokens.next());
      tokens.expect("tokens");
      const auto count = static_cast<std::uint32_t>(tokens.next_u64());
      tokens.expect("token_bytes");
      const auto bytes = static_cast<std::uint32_t>(tokens.next_u64());
      app.connect(src, dst, count, bytes);
    } else if (keyword == "impl") {
      const ProcessId pid = app.process_by_name(tokens.next());
      kpn::Implementation im;
      im.name = tokens.next();
      tokens.expect("type");
      im.tile_type = tokens.next();
      tokens.expect("energy");
      im.energy_nj_per_symbol = tokens.next_double();
      tokens.expect("memory");
      im.memory_bytes = tokens.next_u64();
      tokens.expect("wcet");
      im.wcet_cc = decode_rates(tokens.next(), tokens.line());
      while (!tokens.done() &&
             (tokens.peek() == "input" || tokens.peek() == "output")) {
        const bool is_input = tokens.next() == "input";
        const auto channel = ChannelId{
            static_cast<ChannelId::value_type>(tokens.next_u64())};
        tokens.expect("rates");
        kpn::PortSpec port{channel, decode_rates(tokens.next(), tokens.line())};
        (is_input ? im.inputs : im.outputs).push_back(std::move(port));
      }
      app.add_implementation(pid, std::move(im));
    } else {
      throw Error("line " + std::to_string(tokens.line()) +
                  ": unknown keyword '" + keyword + "'");
    }
  }
  throw Error("application text is missing the closing 'end'");
}

std::string save_platform(const arch::Platform& platform) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "platform " << quoted(platform.name()) << " mesh "
     << platform.mesh_width() << " " << platform.mesh_height() << "\n";
  const arch::NocParams& noc = platform.noc();
  os << "noc capacity " << noc.link_capacity_tokens_per_s << " router_cc "
     << noc.router_latency_cc << " clock_hz " << noc.noc_clock_hz
     << " hop_buffer " << noc.hop_buffer_tokens << "\n";
  for (std::size_t t = 0; t < platform.tile_type_count(); ++t) {
    const arch::TileType& type =
        platform.tile_type(TileTypeId{static_cast<TileTypeId::value_type>(t)});
    os << "type " << quoted(type.name) << " clock_hz " << type.clock_hz << "\n";
  }
  for (const TileId tid : platform.tile_ids()) {
    const arch::Tile& tile = platform.tile(tid);
    os << "tile " << quoted(tile.name) << " type "
       << quoted(platform.tile_type(tile.type).name) << " at " << tile.x << " "
       << tile.y << " memory " << tile.memory_bytes << " slots "
       << tile.process_slots << "\n";
  }
  os << "end\n";
  return os.str();
}

arch::Platform load_platform(const std::string& text) {
  Tokens tokens(text);
  tokens.expect("platform");
  const std::string name = tokens.next();
  tokens.expect("mesh");
  const auto width = static_cast<std::uint32_t>(tokens.next_u64());
  const auto height = static_cast<std::uint32_t>(tokens.next_u64());

  arch::NocParams noc;
  if (!tokens.done() && tokens.peek() == "noc") {
    tokens.next();
    tokens.expect("capacity");
    noc.link_capacity_tokens_per_s = tokens.next_double();
    tokens.expect("router_cc");
    noc.router_latency_cc = static_cast<std::uint32_t>(tokens.next_u64());
    tokens.expect("clock_hz");
    noc.noc_clock_hz = tokens.next_u64();
    tokens.expect("hop_buffer");
    noc.hop_buffer_tokens = static_cast<std::uint32_t>(tokens.next_u64());
  }

  arch::Platform platform(name, width, height, noc);
  while (!tokens.done()) {
    const std::string keyword = tokens.next();
    if (keyword == "end") return platform;
    if (keyword == "type") {
      const std::string type_name = tokens.next();
      tokens.expect("clock_hz");
      platform.add_tile_type(type_name, tokens.next_u64());
    } else if (keyword == "tile") {
      const std::string tile_name = tokens.next();
      tokens.expect("type");
      const TileTypeId type = platform.type_by_name(tokens.next());
      tokens.expect("at");
      const auto x = static_cast<std::uint32_t>(tokens.next_u64());
      const auto y = static_cast<std::uint32_t>(tokens.next_u64());
      tokens.expect("memory");
      const std::uint64_t memory = tokens.next_u64();
      tokens.expect("slots");
      const auto slots = static_cast<std::uint32_t>(tokens.next_u64());
      platform.add_tile(tile_name, type, x, y, memory, slots);
    } else {
      throw Error("line " + std::to_string(tokens.line()) +
                  ": unknown keyword '" + keyword + "'");
    }
  }
  throw Error("platform text is missing the closing 'end'");
}

}  // namespace rtsm::io
