#pragma once

#include <string>

#include "arch/platform.hpp"
#include "core/mapping.hpp"
#include "csdf/graph.hpp"
#include "kpn/application.hpp"

namespace rtsm::io {

/// Graphviz rendering of a KPN application (Figure 1 style): processes as
/// nodes, channels labelled with tokens per symbol.
[[nodiscard]] std::string kpn_to_dot(const kpn::Application& app);

/// Graphviz rendering of a platform: routers as a grid, tiles attached,
/// coloured by type.
[[nodiscard]] std::string platform_to_dot(const arch::Platform& platform);

/// Graphviz rendering of a CSDF graph (Figure 3 style): actors labelled
/// with their phase WCETs, edges with capacities.
[[nodiscard]] std::string csdf_to_dot(const csdf::Graph& graph);

/// ASCII-art layout of the mesh (Figure 2 style); when @p mapping and
/// @p app are given, each tile is annotated with the processes it hosts.
[[nodiscard]] std::string platform_ascii(
    const arch::Platform& platform, const kpn::Application* app = nullptr,
    const core::Mapping* mapping = nullptr);

}  // namespace rtsm::io
