#include "io/paper_report.hpp"

#include <algorithm>
#include <map>

#include "io/table.hpp"
#include "util/strings.hpp"

namespace rtsm::io {

std::string render_table1(const kpn::Application& app) {
  TablePrinter table({"Process", "PE type", "Input [token]", "Output [token]",
                      "WCET [cc]", "Avg. energy [nJ/symbol]"});
  table.align_right(5);
  for (const ProcessId pid : app.process_ids()) {
    const kpn::Process& p = app.process(pid);
    if (p.is_fixture()) continue;
    for (const kpn::Implementation& im : p.implementations) {
      std::string in;
      for (const kpn::PortSpec& port : im.inputs) {
        if (!in.empty()) in += " ";
        in += format_phase_vector(port.rates);
      }
      std::string out;
      for (const kpn::PortSpec& port : im.outputs) {
        if (!out.empty()) out += " ";
        out += format_phase_vector(port.rates);
      }
      table.add_row({p.name, im.tile_type, in, out,
                     format_phase_vector(im.wcet_cc),
                     format_double(im.energy_nj_per_symbol, 0)});
    }
  }
  return table.to_string();
}

std::string render_table2(const kpn::Application& app,
                          const core::Step2Trace& trace,
                          const std::vector<std::string>& tile_columns) {
  std::vector<std::string> header{"Iter."};
  header.insert(header.end(), tile_columns.begin(), tile_columns.end());
  header.push_back("Cost");
  header.push_back("Remark");
  TablePrinter table(header);

  // Which process occupies each column tile, from a snapshot.
  auto row_cells = [&](const std::vector<std::string>& snapshot) {
    std::map<std::string, std::string> by_tile;
    for (const ProcessId pid : app.process_ids()) {
      if (app.process(pid).is_fixture()) continue;
      by_tile[snapshot[pid.value()]] = app.process(pid).name;
    }
    std::vector<std::string> cells;
    for (const std::string& tile : tile_columns) {
      const auto it = by_tile.find(tile);
      cells.push_back(it == by_tile.end() ? "-" : it->second);
    }
    return cells;
  };

  {
    std::vector<std::string> row{"-"};
    const auto cells = row_cells(trace.initial_assignment);
    row.insert(row.end(), cells.begin(), cells.end());
    row.push_back(format_double(trace.initial_cost, 0));
    row.push_back("Initial (greedy) assignment");
    table.add_row(row);
  }

  // The paper's table logs evaluations up to the last improvement; the
  // trailing all-revert sweep is its stopping check, summarised by the
  // closing "No further choices" row.
  std::size_t last_kept = 0;
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    if (trace.records[i].kept) last_kept = i + 1;
  }
  for (std::size_t i = 0; i < last_kept; ++i) {
    const core::Step2Record& r = trace.records[i];
    std::vector<std::string> row{std::to_string(i + 1)};
    const auto cells = row_cells(r.assignment);
    row.insert(row.end(), cells.begin(), cells.end());
    row.push_back(format_double(r.cost_after, 0));
    row.push_back(r.kept ? "Improvement, keep (" + r.action + ")"
                         : "No improvement, revert (" + r.action + ")");
    table.add_row(row);
  }

  std::vector<std::string> final_row{"-"};
  for (std::size_t c = 0; c < tile_columns.size(); ++c) final_row.push_back("");
  final_row.push_back("");
  final_row.push_back("No further choices");
  table.add_row(final_row);
  return table.to_string();
}

std::string render_step1(const std::vector<core::Step1Record>& records) {
  TablePrinter table(
      {"#", "Process", "Implementation", "Tile", "Desirability"});
  table.align_right(4);
  std::size_t i = 0;
  for (const core::Step1Record& r : records) {
    table.add_row({std::to_string(++i), r.process, r.implementation, r.tile,
                   r.defaulted ? "default" : format_double(r.desirability, 1)});
  }
  return table.to_string();
}

std::string render_step3(const std::vector<core::Step3Record>& records) {
  TablePrinter table({"#", "Channel", "Demand [tokens/s]", "Routers", "Hops"});
  table.align_right(2);
  table.align_right(4);
  std::size_t i = 0;
  for (const core::Step3Record& r : records) {
    std::string routers;
    for (const std::uint32_t rv : r.routers) {
      if (!routers.empty()) routers += "->";
      routers += "R" + std::to_string(rv);
    }
    if (routers.empty()) routers = "(same tile)";
    table.add_row({std::to_string(++i), r.channel,
                   format_double(r.demand_tokens_per_s / 1e6, 1) + "M",
                   routers, std::to_string(r.rr_hops)});
  }
  return table.to_string();
}

}  // namespace rtsm::io
