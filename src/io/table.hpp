#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rtsm::io {

/// Fixed-width plain-text table writer used by all paper-table benches.
///
/// Columns are sized to their widest cell; the header is separated by a
/// rule. Left-aligned by default; numeric columns can be right-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Marks a column as right-aligned (for numbers).
  void align_right(std::size_t column);

  /// Adds a data row; must have as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Renders the table.
  void print(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row = rule
  std::vector<bool> right_align_;
};

}  // namespace rtsm::io
