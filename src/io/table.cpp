#include "io/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace rtsm::io {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)), right_align_(header_.size(), false) {
  require(!header_.empty(), "table needs at least one column");
}

void TablePrinter::align_right(std::size_t column) {
  require(column < header_.size(), "align_right: column out of range");
  right_align_[column] = true;
}

void TablePrinter::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(),
          "table row has " + std::to_string(row.size()) + " cells, expected " +
              std::to_string(header_.size()));
  rows_.push_back(std::move(row));
}

void TablePrinter::add_rule() {
  rows_.emplace_back();  // sentinel
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << "  ";
      const std::size_t pad = width[c] - cells[c].size();
      if (right_align_[c]) os << std::string(pad, ' ') << cells[c];
      else os << cells[c] << std::string(pad, ' ');
    }
    os << '\n';
  };
  auto print_rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      if (c != 0) os << "--";
      os << std::string(width[c], '-');
    }
    os << '\n';
  };

  print_cells(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) print_rule();
    else print_cells(row);
  }
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace rtsm::io
