#pragma once

#include <string>
#include <vector>

#include "core/trace.hpp"
#include "kpn/application.hpp"

namespace rtsm::io {

/// Renders the application's implementation alternatives in the shape of the
/// paper's Table 1: process, PE type, input/output/WCET phase vectors in the
/// run-length notation, and average energy per symbol.
[[nodiscard]] std::string render_table1(const kpn::Application& app);

/// Renders a step-2 trace in the shape of the paper's Table 2: one column
/// per tile in @p tile_columns showing which process sits on it, the cost,
/// and the keep/revert remark. Trailing non-improving evaluations (the
/// stopping check) are collapsed into the final "No further choices" row,
/// exactly as the paper's table does.
[[nodiscard]] std::string render_table2(
    const kpn::Application& app, const core::Step2Trace& trace,
    const std::vector<std::string>& tile_columns);

/// Renders the step-1 decisions (process order, chosen implementation,
/// desirability margin) as a table; "default" marks single-option picks.
[[nodiscard]] std::string render_step1(
    const std::vector<core::Step1Record>& records);

/// Renders the step-3 routing log (channel order, demand, routers, hops).
[[nodiscard]] std::string render_step3(
    const std::vector<core::Step3Record>& records);

}  // namespace rtsm::io
