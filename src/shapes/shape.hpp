#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/platform.hpp"
#include "arch/transform.hpp"
#include "core/mapping.hpp"
#include "kpn/application.hpp"
#include "util/ids.hpp"

namespace rtsm::shapes {

/// Position-independent identity of an application *skeleton*: graph
/// structure, implementation options and QoS, hashed over content only —
/// names of the application and its processes are deliberately excluded,
/// so structurally identical graphs (e.g. repeated instances of one
/// workload template, or the same HIPERLAN/2 mode admitted twice under
/// different instance names) share one shape-library bucket. Keeps the
/// full serialized word vector next to the hash so lookups compare
/// exactly (unlike a bare 64-bit hash, a key can never alias a different
/// skeleton).
struct SkeletonKey {
  std::vector<std::uint64_t> words;
  std::uint64_t hash = 0;

  [[nodiscard]] static SkeletonKey of(const kpn::Application& app);

  bool operator==(const SkeletonKey& other) const {
    return hash == other.hash && words == other.words;
  }
};

/// One process of a canonical shape: where it sits inside the shape's
/// bounding box and what it needs from the tile there.
struct ShapeProcess {
  arch::Coord pos;
  ImplementationId impl;
  /// Tile type the chosen implementation requires; anchors whose tile at
  /// the transformed position has a different type are rejected (tile
  /// kinds break mesh symmetry on a heterogeneous platform).
  TileTypeId type;
  /// Claimed compute utilisation and implementation memory, precomputed at
  /// learn time for the cheap per-anchor fit screen.
  double utilization = 0.0;
  std::uint64_t memory_bytes = 0;
  /// Fixture pin: the process must land on exactly this platform tile,
  /// which reduces anchor enumeration to at most one translation per
  /// symmetry.
  std::optional<std::string> pinned_tile;
};

/// One channel of a canonical shape: its route as the sequence of router
/// coordinates traversed (empty for an intra-tile channel) plus the
/// step-4 buffer sizing. Storing coordinates instead of link ids is what
/// makes the route transformable: a rigid mesh transform maps the
/// coordinate sequence onto another equal-length (hence equal-latency,
/// equal-energy) route of the live mesh.
struct ShapeChannel {
  std::vector<arch::Coord> routers;
  bool has_buffer = false;
  std::uint32_t buffer_tokens = 0;
};

/// A canonicalized placement: tile assignments, routes and buffer sizes of
/// one successfully mapped application, translated to the origin and
/// reduced modulo the 8 mesh symmetries (the lexicographically smallest
/// serialization over all of D4 is the canonical representative). Also
/// carries the step-4 outcome of the learned mapping — feasibility,
/// period, latency and energy depend only on implementation content, tile
/// clocks (preserved because tile types must match) and hop counts
/// (preserved under rigid transforms), so they transfer verbatim to every
/// instantiation.
struct CanonicalShape {
  arch::Coord extent;  ///< Bounding box (width, height), covers routes too.
  std::vector<ShapeProcess> processes;  ///< Indexed by ProcessId.
  std::vector<ShapeChannel> channels;   ///< Indexed by ChannelId.

  /// Process indices most-constrained-first (pinned, then by descending
  /// utilisation): the anchor screen rejects infeasible anchors earliest
  /// by probing in this order.
  std::vector<std::uint32_t> probe_order;
  bool has_pinned = false;

  /// Canonical serialization and its hash; two placements are the same
  /// shape iff their words match.
  std::vector<std::uint64_t> words;
  std::uint64_t hash = 0;

  // Transferable outcome of the learned mapping (see class comment).
  double energy_nj_per_symbol = 0.0;
  std::uint64_t achieved_period_ps = 0;
  std::uint64_t latency_ps = 0;
};

/// Coordinate/link lookup tables of one platform, shared by every
/// instantiation against it: tile-by-coordinate (with type and pin
/// screening) and router-to-router links by endpoint pair.
class MeshIndex {
 public:
  explicit MeshIndex(const arch::Platform& platform);

  [[nodiscard]] const arch::Platform& platform() const { return *platform_; }

  /// First tile attached at coordinate @p c that matches @p type — and,
  /// when @p pinned is set, that exact tile name. Invalid id when out of
  /// bounds or nothing matches.
  [[nodiscard]] TileId tile_at(arch::Coord c, TileTypeId type,
                               const std::optional<std::string>& pinned) const;

  /// Router-to-router link @p from -> @p to; invalid id when the routers
  /// are not adjacent.
  [[nodiscard]] LinkId rr_link(RouterId from, RouterId to) const;

  /// Tile id by name without throwing; invalid id when unknown.
  [[nodiscard]] TileId tile_by_name(const std::string& name) const;

  /// Mesh coordinate of @p tile.
  [[nodiscard]] arch::Coord tile_coord(TileId tile) const;

 private:
  const arch::Platform* platform_;
  std::unordered_map<std::uint64_t, LinkId> rr_;  // (from << 32 | to)
  std::unordered_map<std::string, TileId> by_name_;
};

/// Canonicalizes the placement of @p mapping (which must be fully assigned
/// and routed) into its shape: translate to the origin, minimize over the
/// 8 mesh symmetries, serialize. The shape's outcome metrics are left at
/// zero — the caller (ShapeLibrary::learn) fills them from the
/// MappingResult.
[[nodiscard]] CanonicalShape canonicalize(const kpn::Application& app,
                                          const arch::Platform& platform,
                                          const core::Mapping& mapping);

/// Instantiates @p shape onto the mesh at anchor @p transform: resolves
/// every process to the tile at its transformed coordinate (checking
/// existence, tile type and fixture pins) and rebuilds every route from
/// its transformed router-coordinate sequence. Pure geometry — capacity is
/// NOT checked; screen the result with core::mapping_fits before
/// committing. Returns nothing when a tile is missing, a type or pin
/// mismatches, or a transformed route is broken.
[[nodiscard]] std::optional<core::Mapping> materialize(
    const CanonicalShape& shape, const kpn::Application& app,
    const MeshIndex& index, const arch::MeshTransform& transform);

}  // namespace rtsm::shapes
