#include "shapes/shape.hpp"

#include <algorithm>
#include <bit>

#include "core/resource_state.hpp"
#include "util/error.hpp"

namespace rtsm::shapes {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a_byte(std::uint64_t h, std::uint8_t byte) {
  return (h ^ byte) * kFnvPrime;
}

std::uint64_t fnv1a_word(std::uint64_t h, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h = fnv1a_byte(h, static_cast<std::uint8_t>(word >> (8 * i)));
  }
  return h;
}

std::uint64_t fnv1a_string(std::string_view s) {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) h = fnv1a_byte(h, static_cast<std::uint8_t>(c));
  return h;
}

std::uint64_t hash_words(const std::vector<std::uint64_t>& words) {
  std::uint64_t h = kFnvOffset;
  for (const std::uint64_t w : words) h = fnv1a_word(h, w);
  return h;
}

/// 64-bit word serializer; length prefixes keep variable-length runs from
/// aliasing each other (same convention as verify::MappingSignature).
struct Words {
  std::vector<std::uint64_t> out;

  void put(std::uint64_t w) { out.push_back(w); }
  void put_double(double d) { out.push_back(std::bit_cast<std::uint64_t>(d)); }
  void put_string(std::string_view s) { out.push_back(fnv1a_string(s)); }
  void put_rates(const kpn::PhaseRates& rates) {
    put(rates.size());
    for (const std::uint32_t r : rates) put(r);
  }
};

std::uint64_t rr_key(RouterId from, RouterId to) {
  return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
}

}  // namespace

SkeletonKey SkeletonKey::of(const kpn::Application& app) {
  Words w;

  // QoS.
  const kpn::QosConstraints& qos = app.qos();
  w.put(qos.symbol_period_ns);
  w.put(qos.max_latency_ns.has_value() ? 1 : 0);
  w.put(qos.max_latency_ns.value_or(0));
  w.put(qos.frame_symbols);

  // Per process: fixture pin and the full implementation option content.
  // Process and implementation *names* are excluded so structurally equal
  // graphs share a key; pinned tile names are platform identities and must
  // stay.
  w.put(app.process_count());
  for (const ProcessId pid : app.process_ids()) {
    const kpn::Process& p = app.process(pid);
    w.put(p.pinned_tile.has_value() ? fnv1a_string(*p.pinned_tile) : 0);
    w.put(p.implementations.size());
    for (const kpn::Implementation& im : p.implementations) {
      w.put_string(im.tile_type);
      w.put(im.wcet_cc.size());
      for (const std::uint32_t cc : im.wcet_cc) w.put(cc);
      w.put_double(im.energy_nj_per_symbol);
      w.put(im.memory_bytes);
      w.put(im.inputs.size());
      for (const kpn::PortSpec& port : im.inputs) {
        w.put(port.channel.value());
        w.put_rates(port.rates);
      }
      w.put(im.outputs.size());
      for (const kpn::PortSpec& port : im.outputs) {
        w.put(port.channel.value());
        w.put_rates(port.rates);
      }
    }
  }

  // Per channel: endpoints and token geometry.
  w.put(app.channel_count());
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    w.put(c.src.value());
    w.put(c.dst.value());
    w.put(c.tokens_per_symbol);
    w.put(c.token_bytes);
  }

  SkeletonKey key;
  key.words = std::move(w.out);
  key.hash = hash_words(key.words);
  return key;
}

MeshIndex::MeshIndex(const arch::Platform& platform) : platform_(&platform) {
  for (std::size_t i = 0; i < platform.link_count(); ++i) {
    const LinkId id{static_cast<LinkId::value_type>(i)};
    const arch::Link& link = platform.link(id);
    if (link.kind == arch::LinkKind::RouterToRouter) {
      rr_.emplace(rr_key(link.from_router, link.to_router), id);
    }
  }
  for (const TileId tile : platform.tile_ids()) {
    by_name_.emplace(platform.tile(tile).name, tile);
  }
}

TileId MeshIndex::tile_at(arch::Coord c, TileTypeId type,
                          const std::optional<std::string>& pinned) const {
  if (c.x >= platform_->mesh_width() || c.y >= platform_->mesh_height()) {
    return TileId{};
  }
  const RouterId router = platform_->router_at(c.x, c.y);
  for (const TileId tile : platform_->router_tiles(router)) {
    const arch::Tile& t = platform_->tile(tile);
    if (t.type != type) continue;
    if (pinned.has_value() && t.name != *pinned) continue;
    return tile;
  }
  return TileId{};
}

LinkId MeshIndex::rr_link(RouterId from, RouterId to) const {
  const auto it = rr_.find(rr_key(from, to));
  return it == rr_.end() ? LinkId{} : it->second;
}

TileId MeshIndex::tile_by_name(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? TileId{} : it->second;
}

arch::Coord MeshIndex::tile_coord(TileId tile) const {
  const arch::Tile& t = platform_->tile(tile);
  return {t.x, t.y};
}

namespace {

/// Serializes one symmetry's image of the placement; the lexicographically
/// smallest word vector over all 8 symmetries is the canonical form.
std::vector<std::uint64_t> shape_words(
    arch::Coord extent, const std::vector<ShapeProcess>& processes,
    const std::vector<arch::Coord>& ppos,
    const std::vector<ShapeChannel>& channels,
    const std::vector<std::vector<arch::Coord>>& routes) {
  Words w;
  w.put(extent.x);
  w.put(extent.y);
  w.put(processes.size());
  for (std::size_t i = 0; i < processes.size(); ++i) {
    const ShapeProcess& p = processes[i];
    w.put(ppos[i].x);
    w.put(ppos[i].y);
    w.put(p.impl.value());
    w.put(p.type.value());
    w.put(p.pinned_tile.has_value() ? fnv1a_string(*p.pinned_tile) : 0);
  }
  w.put(channels.size());
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const ShapeChannel& c = channels[i];
    w.put(routes[i].size());
    for (const arch::Coord r : routes[i]) {
      w.put(r.x);
      w.put(r.y);
    }
    w.put(c.has_buffer ? 1 : 0);
    w.put(c.buffer_tokens);
  }
  return w.out;
}

}  // namespace

CanonicalShape canonicalize(const kpn::Application& app,
                            const arch::Platform& platform,
                            const core::Mapping& mapping) {
  require(mapping.all_assigned() && mapping.all_routed(),
          "canonicalize requires a placed and routed mapping");

  // Gather the raw geometry: process tile coordinates and per-channel
  // router coordinate sequences. Route coordinates are included in the
  // bounding box — a congestion detour of route_shortest may leave the
  // rectangle spanned by the tiles alone.
  CanonicalShape shape;
  std::vector<arch::Coord> ppos(app.process_count());
  std::vector<std::vector<arch::Coord>> routes(app.channel_count());

  arch::Coord lo{UINT32_MAX, UINT32_MAX};
  arch::Coord hi{0, 0};
  const auto cover = [&lo, &hi](arch::Coord c) {
    lo.x = std::min(lo.x, c.x);
    lo.y = std::min(lo.y, c.y);
    hi.x = std::max(hi.x, c.x);
    hi.y = std::max(hi.y, c.y);
  };

  shape.processes.resize(app.process_count());
  for (const ProcessId pid : app.process_ids()) {
    const arch::Tile& tile = platform.tile(mapping.tile_of(pid));
    ShapeProcess& p = shape.processes[pid.value()];
    p.impl = mapping.impl_of(pid);
    p.type = tile.type;
    p.utilization = core::claimed_utilization(core::impl_utilization(
        app, pid, p.impl, platform.tile_clock_hz(mapping.tile_of(pid))));
    p.memory_bytes = app.implementation(pid, p.impl).memory_bytes;
    p.pinned_tile = app.process(pid).pinned_tile;
    if (p.pinned_tile.has_value()) shape.has_pinned = true;
    ppos[pid.value()] = {tile.x, tile.y};
    cover(ppos[pid.value()]);
  }

  shape.channels.resize(app.channel_count());
  for (const ChannelId cid : app.channel_ids()) {
    const noc::Path& path = *mapping.path(cid);
    ShapeChannel& c = shape.channels[cid.value()];
    for (const RouterId router : path.routers(platform)) {
      const auto [x, y] = platform.router_pos(router);
      routes[cid.value()].push_back({x, y});
      cover(routes[cid.value()].back());
    }
    const std::optional<std::uint32_t> tokens = mapping.buffer_tokens(cid);
    c.has_buffer = tokens.has_value();
    c.buffer_tokens = tokens.value_or(0);
  }

  // Translate to the origin.
  for (arch::Coord& c : ppos) c = {c.x - lo.x, c.y - lo.y};
  for (auto& route : routes) {
    for (arch::Coord& c : route) c = {c.x - lo.x, c.y - lo.y};
  }
  const arch::Coord extent{hi.x - lo.x + 1, hi.y - lo.y + 1};

  // Minimize over the 8 symmetries.
  std::vector<std::uint64_t> best_words;
  for (const arch::MeshSymmetry sym : arch::kAllMeshSymmetries) {
    const arch::Coord ext = arch::transformed_extent(sym, extent);
    std::vector<arch::Coord> tp(ppos.size());
    for (std::size_t i = 0; i < ppos.size(); ++i) {
      tp[i] = arch::apply_symmetry(sym, ppos[i], extent);
    }
    std::vector<std::vector<arch::Coord>> tr(routes.size());
    for (std::size_t i = 0; i < routes.size(); ++i) {
      tr[i].reserve(routes[i].size());
      for (const arch::Coord c : routes[i]) {
        tr[i].push_back(arch::apply_symmetry(sym, c, extent));
      }
    }
    std::vector<std::uint64_t> words =
        shape_words(ext, shape.processes, tp, shape.channels, tr);
    if (best_words.empty() || words < best_words) {
      best_words = std::move(words);
      shape.extent = ext;
      for (std::size_t i = 0; i < tp.size(); ++i) {
        shape.processes[i].pos = tp[i];
      }
      for (std::size_t i = 0; i < tr.size(); ++i) {
        shape.channels[i].routers = std::move(tr[i]);
      }
    }
  }
  shape.words = std::move(best_words);
  shape.hash = hash_words(shape.words);

  // Most-constrained-first probe order: pinned processes (at most one
  // candidate tile each), then by descending utilisation.
  shape.probe_order.resize(shape.processes.size());
  for (std::size_t i = 0; i < shape.probe_order.size(); ++i) {
    shape.probe_order[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(shape.probe_order.begin(), shape.probe_order.end(),
            [&shape](std::uint32_t a, std::uint32_t b) {
              const ShapeProcess& pa = shape.processes[a];
              const ShapeProcess& pb = shape.processes[b];
              const bool pin_a = pa.pinned_tile.has_value();
              const bool pin_b = pb.pinned_tile.has_value();
              if (pin_a != pin_b) return pin_a;
              if (pa.utilization != pb.utilization) {
                return pa.utilization > pb.utilization;
              }
              return a < b;
            });

  return shape;
}

std::optional<core::Mapping> materialize(const CanonicalShape& shape,
                                         const kpn::Application& app,
                                         const MeshIndex& index,
                                         const arch::MeshTransform& transform) {
  if (shape.processes.size() != app.process_count() ||
      shape.channels.size() != app.channel_count()) {
    return std::nullopt;
  }
  const arch::Platform& platform = index.platform();

  core::Mapping mapping(app.process_count(), app.channel_count());
  for (std::size_t i = 0; i < shape.processes.size(); ++i) {
    const ShapeProcess& p = shape.processes[i];
    const arch::Coord c = transform.apply(p.pos, shape.extent);
    const TileId tile = index.tile_at(c, p.type, p.pinned_tile);
    if (!tile.valid()) return std::nullopt;
    mapping.assign(ProcessId{static_cast<ProcessId::value_type>(i)}, p.impl,
                   tile);
  }

  for (std::size_t i = 0; i < shape.channels.size(); ++i) {
    const ShapeChannel& c = shape.channels[i];
    const ChannelId cid{static_cast<ChannelId::value_type>(i)};
    const TileId src = mapping.tile_of(app.channel(cid).src);
    const TileId dst = mapping.tile_of(app.channel(cid).dst);
    noc::Path path{src, dst, {}};
    if (c.routers.empty()) {
      if (src != dst) return std::nullopt;
    } else if (src == dst) {
      // Two tiles of the learned placement shared one router and collapsed
      // onto one tile here; the channel becomes intra-tile (books strictly
      // less than the learned shape, so still safe to commit).
    } else {
      path.links.push_back(platform.inject_link(src));
      RouterId prev;
      for (const arch::Coord rc : c.routers) {
        const arch::Coord tc = transform.apply(rc, shape.extent);
        if (tc.x >= platform.mesh_width() || tc.y >= platform.mesh_height()) {
          return std::nullopt;
        }
        const RouterId router = platform.router_at(tc.x, tc.y);
        if (prev.valid()) {
          const LinkId rr = index.rr_link(prev, router);
          if (!rr.valid()) return std::nullopt;
          path.links.push_back(rr);
        }
        prev = router;
      }
      path.links.push_back(platform.eject_link(dst));
    }
    mapping.set_path(cid, std::move(path));
    if (c.has_buffer) mapping.set_buffer_tokens(cid, c.buffer_tokens);
  }

  return mapping;
}

}  // namespace rtsm::shapes
