#include "shapes/library.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rtsm::shapes {

ShapeLibrary::ShapeLibrary(const arch::Platform& platform,
                           ShapeLibraryOptions options)
    : platform_(&platform), index_(platform), options_(options) {
  require(options_.max_shapes > 0 && options_.max_shapes_per_skeleton > 0,
          "ShapeLibrary needs room for at least 1 shape");
}

std::optional<core::Mapping> ShapeLibrary::probe_anchor(
    const CanonicalShape& shape, const kpn::Application& app,
    const core::ResourceState& state, const arch::MeshTransform& transform,
    std::uint64_t& full_checks) const {
  // Cheap screen, most-constrained process first: the tile at the
  // transformed coordinate must exist, match the implementation's tile
  // type (and fixture pin), and individually fit the process's
  // utilisation / memory / slot demand.
  for (const std::uint32_t i : shape.probe_order) {
    const ShapeProcess& p = shape.processes[i];
    const arch::Coord c = transform.apply(p.pos, shape.extent);
    const TileId tile = index_.tile_at(c, p.type, p.pinned_tile);
    if (!tile.valid()) return std::nullopt;
    if (!state.tile_fits(tile, p.utilization, p.memory_bytes, 1)) {
      return std::nullopt;
    }
  }

  // Authoritative check: materialize the full mapping (routes included)
  // and screen compute, memory, slots, buffer memory and link capacity
  // along the transformed routes at once.
  ++full_checks;
  std::optional<core::Mapping> mapping =
      materialize(shape, app, index_, transform);
  if (!mapping.has_value()) return std::nullopt;
  if (!core::mapping_fits(state, app, *mapping)) return std::nullopt;
  return mapping;
}

std::optional<core::Mapping> ShapeLibrary::probe_entry(
    const CanonicalShape& shape, const kpn::Application& app,
    const core::ResourceState& state, std::uint64_t& probes,
    std::uint64_t& full_checks) const {
  const std::uint32_t width = platform_->mesh_width();
  const std::uint32_t height = platform_->mesh_height();

  for (const arch::MeshSymmetry sym : arch::kAllMeshSymmetries) {
    const arch::Coord ext = arch::transformed_extent(sym, shape.extent);
    if (ext.x > width || ext.y > height) continue;

    if (shape.has_pinned) {
      // A fixture pin fixes the translation: the pinned process must land
      // on exactly its named tile, so each symmetry has at most one
      // feasible anchor.
      const ShapeProcess& pinned = shape.processes[shape.probe_order.front()];
      const TileId target = index_.tile_by_name(*pinned.pinned_tile);
      if (!target.valid()) continue;
      const arch::Coord want = index_.tile_coord(target);
      const arch::Coord at =
          arch::apply_symmetry(sym, pinned.pos, shape.extent);
      if (want.x < at.x || want.y < at.y) continue;
      const arch::MeshTransform t{sym, want.x - at.x, want.y - at.y};
      if (t.dx + ext.x > width || t.dy + ext.y > height) continue;
      ++probes;
      if (auto m = probe_anchor(shape, app, state, t, full_checks)) return m;
      continue;
    }

    for (std::uint32_t dy = 0; dy + ext.y <= height; ++dy) {
      for (std::uint32_t dx = 0; dx + ext.x <= width; ++dx) {
        ++probes;
        const arch::MeshTransform t{sym, dx, dy};
        if (auto m = probe_anchor(shape, app, state, t, full_checks)) return m;
      }
    }
  }
  return std::nullopt;
}

ShapeLookup ShapeLibrary::try_instantiate(const kpn::Application& app,
                                          const core::ResourceState& state) {
  const SkeletonKey key = SkeletonKey::of(app);

  // Collect this skeleton's entries most-recently-used first. Shapes are
  // immutable once stored, so probing proceeds without the lock;
  // shared_ptrs keep entries alive across a racing eviction.
  std::vector<std::shared_ptr<Entry>> candidates;
  {
    const audit::LockGuard lock(mutex_);
    const auto it = buckets_.find(key.hash);
    if (it != buckets_.end() && it->second.key == key) {
      candidates = it->second.entries;
      std::sort(candidates.begin(), candidates.end(),
                [](const auto& a, const auto& b) {
                  return a->last_used > b->last_used;
                });
    }
  }

  ShapeLookup out;
  std::uint64_t full_checks = 0;
  std::shared_ptr<Entry> hit;
  std::optional<core::Mapping> mapping;
  for (const std::shared_ptr<Entry>& entry : candidates) {
    mapping = probe_entry(entry->shape, app, state, out.anchor_probes,
                          full_checks);
    if (mapping.has_value()) {
      hit = entry;
      break;
    }
  }

  {
    const audit::LockGuard lock(mutex_);
    ++stats_.lookups;
    stats_.anchor_probes += out.anchor_probes;
    stats_.full_fit_checks += full_checks;
    if (hit != nullptr) {
      ++stats_.hits;
      ++hit->hits;
      hit->last_used = ++tick_;
    } else {
      ++stats_.misses;
    }
  }

  if (hit != nullptr) {
    core::MappingResult plan;
    plan.success = true;
    plan.mapping = std::move(*mapping);
    plan.energy_nj_per_symbol = hit->shape.energy_nj_per_symbol;
    plan.achieved_period_ps = hit->shape.achieved_period_ps;
    plan.latency_ps = hit->shape.latency_ps;
    out.plan = std::move(plan);
  }
  return out;
}

LearnResult ShapeLibrary::learn(const kpn::Application& app,
                                const core::MappingResult& result) {
  LearnResult lr;
  if (!result.success || !result.mapping.all_assigned() ||
      !result.mapping.all_routed()) {
    return lr;
  }

  CanonicalShape shape = canonicalize(app, *platform_, result.mapping);
  shape.energy_nj_per_symbol = result.energy_nj_per_symbol;
  shape.achieved_period_ps = result.achieved_period_ps;
  shape.latency_ps = result.latency_ps;
  SkeletonKey key = SkeletonKey::of(app);

  const audit::LockGuard lock(mutex_);
  auto it = buckets_.find(key.hash);
  if (it == buckets_.end()) {
    it = buckets_.emplace(key.hash, Bucket{}).first;
    it->second.key = std::move(key);
  } else if (!(it->second.key == key)) {
    // A different skeleton already owns this 64-bit hash (astronomically
    // unlikely); refuse rather than mix placements of distinct graphs.
    return lr;
  }

  Bucket& bucket = it->second;
  for (const std::shared_ptr<Entry>& e : bucket.entries) {
    if (e->shape.hash == shape.hash && e->shape.words == shape.words) {
      lr.duplicate = true;
      ++stats_.duplicates;
      e->last_used = ++tick_;
      return lr;
    }
  }

  auto entry = std::make_shared<Entry>();
  entry->shape = std::move(shape);
  entry->last_used = ++tick_;
  bucket.entries.push_back(std::move(entry));
  ++total_entries_;
  ++stats_.inserts;
  lr.inserted = true;

  const std::uint64_t hash = it->first;
  if (bucket.entries.size() > options_.max_shapes_per_skeleton) {
    evict_lru_of_bucket(hash);
    ++lr.evictions;
  }
  while (total_entries_ > options_.max_shapes) {
    evict_lru_global();
    ++lr.evictions;
  }
  return lr;
}

void ShapeLibrary::evict_lru_of_bucket(std::uint64_t bucket_hash) {
  Bucket& bucket = buckets_.at(bucket_hash);
  auto lru = bucket.entries.begin();
  for (auto e = bucket.entries.begin(); e != bucket.entries.end(); ++e) {
    if ((*e)->last_used < (*lru)->last_used) lru = e;
  }
  bucket.entries.erase(lru);
  --total_entries_;
  ++stats_.evictions;
  if (bucket.entries.empty()) buckets_.erase(bucket_hash);
}

void ShapeLibrary::evict_lru_global() {
  std::uint64_t lru_bucket = 0;
  std::uint64_t lru_used = UINT64_MAX;
  for (const auto& [hash, bucket] : buckets_) {
    for (const std::shared_ptr<Entry>& e : bucket.entries) {
      if (e->last_used < lru_used) {
        lru_used = e->last_used;
        lru_bucket = hash;
      }
    }
  }
  if (lru_used != UINT64_MAX) evict_lru_of_bucket(lru_bucket);
}

ShapeLibraryStats ShapeLibrary::stats() const {
  const audit::LockGuard lock(mutex_);
  return stats_;
}

std::size_t ShapeLibrary::size() const {
  const audit::LockGuard lock(mutex_);
  return total_entries_;
}

void ShapeLibrary::clear() {
  const audit::LockGuard lock(mutex_);
  buckets_.clear();
  total_entries_ = 0;
}

}  // namespace rtsm::shapes
