#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "audit/mutex.hpp"
#include "core/mapper.hpp"
#include "core/resource_state.hpp"
#include "shapes/shape.hpp"

namespace rtsm::shapes {

/// Bounds of a ShapeLibrary.
struct ShapeLibraryOptions {
  /// Total canonical shapes retained (least-recently-used eviction beyond
  /// it).
  std::size_t max_shapes = 512;

  /// Shapes retained per application skeleton; keeps one hot skeleton from
  /// monopolizing the library with placement variants.
  std::size_t max_shapes_per_skeleton = 8;
};

/// Counters of a ShapeLibrary (value snapshot; thread-safe read).
struct ShapeLibraryStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;    ///< Lookups served by an anchored shape.
  std::uint64_t misses = 0;  ///< Lookups that fell through to the mapper.
  std::uint64_t inserts = 0;
  std::uint64_t duplicates = 0;  ///< learn() of an already-known shape.
  std::uint64_t evictions = 0;
  /// Anchor transforms screened across all lookups.
  std::uint64_t anchor_probes = 0;
  /// Anchors that passed the cheap screen and ran the full mapping_fits.
  std::uint64_t full_fit_checks = 0;

  [[nodiscard]] double hit_rate() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
  [[nodiscard]] double anchor_probes_per_hit() const {
    return hits == 0
               ? 0.0
               : static_cast<double>(anchor_probes) / static_cast<double>(hits);
  }
};

/// Result of one library lookup: the instantiated plan on a hit (success,
/// mapping, and the transferred step-4 outcome — committable through the
/// ordinary two-phase commit), plus the anchor probes this lookup spent
/// (also accumulated in stats(); returned so callers can attribute probes
/// per manager when the library is shared).
struct ShapeLookup {
  std::optional<core::MappingResult> plan;
  std::uint64_t anchor_probes = 0;
};

/// Result of one learn() call.
struct LearnResult {
  bool inserted = false;   ///< A new shape entered the library.
  bool duplicate = false;  ///< The placement canonicalized to a known shape.
  std::uint64_t evictions = 0;
};

/// Thread-safe, bounded library of relocatable mapping shapes — the
/// admission hot path. Keyed by SkeletonKey (graph structure +
/// implementation options + QoS, position- and name-independent); entries
/// are canonicalized placements (see CanonicalShape). A lookup enumerates
/// feasible anchor transforms of each stored shape against the live
/// residual state — all 8 mesh symmetries, every in-bounds translation
/// (fixture pins collapse the translations to at most one per symmetry) —
/// and returns the first anchored instantiation that passes
/// core::mapping_fits, skipping mapping steps 1-4 entirely. On a miss the
/// caller runs the full mapper and feeds the successful placement back
/// through learn() (learn-on-admit), so the library warms itself under
/// churn.
///
/// Shapes never go stale: entries are position-independent and every use
/// is re-validated against the live state, so defragmentation, preemption
/// and mode switches need no invalidation hook — they simply bypass the
/// library (their replans are position-constrained) while admission keeps
/// hitting it.
class ShapeLibrary {
 public:
  explicit ShapeLibrary(const arch::Platform& platform,
                        ShapeLibraryOptions options = {});

  /// Tries to serve @p app from the library against residual state
  /// @p state. Probing runs outside the library lock (entries are
  /// immutable); only bucket lookup and stats/recency updates serialize.
  [[nodiscard]] ShapeLookup try_instantiate(const kpn::Application& app,
                                            const core::ResourceState& state);

  /// Canonicalizes and inserts the placement of a successful full-mapper
  /// admission. No-op for unsuccessful / partial results; duplicates only
  /// refresh the stored shape's recency.
  LearnResult learn(const kpn::Application& app,
                    const core::MappingResult& result);

  [[nodiscard]] ShapeLibraryStats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

  [[nodiscard]] const arch::Platform& platform() const { return *platform_; }
  [[nodiscard]] const ShapeLibraryOptions& options() const { return options_; }

 private:
  struct Entry {
    CanonicalShape shape;
    std::uint64_t last_used = 0;
    std::uint64_t hits = 0;
  };
  struct Bucket {
    SkeletonKey key;
    std::vector<std::shared_ptr<Entry>> entries;
  };

  /// Enumerates anchors of @p entry against @p state; returns the first
  /// fitting mapping. Reads only immutable shape data — called unlocked.
  [[nodiscard]] std::optional<core::Mapping> probe_entry(
      const CanonicalShape& shape, const kpn::Application& app,
      const core::ResourceState& state, std::uint64_t& probes,
      std::uint64_t& full_checks) const;

  /// Probes one anchor: cheap per-process screen, then materialize +
  /// mapping_fits.
  [[nodiscard]] std::optional<core::Mapping> probe_anchor(
      const CanonicalShape& shape, const kpn::Application& app,
      const core::ResourceState& state, const arch::MeshTransform& transform,
      std::uint64_t& full_checks) const;

  /// Removes the least-recently-used entry of @p bucket (erasing the
  /// bucket when it empties); caller holds mutex_.
  void evict_lru_of_bucket(std::uint64_t bucket_hash) RTSM_REQUIRES(mutex_);
  /// Removes the globally least-recently-used entry; caller holds mutex_.
  void evict_lru_global() RTSM_REQUIRES(mutex_);

  const arch::Platform* platform_;
  MeshIndex index_;
  ShapeLibraryOptions options_;

  /// Serializes bucket/recency/stats bookkeeping only; anchor probing runs
  /// outside it. Ranked above the manager shard lock: learn-on-admit runs
  /// in validate_and_commit's tail while phase-1 still holds its stripe.
  mutable audit::Mutex mutex_{audit::LockRank::kShapeLibrary,
                              "shapes.library"};
  std::unordered_map<std::uint64_t, Bucket> buckets_
      RTSM_GUARDED_BY(mutex_);  // by SkeletonKey hash
  std::size_t total_entries_ RTSM_GUARDED_BY(mutex_) = 0;
  /// Monotone recency counter.
  std::uint64_t tick_ RTSM_GUARDED_BY(mutex_) = 0;
  ShapeLibraryStats stats_ RTSM_GUARDED_BY(mutex_);
};

}  // namespace rtsm::shapes
