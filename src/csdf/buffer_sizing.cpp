#include "csdf/buffer_sizing.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace rtsm::csdf {

std::uint32_t capacity_lower_bound(const Graph& graph, EdgeId edge) {
  const Edge& e = graph.edge(edge);
  return std::max({e.max_production(), e.max_consumption(), e.initial_tokens,
                   std::uint32_t{1}});
}

BufferSizingResult size_buffers(Graph& graph, const std::vector<EdgeId>& edges,
                                const BufferSizingConfig& config) {
  require(config.target_period_ps > 0,
          "buffer sizing requires a positive target period");

  BufferSizingResult result;
  result.capacities.assign(edges.size(), 0);

  const auto rv = repetition_vector(graph);
  if (!rv) {
    result.message = "graph is inconsistent; no repetition vector";
    return result;
  }

  auto apply = [&](const std::vector<std::uint32_t>& caps) {
    for (std::size_t i = 0; i < edges.size(); ++i) {
      graph.set_capacity(edges[i], caps[i]);
    }
  };

  auto check = [&](const std::vector<std::uint32_t>& caps) -> SimulationResult {
    apply(caps);
    return simulate(graph, *rv, config.reference, config.simulation,
                    config.probe);
  };

  auto meets = [&](const SimulationResult& sim) {
    return sim.status == SimulationStatus::Completed &&
           sim.period_ps <= config.target_period_ps;
  };

  // Per-edge bounds. The upper bound of four iterations' worth of tokens
  // (plus initial tokens) removes the back-pressure the graph can exert in
  // steady state: with whole-symbol bursts crossing multi-hop paths and
  // join synchronisation, pipeline stages can be up to a few symbols apart,
  // so two iterations of slack is measurably too tight (see the X1 bench).
  std::vector<std::uint32_t> lower(edges.size());
  std::vector<std::uint32_t> upper(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    lower[i] = capacity_lower_bound(graph, edges[i]);
    const std::uint64_t per_iter = tokens_per_iteration(graph, *rv, edges[i]);
    const std::uint64_t ub = std::max<std::uint64_t>(
        lower[i], 4 * per_iter + graph.edge(edges[i]).initial_tokens);
    upper[i] = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(ub, config.capacity_limit));
  }

  SimulationResult sim = check(upper);
  if (!meets(sim)) {
    result.message =
        "target period unreachable even with generous buffers: " +
        (sim.status == SimulationStatus::Completed
             ? "achieved " + std::to_string(sim.period_ps) + "ps > target " +
                   std::to_string(config.target_period_ps) + "ps"
             : sim.message);
    result.achieved_period_ps = sim.period_ps;
    apply(upper);
    return result;
  }

  // Binary search a common interpolation factor t/kResolution between the
  // lower and upper bounds (monotone in t).
  constexpr std::uint32_t kResolution = 64;
  auto blend = [&](std::uint32_t t) {
    std::vector<std::uint32_t> caps(edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const std::uint64_t span = upper[i] - lower[i];
      caps[i] = lower[i] + static_cast<std::uint32_t>(span * t / kResolution);
    }
    return caps;
  };

  std::uint32_t lo_t = 0;
  std::uint32_t hi_t = kResolution;
  if (meets(check(blend(0)))) {
    hi_t = 0;
  } else {
    while (hi_t - lo_t > 1) {
      const std::uint32_t mid = lo_t + (hi_t - lo_t) / 2;
      if (meets(check(blend(mid)))) {
        hi_t = mid;
      } else {
        lo_t = mid;
      }
    }
  }
  std::vector<std::uint32_t> caps = blend(hi_t);

  // Per-edge trim, largest capacity first: binary search the minimal value
  // for each edge with all others fixed.
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (caps[a] != caps[b]) return caps[a] > caps[b];
    return a < b;
  });
  for (const std::size_t i : order) {
    std::uint32_t lo = lower[i];
    std::uint32_t hi = caps[i];
    if (lo >= hi) continue;
    std::vector<std::uint32_t> trial = caps;
    trial[i] = lo;
    if (meets(check(trial))) {
      caps[i] = lo;
      continue;
    }
    while (hi - lo > 1) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      trial[i] = mid;
      if (meets(check(trial))) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    caps[i] = hi;
  }

  sim = check(caps);
  require(meets(sim), "buffer sizing lost feasibility during trim");

  result.feasible = true;
  result.capacities = caps;
  result.achieved_period_ps = sim.period_ps;
  result.latency_ps = sim.latency_ps;
  return result;
}

}  // namespace rtsm::csdf
