#include "csdf/buffer_sizing.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace rtsm::csdf {

std::uint32_t capacity_lower_bound(const Graph& graph, EdgeId edge) {
  const Edge& e = graph.edge(edge);
  return std::max({e.max_production(), e.max_consumption(), e.initial_tokens,
                   std::uint32_t{1}});
}

BufferSizingResult size_buffers(Graph& graph, const std::vector<EdgeId>& edges,
                                const BufferSizingConfig& config) {
  require(config.target_period_ps > 0,
          "buffer sizing requires a positive target period");

  BufferSizingResult result;
  result.capacities.assign(edges.size(), 0);

  const auto rv = repetition_vector(graph);
  if (!rv) {
    result.message = "graph is inconsistent; no repetition vector";
    return result;
  }

  auto apply = [&](const std::vector<std::uint32_t>& caps) {
    for (std::size_t i = 0; i < edges.size(); ++i) {
      graph.set_capacity(edges[i], caps[i]);
    }
  };

  auto run_sim = [&](const std::vector<std::uint32_t>& caps)
      -> SimulationResult {
    apply(caps);
    SimulationResult sim = simulate(graph, *rv, config.reference,
                                    config.simulation, config.probe);
    ++result.simulations;
    result.events_simulated += sim.events;
    return sim;
  };

  auto meets = [&](const SimulationResult& sim) {
    return sim.status == SimulationStatus::Completed &&
           sim.period_ps <= config.target_period_ps;
  };

  // Monotone dominance oracle. Throughput under the conservative firing
  // rule is non-decreasing in every capacity (the same lattice property
  // every binary search below already relies on), so a candidate pointwise
  // >= a known-feasible vector is feasible and one pointwise <= a
  // known-infeasible vector is infeasible — no simulation needed. Cold
  // runs seed the verdict sets from their own simulations; a warm-start
  // hint pre-seeds them with one verified vector, which prunes most of the
  // per-edge trim when the previous solution is close. Either way every
  // verdict is exact, so the chosen capacities are identical with and
  // without the hint.
  std::vector<std::vector<std::uint32_t>> known_feasible;
  std::vector<std::vector<std::uint32_t>> known_infeasible;
  auto record_verdict = [&](const std::vector<std::uint32_t>& caps, bool ok) {
    (ok ? known_feasible : known_infeasible).push_back(caps);
  };
  auto dominates = [](const std::vector<std::uint32_t>& a,
                      const std::vector<std::uint32_t>& b) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] < b[i]) return false;
    }
    return true;
  };
  auto implied = [&](const std::vector<std::uint32_t>& caps)
      -> std::optional<bool> {
    for (const auto& f : known_feasible) {
      if (dominates(caps, f)) return true;
    }
    for (const auto& g : known_infeasible) {
      if (dominates(g, caps)) return false;
    }
    return std::nullopt;
  };
  auto meets_cached = [&](const std::vector<std::uint32_t>& caps,
                          bool use_dominance) -> bool {
    if (use_dominance) {
      if (const auto verdict = implied(caps)) {
        ++result.dominance_skips;
        return *verdict;
      }
    }
    const bool ok = meets(run_sim(caps));
    record_verdict(caps, ok);
    return ok;
  };

  // Per-edge bounds. The upper bound of four iterations' worth of tokens
  // (plus initial tokens) removes the back-pressure the graph can exert in
  // steady state: with whole-symbol bursts crossing multi-hop paths and
  // join synchronisation, pipeline stages can be up to a few symbols apart,
  // so two iterations of slack is measurably too tight (see the X1 bench).
  std::vector<std::uint32_t> lower(edges.size());
  std::vector<std::uint32_t> upper(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    lower[i] = capacity_lower_bound(graph, edges[i]);
    const std::uint64_t per_iter = tokens_per_iteration(graph, *rv, edges[i]);
    const std::uint64_t ub = std::max<std::uint64_t>(
        lower[i], 4 * per_iter + graph.edge(edges[i]).initial_tokens);
    upper[i] = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(ub, config.capacity_limit));
  }

  // Verify the warm-start hint once on this graph; its exact verdict seeds
  // the dominance sets.
  if (config.warm_start && config.warm_start->size() == edges.size()) {
    std::vector<std::uint32_t> hint = *config.warm_start;
    for (std::size_t i = 0; i < hint.size(); ++i) {
      hint[i] = std::clamp(hint[i], lower[i], upper[i]);
    }
    result.warm_started = true;
    record_verdict(hint, meets(run_sim(hint)));
  }

  // Feasibility gate at the generous upper bound. A feasible hint implies
  // the gate (hint <= upper pointwise); an infeasible gate still needs the
  // simulation for the explanatory message.
  auto fail_at_upper = [&](const SimulationResult& s) {
    result.message =
        "target period unreachable even with generous buffers: " +
        (s.status == SimulationStatus::Completed
             ? "achieved " + std::to_string(s.period_ps) + "ps > target " +
                   std::to_string(config.target_period_ps) + "ps"
             : s.message);
    result.achieved_period_ps = s.period_ps;
    apply(upper);
  };
  SimulationResult sim;
  bool upper_ok;
  if (const auto verdict = implied(upper); verdict && *verdict) {
    ++result.dominance_skips;
    upper_ok = true;
  } else {
    sim = run_sim(upper);
    upper_ok = meets(sim);
    record_verdict(upper, upper_ok);
  }
  if (!upper_ok) {
    fail_at_upper(sim);
    return result;
  }

  // Binary search a common interpolation factor t/kResolution between the
  // lower and upper bounds (monotone in t), then per-edge trim, largest
  // capacity first: binary search the minimal value for each edge with all
  // others fixed.
  constexpr std::uint32_t kResolution = 64;
  auto blend = [&](std::uint32_t t) {
    std::vector<std::uint32_t> caps(edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const std::uint64_t span = upper[i] - lower[i];
      caps[i] = lower[i] + static_cast<std::uint32_t>(span * t / kResolution);
    }
    return caps;
  };

  auto search = [&](bool use_dominance) {
    std::uint32_t lo_t = 0;
    std::uint32_t hi_t = kResolution;
    if (meets_cached(blend(0), use_dominance)) {
      hi_t = 0;
    } else {
      while (hi_t - lo_t > 1) {
        const std::uint32_t mid = lo_t + (hi_t - lo_t) / 2;
        if (meets_cached(blend(mid), use_dominance)) {
          hi_t = mid;
        } else {
          lo_t = mid;
        }
      }
    }
    std::vector<std::uint32_t> caps = blend(hi_t);

    std::vector<std::size_t> order(edges.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (caps[a] != caps[b]) return caps[a] > caps[b];
      return a < b;
    });
    for (const std::size_t i : order) {
      std::uint32_t lo = lower[i];
      std::uint32_t hi = caps[i];
      if (lo >= hi) continue;
      std::vector<std::uint32_t> trial = caps;
      trial[i] = lo;
      if (meets_cached(trial, use_dominance)) {
        caps[i] = lo;
        continue;
      }
      while (hi - lo > 1) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        trial[i] = mid;
        if (meets_cached(trial, use_dominance)) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      caps[i] = hi;
    }
    return caps;
  };

  // The final simulation always runs: it provides the reported period and
  // latency with the chosen capacities applied to the graph.
  std::vector<std::uint32_t> caps = search(/*use_dominance=*/true);
  sim = run_sim(caps);
  if (!meets(sim)) {
    // The dominance oracle is exact only if the *windowed* period
    // measurement is monotone in the capacities; on a borderline graph the
    // finite window can break that. Re-establish the feasibility gate with
    // a real simulation, then redo the search with every candidate
    // simulated — each accepted step is then verified by its own run and
    // the final re-check below cannot disagree.
    sim = run_sim(upper);
    if (!meets(sim)) {
      fail_at_upper(sim);
      return result;
    }
    caps = search(/*use_dominance=*/false);
    sim = run_sim(caps);
  }
  require(meets(sim), "buffer sizing lost feasibility during trim");

  result.feasible = true;
  result.capacities = caps;
  result.achieved_period_ps = sim.period_ps;
  result.latency_ps = sim.latency_ps;
  return result;
}

}  // namespace rtsm::csdf
