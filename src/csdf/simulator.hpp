#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "csdf/analysis.hpp"
#include "csdf/graph.hpp"

namespace rtsm::csdf {

/// Outcome classification of a self-timed execution.
enum class SimulationStatus {
  /// The reference actor completed the requested number of iterations.
  Completed,
  /// No actor can fire and none is in flight: the graph is deadlocked
  /// (typically by insufficient buffer capacity).
  Deadlock,
  /// The event budget was exhausted before the target was reached.
  EventLimit,
};

/// Parameters of a self-timed simulation run.
struct SimulationConfig {
  /// Iterations to run before measurement starts (reach steady state).
  std::uint32_t warmup_iterations = 8;
  /// Iterations over which the period is averaged (an upper bound when the
  /// adaptive window below is enabled).
  std::uint32_t measured_iterations = 16;
  /// Hard cap on firings, guards against runaway multi-rate graphs.
  std::uint64_t max_events = 20'000'000;

  /// Adaptive measurement window: when both fields are positive the run
  /// stops as soon as each new iteration's own span has stayed within
  /// convergence_epsilon (relative) of the running period estimate for
  /// convergence_window consecutive measured iterations — instead of
  /// always executing the full warmup + measured window. The reported
  /// period then averages over the iterations actually measured.
  /// Defaults keep the fixed window.
  std::uint32_t convergence_window = 0;
  double convergence_epsilon = 0.0;

  /// True when the adaptive early stop is enabled.
  [[nodiscard]] bool adaptive() const {
    return convergence_window > 0 && convergence_epsilon > 0.0;
  }
};

/// Optional source/sink pair for latency measurement.
struct LatencyProbe {
  ActorId source;
  ActorId sink;
};

/// Results of a self-timed execution.
struct SimulationResult {
  SimulationStatus status = SimulationStatus::Deadlock;

  /// Average steady-state iteration period over the measured window, ps.
  std::uint64_t period_ps = 0;

  /// Worst iteration-to-iteration distance in the measured window, ps.
  std::uint64_t max_period_ps = 0;

  /// Max over measured iterations of sink-completion minus source-start, ps
  /// (0 when no probe was given).
  std::uint64_t latency_ps = 0;

  /// Total firings executed.
  std::uint64_t events = 0;

  /// Time of the last processed event, ps.
  std::uint64_t end_time_ps = 0;

  /// Measured iterations actually executed — equal to
  /// config.measured_iterations unless the adaptive window stopped early.
  std::uint32_t measured_iterations_used = 0;

  /// True when the adaptive window ended measurement before
  /// measured_iterations.
  bool converged_early = false;

  /// Human-readable cause for Deadlock / EventLimit.
  std::string message;
};

/// Executes @p graph self-timed (every actor fires as early as possible,
/// sequentially, consuming tokens at firing start with output space reserved
/// at start and tokens delivered at firing end) until @p reference has
/// completed warmup + measured iterations, where one iteration of an actor
/// is rv.cycles[actor] full phase cycles.
///
/// Deterministic: ties are broken by actor id.
[[nodiscard]] SimulationResult simulate(const Graph& graph,
                                        const RepetitionVector& rv,
                                        ActorId reference,
                                        const SimulationConfig& config = {},
                                        std::optional<LatencyProbe> probe = {});

}  // namespace rtsm::csdf
