#include "csdf/graph.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace rtsm::csdf {

std::uint64_t Actor::cycle_wcet_ps() const {
  return std::accumulate(wcet_ps.begin(), wcet_ps.end(), std::uint64_t{0});
}

std::uint64_t Edge::tokens_per_src_cycle() const {
  return std::accumulate(production.begin(), production.end(),
                         std::uint64_t{0});
}

std::uint64_t Edge::tokens_per_dst_cycle() const {
  return std::accumulate(consumption.begin(), consumption.end(),
                         std::uint64_t{0});
}

std::uint32_t Edge::max_production() const {
  return production.empty()
             ? 0
             : *std::max_element(production.begin(), production.end());
}

std::uint32_t Edge::max_consumption() const {
  return consumption.empty()
             ? 0
             : *std::max_element(consumption.begin(), consumption.end());
}

ActorId Graph::add_actor(std::string name, std::vector<std::uint64_t> wcet_ps) {
  require(!wcet_ps.empty(), "CSDF actor '" + name + "' needs >= 1 phase");
  actors_.push_back(Actor{std::move(name), std::move(wcet_ps)});
  in_.emplace_back();
  out_.emplace_back();
  return ActorId{static_cast<ActorId::value_type>(actors_.size() - 1)};
}

EdgeId Graph::add_edge(Edge edge) {
  check_actor(edge.src);
  check_actor(edge.dst);
  const Actor& src = actors_[edge.src.value()];
  const Actor& dst = actors_[edge.dst.value()];
  require(edge.production.size() == src.phase_count(),
          "edge '" + edge.name + "': production phases (" +
              std::to_string(edge.production.size()) +
              ") do not match source actor phases (" +
              std::to_string(src.phase_count()) + ")");
  require(edge.consumption.size() == dst.phase_count(),
          "edge '" + edge.name + "': consumption phases (" +
              std::to_string(edge.consumption.size()) +
              ") do not match destination actor phases (" +
              std::to_string(dst.phase_count()) + ")");
  require(edge.tokens_per_src_cycle() > 0,
          "edge '" + edge.name + "' never carries a token");
  if (edge.capacity) {
    require(*edge.capacity >= edge.max_production() &&
                *edge.capacity >= edge.max_consumption(),
            "edge '" + edge.name + "': capacity " +
                std::to_string(*edge.capacity) +
                " below the largest single-phase transfer");
    require(edge.initial_tokens <= *edge.capacity,
            "edge '" + edge.name + "': initial tokens exceed capacity");
  }
  edges_.push_back(std::move(edge));
  const EdgeId id{static_cast<EdgeId::value_type>(edges_.size() - 1)};
  out_[edges_.back().src.value()].push_back(id);
  in_[edges_.back().dst.value()].push_back(id);
  return id;
}

const Actor& Graph::actor(ActorId id) const {
  check_actor(id);
  return actors_[id.value()];
}

const Edge& Graph::edge(EdgeId id) const {
  check_edge(id);
  return edges_[id.value()];
}

void Graph::set_capacity(EdgeId id, std::optional<std::uint32_t> capacity) {
  check_edge(id);
  Edge& e = edges_[id.value()];
  if (capacity) {
    require(*capacity >= e.max_production() && *capacity >= e.max_consumption(),
            "edge '" + e.name + "': capacity " + std::to_string(*capacity) +
                " below the largest single-phase transfer");
    require(e.initial_tokens <= *capacity,
            "edge '" + e.name + "': initial tokens exceed capacity");
  }
  e.capacity = capacity;
}

const std::vector<EdgeId>& Graph::in_edges(ActorId id) const {
  check_actor(id);
  return in_[id.value()];
}

const std::vector<EdgeId>& Graph::out_edges(ActorId id) const {
  check_actor(id);
  return out_[id.value()];
}

std::vector<ActorId> Graph::actor_ids() const {
  std::vector<ActorId> ids;
  ids.reserve(actors_.size());
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    ids.emplace_back(static_cast<ActorId::value_type>(i));
  }
  return ids;
}

std::vector<EdgeId> Graph::edge_ids() const {
  std::vector<EdgeId> ids;
  ids.reserve(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    ids.emplace_back(static_cast<EdgeId::value_type>(i));
  }
  return ids;
}

ActorId Graph::actor_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    if (actors_[i].name == name) {
      return ActorId{static_cast<ActorId::value_type>(i)};
    }
  }
  throw Error("unknown CSDF actor '" + name + "'");
}

void Graph::check_actor(ActorId id) const {
  require(id.valid() && id.value() < actors_.size(),
          "CSDF actor id out of range");
}

void Graph::check_edge(EdgeId id) const {
  require(id.valid() && id.value() < edges_.size(),
          "CSDF edge id out of range");
}

}  // namespace rtsm::csdf
