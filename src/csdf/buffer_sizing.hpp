#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "csdf/graph.hpp"
#include "csdf/simulator.hpp"

namespace rtsm::csdf {

/// Parameters for minimal buffer-capacity computation.
struct BufferSizingConfig {
  /// Throughput constraint: required sustained iteration period, ps.
  std::uint64_t target_period_ps = 0;

  /// Actor whose iterations define the period (usually the stream sink).
  ActorId reference;

  /// Optional latency probe forwarded to the simulator.
  std::optional<LatencyProbe> probe;

  /// Simulation window used by every feasibility check.
  SimulationConfig simulation;

  /// Upper bound on any single capacity considered (divergence guard).
  std::uint32_t capacity_limit = 1u << 16;

  /// Optional warm-start hint, parallel to the sized edges: the capacities
  /// of a previous feasible solution of this or a structurally similar
  /// graph. The hint is clamped into the structural bounds and verified by
  /// ONE simulation on this graph; its verified verdict then seeds the
  /// monotone dominance oracle (throughput is non-decreasing in every
  /// capacity), letting the search skip simulations whose outcome the
  /// verdict already implies. The chosen capacities are identical with
  /// and without the hint whenever the windowed period measurement is
  /// monotone in the capacities — the normal case, asserted by the
  /// equivalence property test; if the final re-check ever catches a
  /// window artefact breaking that, the search transparently re-runs
  /// fully simulated, so a hint can never make a feasible graph fail.
  std::optional<std::vector<std::uint32_t>> warm_start;
};

/// Result of buffer sizing.
struct BufferSizingResult {
  /// True when the target period is achievable with finite buffers.
  bool feasible = false;

  /// Chosen capacity per sized edge (parallel to the edges passed in).
  std::vector<std::uint32_t> capacities;

  /// Period measured with the final capacities, ps.
  std::uint64_t achieved_period_ps = 0;

  /// Latency measured with the final capacities, ps (0 without probe).
  std::uint64_t latency_ps = 0;

  /// Failure explanation when !feasible.
  std::string message;

  /// Self-timed simulations actually executed.
  std::uint64_t simulations = 0;

  /// Feasibility verdicts implied by monotone dominance instead of a
  /// simulation (see BufferSizingConfig::warm_start).
  std::uint64_t dominance_skips = 0;

  /// Total firings across all executed simulations (the cost metric the
  /// verification engine reports as saved on a cache hit).
  std::uint64_t events_simulated = 0;

  /// True when a warm-start hint was applied.
  bool warm_started = false;
};

/// Computes small buffer capacities for @p edges such that @p graph sustains
/// config.target_period_ps, reproducing the role of the buffer-capacity
/// algorithm of Wiggers et al. [11] in the mapping flow.
///
/// Method: throughput under the simulator's conservative firing rule is
/// monotonically non-decreasing in every capacity, so a per-edge lower bound
/// is first established structurally, feasibility is checked at a generous
/// upper bound, a common interpolation factor is found by binary search, and
/// each edge is then individually trimmed by binary search (largest first).
/// The result is feasible and per-edge minimal w.r.t. single-edge reduction;
/// capacities of edges not listed in @p edges are left untouched.
///
/// @p graph is modified: on success the chosen capacities remain set.
[[nodiscard]] BufferSizingResult size_buffers(Graph& graph,
                                              const std::vector<EdgeId>& edges,
                                              const BufferSizingConfig& config);

/// Structural lower bound for a usable capacity of @p edge: the largest
/// single-phase transfer on either endpoint, and at least the initial tokens.
[[nodiscard]] std::uint32_t capacity_lower_bound(const Graph& graph,
                                                 EdgeId edge);

}  // namespace rtsm::csdf
