#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "csdf/graph.hpp"
#include "csdf/simulator.hpp"

namespace rtsm::csdf {

/// Parameters for minimal buffer-capacity computation.
struct BufferSizingConfig {
  /// Throughput constraint: required sustained iteration period, ps.
  std::uint64_t target_period_ps = 0;

  /// Actor whose iterations define the period (usually the stream sink).
  ActorId reference;

  /// Optional latency probe forwarded to the simulator.
  std::optional<LatencyProbe> probe;

  /// Simulation window used by every feasibility check.
  SimulationConfig simulation;

  /// Upper bound on any single capacity considered (divergence guard).
  std::uint32_t capacity_limit = 1u << 16;
};

/// Result of buffer sizing.
struct BufferSizingResult {
  /// True when the target period is achievable with finite buffers.
  bool feasible = false;

  /// Chosen capacity per sized edge (parallel to the edges passed in).
  std::vector<std::uint32_t> capacities;

  /// Period measured with the final capacities, ps.
  std::uint64_t achieved_period_ps = 0;

  /// Latency measured with the final capacities, ps (0 without probe).
  std::uint64_t latency_ps = 0;

  /// Failure explanation when !feasible.
  std::string message;
};

/// Computes small buffer capacities for @p edges such that @p graph sustains
/// config.target_period_ps, reproducing the role of the buffer-capacity
/// algorithm of Wiggers et al. [11] in the mapping flow.
///
/// Method: throughput under the simulator's conservative firing rule is
/// monotonically non-decreasing in every capacity, so a per-edge lower bound
/// is first established structurally, feasibility is checked at a generous
/// upper bound, a common interpolation factor is found by binary search, and
/// each edge is then individually trimmed by binary search (largest first).
/// The result is feasible and per-edge minimal w.r.t. single-edge reduction;
/// capacities of edges not listed in @p edges are left untouched.
///
/// @p graph is modified: on success the chosen capacities remain set.
[[nodiscard]] BufferSizingResult size_buffers(Graph& graph,
                                              const std::vector<EdgeId>& edges,
                                              const BufferSizingConfig& config);

/// Structural lower bound for a usable capacity of @p edge: the largest
/// single-phase transfer on either endpoint, and at least the initial tokens.
[[nodiscard]] std::uint32_t capacity_lower_bound(const Graph& graph,
                                                 EdgeId edge);

}  // namespace rtsm::csdf
