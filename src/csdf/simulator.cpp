#include "csdf/simulator.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace rtsm::csdf {

namespace {

struct ActorState {
  std::size_t phase = 0;          // next phase to fire
  bool busy = false;
  std::uint64_t cycles_done = 0;  // completed full phase sweeps
};

struct Firing {
  std::uint64_t end_ps;
  ActorId actor;
  // Deterministic ordering: earliest end first, then lowest actor id.
  bool operator>(const Firing& rhs) const {
    if (end_ps != rhs.end_ps) return end_ps > rhs.end_ps;
    return actor.value() > rhs.actor.value();
  }
};

}  // namespace

SimulationResult simulate(const Graph& graph, const RepetitionVector& rv,
                          ActorId reference, const SimulationConfig& config,
                          std::optional<LatencyProbe> probe) {
  require(rv.cycles.size() == graph.actor_count(),
          "simulate: repetition vector does not match graph");
  require(reference.valid() && reference.value() < graph.actor_count(),
          "simulate: invalid reference actor");
  require(config.measured_iterations > 0,
          "simulate: need at least one measured iteration");

  const std::size_t num_actors = graph.actor_count();
  const std::size_t num_edges = graph.edge_count();

  std::vector<ActorState> actors(num_actors);
  std::vector<std::uint64_t> tokens(num_edges);
  std::vector<std::uint64_t> reserved(num_edges, 0);
  for (std::size_t e = 0; e < num_edges; ++e) {
    tokens[e] = graph.edge(EdgeId{static_cast<EdgeId::value_type>(e)})
                    .initial_tokens;
  }

  const std::uint64_t ref_cycles_per_iter = rv.cycles[reference.value()];
  const std::uint64_t total_iters =
      config.warmup_iterations + config.measured_iterations;

  // Completion time of each reference iteration (index 0 .. total_iters-1).
  std::vector<std::uint64_t> ref_iter_end(total_iters, 0);
  // Latency probe bookkeeping.
  std::vector<std::uint64_t> src_iter_start;
  std::vector<std::uint64_t> sink_iter_end;
  std::uint64_t src_cycles_per_iter = 0;
  std::uint64_t sink_cycles_per_iter = 0;
  if (probe) {
    src_cycles_per_iter = rv.cycles[probe->source.value()];
    sink_cycles_per_iter = rv.cycles[probe->sink.value()];
    src_iter_start.assign(total_iters + 2, 0);
    sink_iter_end.assign(total_iters + 2, 0);
  }

  std::priority_queue<Firing, std::vector<Firing>, std::greater<>> in_flight;

  SimulationResult result;
  std::uint64_t now = 0;

  auto can_start = [&](ActorId a) -> bool {
    const ActorState& st = actors[a.value()];
    if (st.busy) return false;
    const std::size_t k = st.phase;
    for (const EdgeId eid : graph.in_edges(a)) {
      const Edge& e = graph.edge(eid);
      if (tokens[eid.value()] < e.consumption[k]) return false;
    }
    for (const EdgeId eid : graph.out_edges(a)) {
      const Edge& e = graph.edge(eid);
      if (!e.capacity) continue;
      const std::uint64_t used = tokens[eid.value()] + reserved[eid.value()];
      if (used + e.production[k] > *e.capacity) return false;
    }
    return true;
  };

  auto start_firing = [&](ActorId a) {
    ActorState& st = actors[a.value()];
    const std::size_t k = st.phase;
    for (const EdgeId eid : graph.in_edges(a)) {
      tokens[eid.value()] -= graph.edge(eid).consumption[k];
    }
    for (const EdgeId eid : graph.out_edges(a)) {
      reserved[eid.value()] += graph.edge(eid).production[k];
    }
    if (probe && a == probe->source && k == 0 &&
        st.cycles_done % src_cycles_per_iter == 0) {
      const std::uint64_t iter = st.cycles_done / src_cycles_per_iter;
      if (iter < src_iter_start.size()) src_iter_start[iter] = now;
    }
    st.busy = true;
    in_flight.push(Firing{now + graph.actor(a).wcet_ps[k], a});
  };

  // Worklist-driven enabling. Only two events can enable an actor:
  // tokens arriving on an input edge (a producer completed) and space
  // appearing on an output edge (its consumer started and removed tokens).
  // Starting an actor therefore propagates to the producers of its input
  // edges; completing one propagates to the consumers of its output edges.
  std::vector<ActorId> worklist;
  std::vector<bool> queued(num_actors, false);
  auto enqueue = [&](ActorId a) {
    if (!queued[a.value()]) {
      queued[a.value()] = true;
      worklist.push_back(a);
    }
  };
  auto drain_worklist = [&] {
    while (!worklist.empty()) {
      const ActorId a = worklist.back();
      worklist.pop_back();
      queued[a.value()] = false;
      if (!can_start(a)) continue;
      start_firing(a);
      // Consumption freed space: producers into this actor may now fit.
      for (const EdgeId eid : graph.in_edges(a)) {
        const ActorId producer = graph.edge(eid).src;
        if (!actors[producer.value()].busy) enqueue(producer);
      }
    }
  };
  auto start_all_enabled = [&] {
    for (std::size_t i = 0; i < num_actors; ++i) {
      enqueue(ActorId{static_cast<ActorId::value_type>(i)});
    }
    drain_worklist();
  };

  auto describe_block = [&]() -> std::string {
    std::string info = "deadlock; blocked actors:";
    for (std::size_t i = 0; i < num_actors; ++i) {
      const ActorId a{static_cast<ActorId::value_type>(i)};
      const ActorState& st = actors[i];
      if (st.busy) continue;
      const std::size_t k = st.phase;
      for (const EdgeId eid : graph.in_edges(a)) {
        const Edge& e = graph.edge(eid);
        if (tokens[eid.value()] < e.consumption[k]) {
          info += " " + graph.actor(a).name + "(needs " +
                  std::to_string(e.consumption[k]) + " on '" + e.name + "')";
          break;
        }
      }
      for (const EdgeId eid : graph.out_edges(a)) {
        const Edge& e = graph.edge(eid);
        if (!e.capacity) continue;
        if (tokens[eid.value()] + reserved[eid.value()] + e.production[k] >
            *e.capacity) {
          info += " " + graph.actor(a).name + "(no space on '" + e.name + "')";
          break;
        }
      }
    }
    return info;
  };

  start_all_enabled();

  while (true) {
    if (in_flight.empty()) {
      result.status = SimulationStatus::Deadlock;
      result.message = describe_block();
      result.end_time_ps = now;
      return result;
    }
    const Firing f = in_flight.top();
    in_flight.pop();
    now = f.end_ps;
    ++result.events;

    ActorState& st = actors[f.actor.value()];
    const std::size_t k = st.phase;
    for (const EdgeId eid : graph.out_edges(f.actor)) {
      const std::uint32_t produced = graph.edge(eid).production[k];
      reserved[eid.value()] -= produced;
      tokens[eid.value()] += produced;
    }
    st.busy = false;
    st.phase = (st.phase + 1) % graph.actor(f.actor).phase_count();
    if (st.phase == 0) {
      ++st.cycles_done;
      if (f.actor == reference && st.cycles_done % ref_cycles_per_iter == 0) {
        const std::uint64_t iter = st.cycles_done / ref_cycles_per_iter - 1;
        if (iter < total_iters) ref_iter_end[iter] = now;
        if (iter + 1 >= total_iters) {
          // Target reached; fall through to measurement below.
          break;
        }
      }
      if (probe && f.actor == probe->sink &&
          st.cycles_done % sink_cycles_per_iter == 0) {
        const std::uint64_t iter = st.cycles_done / sink_cycles_per_iter - 1;
        if (iter < sink_iter_end.size()) sink_iter_end[iter] = now;
      }
    }

    if (result.events >= config.max_events) {
      result.status = SimulationStatus::EventLimit;
      result.message = "event limit reached at t=" + std::to_string(now) + "ps";
      result.end_time_ps = now;
      return result;
    }

    // The completion can enable the actor itself and the consumers of the
    // tokens it just delivered; everything else is unaffected.
    enqueue(f.actor);
    for (const EdgeId eid : graph.out_edges(f.actor)) {
      const ActorId consumer = graph.edge(eid).dst;
      if (!actors[consumer.value()].busy) enqueue(consumer);
    }
    drain_worklist();
  }

  result.status = SimulationStatus::Completed;
  result.end_time_ps = now;

  const std::uint32_t w = config.warmup_iterations;
  const std::uint32_t m = config.measured_iterations;
  // Average period over the measured window. With warmup == 0 the window
  // starts at iteration 0, whose "previous completion" is time 0.
  const std::uint64_t t_begin = w == 0 ? ref_iter_end[0] : ref_iter_end[w - 1];
  const std::uint64_t t_end = ref_iter_end[w + m - 1];
  const std::uint32_t spans = w == 0 ? m - 1 : m;
  result.period_ps =
      spans == 0 ? t_begin : (t_end - t_begin + spans - 1) / spans;

  std::uint64_t max_span = 0;
  for (std::uint32_t i = (w == 0 ? 1 : w); i < w + m; ++i) {
    max_span = std::max(max_span, ref_iter_end[i] - ref_iter_end[i - 1]);
  }
  result.max_period_ps = max_span;

  if (probe) {
    std::uint64_t worst = 0;
    for (std::uint32_t i = w; i < w + m; ++i) {
      if (sink_iter_end[i] == 0) continue;  // sink lagging behind reference
      if (sink_iter_end[i] > src_iter_start[i]) {
        worst = std::max(worst, sink_iter_end[i] - src_iter_start[i]);
      }
    }
    result.latency_ps = worst;
  }
  return result;
}

}  // namespace rtsm::csdf
