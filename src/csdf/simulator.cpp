#include "csdf/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace rtsm::csdf {

namespace {

constexpr std::uint64_t kUnbounded = std::numeric_limits<std::uint64_t>::max();

/// Flat structure-of-arrays image of the graph. The hot loop of the
/// simulator touches only these dense integer arrays: Edge/Actor structs
/// carry strings and optionals that spread the per-event working set over
/// many cache lines, and Graph accessors bounds-check every call.
struct FlatGraph {
  std::size_t num_actors = 0;
  std::size_t num_edges = 0;

  // Actors.
  std::vector<std::uint32_t> phase_count;
  std::vector<std::size_t> wcet_off;
  std::vector<std::uint64_t> wcet_ps;

  // Edges: endpoints, capacity (kUnbounded = no bound) and per-phase rates
  // (production indexed by the source actor's phase, consumption by the
  // destination actor's phase).
  std::vector<std::uint32_t> src, dst;
  std::vector<std::uint64_t> capacity;
  std::vector<std::size_t> prod_off;
  std::vector<std::uint32_t> prod;
  std::vector<std::size_t> cons_off;
  std::vector<std::uint32_t> cons;

  // CSR adjacency: edge indices per actor.
  std::vector<std::size_t> in_off;
  std::vector<std::uint32_t> in_edge;
  std::vector<std::size_t> out_off;
  std::vector<std::uint32_t> out_edge;

  explicit FlatGraph(const Graph& g)
      : num_actors(g.actor_count()), num_edges(g.edge_count()) {
    auto actor_of = [&](std::size_t a) -> const Actor& {
      return g.actor(ActorId{static_cast<ActorId::value_type>(a)});
    };
    phase_count.resize(num_actors);
    wcet_off.resize(num_actors + 1, 0);
    for (std::size_t a = 0; a < num_actors; ++a) {
      const Actor& actor = actor_of(a);
      phase_count[a] = static_cast<std::uint32_t>(actor.phase_count());
      wcet_off[a + 1] = wcet_off[a] + actor.phase_count();
    }
    wcet_ps.reserve(wcet_off[num_actors]);
    for (std::size_t a = 0; a < num_actors; ++a) {
      const Actor& actor = actor_of(a);
      wcet_ps.insert(wcet_ps.end(), actor.wcet_ps.begin(), actor.wcet_ps.end());
    }

    src.resize(num_edges);
    dst.resize(num_edges);
    capacity.resize(num_edges);
    prod_off.resize(num_edges + 1, 0);
    cons_off.resize(num_edges + 1, 0);
    in_off.assign(num_actors + 1, 0);
    out_off.assign(num_actors + 1, 0);
    for (std::size_t e = 0; e < num_edges; ++e) {
      const Edge& edge = g.edge(EdgeId{static_cast<EdgeId::value_type>(e)});
      src[e] = edge.src.value();
      dst[e] = edge.dst.value();
      capacity[e] = edge.capacity ? *edge.capacity : kUnbounded;
      prod_off[e + 1] = prod_off[e] + edge.production.size();
      cons_off[e + 1] = cons_off[e] + edge.consumption.size();
      ++out_off[edge.src.value() + 1];
      ++in_off[edge.dst.value() + 1];
    }
    prod.reserve(prod_off[num_edges]);
    cons.reserve(cons_off[num_edges]);
    for (std::size_t e = 0; e < num_edges; ++e) {
      const Edge& edge = g.edge(EdgeId{static_cast<EdgeId::value_type>(e)});
      prod.insert(prod.end(), edge.production.begin(), edge.production.end());
      cons.insert(cons.end(), edge.consumption.begin(), edge.consumption.end());
    }
    for (std::size_t a = 0; a < num_actors; ++a) {
      in_off[a + 1] += in_off[a];
      out_off[a + 1] += out_off[a];
    }
    in_edge.resize(num_edges);
    out_edge.resize(num_edges);
    std::vector<std::size_t> in_fill(in_off.begin(), in_off.end() - 1);
    std::vector<std::size_t> out_fill(out_off.begin(), out_off.end() - 1);
    for (std::size_t e = 0; e < num_edges; ++e) {
      in_edge[in_fill[dst[e]]++] = static_cast<std::uint32_t>(e);
      out_edge[out_fill[src[e]]++] = static_cast<std::uint32_t>(e);
    }
  }
};

/// Indexed ready-set: a stack of candidate actors with O(1) membership
/// dedup, so each event only (re)examines the actors its tokens or freed
/// space could actually have enabled.
class ReadySet {
 public:
  explicit ReadySet(std::size_t n) : queued_(n, 0) { stack_.reserve(n); }

  void push(std::uint32_t a) {
    if (!queued_[a]) {
      queued_[a] = 1;
      stack_.push_back(a);
    }
  }

  [[nodiscard]] bool empty() const { return stack_.empty(); }

  std::uint32_t pop() {
    const std::uint32_t a = stack_.back();
    stack_.pop_back();
    queued_[a] = 0;
    return a;
  }

 private:
  std::vector<std::uint32_t> stack_;
  std::vector<char> queued_;
};

struct Firing {
  std::uint64_t end_ps;
  std::uint32_t actor;
  // Deterministic ordering: earliest end first, then lowest actor id.
  bool operator>(const Firing& rhs) const {
    if (end_ps != rhs.end_ps) return end_ps > rhs.end_ps;
    return actor > rhs.actor;
  }
};

}  // namespace

SimulationResult simulate(const Graph& graph, const RepetitionVector& rv,
                          ActorId reference, const SimulationConfig& config,
                          std::optional<LatencyProbe> probe) {
  require(rv.cycles.size() == graph.actor_count(),
          "simulate: repetition vector does not match graph");
  require(reference.valid() && reference.value() < graph.actor_count(),
          "simulate: invalid reference actor");
  require(config.measured_iterations > 0,
          "simulate: need at least one measured iteration");

  const FlatGraph fg(graph);
  const std::size_t num_actors = fg.num_actors;
  const std::size_t num_edges = fg.num_edges;
  const std::uint32_t ref = reference.value();

  std::vector<std::uint32_t> phase(num_actors, 0);
  std::vector<char> busy(num_actors, 0);
  std::vector<std::uint64_t> cycles_done(num_actors, 0);
  std::vector<std::uint64_t> tokens(num_edges);
  std::vector<std::uint64_t> reserved(num_edges, 0);
  for (std::size_t e = 0; e < num_edges; ++e) {
    tokens[e] = graph.edge(EdgeId{static_cast<EdgeId::value_type>(e)})
                    .initial_tokens;
  }

  const std::uint64_t ref_cycles_per_iter = rv.cycles[ref];
  const std::uint32_t w = config.warmup_iterations;
  const std::uint32_t m = config.measured_iterations;
  const std::uint64_t total_iters = static_cast<std::uint64_t>(w) + m;

  // Completion time of each reference iteration (index 0 .. total_iters-1).
  std::vector<std::uint64_t> ref_iter_end(total_iters, 0);
  // Latency probe bookkeeping.
  std::vector<std::uint64_t> src_iter_start;
  std::vector<std::uint64_t> sink_iter_end;
  std::uint64_t src_cycles_per_iter = 0;
  std::uint64_t sink_cycles_per_iter = 0;
  if (probe) {
    src_cycles_per_iter = rv.cycles[probe->source.value()];
    sink_cycles_per_iter = rv.cycles[probe->sink.value()];
    src_iter_start.assign(total_iters + 2, 0);
    sink_iter_end.assign(total_iters + 2, 0);
  }

  std::priority_queue<Firing, std::vector<Firing>, std::greater<>> in_flight;

  SimulationResult result;
  result.measured_iterations_used = 0;
  std::uint64_t now = 0;

  auto can_start = [&](std::uint32_t a) -> bool {
    if (busy[a]) return false;
    const std::uint32_t k = phase[a];
    for (std::size_t i = fg.in_off[a]; i < fg.in_off[a + 1]; ++i) {
      const std::uint32_t e = fg.in_edge[i];
      if (tokens[e] < fg.cons[fg.cons_off[e] + k]) return false;
    }
    for (std::size_t i = fg.out_off[a]; i < fg.out_off[a + 1]; ++i) {
      const std::uint32_t e = fg.out_edge[i];
      if (fg.capacity[e] == kUnbounded) continue;
      const std::uint64_t used = tokens[e] + reserved[e];
      if (used + fg.prod[fg.prod_off[e] + k] > fg.capacity[e]) return false;
    }
    return true;
  };

  auto start_firing = [&](std::uint32_t a) {
    const std::uint32_t k = phase[a];
    for (std::size_t i = fg.in_off[a]; i < fg.in_off[a + 1]; ++i) {
      const std::uint32_t e = fg.in_edge[i];
      tokens[e] -= fg.cons[fg.cons_off[e] + k];
    }
    for (std::size_t i = fg.out_off[a]; i < fg.out_off[a + 1]; ++i) {
      const std::uint32_t e = fg.out_edge[i];
      reserved[e] += fg.prod[fg.prod_off[e] + k];
    }
    if (probe && a == probe->source.value() && k == 0 &&
        cycles_done[a] % src_cycles_per_iter == 0) {
      const std::uint64_t iter = cycles_done[a] / src_cycles_per_iter;
      if (iter < src_iter_start.size()) src_iter_start[iter] = now;
    }
    busy[a] = 1;
    in_flight.push(Firing{now + fg.wcet_ps[fg.wcet_off[a] + k], a});
  };

  // Worklist-driven enabling. Only two events can enable an actor:
  // tokens arriving on an input edge (a producer completed) and space
  // appearing on an output edge (its consumer started and removed tokens).
  // Starting an actor therefore propagates to the producers of its input
  // edges; completing one propagates to the consumers of its output edges.
  ReadySet ready(num_actors);
  auto drain_ready = [&] {
    while (!ready.empty()) {
      const std::uint32_t a = ready.pop();
      if (!can_start(a)) continue;
      start_firing(a);
      // Consumption freed space: producers into this actor may now fit.
      for (std::size_t i = fg.in_off[a]; i < fg.in_off[a + 1]; ++i) {
        const std::uint32_t producer = fg.src[fg.in_edge[i]];
        if (!busy[producer]) ready.push(producer);
      }
    }
  };

  auto describe_block = [&]() -> std::string {
    std::string info = "deadlock; blocked actors:";
    for (std::size_t a = 0; a < num_actors; ++a) {
      if (busy[a]) continue;
      const ActorId aid{static_cast<ActorId::value_type>(a)};
      const std::uint32_t k = phase[a];
      for (std::size_t i = fg.in_off[a]; i < fg.in_off[a + 1]; ++i) {
        const std::uint32_t e = fg.in_edge[i];
        if (tokens[e] < fg.cons[fg.cons_off[e] + k]) {
          const Edge& edge = graph.edge(EdgeId{e});
          info += " " + graph.actor(aid).name + "(needs " +
                  std::to_string(edge.consumption[k]) + " on '" + edge.name +
                  "')";
          break;
        }
      }
      for (std::size_t i = fg.out_off[a]; i < fg.out_off[a + 1]; ++i) {
        const std::uint32_t e = fg.out_edge[i];
        if (fg.capacity[e] == kUnbounded) continue;
        if (tokens[e] + reserved[e] + fg.prod[fg.prod_off[e] + k] >
            fg.capacity[e]) {
          const Edge& edge = graph.edge(EdgeId{e});
          info += " " + graph.actor(aid).name + "(no space on '" + edge.name +
                  "')";
          break;
        }
      }
    }
    return info;
  };

  // Running period estimate after m_done measured iterations. With
  // warmup == 0 the window starts at iteration 0, whose "previous
  // completion" is time 0.
  auto estimate = [&](std::uint32_t m_done) -> std::uint64_t {
    const std::uint64_t t_begin =
        w == 0 ? ref_iter_end[0] : ref_iter_end[w - 1];
    const std::uint64_t t_end = ref_iter_end[w + m_done - 1];
    const std::uint32_t spans = w == 0 ? m_done - 1 : m_done;
    return spans == 0 ? t_begin : (t_end - t_begin + spans - 1) / spans;
  };

  for (std::size_t a = 0; a < num_actors; ++a) {
    ready.push(static_cast<std::uint32_t>(a));
  }
  drain_ready();

  std::uint32_t convergence_streak = 0;
  while (true) {
    if (in_flight.empty()) {
      result.status = SimulationStatus::Deadlock;
      result.message = describe_block();
      result.end_time_ps = now;
      return result;
    }
    const Firing f = in_flight.top();
    in_flight.pop();
    now = f.end_ps;
    ++result.events;

    const std::uint32_t a = f.actor;
    const std::uint32_t k = phase[a];
    for (std::size_t i = fg.out_off[a]; i < fg.out_off[a + 1]; ++i) {
      const std::uint32_t e = fg.out_edge[i];
      const std::uint32_t produced = fg.prod[fg.prod_off[e] + k];
      reserved[e] -= produced;
      tokens[e] += produced;
    }
    busy[a] = 0;
    phase[a] = (k + 1 == fg.phase_count[a]) ? 0 : k + 1;
    if (phase[a] == 0) {
      ++cycles_done[a];
      if (a == ref && cycles_done[a] % ref_cycles_per_iter == 0) {
        const std::uint64_t iter = cycles_done[a] / ref_cycles_per_iter - 1;
        if (iter < total_iters) ref_iter_end[iter] = now;
        if (iter + 1 > w) {
          const auto m_done = static_cast<std::uint32_t>(iter + 1 - w);
          result.measured_iterations_used = m_done;
          if (m_done >= m) break;  // full window executed
          if (config.adaptive() && m_done >= 2) {
            // Converged when each new iteration's OWN span stays within
            // epsilon of the running average. Comparing successive
            // cumulative means instead would always shrink as 1/n and
            // declare any run "converged" after enough iterations, even
            // while the period is still oscillating.
            const std::uint64_t span = ref_iter_end[w + m_done - 1] -
                                       ref_iter_end[w + m_done - 2];
            const std::uint64_t cur = estimate(m_done);
            const std::uint64_t diff = span > cur ? span - cur : cur - span;
            const double bound = config.convergence_epsilon *
                                 static_cast<double>(std::max<std::uint64_t>(
                                     cur, 1));
            if (static_cast<double>(diff) <= bound) {
              ++convergence_streak;
            } else {
              convergence_streak = 0;
            }
            if (convergence_streak >= config.convergence_window) {
              result.converged_early = true;
              break;
            }
          }
        }
      }
      if (probe && a == probe->sink.value() &&
          cycles_done[a] % sink_cycles_per_iter == 0) {
        const std::uint64_t iter = cycles_done[a] / sink_cycles_per_iter - 1;
        if (iter < sink_iter_end.size()) sink_iter_end[iter] = now;
      }
    }

    if (result.events >= config.max_events) {
      result.status = SimulationStatus::EventLimit;
      result.message = "event limit reached at t=" + std::to_string(now) + "ps";
      result.end_time_ps = now;
      return result;
    }

    // The completion can enable the actor itself and the consumers of the
    // tokens it just delivered; everything else is unaffected.
    ready.push(a);
    for (std::size_t i = fg.out_off[a]; i < fg.out_off[a + 1]; ++i) {
      const std::uint32_t consumer = fg.dst[fg.out_edge[i]];
      if (!busy[consumer]) ready.push(consumer);
    }
    drain_ready();
  }

  result.status = SimulationStatus::Completed;
  result.end_time_ps = now;

  const std::uint32_t m_used = result.measured_iterations_used;
  result.period_ps = estimate(m_used);

  std::uint64_t max_span = 0;
  for (std::uint32_t i = (w == 0 ? 1 : w); i < w + m_used; ++i) {
    max_span = std::max(max_span, ref_iter_end[i] - ref_iter_end[i - 1]);
  }
  result.max_period_ps = max_span;

  if (probe) {
    std::uint64_t worst = 0;
    for (std::uint32_t i = w; i < w + m_used; ++i) {
      if (sink_iter_end[i] == 0) continue;  // sink lagging behind reference
      if (sink_iter_end[i] > src_iter_start[i]) {
        worst = std::max(worst, sink_iter_end[i] - src_iter_start[i]);
      }
    }
    result.latency_ps = worst;
  }
  return result;
}

}  // namespace rtsm::csdf
