#include "csdf/analysis.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rational.hpp"

namespace rtsm::csdf {

std::optional<RepetitionVector> repetition_vector(const Graph& graph) {
  const std::size_t n = graph.actor_count();
  if (n == 0) return RepetitionVector{};

  // Propagate rational cycle counts over the undirected edge structure,
  // starting from an arbitrary root with q = 1, then verify every balance
  // equation (the propagation spans a tree; off-tree edges must agree).
  std::vector<Rational> q(n, Rational{0});
  std::vector<bool> visited(n, false);

  std::vector<ActorId> stack;
  q[0] = Rational{1};
  visited[0] = true;
  stack.push_back(ActorId{0});

  while (!stack.empty()) {
    const ActorId a = stack.back();
    stack.pop_back();
    auto relax = [&](EdgeId eid) {
      const Edge& e = graph.edge(eid);
      const auto prod = static_cast<std::int64_t>(e.tokens_per_src_cycle());
      const auto cons = static_cast<std::int64_t>(e.tokens_per_dst_cycle());
      if (prod == 0 || cons == 0) return true;  // degenerate, checked later
      const ActorId src = e.src;
      const ActorId dst = e.dst;
      // Balance: q[src] * prod == q[dst] * cons.
      if (visited[src.value()] && !visited[dst.value()]) {
        q[dst.value()] = q[src.value()] * Rational{prod, cons};
        visited[dst.value()] = true;
        stack.push_back(dst);
      } else if (visited[dst.value()] && !visited[src.value()]) {
        q[src.value()] = q[dst.value()] * Rational{cons, prod};
        visited[src.value()] = true;
        stack.push_back(src);
      }
      return true;
    };
    for (const EdgeId eid : graph.out_edges(a)) relax(eid);
    for (const EdgeId eid : graph.in_edges(a)) relax(eid);
  }

  // Disconnected graphs have no single iteration notion.
  if (!std::all_of(visited.begin(), visited.end(), [](bool v) { return v; })) {
    return std::nullopt;
  }

  // Verify all balance equations (catches inconsistent cycles).
  for (const EdgeId eid : graph.edge_ids()) {
    const Edge& e = graph.edge(eid);
    const auto prod = static_cast<std::int64_t>(e.tokens_per_src_cycle());
    const auto cons = static_cast<std::int64_t>(e.tokens_per_dst_cycle());
    if (q[e.src.value()] * Rational{prod} !=
        q[e.dst.value()] * Rational{cons}) {
      return std::nullopt;
    }
  }

  // Scale to the minimal positive integral vector.
  std::int64_t den_lcm = 1;
  for (const Rational& r : q) den_lcm = lcm64(den_lcm, r.den());
  std::int64_t num_gcd = 0;
  std::vector<std::int64_t> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = (q[i] * Rational{den_lcm}).to_integer();
    require(scaled[i] > 0, "repetition vector entry must be positive");
    num_gcd = gcd64(num_gcd, scaled[i]);
  }

  RepetitionVector rv;
  rv.cycles.resize(n);
  rv.firings.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    rv.cycles[i] = static_cast<std::uint64_t>(scaled[i] / num_gcd);
    rv.firings[i] =
        rv.cycles[i] *
        graph.actor(ActorId{static_cast<ActorId::value_type>(i)})
            .phase_count();
  }
  return rv;
}

bool is_consistent(const Graph& graph) {
  return repetition_vector(graph).has_value();
}

std::uint64_t min_period_bound_ps(const Graph& graph,
                                  const RepetitionVector& rv) {
  require(rv.cycles.size() == graph.actor_count(),
          "repetition vector does not match graph");
  std::uint64_t bound = 0;
  for (const ActorId a : graph.actor_ids()) {
    bound = std::max(bound,
                     rv.cycles[a.value()] * graph.actor(a).cycle_wcet_ps());
  }
  return bound;
}

std::uint64_t tokens_per_iteration(const Graph& graph,
                                   const RepetitionVector& rv, EdgeId edge) {
  const Edge& e = graph.edge(edge);
  return rv.cycles[e.src.value()] * e.tokens_per_src_cycle();
}

}  // namespace rtsm::csdf
