#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace rtsm::csdf {

/// An actor of a Cyclo-Static Dataflow graph.
///
/// An actor cycles through its phases; firing phase k takes wcet_ps[k]
/// picoseconds, consumes the phase-k tokens of every input edge and produces
/// the phase-k tokens of every output edge. Actors execute sequentially
/// (no auto-concurrency), matching a process bound to a single tile.
struct Actor {
  std::string name;
  /// Worst-case execution time per phase, picoseconds.
  std::vector<std::uint64_t> wcet_ps;

  [[nodiscard]] std::size_t phase_count() const { return wcet_ps.size(); }
  [[nodiscard]] std::uint64_t cycle_wcet_ps() const;
};

/// A FIFO edge of a CSDF graph.
///
/// production[k] tokens are appended when the source completes its phase-k
/// firing; consumption[k] tokens are removed when the destination starts its
/// phase-k firing. A finite capacity models a bounded buffer: space for the
/// produced tokens is reserved when the producer *starts* a firing
/// (conservative buffer semantics, as required for guaranteed QoS).
struct Edge {
  std::string name;
  ActorId src;
  ActorId dst;
  /// Tokens produced per source phase (length = src phase count).
  std::vector<std::uint32_t> production;
  /// Tokens consumed per destination phase (length = dst phase count).
  std::vector<std::uint32_t> consumption;
  /// Tokens present before execution starts.
  std::uint32_t initial_tokens = 0;
  /// FIFO capacity in tokens; nullopt = unbounded.
  std::optional<std::uint32_t> capacity;

  [[nodiscard]] std::uint64_t tokens_per_src_cycle() const;
  [[nodiscard]] std::uint64_t tokens_per_dst_cycle() const;
  /// Largest single-phase production (a lower bound on a usable capacity).
  [[nodiscard]] std::uint32_t max_production() const;
  /// Largest single-phase consumption.
  [[nodiscard]] std::uint32_t max_consumption() const;
};

/// A Cyclo-Static Dataflow graph (Bilsen et al. [2]).
class Graph {
 public:
  /// Adds an actor with per-phase WCETs in picoseconds.
  ActorId add_actor(std::string name, std::vector<std::uint64_t> wcet_ps);

  /// Adds an edge; phase vector lengths must match the endpoint actors.
  EdgeId add_edge(Edge edge);

  [[nodiscard]] std::size_t actor_count() const { return actors_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const Actor& actor(ActorId id) const;
  [[nodiscard]] const Edge& edge(EdgeId id) const;

  /// Mutable access for capacity assignment during buffer sizing.
  void set_capacity(EdgeId id, std::optional<std::uint32_t> capacity);

  [[nodiscard]] const std::vector<EdgeId>& in_edges(ActorId id) const;
  [[nodiscard]] const std::vector<EdgeId>& out_edges(ActorId id) const;

  [[nodiscard]] std::vector<ActorId> actor_ids() const;
  [[nodiscard]] std::vector<EdgeId> edge_ids() const;

  /// Actor id by name; throws rtsm::Error if absent.
  [[nodiscard]] ActorId actor_by_name(const std::string& name) const;

 private:
  void check_actor(ActorId id) const;
  void check_edge(EdgeId id) const;

  std::vector<Actor> actors_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> in_;
  std::vector<std::vector<EdgeId>> out_;
};

}  // namespace rtsm::csdf
