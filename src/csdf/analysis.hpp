#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "csdf/graph.hpp"

namespace rtsm::csdf {

/// Result of solving the CSDF balance equations.
struct RepetitionVector {
  /// Minimal positive number of full phase-cycles each actor executes per
  /// graph iteration (indexed by actor id).
  std::vector<std::uint64_t> cycles;

  /// cycles[a] * phase_count(a): individual firings per iteration.
  std::vector<std::uint64_t> firings;
};

/// Solves the balance equations q_src * prod_cycle(e) = q_dst * cons_cycle(e).
///
/// Returns nullopt when the graph is inconsistent (no non-trivial solution)
/// or not weakly connected across rate-carrying edges. The minimal integral
/// solution is computed exactly with rational arithmetic.
[[nodiscard]] std::optional<RepetitionVector> repetition_vector(
    const Graph& graph);

/// True when a repetition vector exists.
[[nodiscard]] bool is_consistent(const Graph& graph);

/// Structural lower bound on the achievable iteration period, picoseconds:
/// every actor is sequential, so one iteration cannot complete faster than
/// the busiest actor's total work, max_a cycles[a] * cycle_wcet(a).
[[nodiscard]] std::uint64_t min_period_bound_ps(const Graph& graph,
                                                const RepetitionVector& rv);

/// Total tokens transported over @p edge per graph iteration.
[[nodiscard]] std::uint64_t tokens_per_iteration(const Graph& graph,
                                                 const RepetitionVector& rv,
                                                 EdgeId edge);

}  // namespace rtsm::csdf
