#include "baselines/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "baselines/design_time_adapter.hpp"
#include "core/channel_routing.hpp"
#include "core/cost.hpp"
#include "core/resource_state.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rtsm::baselines {

namespace {

using core::Mapping;
using core::ResourceState;

struct Option {
  ImplementationId impl;
  TileId tile;
};

/// All adequate (implementation, tile) pairs of a process whose raw
/// utilisation could ever pass verification.
std::vector<Option> options_of(const kpn::Application& app,
                               const arch::Platform& platform, ProcessId pid) {
  std::vector<Option> result;
  const kpn::Process& p = app.process(pid);
  for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
    const ImplementationId impl{static_cast<ImplementationId::value_type>(ii)};
    TileTypeId type;
    try {
      type = platform.type_by_name(p.implementations[ii].tile_type);
    } catch (const Error&) {
      continue;
    }
    if (core::impl_utilization(app, pid, impl,
                               platform.tile_type(type).clock_hz) > 1.0) {
      continue;
    }
    for (const TileId tile : platform.tiles_of_type(type)) {
      result.push_back(Option{impl, tile});
    }
  }
  return result;
}

double estimated_energy(const kpn::Application& app,
                        const arch::Platform& platform, const Mapping& mapping,
                        const energy::EnergyModel& energy) {
  double total = core::processing_energy_nj_per_symbol(app, mapping);
  total += core::placement_cost(app, platform, mapping,
                                core::CommCostModel::EnergyWeighted, energy);
  return total;
}

}  // namespace

AnnealingResult anneal_map(const kpn::Application& app,
                           const arch::Platform& platform,
                           const AnnealingOptions& options) {
  app.validate();
  Rng rng(options.seed);

  AnnealingResult result;
  result.mapping = Mapping(app.process_count(), app.channel_count());

  ResourceState state(platform);
  Mapping current(app.process_count(), app.channel_count());

  // Fixtures first; movable process option lists next.
  std::vector<ProcessId> movable;
  for (const ProcessId pid : app.process_ids()) {
    const kpn::Process& p = app.process(pid);
    if (!p.is_fixture()) {
      movable.push_back(pid);
      continue;
    }
    const TileId tile = platform.tile_by_name(*p.pinned_tile);
    const std::string& type_name =
        platform.tile_type(platform.tile(tile).type).name;
    for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
      if (p.implementations[ii].tile_type != type_name) continue;
      const ImplementationId impl{
          static_cast<ImplementationId::value_type>(ii)};
      const double util = core::claimed_utilization(core::impl_utilization(
          app, pid, impl, platform.tile_clock_hz(tile)));
      state.reserve_tile(tile, util, p.implementations[ii].memory_bytes);
      current.assign(pid, impl, tile);
      break;
    }
    if (!current.is_assigned(pid)) {
      result.failure = "fixture '" + p.name + "' cannot bind its pinned tile";
      return result;
    }
  }

  std::vector<std::vector<Option>> option_lists(app.process_count());
  for (const ProcessId pid : movable) {
    option_lists[pid.value()] = options_of(app, platform, pid);
    if (option_lists[pid.value()].empty()) {
      result.failure =
          "process '" + app.process(pid).name + "' has no feasible option";
      return result;
    }
  }

  auto load_of = [&](ProcessId pid, const Option& opt) {
    const double util = core::claimed_utilization(core::impl_utilization(
        app, pid, opt.impl, platform.tile_clock_hz(opt.tile)));
    return std::pair<double, std::uint64_t>(
        util, app.implementation(pid, opt.impl).memory_bytes);
  };

  // Random adequate initial configuration (rejection sampling). Seed the
  // most constrained processes first: a process whose only options are a
  // few single-context accelerator tiles (e.g. the MONTIUM-only kernels)
  // must claim them before flexible processes randomly squat on them.
  std::vector<ProcessId> seed_order = movable;
  std::stable_sort(seed_order.begin(), seed_order.end(),
                   [&](ProcessId a, ProcessId b) {
                     return option_lists[a.value()].size() <
                            option_lists[b.value()].size();
                   });
  for (const ProcessId pid : seed_order) {
    bool placed = false;
    for (int attempt = 0; attempt < 256 && !placed; ++attempt) {
      const auto& opts = option_lists[pid.value()];
      const Option& opt = opts[rng.pick_index(opts.size())];
      const auto [util, mem] = load_of(pid, opt);
      if (!state.tile_fits(opt.tile, util, mem)) continue;
      state.reserve_tile(opt.tile, util, mem);
      current.assign(pid, opt.impl, opt.tile);
      placed = true;
    }
    if (!placed) {
      result.failure = "could not seed an adherent random configuration";
      return result;
    }
  }

  double current_cost =
      estimated_energy(app, platform, current, options.energy);
  Mapping best = current;
  double best_cost = current_cost;

  const double t0 = options.temperature_start;
  const double t1 = options.temperature_end;
  for (std::uint64_t it = 0; it < options.iterations; ++it) {
    const double progress =
        options.iterations <= 1
            ? 1.0
            : static_cast<double>(it) /
                  static_cast<double>(options.iterations - 1);
    const double temperature = t0 * std::pow(t1 / t0, progress);

    const ProcessId pid = movable[rng.pick_index(movable.size())];
    const auto& opts = option_lists[pid.value()];
    const Option& opt = opts[rng.pick_index(opts.size())];
    const ImplementationId old_impl = current.impl_of(pid);
    const TileId old_tile = current.tile_of(pid);
    if (opt.impl == old_impl && opt.tile == old_tile) continue;

    const auto [old_util, old_mem] =
        load_of(pid, Option{old_impl, old_tile});
    const auto [new_util, new_mem] = load_of(pid, opt);
    state.release_tile(old_tile, old_util, old_mem);
    if (!state.tile_fits(opt.tile, new_util, new_mem)) {
      state.reserve_tile(old_tile, old_util, old_mem);
      continue;
    }

    current.assign(pid, opt.impl, opt.tile);
    const double cost =
        estimated_energy(app, platform, current, options.energy);
    const double delta = cost - current_cost;
    if (delta <= 0.0 ||
        rng.uniform01() < std::exp(-delta / std::max(temperature, 1e-9))) {
      state.reserve_tile(opt.tile, new_util, new_mem);
      current_cost = cost;
      ++result.accepted_moves;
      if (cost < best_cost) {
        best_cost = cost;
        best = current;
      }
    } else {
      current.assign(pid, old_impl, old_tile);
      state.reserve_tile(old_tile, old_util, old_mem);
    }
  }

  // Route and optionally verify the best configuration found.
  ResourceState final_state(platform);
  for (const ProcessId pid : app.process_ids()) {
    const auto [util, mem] =
        load_of(pid, Option{best.impl_of(pid), best.tile_of(pid)});
    final_state.reserve_tile(best.tile_of(pid), util, mem);
  }
  const core::FeedbackSet no_feedback;
  core::MappingTrace::Round scratch;
  core::MappingContext ctx{app,    platform,       final_state, no_feedback,
                           options.energy, best,   scratch,
                           options.engine.get()};
  const core::Step3Outcome s3 = core::run_step3(ctx);
  if (!s3.success) {
    result.failure = "annealed placement unroutable: " + s3.failure;
    return result;
  }
  if (options.verify_step4) {
    const core::FeasibilityReport report = core::run_step4(ctx, options.step4);
    if (!report.feasible) {
      result.failure = "annealed placement infeasible: " + report.failure;
      return result;
    }
  }

  result.success = true;
  result.mapping = std::move(best);
  result.energy_nj_per_symbol = core::total_energy_nj_per_symbol(
      app, platform, result.mapping, options.energy);
  return result;
}

std::string AnnealingMapper::describe() const {
  return "design-time simulated annealing over (implementation, tile) "
         "configurations with Metropolis acceptance on estimated energy";
}

core::MappingResult AnnealingMapper::map(
    const kpn::Application& app, const core::ResourceState& base) const {
  AnnealingResult annealed = anneal_map(app, base.platform(), options_);
  return detail::screen_design_time_plan(
      base, app, annealed.success, std::move(annealed.mapping),
      annealed.energy_nj_per_symbol, std::move(annealed.failure));
}

}  // namespace rtsm::baselines
