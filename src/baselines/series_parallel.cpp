#include "baselines/series_parallel.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "baselines/residual_placement.hpp"
#include "core/cost.hpp"

namespace rtsm::baselines {

namespace {

using core::Mapping;
using core::ResourceState;

/// A maximal series chain of movable processes (order = stream order).
struct Chain {
  std::vector<ProcessId> members;
  /// Smallest utilisation any implementation of each member could claim,
  /// summed — the chain's irreducible demand, used to place heavy chains
  /// while the mesh is still empty.
  double demand = 0.0;
};

/// Movable in/out degree of @p pid, counting only edges between movable
/// processes (fixtures are pinned and do not constrain chain shape).
std::uint32_t movable_degree(const kpn::Application& app, ProcessId pid,
                             bool out) {
  std::uint32_t n = 0;
  for (const ChannelId cid :
       out ? app.out_channels(pid) : app.in_channels(pid)) {
    const kpn::Channel& ch = app.channel(cid);
    const ProcessId other = out ? ch.dst : ch.src;
    if (!app.process(other).is_fixture()) ++n;
  }
  return n;
}

/// Decomposes the movable subgraph into maximal series chains: a chain
/// starts at a process that is not the unique successor of a unique
/// predecessor, and extends while the next process has exactly one movable
/// predecessor and the current one exactly one movable successor.
std::vector<Chain> decompose(const kpn::Application& app,
                             const arch::Platform& platform) {
  std::vector<Chain> chains;
  std::vector<bool> done(app.process_count(), false);

  auto min_demand = [&](ProcessId pid) {
    double best = 1.0;
    const kpn::Process& p = app.process(pid);
    for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
      TileTypeId type;
      try {
        type = platform.type_by_name(p.implementations[ii].tile_type);
      } catch (const Error&) {
        continue;
      }
      const ImplementationId impl{
          static_cast<ImplementationId::value_type>(ii)};
      best = std::min(best, core::impl_utilization(
                                app, pid, impl,
                                platform.tile_type(type).clock_hz));
    }
    return best;
  };

  auto next_in_series = [&](ProcessId pid) -> std::optional<ProcessId> {
    if (movable_degree(app, pid, /*out=*/true) != 1) return std::nullopt;
    for (const ChannelId cid : app.out_channels(pid)) {
      const ProcessId dst = app.channel(cid).dst;
      if (app.process(dst).is_fixture()) continue;
      if (done[dst.value()]) return std::nullopt;
      if (movable_degree(app, dst, /*out=*/false) != 1) return std::nullopt;
      return dst;
    }
    return std::nullopt;
  };

  // Chain heads first (processes that cannot extend a series run), then a
  // sweep over whatever remains (cycles of pure series processes).
  for (const bool heads_only : {true, false}) {
    for (const ProcessId pid : app.process_ids()) {
      if (app.process(pid).is_fixture() || done[pid.value()]) continue;
      if (heads_only) {
        const bool is_head = movable_degree(app, pid, /*out=*/false) != 1;
        if (!is_head) continue;
      }
      Chain chain;
      ProcessId cur = pid;
      while (true) {
        done[cur.value()] = true;
        chain.members.push_back(cur);
        chain.demand += min_demand(cur);
        const auto next = next_in_series(cur);
        if (!next) break;
        cur = *next;
      }
      chains.push_back(std::move(chain));
    }
  }
  std::stable_sort(chains.begin(), chains.end(),
                   [](const Chain& a, const Chain& b) {
                     return a.demand > b.demand;
                   });
  return chains;
}

/// Places the members of @p chain in series order: the head next to its
/// already-placed neighbours (or on the cheapest tile), every later member
/// as close to its predecessor as possible. @p energy_first picks the
/// lower-energy implementation among equally close tiles; the fallback
/// profile prefers the fastest.
bool place_chain(const kpn::Application& app, ResourceState& state,
                 Mapping& mapping, const Chain& chain, bool energy_first,
                 const detail::ScarcityMap& scarcity, std::string& failure) {
  std::optional<TileId> prev;
  for (const ProcessId pid : chain.members) {
    std::optional<detail::Candidate> best;
    double best_score = std::numeric_limits<double>::infinity();
    detail::for_each_candidate(
        app, state, pid, [&](const detail::Candidate& c) {
          double dist = 0.0;
          if (prev) {
            dist = detail::hop_distance(state.platform(), c.tile, *prev);
          } else {
            // Head: stay close to placed neighbours (e.g. a fixture the
            // chain hangs off), spread otherwise.
            for (const ChannelId cid : app.in_channels(pid)) {
              const ProcessId src = app.channel(cid).src;
              if (mapping.is_assigned(src)) {
                dist += detail::hop_distance(state.platform(), c.tile,
                                             mapping.tile_of(src));
              }
            }
          }
          // Distance dominates; the secondary objective breaks ties.
          const double secondary = energy_first
                                       ? c.energy_nj + c.exec_ns * 1e-6
                                       : c.exec_ns + c.energy_nj * 1e-6;
          double score = dist * 1e9 + secondary;
          if (scarcity.would_starve(app, state, mapping, pid, c.type)) {
            score += 1e15;  // last resort only: would strand a later process
          }
          if (score < best_score) {
            best_score = score;
            best = c;
          }
        });
    if (!best) {
      failure = "process '" + app.process(pid).name +
                "' has no feasible placement left";
      return false;
    }
    state.reserve_tile(best->tile, best->raw_util,
                       app.implementation(pid, best->impl).memory_bytes);
    mapping.assign(pid, best->impl, best->tile);
    prev = best->tile;
  }
  return true;
}

}  // namespace

std::string SeriesParallelMapper::describe() const {
  return "series-parallel decomposition: maximal series chains placed "
         "contiguously on the mesh, heaviest chain first";
}

core::MappingResult SeriesParallelMapper::map(
    const kpn::Application& app, const core::ResourceState& base) const {
  return map(app, base, nullptr);
}

core::MappingResult SeriesParallelMapper::map(
    const kpn::Application& app, const core::ResourceState& base,
    const core::CancelToken* cancel) const {
  app.validate();
  core::MappingResult result;
  result.mapping = Mapping(app.process_count(), app.channel_count());

  const std::vector<Chain> chains = decompose(app, base.platform());

  for (const bool energy_first : {true, false}) {
    if (cancel != nullptr && cancel->stop_requested()) {
      result.cancelled = true;
      result.failure = "cancelled";
      return result;
    }
    ++result.rounds;
    ResourceState state = base;
    Mapping mapping(app.process_count(), app.channel_count());
    std::string failure = detail::bind_fixtures(app, state, mapping);
    if (!failure.empty()) {
      result.failure = failure;
      return result;
    }
    const detail::ScarcityMap scarcity(app, state);
    bool ok = true;
    for (const Chain& chain : chains) {
      if (!place_chain(app, state, mapping, chain, energy_first, scarcity,
                       failure)) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      result.failure = failure;
      continue;
    }
    if (detail::finish_residual_plan(app, state, mapping, options_.energy,
                                     options_.verify_step4, options_.step4,
                                     options_.engine.get(), cancel, result)) {
      return result;
    }
  }
  if (result.failure.empty()) result.failure = "no profile produced a plan";
  return result;
}

}  // namespace rtsm::baselines
