#pragma once

#include <memory>
#include <string>

#include "arch/platform.hpp"
#include "core/feasibility.hpp"
#include "core/mapper.hpp"
#include "energy/model.hpp"
#include "kpn/application.hpp"
#include "verify/engine.hpp"

namespace rtsm::baselines {

/// Options of the HEFT/PEFT-style list scheduler.
struct ListSchedulerOptions {
  energy::EnergyModel energy;

  /// Nominal communication weight used in the upward rank, ns per byte
  /// transported per symbol (blends channel bytes into the execution-time
  /// rank; only the ordering matters).
  double comm_ns_per_byte = 0.5;

  /// Verify the result with the step-4 dataflow analysis.
  bool verify_step4 = true;
  core::FeasibilityOptions step4;

  /// Shared step-4 verification engine; null = private engine.
  std::shared_ptr<verify::Engine> engine;
};

/// HEFT/PEFT-style list scheduler (cf. Wilhelm & Pionteck's evaluator
/// baselines): processes are ordered by upward rank — mean execution time
/// plus the heaviest downstream chain — and greedily assigned the
/// (implementation, tile) pair with the earliest-finish-time-like score
/// against the *residual* state: execution time inflated by the tile's
/// current load, plus token-weighted hop cost to already-placed neighbours.
/// Unlike the design-time baselines it plans against the live residual
/// capacities directly, which is what makes it a useful portfolio entry.
/// Several scoring profiles (EFT, min-energy, fastest) are tried in order
/// until one routes and verifies.
class ListSchedulerMapper final : public core::Mapper {
 public:
  explicit ListSchedulerMapper(ListSchedulerOptions options = {})
      : options_(std::move(options)) {
    options_.engine = verify::ensure_engine(options_.verify_step4,
                                            std::move(options_.engine));
  }

  [[nodiscard]] std::string name() const override { return "list"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::shared_ptr<verify::Engine> verification_engine()
      const override {
    return options_.engine;
  }

  using core::Mapper::map;
  [[nodiscard]] core::MappingResult map(
      const kpn::Application& app,
      const core::ResourceState& base) const override;
  [[nodiscard]] core::MappingResult map(
      const kpn::Application& app, const core::ResourceState& base,
      const core::CancelToken* cancel) const override;

 private:
  ListSchedulerOptions options_;
};

}  // namespace rtsm::baselines
