#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "arch/platform.hpp"
#include "core/feasibility.hpp"
#include "core/mapper.hpp"
#include "core/mapping.hpp"
#include "energy/model.hpp"
#include "kpn/application.hpp"
#include "verify/engine.hpp"

namespace rtsm::baselines {

/// Options of the best-of-N random mapper.
struct RandomMapperOptions {
  std::uint32_t samples = 64;
  std::uint64_t seed = 1;
  energy::EnergyModel energy;

  /// Verify the winning sample with the step-4 dataflow analysis.
  bool verify_step4 = true;
  core::FeasibilityOptions step4;

  /// Shared step-4 verification engine (see core::MapperConfig::engine);
  /// null = verify without caching.
  std::shared_ptr<verify::Engine> engine;
};

/// Result of the random mapper.
struct RandomMapperResult {
  bool success = false;
  core::Mapping mapping{0, 0};
  double energy_nj_per_symbol = 0.0;
  std::uint32_t valid_samples = 0;
  std::string failure;
};

/// Naive comparator: draws N random adequate, capacity-respecting, routable
/// configurations and keeps the cheapest. The expected quality gap versus
/// the heuristic quantifies what the paper's desirability ordering and local
/// search actually buy.
[[nodiscard]] RandomMapperResult random_map(
    const kpn::Application& app, const arch::Platform& platform,
    const RandomMapperOptions& options = {});

/// Mapper-strategy adapter around random_map(). Plans against the idle
/// platform; fails when the best sample does not fit the residual state.
class RandomSamplingMapper final : public core::Mapper {
 public:
  explicit RandomSamplingMapper(RandomMapperOptions options = {})
      : options_(std::move(options)) {
    options_.engine = verify::ensure_engine(options_.verify_step4,
                                            std::move(options_.engine));
  }

  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::shared_ptr<verify::Engine> verification_engine()
      const override {
    return options_.engine;
  }

  using core::Mapper::map;
  [[nodiscard]] core::MappingResult map(
      const kpn::Application& app,
      const core::ResourceState& base) const override;

 private:
  RandomMapperOptions options_;
};

}  // namespace rtsm::baselines
