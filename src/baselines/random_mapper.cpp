#include "baselines/random_mapper.hpp"

#include <limits>

#include "baselines/design_time_adapter.hpp"
#include "core/channel_routing.hpp"
#include "core/cost.hpp"
#include "core/resource_state.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rtsm::baselines {

namespace {

using core::Mapping;
using core::ResourceState;

}  // namespace

RandomMapperResult random_map(const kpn::Application& app,
                              const arch::Platform& platform,
                              const RandomMapperOptions& options) {
  app.validate();
  Rng rng(options.seed);

  RandomMapperResult result;
  result.mapping = Mapping(app.process_count(), app.channel_count());
  double best_energy = std::numeric_limits<double>::infinity();
  ResourceState best_state(platform);

  for (std::uint32_t sample = 0; sample < options.samples; ++sample) {
    ResourceState state(platform);
    Mapping mapping(app.process_count(), app.channel_count());
    bool ok = true;

    for (const ProcessId pid : app.process_ids()) {
      const kpn::Process& p = app.process(pid);

      if (p.is_fixture()) {
        const TileId tile = platform.tile_by_name(*p.pinned_tile);
        const std::string& type_name =
            platform.tile_type(platform.tile(tile).type).name;
        bool bound = false;
        for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
          if (p.implementations[ii].tile_type != type_name) continue;
          const ImplementationId impl{
              static_cast<ImplementationId::value_type>(ii)};
          const double util = core::claimed_utilization(core::impl_utilization(
              app, pid, impl, platform.tile_clock_hz(tile)));
          if (!state.tile_fits(tile, util,
                               p.implementations[ii].memory_bytes)) {
            break;
          }
          state.reserve_tile(tile, util, p.implementations[ii].memory_bytes);
          mapping.assign(pid, impl, tile);
          bound = true;
          break;
        }
        if (!bound) {
          ok = false;
          break;
        }
        continue;
      }

      bool placed = false;
      for (int attempt = 0; attempt < 128 && !placed; ++attempt) {
        const std::size_t ii = rng.pick_index(p.implementations.size());
        const kpn::Implementation& im = p.implementations[ii];
        TileTypeId type;
        try {
          type = platform.type_by_name(im.tile_type);
        } catch (const Error&) {
          continue;
        }
        const ImplementationId impl{
            static_cast<ImplementationId::value_type>(ii)};
        const double raw_util = core::impl_utilization(
            app, pid, impl, platform.tile_type(type).clock_hz);
        if (raw_util > 1.0) continue;
        const auto tiles = platform.tiles_of_type(type);
        if (tiles.empty()) continue;
        const TileId tile = tiles[rng.pick_index(tiles.size())];
        if (!state.tile_fits(tile, raw_util, im.memory_bytes)) continue;
        state.reserve_tile(tile, raw_util, im.memory_bytes);
        mapping.assign(pid, impl, tile);
        placed = true;
      }
      if (!placed) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;

    const core::FeedbackSet no_feedback;
    core::MappingTrace::Round scratch;
    core::MappingContext ctx{app,    platform, state,  no_feedback,
                             options.energy,   mapping, scratch};
    const core::Step3Outcome s3 = core::run_step3(ctx);
    if (!s3.success) continue;

    ++result.valid_samples;
    const double energy = core::total_energy_nj_per_symbol(
        app, platform, mapping, options.energy);
    if (energy < best_energy) {
      best_energy = energy;
      result.mapping = mapping;
      best_state = state;
      result.success = true;
    }
  }

  if (!result.success) {
    result.failure = "no routable random configuration found";
    return result;
  }

  if (options.verify_step4) {
    const core::FeedbackSet no_feedback;
    core::MappingTrace::Round scratch;
    core::MappingContext ctx{app,            platform,  best_state,
                             no_feedback,    options.energy,
                             result.mapping, scratch,
                             options.engine.get()};
    const core::FeasibilityReport report = core::run_step4(ctx, options.step4);
    if (!report.feasible) {
      result.success = false;
      result.failure = "best random sample infeasible: " + report.failure;
      return result;
    }
  }
  result.energy_nj_per_symbol = best_energy;
  return result;
}

std::string RandomSamplingMapper::describe() const {
  return "best-of-N random sampling over adequate, capacity-respecting, "
         "routable configurations";
}

core::MappingResult RandomSamplingMapper::map(
    const kpn::Application& app, const core::ResourceState& base) const {
  RandomMapperResult sampled = random_map(app, base.platform(), options_);
  return detail::screen_design_time_plan(
      base, app, sampled.success, std::move(sampled.mapping),
      sampled.energy_nj_per_symbol, std::move(sampled.failure));
}

}  // namespace rtsm::baselines
