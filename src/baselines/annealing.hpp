#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "arch/platform.hpp"
#include "core/feasibility.hpp"
#include "core/mapper.hpp"
#include "core/mapping.hpp"
#include "energy/model.hpp"
#include "kpn/application.hpp"
#include "verify/engine.hpp"

namespace rtsm::baselines {

/// Options of the simulated-annealing mapper.
struct AnnealingOptions {
  std::uint64_t iterations = 20'000;
  double temperature_start = 60.0;
  double temperature_end = 0.05;
  std::uint64_t seed = 1;

  energy::EnergyModel energy;

  /// Verify the final configuration with the step-4 dataflow analysis.
  bool verify_step4 = true;
  core::FeasibilityOptions step4;

  /// Shared step-4 verification engine (see core::MapperConfig::engine);
  /// null = verify without caching.
  std::shared_ptr<verify::Engine> engine;
};

/// Result of the annealing run.
struct AnnealingResult {
  bool success = false;
  core::Mapping mapping{0, 0};
  double energy_nj_per_symbol = 0.0;
  std::uint64_t accepted_moves = 0;
  std::string failure;
};

/// Classic design-time comparator: simulated annealing over the joint
/// (implementation, tile) configuration with Metropolis acceptance on the
/// estimated energy (processing + Manhattan communication), capacity
/// feasibility enforced on every move, followed by routing and optional
/// dataflow verification of the best configuration.
[[nodiscard]] AnnealingResult anneal_map(const kpn::Application& app,
                                         const arch::Platform& platform,
                                         const AnnealingOptions& options = {});

/// Mapper-strategy adapter around anneal_map(). Annealing is a design-time
/// method: it plans against the idle platform; when the plan does not fit
/// the residual resources of @p base the request fails instead of
/// over-subscribing tiles.
class AnnealingMapper final : public core::Mapper {
 public:
  explicit AnnealingMapper(AnnealingOptions options = {})
      : options_(std::move(options)) {
    options_.engine = verify::ensure_engine(options_.verify_step4,
                                            std::move(options_.engine));
  }

  [[nodiscard]] std::string name() const override { return "annealing"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::shared_ptr<verify::Engine> verification_engine()
      const override {
    return options_.engine;
  }

  using core::Mapper::map;
  [[nodiscard]] core::MappingResult map(
      const kpn::Application& app,
      const core::ResourceState& base) const override;

 private:
  AnnealingOptions options_;
};

}  // namespace rtsm::baselines
