#pragma once

#include "core/mapper_registry.hpp"

namespace rtsm::baselines {

/// Registers the paper's run-time mapper ("spatial"), the four design-time
/// baselines ("annealing", "clustering", "exhaustive", "random") and the
/// three residual-state portfolio entries ("list", "series-parallel",
/// "genetic"), each with default options, into @p registry.
void register_builtin_mappers(core::MapperRegistry& registry);

/// Registry preloaded with all eight built-in mappers.
[[nodiscard]] core::MapperRegistry builtin_mappers();

}  // namespace rtsm::baselines
