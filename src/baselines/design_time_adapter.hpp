#pragma once

#include <string>
#include <utility>

#include "core/mapper.hpp"

namespace rtsm::baselines::detail {

/// Shared tail of every design-time Mapper adapter: wraps an algorithm's
/// (success, mapping, energy, failure) outcome into a MappingResult and
/// screens the plan — made against the idle platform — with mapping_fits()
/// so it can never over-subscribe the residual state.
inline core::MappingResult screen_design_time_plan(
    const core::ResourceState& base, const kpn::Application& app, bool success,
    core::Mapping mapping, double energy_nj_per_symbol, std::string failure) {
  core::MappingResult result;
  result.rounds = 1;
  result.mapping = std::move(mapping);
  result.energy_nj_per_symbol = energy_nj_per_symbol;
  if (!success) {
    result.failure = std::move(failure);
    return result;
  }
  if (!core::mapping_fits(base, app, result.mapping)) {
    result.failure = "design-time plan does not fit the residual resources";
    return result;
  }
  result.success = true;
  return result;
}

}  // namespace rtsm::baselines::detail
