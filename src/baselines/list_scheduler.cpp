#include "baselines/list_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "baselines/residual_placement.hpp"
#include "core/cost.hpp"

namespace rtsm::baselines {

namespace {

using core::Mapping;
using core::ResourceState;

/// Mean execution time of @p pid across its implementations, on the fastest
/// clock of each implementation's tile type, ns. Processes with no usable
/// implementation rank as 0 (they fail placement later with a message).
double mean_exec_ns(const kpn::Application& app, const arch::Platform& platform,
                    ProcessId pid) {
  const kpn::Process& p = app.process(pid);
  double sum = 0.0;
  std::uint32_t usable = 0;
  for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
    TileTypeId type;
    try {
      type = platform.type_by_name(p.implementations[ii].tile_type);
    } catch (const Error&) {
      continue;
    }
    const ImplementationId impl{static_cast<ImplementationId::value_type>(ii)};
    sum += core::impl_time_per_symbol_ns(app, pid, impl,
                                         platform.tile_type(type).clock_hz);
    ++usable;
  }
  return usable == 0 ? 0.0 : sum / usable;
}

/// Upward ranks over the (possibly cyclic) KPN digraph: memoized DFS with
/// on-stack detection — a back edge contributes 0, so the recursion
/// terminates and the rank still reflects every acyclic downstream chain.
class UpwardRank {
 public:
  UpwardRank(const kpn::Application& app, const arch::Platform& platform,
             double comm_ns_per_byte)
      : app_(app),
        platform_(platform),
        comm_ns_per_byte_(comm_ns_per_byte),
        rank_(app.process_count(), -1.0),
        on_stack_(app.process_count(), false) {}

  double of(ProcessId pid) {
    const std::size_t i = pid.value();
    if (rank_[i] >= 0.0) return rank_[i];
    if (on_stack_[i]) return 0.0;  // back edge of a cycle
    on_stack_[i] = true;
    double down = 0.0;
    for (const ChannelId cid : app_.out_channels(pid)) {
      const kpn::Channel& ch = app_.channel(cid);
      const double comm = comm_ns_per_byte_ *
                          static_cast<double>(ch.tokens_per_symbol) *
                          static_cast<double>(ch.token_bytes);
      down = std::max(down, comm + of(ch.dst));
    }
    on_stack_[i] = false;
    rank_[i] = mean_exec_ns(app_, platform_, pid) + down;
    return rank_[i];
  }

 private:
  const kpn::Application& app_;
  const arch::Platform& platform_;
  double comm_ns_per_byte_;
  std::vector<double> rank_;
  std::vector<bool> on_stack_;
};

/// Scoring profiles tried in order until one plan routes and verifies.
enum class Profile { EarliestFinish, MinEnergy, Fastest };

/// One greedy list-scheduling pass under @p profile; true when every
/// movable process was placed.
bool place_all(const kpn::Application& app, ResourceState& state,
               Mapping& mapping, const std::vector<ProcessId>& order,
               Profile profile, const energy::EnergyModel& energy,
               const detail::ScarcityMap& scarcity, std::string& failure) {
  for (const ProcessId pid : order) {
    std::optional<detail::Candidate> best;
    double best_score = std::numeric_limits<double>::infinity();
    detail::for_each_candidate(
        app, state, pid, [&](const detail::Candidate& c) {
          double score = 0.0;
          switch (profile) {
            case Profile::EarliestFinish: {
              // EFT proxy: execution inflated by the tile's current load,
              // plus token-weighted hop cost to placed neighbours.
              score = c.exec_ns * (1.0 + state.utilization(c.tile));
              auto comm_to = [&](ChannelId cid, ProcessId other) {
                if (!mapping.is_assigned(other)) return;
                const std::uint32_t hops = detail::hop_distance(
                    state.platform(), c.tile, mapping.tile_of(other));
                score += core::channel_cost(app.channel(cid), hops,
                                            core::CommCostModel::TokenWeighted,
                                            energy);
              };
              for (const ChannelId cid : app.in_channels(pid)) {
                comm_to(cid, app.channel(cid).src);
              }
              for (const ChannelId cid : app.out_channels(pid)) {
                comm_to(cid, app.channel(cid).dst);
              }
              break;
            }
            case Profile::MinEnergy:
              score = c.energy_nj * 1e3 + c.exec_ns;
              break;
            case Profile::Fastest:
              score = c.exec_ns * 1e3 + c.energy_nj;
              break;
          }
          if (scarcity.would_starve(app, state, mapping, pid, c.type)) {
            score += 1e15;  // last resort only: would strand a later process
          }
          if (score < best_score) {
            best_score = score;
            best = c;
          }
        });
    if (!best) {
      failure = "process '" + app.process(pid).name +
                "' has no feasible placement left";
      return false;
    }
    state.reserve_tile(best->tile, best->raw_util,
                       app.implementation(pid, best->impl).memory_bytes);
    mapping.assign(pid, best->impl, best->tile);
  }
  return true;
}

}  // namespace

std::string ListSchedulerMapper::describe() const {
  return "HEFT/PEFT-style list scheduling: upward-rank order, earliest-"
         "finish-time tile choice against the residual state";
}

core::MappingResult ListSchedulerMapper::map(
    const kpn::Application& app, const core::ResourceState& base) const {
  return map(app, base, nullptr);
}

core::MappingResult ListSchedulerMapper::map(
    const kpn::Application& app, const core::ResourceState& base,
    const core::CancelToken* cancel) const {
  app.validate();
  core::MappingResult result;
  result.mapping = Mapping(app.process_count(), app.channel_count());

  // Rank once; the order is profile-independent.
  UpwardRank ranks(app, base.platform(), options_.comm_ns_per_byte);
  std::vector<ProcessId> order;
  for (const ProcessId pid : app.process_ids()) {
    if (!app.process(pid).is_fixture()) order.push_back(pid);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](ProcessId a, ProcessId b) {
                     return ranks.of(a) > ranks.of(b);
                   });

  for (const Profile profile :
       {Profile::EarliestFinish, Profile::MinEnergy, Profile::Fastest}) {
    if (cancel != nullptr && cancel->stop_requested()) {
      result.cancelled = true;
      result.failure = "cancelled";
      return result;
    }
    ++result.rounds;
    ResourceState state = base;
    Mapping mapping(app.process_count(), app.channel_count());
    std::string failure = detail::bind_fixtures(app, state, mapping);
    if (!failure.empty()) {
      result.failure = failure;
      return result;  // fixtures fail identically under every profile
    }
    const detail::ScarcityMap scarcity(app, state);
    if (!place_all(app, state, mapping, order, profile, options_.energy,
                   scarcity, failure)) {
      result.failure = failure;
      continue;
    }
    if (detail::finish_residual_plan(app, state, mapping, options_.energy,
                                     options_.verify_step4, options_.step4,
                                     options_.engine.get(), cancel, result)) {
      return result;
    }
  }
  if (result.failure.empty()) result.failure = "no profile produced a plan";
  return result;
}

}  // namespace rtsm::baselines
