#include "baselines/exhaustive.hpp"

#include <algorithm>
#include <limits>

#include "baselines/design_time_adapter.hpp"
#include "core/channel_routing.hpp"
#include "core/cost.hpp"
#include "core/resource_state.hpp"
#include "util/error.hpp"

namespace rtsm::baselines {

namespace {

using core::Mapping;
using core::ResourceState;

class Search {
 public:
  Search(const kpn::Application& app, const arch::Platform& platform,
         const ExhaustiveOptions& options)
      : app_(app), platform_(platform), options_(options), state_(platform),
        mapping_(app.process_count(), app.channel_count()) {
    for (const ProcessId pid : app_.process_ids()) {
      if (!app_.process(pid).is_fixture()) order_.push_back(pid);
    }
    // Suffix lower bounds on processing energy of unplaced processes.
    suffix_min_energy_.assign(order_.size() + 1, 0.0);
    for (std::size_t i = order_.size(); i-- > 0;) {
      double cheapest = std::numeric_limits<double>::infinity();
      for (const auto& im : app_.process(order_[i]).implementations) {
        cheapest = std::min(cheapest, im.energy_nj_per_symbol);
      }
      suffix_min_energy_[i] = suffix_min_energy_[i + 1] + cheapest;
    }
  }

  ExhaustiveResult run() {
    // Pre-assign fixtures.
    for (const ProcessId pid : app_.process_ids()) {
      const kpn::Process& p = app_.process(pid);
      if (!p.is_fixture()) continue;
      const TileId tile = platform_.tile_by_name(*p.pinned_tile);
      const std::string& type_name =
          platform_.tile_type(platform_.tile(tile).type).name;
      for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
        if (p.implementations[ii].tile_type != type_name) continue;
        const ImplementationId impl{
            static_cast<ImplementationId::value_type>(ii)};
        const double util = core::claimed_utilization(core::impl_utilization(
            app_, pid, impl, platform_.tile_clock_hz(tile)));
        state_.reserve_tile(tile, util, p.implementations[ii].memory_bytes);
        mapping_.assign(pid, impl, tile);
        break;
      }
      require(mapping_.is_assigned(pid),
              "exhaustive: fixture '" + p.name + "' has no implementation "
              "for its pinned tile");
    }
    descend(0, 0.0);
    result_.nodes = nodes_;
    result_.leaves = leaves_;
    return std::move(result_);
  }

 private:
  /// @p partial = processing energy of placed processes + comm energy of
  /// channels with both endpoints placed (a lower bound: unplaced channels
  /// can only add cost).
  void descend(std::size_t depth, double partial) {
    if (++nodes_ > options_.node_limit) {
      result_.exhausted_budget = true;
      return;
    }
    if (partial + suffix_min_energy_[depth] >=
        result_.energy_nj_per_symbol - 1e-12 && result_.success) {
      return;  // bound
    }
    if (depth == order_.size()) {
      evaluate_leaf(partial);
      return;
    }

    const ProcessId pid = order_[depth];
    const kpn::Process& p = app_.process(pid);
    for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
      const ImplementationId impl{
          static_cast<ImplementationId::value_type>(ii)};
      const kpn::Implementation& im = p.implementations[ii];

      TileTypeId type;
      try {
        type = platform_.type_by_name(im.tile_type);
      } catch (const Error&) {
        continue;
      }
      const double util = core::impl_utilization(
          app_, pid, impl, platform_.tile_type(type).clock_hz);
      if (util > 1.0) continue;  // can never pass verification

      for (const TileId tile : platform_.tiles_of_type(type)) {
        if (!state_.tile_fits(tile, util, im.memory_bytes)) continue;
        state_.reserve_tile(tile, util, im.memory_bytes);
        mapping_.assign(pid, impl, tile);

        double delta = im.energy_nj_per_symbol;
        for (const ChannelId cid : app_.in_channels(pid)) {
          const kpn::Channel& c = app_.channel(cid);
          if (mapping_.is_assigned(c.src)) {
            delta += options_.energy.comm_nj(
                c.tokens_per_symbol,
                platform_.manhattan(mapping_.tile_of(c.src), tile));
          }
        }
        for (const ChannelId cid : app_.out_channels(pid)) {
          const kpn::Channel& c = app_.channel(cid);
          if (mapping_.is_assigned(c.dst)) {
            delta += options_.energy.comm_nj(
                c.tokens_per_symbol,
                platform_.manhattan(tile, mapping_.tile_of(c.dst)));
          }
        }

        descend(depth + 1, partial + delta);

        mapping_.unassign(pid);
        state_.release_tile(tile, util, im.memory_bytes);
        if (result_.exhausted_budget) return;
      }
    }
  }

  void evaluate_leaf(double partial_estimate) {
    ++leaves_;
    (void)partial_estimate;
    // Route on a copy of the state so link reservations do not leak
    // between branches.
    ResourceState routed_state = state_;
    Mapping candidate = mapping_;
    const core::FeedbackSet no_feedback;
    core::MappingTrace::Round scratch;
    core::MappingContext ctx{app_,           platform_, routed_state,
                             no_feedback,    options_.energy,
                             candidate,      scratch,
                             options_.engine.get()};
    const core::Step3Outcome s3 = core::run_step3(ctx);
    if (!s3.success) return;

    const double energy = core::total_energy_nj_per_symbol(
        app_, platform_, candidate, options_.energy);
    if (result_.success && energy >= result_.energy_nj_per_symbol) return;

    if (options_.verify_step4) {
      const core::FeasibilityReport report =
          core::run_step4(ctx, options_.step4);
      if (!report.feasible) return;
    }

    result_.success = true;
    result_.energy_nj_per_symbol = energy;
    result_.mapping = candidate;
  }

  const kpn::Application& app_;
  const arch::Platform& platform_;
  const ExhaustiveOptions& options_;

  ResourceState state_;
  Mapping mapping_;
  std::vector<ProcessId> order_;
  std::vector<double> suffix_min_energy_;

  ExhaustiveResult result_{.success = false,
                           .exhausted_budget = false,
                           .mapping = Mapping{0, 0},
                           .energy_nj_per_symbol =
                               std::numeric_limits<double>::infinity(),
                           .nodes = 0,
                           .leaves = 0};
  std::uint64_t nodes_ = 0;
  std::uint64_t leaves_ = 0;
};

}  // namespace

ExhaustiveResult exhaustive_map(const kpn::Application& app,
                                const arch::Platform& platform,
                                const ExhaustiveOptions& options) {
  app.validate();
  Search search(app, platform, options);
  ExhaustiveResult result = search.run();
  if (!result.success) {
    result.energy_nj_per_symbol = 0.0;
  }
  return result;
}

std::string ExhaustiveMapper::describe() const {
  return "branch-and-bound enumeration of all adequate, capacity-respecting "
         "configurations; provably energy-optimal on small instances";
}

core::MappingResult ExhaustiveMapper::map(
    const kpn::Application& app, const core::ResourceState& base) const {
  ExhaustiveResult enumerated = exhaustive_map(app, base.platform(), options_);
  return detail::screen_design_time_plan(
      base, app, enumerated.success, std::move(enumerated.mapping),
      enumerated.energy_nj_per_symbol,
      enumerated.exhausted_budget
          ? "node limit exhausted before an adherent mapping"
          : "no adherent, routable mapping exists");
}

}  // namespace rtsm::baselines
