#pragma once

#include <memory>
#include <string>

#include "arch/platform.hpp"
#include "core/feasibility.hpp"
#include "core/mapper.hpp"
#include "energy/model.hpp"
#include "kpn/application.hpp"
#include "verify/engine.hpp"

namespace rtsm::baselines {

/// Options of the series-parallel decomposition mapper.
struct SeriesParallelOptions {
  energy::EnergyModel energy;

  /// Verify the result with the step-4 dataflow analysis.
  bool verify_step4 = true;
  core::FeasibilityOptions step4;

  /// Shared step-4 verification engine; null = private engine.
  std::shared_ptr<verify::Engine> engine;
};

/// Series-parallel decomposition mapper (after Wilhelm & Pionteck,
/// arXiv:2502.19745): the KPN digraph is decomposed into maximal series
/// chains (runs of single-in/single-out processes); chains are placed one
/// by one, heaviest demand first, each member on the feasible tile closest
/// to its predecessor — so a pipeline ends up contiguous on the mesh and
/// its channels stay short. Parallel branches become separate chains and
/// spread naturally. Plans against the residual state; two implementation-
/// choice profiles (min-energy, then fastest) are tried until one routes
/// and verifies.
class SeriesParallelMapper final : public core::Mapper {
 public:
  explicit SeriesParallelMapper(SeriesParallelOptions options = {})
      : options_(std::move(options)) {
    options_.engine = verify::ensure_engine(options_.verify_step4,
                                            std::move(options_.engine));
  }

  [[nodiscard]] std::string name() const override { return "series-parallel"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::shared_ptr<verify::Engine> verification_engine()
      const override {
    return options_.engine;
  }

  using core::Mapper::map;
  [[nodiscard]] core::MappingResult map(
      const kpn::Application& app,
      const core::ResourceState& base) const override;
  [[nodiscard]] core::MappingResult map(
      const kpn::Application& app, const core::ResourceState& base,
      const core::CancelToken* cancel) const override;

 private:
  SeriesParallelOptions options_;
};

}  // namespace rtsm::baselines
