#include "baselines/clustering.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>

#include "baselines/design_time_adapter.hpp"
#include "core/channel_routing.hpp"
#include "core/cost.hpp"
#include "core/resource_state.hpp"
#include "util/error.hpp"

namespace rtsm::baselines {

namespace {

using core::Mapping;
using core::ResourceState;

struct Cluster {
  std::vector<ProcessId> members;
  /// Implementation choice per member once a common type is fixed.
  std::vector<ImplementationId> impls;
  double utilization = 0.0;       // on the chosen type
  std::uint64_t memory = 0;
  TileTypeId type;
};

/// Cheapest implementation of @p pid on @p type, if any.
std::optional<ImplementationId> impl_on_type(const kpn::Application& app,
                                             const arch::Platform& platform,
                                             ProcessId pid, TileTypeId type) {
  const kpn::Process& p = app.process(pid);
  const std::string& type_name = platform.tile_type(type).name;
  std::optional<ImplementationId> best;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
    const kpn::Implementation& im = p.implementations[ii];
    if (im.tile_type != type_name) continue;
    const ImplementationId impl{static_cast<ImplementationId::value_type>(ii)};
    if (core::impl_utilization(app, pid, impl,
                               platform.tile_type(type).clock_hz) > 1.0) {
      continue;
    }
    if (im.energy_nj_per_symbol < best_energy) {
      best_energy = im.energy_nj_per_symbol;
      best = impl;
    }
  }
  return best;
}

/// Builds a single-process cluster on the process's cheapest usable type.
std::optional<Cluster> singleton(const kpn::Application& app,
                                 const arch::Platform& platform,
                                 ProcessId pid) {
  std::optional<Cluster> best;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < platform.tile_type_count(); ++t) {
    const TileTypeId type{static_cast<TileTypeId::value_type>(t)};
    if (platform.tiles_of_type(type).empty()) continue;
    const auto impl = impl_on_type(app, platform, pid, type);
    if (!impl) continue;
    const kpn::Implementation& im = app.implementation(pid, *impl);
    if (im.energy_nj_per_symbol < best_energy) {
      best_energy = im.energy_nj_per_symbol;
      Cluster c;
      c.members = {pid};
      c.impls = {*impl};
      c.type = type;
      c.utilization = core::impl_utilization(
          app, pid, *impl, platform.tile_type(type).clock_hz);
      c.memory = im.memory_bytes;
      best = c;
    }
  }
  return best;
}

/// Tries to re-type a merged member set onto one common type; returns the
/// merged cluster when every member has an implementation there and the
/// whole fits a single tile's budget.
std::optional<Cluster> merge(const kpn::Application& app,
                             const arch::Platform& platform,
                             const Cluster& a, const Cluster& b,
                             std::uint32_t slot_limit) {
  if (a.members.size() + b.members.size() > slot_limit) return std::nullopt;
  std::optional<Cluster> best;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < platform.tile_type_count(); ++t) {
    const TileTypeId type{static_cast<TileTypeId::value_type>(t)};
    if (platform.tiles_of_type(type).empty()) continue;
    Cluster merged;
    merged.type = type;
    double energy = 0.0;
    bool ok = true;
    for (const Cluster* part : {&a, &b}) {
      for (const ProcessId pid : part->members) {
        const auto impl = impl_on_type(app, platform, pid, type);
        if (!impl) {
          ok = false;
          break;
        }
        const kpn::Implementation& im = app.implementation(pid, *impl);
        merged.members.push_back(pid);
        merged.impls.push_back(*impl);
        merged.utilization += core::impl_utilization(
            app, pid, *impl, platform.tile_type(type).clock_hz);
        merged.memory += im.memory_bytes;
        energy += im.energy_nj_per_symbol;
      }
      if (!ok) break;
    }
    if (!ok || merged.utilization > 1.0) continue;
    if (energy < best_energy) {
      best_energy = energy;
      best = std::move(merged);
    }
  }
  return best;
}

/// Tokens per symbol between two clusters (the off-tile traffic Moreira's
/// clustering minimises).
std::uint64_t traffic_between(const kpn::Application& app, const Cluster& a,
                              const Cluster& b) {
  std::uint64_t tokens = 0;
  auto in = [](const Cluster& c, ProcessId pid) {
    return std::find(c.members.begin(), c.members.end(), pid) !=
           c.members.end();
  };
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& ch = app.channel(cid);
    if ((in(a, ch.src) && in(b, ch.dst)) || (in(b, ch.src) && in(a, ch.dst))) {
      tokens += ch.tokens_per_symbol;
    }
  }
  return tokens;
}

}  // namespace

ClusteringResult cluster_map(const kpn::Application& app,
                             const arch::Platform& platform,
                             const ClusteringOptions& options) {
  app.validate();
  ClusteringResult result;
  result.mapping = Mapping(app.process_count(), app.channel_count());

  // Slot limit for merging: the largest slot count of any tile.
  std::uint32_t slot_limit = 1;
  for (const TileId tid : platform.tile_ids()) {
    slot_limit = std::max(slot_limit, platform.tile(tid).process_slots);
  }

  // Seed: one cluster per movable process.
  std::vector<Cluster> clusters;
  for (const ProcessId pid : app.process_ids()) {
    if (app.process(pid).is_fixture()) continue;
    auto c = singleton(app, platform, pid);
    if (!c) {
      result.failure = "process '" + app.process(pid).name +
                       "' has no feasible implementation";
      return result;
    }
    clusters.push_back(std::move(*c));
  }

  // Greedy merging: repeatedly fuse the cluster pair with the heaviest
  // inter-cluster traffic that still fits one tile.
  if (options.cluster_neighbours) {
    bool merged_any = true;
    while (merged_any) {
      merged_any = false;
      std::uint64_t best_traffic = 0;
      std::size_t best_i = 0;
      std::size_t best_j = 0;
      std::optional<Cluster> best_cluster;
      for (std::size_t i = 0; i < clusters.size(); ++i) {
        for (std::size_t j = i + 1; j < clusters.size(); ++j) {
          const std::uint64_t traffic =
              traffic_between(app, clusters[i], clusters[j]);
          if (traffic == 0 || traffic < best_traffic) continue;
          auto m = merge(app, platform, clusters[i], clusters[j], slot_limit);
          if (!m) continue;
          best_traffic = traffic;
          best_i = i;
          best_j = j;
          best_cluster = std::move(m);
        }
      }
      if (best_cluster) {
        clusters[best_i] = std::move(*best_cluster);
        clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(best_j));
        merged_any = true;
      }
    }
  }
  result.clusters = static_cast<std::uint32_t>(clusters.size());

  // First-fit-decreasing bin packing of clusters onto tiles of their type.
  ResourceState state(platform);

  // Fixtures first.
  for (const ProcessId pid : app.process_ids()) {
    const kpn::Process& p = app.process(pid);
    if (!p.is_fixture()) continue;
    const TileId tile = platform.tile_by_name(*p.pinned_tile);
    const std::string& type_name =
        platform.tile_type(platform.tile(tile).type).name;
    bool bound = false;
    for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
      if (p.implementations[ii].tile_type != type_name) continue;
      const ImplementationId impl{
          static_cast<ImplementationId::value_type>(ii)};
      const double util = core::claimed_utilization(core::impl_utilization(
          app, pid, impl, platform.tile_clock_hz(tile)));
      if (!state.tile_fits(tile, util, p.implementations[ii].memory_bytes)) {
        break;
      }
      state.reserve_tile(tile, util, p.implementations[ii].memory_bytes);
      result.mapping.assign(pid, impl, tile);
      bound = true;
      break;
    }
    if (!bound) {
      result.failure = "fixture '" + p.name + "' cannot bind its tile";
      return result;
    }
  }

  std::sort(clusters.begin(), clusters.end(),
            [](const Cluster& a, const Cluster& b) {
              return a.utilization > b.utilization;
            });
  for (const Cluster& c : clusters) {
    // The cheapest type first; when its tiles are exhausted the cluster is
    // re-typed to the next type all members support (without this fallback
    // the homogeneous method dies immediately on heterogeneous platforms —
    // all HIPERLAN/2 processes prefer the two MONTIUMs).
    std::vector<Cluster> variants;
    for (std::size_t t = 0; t < platform.tile_type_count(); ++t) {
      const TileTypeId type{static_cast<TileTypeId::value_type>(t)};
      if (platform.tiles_of_type(type).empty()) continue;
      Cluster variant;
      variant.type = type;
      bool ok = true;
      for (const ProcessId pid : c.members) {
        const auto impl = impl_on_type(app, platform, pid, type);
        if (!impl) {
          ok = false;
          break;
        }
        variant.members.push_back(pid);
        variant.impls.push_back(*impl);
        variant.utilization += core::impl_utilization(
            app, pid, *impl, platform.tile_type(type).clock_hz);
        variant.memory += app.implementation(pid, *impl).memory_bytes;
      }
      if (ok && variant.utilization <= 1.0) {
        variants.push_back(std::move(variant));
      }
    }
    std::sort(variants.begin(), variants.end(),
              [&](const Cluster& x, const Cluster& y) {
                auto energy_of = [&](const Cluster& v) {
                  double e = 0.0;
                  for (std::size_t m = 0; m < v.members.size(); ++m) {
                    e += app.implementation(v.members[m], v.impls[m])
                             .energy_nj_per_symbol;
                  }
                  return e;
                };
                return energy_of(x) < energy_of(y);
              });

    bool placed = false;
    for (const Cluster& variant : variants) {
      for (const TileId tile : platform.tiles_of_type(variant.type)) {
        if (!state.tile_fits(
                tile, variant.utilization, variant.memory,
                static_cast<std::uint32_t>(variant.members.size()))) {
          continue;
        }
        state.reserve_tile(tile, variant.utilization, variant.memory,
                           static_cast<std::uint32_t>(variant.members.size()));
        for (std::size_t m = 0; m < variant.members.size(); ++m) {
          result.mapping.assign(variant.members[m], variant.impls[m], tile);
        }
        placed = true;
        break;
      }
      if (placed) break;
    }
    if (!placed) {
      result.failure = "cluster of " + std::to_string(c.members.size()) +
                       " process(es) does not fit any tile of any "
                       "common type";
      return result;
    }
  }

  // Route and optionally verify.
  const core::FeedbackSet no_feedback;
  core::MappingTrace::Round scratch;
  core::MappingContext ctx{app,    platform,       state,          no_feedback,
                           options.energy, result.mapping, scratch,
                           options.engine.get()};
  const core::Step3Outcome s3 = core::run_step3(ctx);
  if (!s3.success) {
    result.failure = "clustered placement unroutable: " + s3.failure;
    return result;
  }
  if (options.verify_step4) {
    const core::FeasibilityReport report = core::run_step4(ctx, options.step4);
    if (!report.feasible) {
      result.failure = "clustered placement infeasible: " + report.failure;
      return result;
    }
  }
  result.success = true;
  result.energy_nj_per_symbol = core::total_energy_nj_per_symbol(
      app, platform, result.mapping, options.energy);
  return result;
}

std::string ClusteringMapper::describe() const {
  return "Moreira-style clustering of neighbouring processes with first-fit-"
         "decreasing bin-packing onto tiles of a common type";
}

core::MappingResult ClusteringMapper::map(
    const kpn::Application& app, const core::ResourceState& base) const {
  ClusteringResult clustered = cluster_map(app, base.platform(), options_);
  return detail::screen_design_time_plan(
      base, app, clustered.success, std::move(clustered.mapping),
      clustered.energy_nj_per_symbol, std::move(clustered.failure));
}

}  // namespace rtsm::baselines
