#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "arch/platform.hpp"
#include "core/feasibility.hpp"
#include "core/mapper.hpp"
#include "energy/model.hpp"
#include "kpn/application.hpp"
#include "verify/engine.hpp"

namespace rtsm::baselines {

/// Options of the bias-elitist genetic mapper.
struct GeneticOptions {
  energy::EnergyModel energy;

  /// Seed of the private Rng stream; equal seeds + equal inputs give an
  /// identical evolution and therefore an identical mapping.
  std::uint64_t seed = 0x5eedull;

  std::uint32_t population = 16;
  std::uint32_t generations = 24;
  /// Individuals copied unchanged into the next generation.
  std::uint32_t elites = 2;
  /// Probability of crossing two parents (vs cloning the fitter one).
  double crossover_rate = 0.9;
  /// Per-gene mutation probability.
  double mutation_rate = 0.1;
  /// Distinct top genomes routed + verified before the mapper gives up.
  std::uint32_t verify_candidates = 4;

  /// Verify the result with the step-4 dataflow analysis.
  bool verify_step4 = true;
  core::FeasibilityOptions step4;

  /// Shared step-4 verification engine; null = private engine.
  std::shared_ptr<verify::Engine> engine;
};

/// Bias-elitist genetic mapper (after Quan & Pimentel, arXiv:1406.7539):
/// a genome is one (implementation, tile) pick per movable process; the
/// initial population is random except for one *bias* individual built by
/// a greedy min-energy constructive pass, and elitism keeps the best
/// genomes alive across generations (tournament-2 selection, uniform
/// crossover, per-gene mutation). Genomes decode against the residual
/// state with Lamarckian repair (an unfit gene is rewritten to the first
/// placement that still fits); fitness is capacity violations, then
/// energy plus a token-weighted hop proxy for communication. The fittest
/// distinct genomes are routed and step-4 verified until one passes.
class GeneticMapper final : public core::Mapper {
 public:
  explicit GeneticMapper(GeneticOptions options = {})
      : options_(std::move(options)) {
    options_.engine = verify::ensure_engine(options_.verify_step4,
                                            std::move(options_.engine));
  }

  [[nodiscard]] std::string name() const override { return "genetic"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::shared_ptr<verify::Engine> verification_engine()
      const override {
    return options_.engine;
  }

  using core::Mapper::map;
  [[nodiscard]] core::MappingResult map(
      const kpn::Application& app,
      const core::ResourceState& base) const override;
  [[nodiscard]] core::MappingResult map(
      const kpn::Application& app, const core::ResourceState& base,
      const core::CancelToken* cancel) const override;

 private:
  GeneticOptions options_;
};

}  // namespace rtsm::baselines
