#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "arch/platform.hpp"
#include "core/feasibility.hpp"
#include "core/mapper.hpp"
#include "core/mapping.hpp"
#include "energy/model.hpp"
#include "kpn/application.hpp"
#include "verify/engine.hpp"

namespace rtsm::baselines {

/// Options of the clustering + bin-packing mapper.
struct ClusteringOptions {
  energy::EnergyModel energy;

  /// Merge neighbouring processes while the cluster still fits a tile
  /// (Moreira et al. merge to minimise off-tile connections).
  bool cluster_neighbours = true;

  /// Verify the result with the step-4 dataflow analysis.
  bool verify_step4 = true;
  core::FeasibilityOptions step4;

  /// Shared step-4 verification engine (see core::MapperConfig::engine);
  /// null = verify without caching.
  std::shared_ptr<verify::Engine> engine;
};

/// Result of the clustering mapper.
struct ClusteringResult {
  bool success = false;
  core::Mapping mapping{0, 0};
  double energy_nj_per_symbol = 0.0;
  /// Clusters formed (indexed arbitrarily; informational).
  std::uint32_t clusters = 0;
  std::string failure;
};

/// Related-work baseline after Moreira et al. [8]: greedily cluster
/// neighbouring processes to minimise off-tile traffic, then first-fit-
/// decreasing bin-pack the clusters onto tiles, routing channels afterwards.
///
/// The method presumes homogeneous processors: a cluster is only placed on
/// a tile type for which *every* member has an implementation, and the
/// cheapest common type is used. On heterogeneous platforms this is exactly
/// the limitation the paper's per-process implementation selection removes,
/// which bench X2/X3 makes measurable.
[[nodiscard]] ClusteringResult cluster_map(
    const kpn::Application& app, const arch::Platform& platform,
    const ClusteringOptions& options = {});

/// Mapper-strategy adapter around cluster_map(). Plans against the idle
/// platform; fails when the plan does not fit the residual state.
class ClusteringMapper final : public core::Mapper {
 public:
  explicit ClusteringMapper(ClusteringOptions options = {})
      : options_(std::move(options)) {
    options_.engine = verify::ensure_engine(options_.verify_step4,
                                            std::move(options_.engine));
  }

  [[nodiscard]] std::string name() const override { return "clustering"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::shared_ptr<verify::Engine> verification_engine()
      const override {
    return options_.engine;
  }

  using core::Mapper::map;
  [[nodiscard]] core::MappingResult map(
      const kpn::Application& app,
      const core::ResourceState& base) const override;

 private:
  ClusteringOptions options_;
};

}  // namespace rtsm::baselines
