#include "baselines/registry.hpp"

#include <memory>

#include "baselines/annealing.hpp"
#include "baselines/clustering.hpp"
#include "baselines/exhaustive.hpp"
#include "baselines/genetic.hpp"
#include "baselines/list_scheduler.hpp"
#include "baselines/random_mapper.hpp"
#include "baselines/series_parallel.hpp"
#include "core/spatial_mapper.hpp"

namespace rtsm::baselines {

void register_builtin_mappers(core::MapperRegistry& registry) {
  registry.add("spatial",
               "paper's four-step run-time heuristic with iterative "
               "refinement",
               [] { return std::make_unique<core::SpatialMapper>(); });
  registry.add("annealing",
               "design-time simulated annealing on estimated energy",
               [] { return std::make_unique<AnnealingMapper>(); });
  registry.add("clustering",
               "neighbour clustering with first-fit-decreasing bin-packing",
               [] { return std::make_unique<ClusteringMapper>(); });
  registry.add("exhaustive",
               "branch-and-bound ground-truth optimum (small instances only)",
               [] { return std::make_unique<ExhaustiveMapper>(); });
  registry.add("random", "best-of-N random adequate configurations",
               [] { return std::make_unique<RandomSamplingMapper>(); });
  registry.add("list",
               "HEFT/PEFT-style list scheduling by upward rank against the "
               "residual state",
               [] { return std::make_unique<ListSchedulerMapper>(); });
  registry.add("series-parallel",
               "series-chain decomposition placed contiguously, heaviest "
               "chain first",
               [] { return std::make_unique<SeriesParallelMapper>(); });
  registry.add("genetic",
               "bias-elitist genetic search over (implementation, tile) "
               "genomes",
               [] { return std::make_unique<GeneticMapper>(); });
}

core::MapperRegistry builtin_mappers() {
  core::MapperRegistry registry;
  register_builtin_mappers(registry);
  return registry;
}

}  // namespace rtsm::baselines
