#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "arch/platform.hpp"
#include "core/feasibility.hpp"
#include "core/mapper.hpp"
#include "core/mapping.hpp"
#include "energy/model.hpp"
#include "kpn/application.hpp"
#include "verify/engine.hpp"

namespace rtsm::baselines {

/// Options of the exhaustive optimal mapper.
struct ExhaustiveOptions {
  energy::EnergyModel energy;

  /// Run the full step-4 dataflow verification on candidate optima
  /// (expensive); otherwise the optimum is over adherent, routed mappings.
  bool verify_step4 = false;

  core::FeasibilityOptions step4;

  /// Safety cap on search-tree nodes.
  std::uint64_t node_limit = 20'000'000;

  /// Shared step-4 verification engine. Leaves of the search that differ
  /// only in equal-clock tile choices (or repeat a signature across
  /// branches) then reuse one sizing. Null = verify without caching.
  std::shared_ptr<verify::Engine> engine;
};

/// Result of the exhaustive search.
struct ExhaustiveResult {
  bool success = false;
  /// True when node_limit stopped the search before full enumeration (the
  /// returned mapping is then only best-found, not provably optimal).
  bool exhausted_budget = false;

  core::Mapping mapping{0, 0};
  double energy_nj_per_symbol = 0.0;

  std::uint64_t nodes = 0;
  std::uint64_t leaves = 0;
};

/// Branch-and-bound enumeration of all adequate, capacity-respecting
/// (implementation, tile) assignments; channels are routed at every leaf
/// with the step-3 router and the minimum-energy mapping is kept.
///
/// Ground truth for bench X2 (quality gap of the run-time heuristic).
/// Exponential: intended for small instances only.
[[nodiscard]] ExhaustiveResult exhaustive_map(
    const kpn::Application& app, const arch::Platform& platform,
    const ExhaustiveOptions& options = {});

/// Mapper-strategy adapter around exhaustive_map(). Plans against the idle
/// platform (ground-truth optimum); fails when the optimum does not fit the
/// residual state.
class ExhaustiveMapper final : public core::Mapper {
 public:
  explicit ExhaustiveMapper(ExhaustiveOptions options = {})
      : options_(std::move(options)) {
    options_.engine = verify::ensure_engine(options_.verify_step4,
                                            std::move(options_.engine));
  }

  [[nodiscard]] std::string name() const override { return "exhaustive"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::shared_ptr<verify::Engine> verification_engine()
      const override {
    return options_.engine;
  }

  using core::Mapper::map;
  [[nodiscard]] core::MappingResult map(
      const kpn::Application& app,
      const core::ResourceState& base) const override;

 private:
  ExhaustiveOptions options_;
};

}  // namespace rtsm::baselines
