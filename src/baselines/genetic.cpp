#include "baselines/genetic.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "baselines/residual_placement.hpp"
#include "core/cost.hpp"
#include "util/rng.hpp"

namespace rtsm::baselines {

namespace {

using core::Mapping;
using core::ResourceState;

/// One individual: an (implementation, tile) pick per movable process,
/// stored as indices into the per-process candidate tables.
struct Individual {
  std::vector<std::uint32_t> genes;
  double fitness = 0.0;
};

constexpr double kViolationPenalty = 1e12;

}  // namespace

std::string GeneticMapper::describe() const {
  return "bias-elitist genetic search over (implementation, tile) genomes "
         "with Lamarckian repair against the residual state";
}

core::MappingResult GeneticMapper::map(const kpn::Application& app,
                                       const core::ResourceState& base) const {
  return map(app, base, nullptr);
}

core::MappingResult GeneticMapper::map(const kpn::Application& app,
                                       const core::ResourceState& base,
                                       const core::CancelToken* cancel) const {
  app.validate();
  core::MappingResult result;
  result.mapping = Mapping(app.process_count(), app.channel_count());

  // Fixture-bound baseline state: candidate tables and every decode start
  // from it, so fixture load is visible to all of them.
  ResourceState bound = base;
  Mapping fixture_mapping(app.process_count(), app.channel_count());
  {
    const std::string failure =
        detail::bind_fixtures(app, bound, fixture_mapping);
    if (!failure.empty()) {
      result.failure = failure;
      return result;
    }
  }

  std::vector<ProcessId> movable;
  for (const ProcessId pid : app.process_ids()) {
    if (!app.process(pid).is_fixture()) movable.push_back(pid);
  }

  // Candidate tables vs the fixture-bound state. Decode re-checks fits
  // against the evolving state, so the tables only need to over-approximate.
  std::vector<std::vector<detail::Candidate>> candidates(movable.size());
  for (std::size_t m = 0; m < movable.size(); ++m) {
    detail::for_each_candidate(
        app, bound, movable[m],
        [&](const detail::Candidate& c) { candidates[m].push_back(c); });
    if (candidates[m].empty()) {
      result.failure = "process '" + app.process(movable[m]).name +
                       "' has no feasible placement left";
      return result;
    }
  }

  // Decodes @p genes onto a copy of the bound state with Lamarckian repair:
  // an unfit gene is rewritten to the first candidate that still fits.
  // Returns the number of unrepairable genes; state/mapping are complete
  // only when that is zero.
  auto decode = [&](std::vector<std::uint32_t>& genes, ResourceState& state,
                    Mapping& mapping) -> std::uint32_t {
    state = bound;
    mapping = fixture_mapping;
    std::uint32_t violations = 0;
    for (std::size_t m = 0; m < movable.size(); ++m) {
      const std::vector<detail::Candidate>& table = candidates[m];
      std::uint32_t gi = genes[m] % static_cast<std::uint32_t>(table.size());
      if (!state.tile_fits(table[gi].tile, table[gi].raw_util,
                           app.implementation(movable[m], table[gi].impl)
                               .memory_bytes)) {
        bool repaired = false;
        for (std::uint32_t alt = 0; alt < table.size(); ++alt) {
          if (state.tile_fits(table[alt].tile, table[alt].raw_util,
                              app.implementation(movable[m], table[alt].impl)
                                  .memory_bytes)) {
            gi = alt;
            repaired = true;
            break;
          }
        }
        if (!repaired) {
          ++violations;
          continue;
        }
      }
      genes[m] = gi;
      state.reserve_tile(table[gi].tile, table[gi].raw_util,
                         app.implementation(movable[m], table[gi].impl)
                             .memory_bytes);
      mapping.assign(movable[m], table[gi].impl, table[gi].tile);
    }
    return violations;
  };

  auto evaluate = [&](Individual& ind) {
    ResourceState state = bound;
    Mapping mapping = fixture_mapping;
    const std::uint32_t violations = decode(ind.genes, state, mapping);
    if (violations > 0) {
      ind.fitness = kViolationPenalty * violations;
      return;
    }
    double comm = 0.0;
    for (const ChannelId cid : app.channel_ids()) {
      const kpn::Channel& ch = app.channel(cid);
      if (!mapping.is_assigned(ch.src) || !mapping.is_assigned(ch.dst)) {
        continue;
      }
      const std::uint32_t hops = detail::hop_distance(
          state.platform(), mapping.tile_of(ch.src), mapping.tile_of(ch.dst));
      comm += core::channel_cost(ch, hops, core::CommCostModel::TokenWeighted,
                                 options_.energy);
    }
    // Processing energy only — the genome is not routed yet, so the comm
    // side is approximated by the hop proxy above.
    double processing = 0.0;
    for (const ProcessId pid : app.process_ids()) {
      processing +=
          app.implementation(pid, mapping.impl_of(pid)).energy_nj_per_symbol;
    }
    ind.fitness = processing + comm;
  };

  Rng rng(options_.seed);
  const std::size_t pop_size = std::max<std::uint32_t>(options_.population, 2);

  // Bias individual: greedy min-energy constructive pass, scarcity-aware so
  // it does not strand a process restricted to a scarce tile type.
  const detail::ScarcityMap scarcity(app, bound);
  Individual bias;
  bias.genes.assign(movable.size(), 0);
  {
    ResourceState state = bound;
    Mapping mapping = fixture_mapping;
    for (std::size_t m = 0; m < movable.size(); ++m) {
      const std::vector<detail::Candidate>& table = candidates[m];
      double best_score = 0.0;
      bool found = false;
      for (std::uint32_t gi = 0; gi < table.size(); ++gi) {
        if (!state.tile_fits(table[gi].tile, table[gi].raw_util,
                             app.implementation(movable[m], table[gi].impl)
                                 .memory_bytes)) {
          continue;
        }
        double score = table[gi].energy_nj * 1e3 + table[gi].exec_ns;
        if (scarcity.would_starve(app, state, mapping, movable[m],
                                  table[gi].type)) {
          score += 1e15;
        }
        if (!found || score < best_score) {
          best_score = score;
          bias.genes[m] = gi;
          found = true;
        }
      }
      if (found) {
        const detail::Candidate& c = table[bias.genes[m]];
        state.reserve_tile(c.tile, c.raw_util,
                           app.implementation(movable[m], c.impl).memory_bytes);
        mapping.assign(movable[m], c.impl, c.tile);
      }
    }
  }

  std::vector<Individual> population;
  population.reserve(pop_size);
  population.push_back(std::move(bias));
  while (population.size() < pop_size) {
    Individual ind;
    ind.genes.resize(movable.size());
    for (std::size_t m = 0; m < movable.size(); ++m) {
      ind.genes[m] =
          static_cast<std::uint32_t>(rng.pick_index(candidates[m].size()));
    }
    population.push_back(std::move(ind));
  }
  for (Individual& ind : population) evaluate(ind);

  auto by_fitness = [](const Individual& a, const Individual& b) {
    return a.fitness < b.fitness;
  };
  std::stable_sort(population.begin(), population.end(), by_fitness);

  const std::size_t elites = std::min<std::size_t>(
      std::max<std::uint32_t>(options_.elites, 1), pop_size);
  auto tournament = [&]() -> const Individual& {
    const Individual& a = population[rng.pick_index(population.size())];
    const Individual& b = population[rng.pick_index(population.size())];
    return a.fitness <= b.fitness ? a : b;
  };

  for (std::uint32_t gen = 0; gen < options_.generations; ++gen) {
    if (cancel != nullptr && cancel->stop_requested()) {
      result.cancelled = true;
      result.failure = "cancelled";
      return result;
    }
    ++result.rounds;
    std::vector<Individual> next(population.begin(),
                                 population.begin() +
                                     static_cast<std::ptrdiff_t>(elites));
    while (next.size() < pop_size) {
      const Individual& pa = tournament();
      const Individual& pb = tournament();
      Individual child;
      child.genes.resize(movable.size());
      const bool cross = rng.bernoulli(options_.crossover_rate);
      const Individual& fitter = pa.fitness <= pb.fitness ? pa : pb;
      for (std::size_t m = 0; m < movable.size(); ++m) {
        child.genes[m] = cross ? (rng.bernoulli(0.5) ? pa : pb).genes[m]
                               : fitter.genes[m];
        if (rng.bernoulli(options_.mutation_rate)) {
          child.genes[m] =
              static_cast<std::uint32_t>(rng.pick_index(candidates[m].size()));
        }
      }
      evaluate(child);
      next.push_back(std::move(child));
    }
    population = std::move(next);
    std::stable_sort(population.begin(), population.end(), by_fitness);
  }

  // Route + verify the fittest distinct genomes until one passes.
  std::uint32_t tried = 0;
  for (std::size_t i = 0;
       i < population.size() && tried < options_.verify_candidates; ++i) {
    Individual& ind = population[i];
    if (ind.fitness >= kViolationPenalty) break;  // incomplete decode
    if (i > 0 && ind.genes == population[i - 1].genes) continue;
    ++tried;
    ResourceState state = bound;
    Mapping mapping = fixture_mapping;
    if (decode(ind.genes, state, mapping) != 0) continue;
    if (detail::finish_residual_plan(app, state, mapping, options_.energy,
                                     options_.verify_step4, options_.step4,
                                     options_.engine.get(), cancel, result)) {
      return result;
    }
  }
  if (result.failure.empty()) {
    result.failure = "no genome routed and verified";
  }
  return result;
}

}  // namespace rtsm::baselines
