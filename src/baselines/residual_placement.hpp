#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/channel_routing.hpp"
#include "core/cost.hpp"
#include "core/feasibility.hpp"
#include "core/mapper.hpp"
#include "core/mapping_context.hpp"
#include "core/resource_state.hpp"
#include "util/error.hpp"

namespace rtsm::baselines::detail {

/// Binds every fixture of @p app to its pinned tile, reserving into
/// @p state and assigning into @p mapping. Returns an empty string on
/// success, the failure message otherwise. Shared head of every baseline
/// that plans against the residual state.
inline std::string bind_fixtures(const kpn::Application& app,
                                 core::ResourceState& state,
                                 core::Mapping& mapping) {
  const arch::Platform& platform = state.platform();
  for (const ProcessId pid : app.process_ids()) {
    const kpn::Process& p = app.process(pid);
    if (!p.is_fixture()) continue;
    const TileId tile = platform.tile_by_name(*p.pinned_tile);
    const std::string& type_name =
        platform.tile_type(platform.tile(tile).type).name;
    bool bound = false;
    for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
      if (p.implementations[ii].tile_type != type_name) continue;
      const ImplementationId impl{
          static_cast<ImplementationId::value_type>(ii)};
      const double util = core::claimed_utilization(core::impl_utilization(
          app, pid, impl, platform.tile_clock_hz(tile)));
      if (!state.tile_fits(tile, util, p.implementations[ii].memory_bytes)) {
        break;
      }
      state.reserve_tile(tile, util, p.implementations[ii].memory_bytes);
      mapping.assign(pid, impl, tile);
      bound = true;
      break;
    }
    if (!bound) return "fixture '" + p.name + "' cannot bind its tile";
  }
  return {};
}

/// One feasible (implementation, tile) candidate of a movable process.
struct Candidate {
  ImplementationId impl;
  TileId tile;
  TileTypeId type;
  /// Raw utilisation of the implementation on the tile (<= 1).
  double raw_util = 0.0;
  /// Execution time per symbol on the tile, ns.
  double exec_ns = 0.0;
  /// Processing energy of the implementation, nJ per symbol.
  double energy_nj = 0.0;
};

/// Calls @p fn(Candidate) for every placement of @p pid that respects the
/// residual capacity in @p state (type match, utilisation <= 1, tile_fits).
template <class Fn>
void for_each_candidate(const kpn::Application& app,
                        const core::ResourceState& state, ProcessId pid,
                        Fn&& fn) {
  const arch::Platform& platform = state.platform();
  const kpn::Process& p = app.process(pid);
  for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
    const kpn::Implementation& im = p.implementations[ii];
    TileTypeId type;
    try {
      type = platform.type_by_name(im.tile_type);
    } catch (const Error&) {
      continue;  // implementation for a type this platform does not have
    }
    const ImplementationId impl{static_cast<ImplementationId::value_type>(ii)};
    const double raw_util = core::impl_utilization(
        app, pid, impl, platform.tile_type(type).clock_hz);
    if (raw_util > 1.0) continue;
    for (const TileId tile : platform.tiles_of_type(type)) {
      if (!state.tile_fits(tile, raw_util, im.memory_bytes)) continue;
      Candidate c;
      c.impl = impl;
      c.tile = tile;
      c.type = type;
      c.raw_util = raw_util;
      c.exec_ns = core::impl_time_per_symbol_ns(app, pid, impl,
                                                platform.tile_clock_hz(tile));
      c.energy_nj = im.energy_nj_per_symbol;
      fn(c);
    }
  }
}

/// Tracks which tile types each movable process could use, so greedy
/// placement can avoid starving a process that is restricted to a scarce
/// type (tiles host a bounded number of processes, so a flexible process
/// grabbing the last MONTIUM slot strands a MONTIUM-only neighbour).
class ScarcityMap {
 public:
  /// @p base should be the fixture-bound state the plan starts from.
  ScarcityMap(const kpn::Application& app, const core::ResourceState& base)
      : usable_types_(app.process_count()) {
    for (const ProcessId pid : app.process_ids()) {
      if (app.process(pid).is_fixture()) continue;
      std::vector<TileTypeId>& types = usable_types_[pid.value()];
      for_each_candidate(app, base, pid, [&](const Candidate& c) {
        if (std::find(types.begin(), types.end(), c.type) == types.end()) {
          types.push_back(c.type);
        }
      });
    }
  }

  /// True when giving @p pid a slot of @p type would leave fewer free slots
  /// of that type than still-unplaced processes that can use *only* it.
  /// Always false for a process that is itself restricted to one type.
  [[nodiscard]] bool would_starve(const kpn::Application& app,
                                  const core::ResourceState& state,
                                  const core::Mapping& mapping, ProcessId pid,
                                  TileTypeId type) const {
    if (usable_types_[pid.value()].size() <= 1) return false;
    std::int64_t exclusive = 0;
    for (const ProcessId other : app.process_ids()) {
      if (other == pid || app.process(other).is_fixture()) continue;
      if (mapping.is_assigned(other)) continue;
      const std::vector<TileTypeId>& types = usable_types_[other.value()];
      if (types.size() == 1 && types.front() == type) ++exclusive;
    }
    if (exclusive == 0) return false;
    std::int64_t free_slots = 0;
    for (const TileId tile : state.platform().tiles_of_type(type)) {
      free_slots += state.platform().tile(tile).process_slots -
                    state.processes_hosted(tile);
    }
    return free_slots - 1 < exclusive;
  }

 private:
  std::vector<std::vector<TileTypeId>> usable_types_;
};

/// Manhattan distance between two tiles of the mesh.
inline std::uint32_t hop_distance(const arch::Platform& platform, TileId a,
                                  TileId b) {
  const auto& ta = platform.tile(a);
  const auto& tb = platform.tile(b);
  const std::uint32_t dx = ta.x > tb.x ? ta.x - tb.x : tb.x - ta.x;
  const std::uint32_t dy = ta.y > tb.y ? ta.y - tb.y : tb.y - ta.y;
  return dx + dy;
}

/// Shared tail of every residual-state baseline: routes the fully placed
/// @p mapping (step 3) on @p state and optionally verifies it with the
/// step-4 dataflow analysis, filling @p result (success, period, latency,
/// energy). The caller's @p state must hold exactly the reservations of
/// @p mapping. Returns result.success.
inline bool finish_residual_plan(const kpn::Application& app,
                                 core::ResourceState& state,
                                 core::Mapping& mapping,
                                 const energy::EnergyModel& energy,
                                 bool verify_step4,
                                 const core::FeasibilityOptions& step4,
                                 verify::Engine* engine,
                                 const core::CancelToken* cancel,
                                 core::MappingResult& result) {
  const core::FeedbackSet no_feedback;
  core::MappingTrace::Round scratch;
  core::MappingContext ctx{app,    state.platform(), state,  no_feedback,
                           energy, mapping,          scratch, engine, cancel};
  const core::Step3Outcome s3 = core::run_step3(ctx);
  if (!s3.success) {
    result.failure = "placement unroutable: " + s3.failure;
    return false;
  }
  if (verify_step4) {
    const core::FeasibilityReport report = core::run_step4(ctx, step4);
    if (!report.feasible) {
      result.failure = "placement infeasible: " + report.failure;
      return false;
    }
    result.achieved_period_ps = report.achieved_period_ps;
    result.latency_ps = report.latency_ps;
  }
  result.mapping = std::move(mapping);
  result.energy_nj_per_symbol = core::total_energy_nj_per_symbol(
      app, state.platform(), result.mapping, energy);
  result.success = true;
  result.failure.clear();
  return true;
}

}  // namespace rtsm::baselines::detail
