#include "workload/synthetic.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rtsm::workload {

namespace {

/// Three-phase read/compute/write implementation moving whole symbols:
/// always rate-consistent (one CSDF cycle per symbol).
kpn::Implementation make_impl(const kpn::Application& app, ProcessId pid,
                              const std::string& process_name,
                              const std::string& type,
                              std::uint32_t compute_cc, double energy_nj,
                              std::uint64_t memory) {
  kpn::Implementation im;
  im.name = process_name + "@" + type;
  im.tile_type = type;
  im.wcet_cc = {1, compute_cc, 1};
  for (const ChannelId cid : app.in_channels(pid)) {
    im.inputs.push_back(
        {cid, {app.channel(cid).tokens_per_symbol, 0, 0}});
  }
  for (const ChannelId cid : app.out_channels(pid)) {
    im.outputs.push_back(
        {cid, {0, 0, app.channel(cid).tokens_per_symbol}});
  }
  im.energy_nj_per_symbol = energy_nj;
  im.memory_bytes = memory;
  return im;
}

}  // namespace

kpn::Application make_synthetic_app(Rng& rng, const SyntheticAppParams& params,
                                    const std::string& name) {
  require(params.process_count >= 1, "synthetic app needs >= 1 process");
  require(!params.tile_types.empty(), "synthetic app needs >= 1 tile type");
  require(params.min_tokens >= 1 && params.min_tokens <= params.max_tokens,
          "synthetic app: bad token range");

  kpn::QosConstraints qos;
  qos.symbol_period_ns = params.period_ns;

  kpn::Application app(name, qos);

  const std::uint32_t n = params.process_count;
  std::vector<ProcessId> procs;
  procs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    procs.push_back(app.add_process("P" + std::to_string(i)));
  }

  auto tokens = [&] {
    return static_cast<std::uint32_t>(
        rng.uniform_int(params.min_tokens, params.max_tokens));
  };

  // Spine: pipeline through all processes.
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    app.connect(procs[i], procs[i + 1], tokens());
  }
  // Skip edges for fork-join shapes (always forward: the graph stays a DAG).
  if (params.topology == Topology::ForkJoin) {
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = i + 2; j < n; ++j) {
        if (rng.bernoulli(params.extra_edge_prob)) {
          app.connect(procs[i], procs[j], tokens());
        }
      }
    }
  }

  std::optional<ProcessId> src;
  std::optional<ProcessId> dst;
  std::optional<ChannelId> src_channel;
  std::optional<ChannelId> dst_channel;
  if (params.with_fixtures) {
    src = app.add_fixture("SRC", "SRC");
    dst = app.add_fixture("DST", "DST");
    src_channel = app.connect(*src, procs.front(), tokens());
    dst_channel = app.connect(procs.back(), *dst, tokens());
  }

  const double period_cc = static_cast<double>(params.period_ns) * 1e-9 *
                           static_cast<double>(params.nominal_clock_hz);

  for (std::uint32_t i = 0; i < n; ++i) {
    const ProcessId pid = procs[i];
    const std::string pname = app.process(pid).name;

    // Preferred type plus a random subset of alternates.
    std::vector<std::string> types = params.tile_types;
    rng.shuffle(types);
    const std::uint32_t count =
        static_cast<std::uint32_t>(std::clamp<std::int64_t>(
            rng.uniform_int(params.impls_min, params.impls_max), 1,
            static_cast<std::int64_t>(types.size())));

    const double pref_util =
        rng.uniform(0.05, params.max_preferred_utilization);
    const std::uint32_t pref_cc = std::max<std::uint32_t>(
        4, static_cast<std::uint32_t>(pref_util * period_cc));
    const double pref_energy =
        rng.uniform(params.energy_min, params.energy_max);
    const std::uint64_t memory = static_cast<std::uint64_t>(
        rng.uniform_int(static_cast<std::int64_t>(params.memory_min),
                        static_cast<std::int64_t>(params.memory_max)));

    for (std::uint32_t k = 0; k < count; ++k) {
      const bool preferred = k == 0;
      const double slowdown =
          preferred
              ? 1.0
              : rng.uniform(params.alt_slowdown_min, params.alt_slowdown_max);
      const double energy_factor =
          preferred ? 1.0
                    : rng.uniform(params.alt_energy_min, params.alt_energy_max);
      app.add_implementation(
          pid, make_impl(app, pid, pname, types[k],
                         static_cast<std::uint32_t>(pref_cc * slowdown),
                         pref_energy * energy_factor, memory));
    }
  }

  if (params.with_fixtures) {
    const std::uint32_t io_cc = std::max<std::uint32_t>(
        4, static_cast<std::uint32_t>(period_cc * 0.4));
    {
      kpn::Implementation im;
      im.name = "SRC@IO";
      im.tile_type = "IO";
      im.wcet_cc = {io_cc};
      im.outputs = {
          {*src_channel, {app.channel(*src_channel).tokens_per_symbol}}};
      im.memory_bytes = 256;
      app.add_implementation(*src, std::move(im));
    }
    {
      kpn::Implementation im;
      im.name = "DST@IO";
      im.tile_type = "IO";
      im.wcet_cc = {io_cc};
      im.inputs = {
          {*dst_channel, {app.channel(*dst_channel).tokens_per_symbol}}};
      im.memory_bytes = 256;
      app.add_implementation(*dst, std::move(im));
    }
  }

  app.validate();
  return app;
}

arch::Platform make_synthetic_platform(Rng& rng,
                                       const SyntheticPlatformParams& params,
                                       const std::string& name) {
  std::uint32_t total = params.with_io ? 2 : 0;
  for (const auto& [type, count] : params.type_counts) total += count;
  require(total <= params.width * params.height,
          "synthetic platform: more tiles than mesh cells");

  arch::NocParams noc;
  noc.noc_clock_hz = params.clock_hz;
  noc.link_capacity_tokens_per_s = params.link_capacity_tokens_per_s;

  arch::Platform platform(name, params.width, params.height, noc);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> cells;
  for (std::uint32_t y = 0; y < params.height; ++y) {
    for (std::uint32_t x = 0; x < params.width; ++x) cells.push_back({x, y});
  }
  if (params.random_placement) rng.shuffle(cells);

  std::size_t next_cell = 0;
  auto place = [&](const std::string& tile_name, TileTypeId type) {
    const auto [x, y] = cells[next_cell++];
    platform.add_tile(tile_name, type, x, y, params.tile_memory_bytes,
                      params.process_slots);
  };

  for (const auto& [type_name, count] : params.type_counts) {
    const TileTypeId type = platform.add_tile_type(type_name, params.clock_hz);
    for (std::uint32_t i = 0; i < count; ++i) {
      place(type_name + std::to_string(i), type);
    }
  }
  if (params.with_io) {
    const TileTypeId io = platform.add_tile_type("IO", params.clock_hz);
    place("SRC", io);
    place("DST", io);
  }
  return platform;
}

}  // namespace rtsm::workload
