#include "workload/hiperlan2.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rtsm::workload {

namespace names = hiperlan2_names;

namespace {

using kpn::phases;
using kpn::PhaseRates;
using kpn::uniform_phases;

/// Memory footprints are not given in the paper; these are plausible code +
/// state sizes, small against the 64 KiB tiles (DESIGN.md assumption 9).
constexpr std::uint64_t kArmImplBytes = 8 * 1024;
constexpr std::uint64_t kMontiumImplBytes = 2 * 1024;
constexpr std::uint64_t kFixtureBytes = 256;

}  // namespace

kpn::Application make_hiperlan2_receiver(const Hiperlan2Config& config) {
  const std::uint32_t b = mode_info(config.mode).output_tokens;
  require(b >= 1, "HIPERLAN/2 mode with empty demapper output");

  kpn::QosConstraints qos;
  qos.symbol_period_ns = 4000;  // one OFDM symbol every 4 us
  qos.frame_symbols = 500;      // 500 symbols per MAC frame

  kpn::Application app(
      config.name.empty() ? "HIPERLAN/2 receiver" : config.name, qos);

  const ProcessId ad = app.add_fixture(names::kAd, names::kAd);
  const ProcessId pfx = app.add_process(names::kPrefixRemoval);
  const ProcessId frq = app.add_process(names::kFreqOffset);
  const ProcessId iofdm = app.add_process(names::kInverseOfdm);
  const ProcessId rem = app.add_process(names::kRemainder);
  const ProcessId sink = app.add_fixture(names::kSink, names::kSink);

  // Figure 1 edge annotations: 32-bit complex samples per OFDM symbol.
  const ChannelId c_ad_pfx = app.connect(ad, pfx, 80);
  const ChannelId c_pfx_frq = app.connect(pfx, frq, 64);
  const ChannelId c_frq_iofdm = app.connect(frq, iofdm, 64);
  const ChannelId c_iofdm_rem = app.connect(iofdm, rem, 52);
  const ChannelId c_rem_sink = app.connect(rem, sink, b);

  // --- Fixtures -----------------------------------------------------------
  // A/D: one sample per NoC-side phase, 10 cc each -> exactly 800 cc
  // (= 4 us at 200 MHz) per symbol; it is the stream's pacemaker.
  {
    kpn::Implementation im;
    im.name = "A/D@IO";
    im.tile_type = names::kIo;
    im.wcet_cc = uniform_phases(10, 80);
    im.outputs = {{c_ad_pfx, uniform_phases(1, 80)}};
    im.energy_nj_per_symbol = 0.0;
    im.memory_bytes = kFixtureBytes;
    app.add_implementation(ad, std::move(im));
  }
  // Sink: absorbs one symbol's demapper output per firing, well under the
  // period so it never throttles the pipeline.
  {
    kpn::Implementation im;
    im.name = "Sink@IO";
    im.tile_type = names::kIo;
    im.wcet_cc = {400};
    im.inputs = {{c_rem_sink, {b}}};
    im.energy_nj_per_symbol = 0.0;
    im.memory_bytes = kFixtureBytes;
    app.add_implementation(sink, std::move(im));
  }

  // --- Prefix removal (Table 1, row 1) ------------------------------------
  {
    kpn::Implementation im;
    im.name = "Pfx.rem.@ARM";
    im.tile_type = names::kArm;
    im.wcet_cc = uniform_phases(18, 18);
    im.inputs = {{c_ad_pfx, phases({{8, 2}, {8, 1}, {0, 1}, {8, 1}, {0, 1},
                                    {8, 1}, {0, 1}, {8, 1}, {0, 1}, {8, 1},
                                    {0, 1}, {8, 1}, {0, 1}, {8, 1}, {0, 1},
                                    {8, 1}, {0, 1}})}};
    im.outputs = {{c_pfx_frq, phases({{0, 2}, {0, 1}, {8, 1}, {0, 1}, {8, 1},
                                      {0, 1}, {8, 1}, {0, 1}, {8, 1}, {0, 1},
                                      {8, 1}, {0, 1}, {8, 1}, {0, 1}, {8, 1},
                                      {0, 1}, {8, 1}})}};
    im.energy_nj_per_symbol = 60.0;
    im.memory_bytes = kArmImplBytes;
    app.add_implementation(pfx, std::move(im));
  }
  {
    kpn::Implementation im;
    im.name = "Pfx.rem.@MONTIUM";
    im.tile_type = names::kMontium;
    im.wcet_cc = uniform_phases(1, 81);
    im.inputs = {{c_ad_pfx, phases({{1, 80}, {0, 1}})}};
    im.outputs = {{c_pfx_frq, phases({{0, 17}, {1, 64}})}};
    im.energy_nj_per_symbol = 32.0;
    im.memory_bytes = kMontiumImplBytes;
    app.add_implementation(pfx, std::move(im));
  }

  // --- Frequency offset correction (Table 1, row 2) -----------------------
  {
    kpn::Implementation im;
    im.name = "Frq.off.@ARM";
    im.tile_type = names::kArm;
    im.wcet_cc = {18, 32, 18};
    im.inputs = {{c_pfx_frq, {8, 0, 0}}};
    im.outputs = {{c_frq_iofdm, {0, 0, 8}}};
    im.energy_nj_per_symbol = 62.0;
    im.memory_bytes = kArmImplBytes;
    app.add_implementation(frq, std::move(im));
  }
  {
    kpn::Implementation im;
    im.name = "Frq.off.@MONTIUM";
    im.tile_type = names::kMontium;
    im.wcet_cc = uniform_phases(1, 66);
    im.inputs = {{c_pfx_frq, phases({{1, 64}, {0, 2}})}};
    im.outputs = {{c_frq_iofdm, phases({{0, 2}, {1, 64}})}};
    im.energy_nj_per_symbol = 33.0;
    im.memory_bytes = kMontiumImplBytes;
    app.add_implementation(frq, std::move(im));
  }

  // --- Inverse OFDM (Table 1, row 3) ---------------------------------------
  // The ARM row of Table 1 prints an output of 64 tokens, conflicting with
  // Figure 1's 52-sample edge and the MONTIUM implementation; we take the
  // KPN annotation as authoritative (DESIGN.md assumption 5).
  {
    kpn::Implementation im;
    im.name = "Inv.OFDM@ARM";
    im.tile_type = names::kArm;
    im.wcet_cc = {66, 4250, 54};
    im.inputs = {{c_frq_iofdm, {64, 0, 0}}};
    im.outputs = {{c_iofdm_rem, {0, 0, 52}}};
    im.energy_nj_per_symbol = 275.0;
    im.memory_bytes = kArmImplBytes;
    app.add_implementation(iofdm, std::move(im));
  }
  {
    kpn::Implementation im;
    im.name = "Inv.OFDM@MONTIUM";
    im.tile_type = names::kMontium;
    im.wcet_cc = phases({{1, 64}, {170, 1}, {1, 52}});
    im.inputs = {{c_frq_iofdm, phases({{1, 64}, {0, 53}})}};
    im.outputs = {{c_iofdm_rem, phases({{0, 65}, {1, 52}})}};
    im.energy_nj_per_symbol = 143.0;
    im.memory_bytes = kMontiumImplBytes;
    app.add_implementation(iofdm, std::move(im));
  }

  // --- Remainder: equalization + phase offset + demapping (Table 1, row 4) -
  {
    kpn::Implementation im;
    im.name = "Rem.@ARM";
    im.tile_type = names::kArm;
    im.wcet_cc = {54, 2250, b + 2};
    im.inputs = {{c_iofdm_rem, {52, 0, 0}}};
    im.outputs = {{c_rem_sink, {0, 0, b}}};
    im.energy_nj_per_symbol = 140.0;
    im.memory_bytes = kArmImplBytes;
    app.add_implementation(rem, std::move(im));
  }
  {
    kpn::Implementation im;
    im.name = "Rem.@MONTIUM";
    im.tile_type = names::kMontium;
    // The paper's middle phase is 73-b cycles; clamp at one cycle so large
    // constellations (b >= 72) stay well-formed.
    const std::uint32_t mid = b < 72 ? 73 - b : 1;
    im.wcet_cc = phases({{1, 52}, {mid, 1}, {1, b}});
    im.inputs = {{c_iofdm_rem, phases({{1, 52}, {0, 1 + b}})}};
    im.outputs = {{c_rem_sink, phases({{0, 53}, {1, b}})}};
    im.energy_nj_per_symbol = 76.0;
    im.memory_bytes = kMontiumImplBytes;
    app.add_implementation(rem, std::move(im));
  }

  app.validate();
  return app;
}

kpn::Application hiperlan2_mode_variant(Hiperlan2Mode mode,
                                        Hiperlan2Config config) {
  config.mode = mode;
  if (config.name.empty()) {
    config.name = std::string("HIPERLAN/2 receiver [") +
                  std::string(mode_info(mode).name) + "]";
  }
  return make_hiperlan2_receiver(config);
}

arch::Platform make_paper_platform(const Hiperlan2Config& config) {
  arch::NocParams noc;
  noc.noc_clock_hz = config.clock_hz;
  noc.link_capacity_tokens_per_s = static_cast<double>(config.clock_hz);
  noc.router_latency_cc = 4;
  noc.hop_buffer_tokens = 4;

  arch::Platform platform("paper 3x3 MPSoC", 3, 3, noc);

  const TileTypeId arm =
      platform.add_tile_type(names::kArm, config.clock_hz);
  const TileTypeId montium =
      platform.add_tile_type(names::kMontium, config.clock_hz);
  const TileTypeId io = platform.add_tile_type(names::kIo, config.clock_hz);
  const TileTypeId other =
      platform.add_tile_type(names::kUnused, config.clock_hz);

  const std::uint64_t mem = config.tile_memory_bytes;
  // Coordinates reconstructed from Table 2 (DESIGN.md assumption 1).
  // Insertion order = step-1 first-fit order.
  platform.add_tile("ARM1", arm, 0, 0, mem);
  platform.add_tile("ARM2", arm, 0, 1, mem);
  platform.add_tile("MONTIUM1", montium, 1, 2, mem);
  platform.add_tile("MONTIUM2", montium, 1, 0, mem);
  platform.add_tile(names::kAd, io, 2, 1, mem);
  platform.add_tile(names::kSink, io, 0, 2, mem);
  platform.add_tile("X1", other, 2, 0, mem);
  platform.add_tile("X2", other, 1, 1, mem);
  platform.add_tile("X3", other, 2, 2, mem);
  return platform;
}

core::MapperConfig paper_mapper_config() {
  core::MapperConfig config;
  // Section 4.4 ranks desirability on implementation (processing) energy
  // alone and relies on step 4 for timing, so the walkthrough prints the
  // paper's margins (132 for Inv.OFDM, 64 for Rem.).
  config.step1.comm_aware = false;
  config.step1.utilization_screen = false;
  // Table 2 logs a sequential sweep with plain hop-count cost.
  config.step2.strategy = core::Step2Strategy::SequentialSweep;
  config.step2.cost_model = core::CommCostModel::HopCount;
  return config;
}

}  // namespace rtsm::workload
