#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace rtsm::workload {

/// The seven HIPERLAN/2 demapping modes (Section 4.1): they differ only in
/// the demapper's output volume, from 12 bytes (BPSK) to 384 bytes (QAM64)
/// per OFDM symbol. With 48 data samples per symbol and 32-bit output
/// tokens, b = 48 * bits_per_sample / 32 tokens per symbol.
enum class Hiperlan2Mode {
  BPSK,      ///< 2 bits/sample  -> b = 3  tokens (12 B)
  BPSK34,    ///< 4 bits/sample  -> b = 6  tokens (24 B)
  QPSK,      ///< 8 bits/sample  -> b = 12 tokens (48 B)
  QPSK34,    ///< 16 bits/sample -> b = 24 tokens (96 B)
  QAM16,     ///< 32 bits/sample -> b = 48 tokens (192 B)
  QAM16_34,  ///< 48 bits/sample -> b = 72 tokens (288 B)
  QAM64,     ///< 64 bits/sample -> b = 96 tokens (384 B)
};

/// Static description of one mode.
struct ModeInfo {
  Hiperlan2Mode mode;
  std::string_view name;
  std::uint32_t bits_per_sample;
  /// Demapper output tokens per OFDM symbol (the paper's `b`).
  std::uint32_t output_tokens;
};

inline constexpr std::array<ModeInfo, 7> kHiperlan2Modes{{
    {Hiperlan2Mode::BPSK, "BPSK", 2, 3},
    {Hiperlan2Mode::BPSK34, "BPSK-3/4", 4, 6},
    {Hiperlan2Mode::QPSK, "QPSK", 8, 12},
    {Hiperlan2Mode::QPSK34, "QPSK-3/4", 16, 24},
    {Hiperlan2Mode::QAM16, "16-QAM", 32, 48},
    {Hiperlan2Mode::QAM16_34, "16-QAM-3/4", 48, 72},
    {Hiperlan2Mode::QAM64, "64-QAM", 64, 96},
}};

/// Lookup of a mode's static description.
[[nodiscard]] constexpr const ModeInfo& mode_info(Hiperlan2Mode mode) {
  return kHiperlan2Modes[static_cast<std::size_t>(mode)];
}

}  // namespace rtsm::workload
