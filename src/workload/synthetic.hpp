#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "arch/platform.hpp"
#include "kpn/application.hpp"
#include "util/rng.hpp"

namespace rtsm::workload {

/// Shape of a generated application graph.
enum class Topology {
  /// Straight pipeline (SRC -> P0 -> ... -> Pn-1 -> DST), the dominant
  /// shape of streaming DSP applications.
  Chain,
  /// A chain with additional forward (skip) edges, giving re-convergent
  /// fan-in/fan-out as in fork-join DSP graphs.
  ForkJoin,
};

/// Parameters of the synthetic streaming-application generator — the class
/// of synthetic benchmark cases the paper's conclusion calls for.
struct SyntheticAppParams {
  /// Mappable processes (fixtures not counted).
  std::uint32_t process_count = 6;

  Topology topology = Topology::Chain;

  /// Probability of each possible skip edge (ForkJoin only).
  double extra_edge_prob = 0.15;

  /// Pin a SRC / DST fixture pair (requires platform tiles named "SRC" and
  /// "DST", as created by make_synthetic_platform).
  bool with_fixtures = true;

  /// Per-channel token volume per symbol, uniform in [min, max].
  std::uint32_t min_tokens = 8;
  std::uint32_t max_tokens = 96;

  /// Iteration period of the QoS constraint.
  std::uint64_t period_ns = 4000;

  /// Nominal clock used to budget WCETs against the period.
  std::uint64_t nominal_clock_hz = 200'000'000;

  /// Tile types implementations may target; each process prefers one.
  std::vector<std::string> tile_types = {"ARM", "DSP"};

  /// Number of alternative implementations per process, uniform in range
  /// (capped by the number of tile types).
  std::uint32_t impls_min = 1;
  std::uint32_t impls_max = 2;

  /// Compute time of the preferred implementation as a fraction of the
  /// period, uniform in [0.05, this].
  double max_preferred_utilization = 0.45;

  /// Non-preferred implementations are this much slower / hungrier.
  double alt_slowdown_min = 1.3;
  double alt_slowdown_max = 2.0;
  double alt_energy_min = 1.6;
  double alt_energy_max = 2.6;

  /// Preferred-implementation energy per symbol, uniform range [nJ].
  double energy_min = 40.0;
  double energy_max = 160.0;

  /// Implementation memory footprint, uniform range [bytes].
  std::uint64_t memory_min = 2 * 1024;
  std::uint64_t memory_max = 12 * 1024;
};

/// Generates a random but always *valid* streaming application
/// (Application::validate() holds by construction).
[[nodiscard]] kpn::Application make_synthetic_app(
    Rng& rng, const SyntheticAppParams& params, const std::string& name);

/// Parameters of the synthetic platform generator.
struct SyntheticPlatformParams {
  std::uint32_t width = 4;
  std::uint32_t height = 4;

  /// Tiles per type, e.g. {{"ARM", 4}, {"DSP", 4}}. Total (plus the two IO
  /// tiles) must fit the mesh.
  std::vector<std::pair<std::string, std::uint32_t>> type_counts = {
      {"ARM", 4}, {"DSP", 4}};

  /// Add "SRC" and "DST" IO tiles for application fixtures.
  bool with_io = true;

  /// Shuffle tile placement (otherwise scan order).
  bool random_placement = true;

  std::uint64_t clock_hz = 200'000'000;
  std::uint64_t tile_memory_bytes = 64 * 1024;
  double link_capacity_tokens_per_s = 200e6;

  /// Processes a tile can host simultaneously (1 = single-context
  /// accelerator semantics as in the paper's MONTIUM tiles).
  std::uint32_t process_slots = 2;
};

/// Generates a mesh platform with the requested tile mix.
[[nodiscard]] arch::Platform make_synthetic_platform(
    Rng& rng, const SyntheticPlatformParams& params, const std::string& name);

}  // namespace rtsm::workload
