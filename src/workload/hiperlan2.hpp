#pragma once

#include <cstdint>
#include <string>

#include "arch/platform.hpp"
#include "core/spatial_mapper.hpp"
#include "kpn/application.hpp"
#include "workload/modes.hpp"

namespace rtsm::workload {

/// Parameters of the paper's HIPERLAN/2 case study (Section 4).
struct Hiperlan2Config {
  /// Demapping mode, selects the output volume b (default: QPSK, b = 12).
  Hiperlan2Mode mode = Hiperlan2Mode::QPSK;

  /// Tile and NoC clock. The paper gives WCETs in cycles only; 200 MHz is
  /// the lowest round frequency at which the paper's final mapping meets
  /// the 4 us symbol period (DESIGN.md assumption 7).
  std::uint64_t clock_hz = 200'000'000;

  /// Local memory per tile, bytes.
  std::uint64_t tile_memory_bytes = 64 * 1024;

  /// Application name; empty = "HIPERLAN/2 receiver".
  std::string name;
};

/// Builds the HIPERLAN/2 receiver application of Figure 1 with the
/// implementation alternatives of Table 1: fixtures A/D and Sink, processes
/// Pfx.rem., Frq.off., Inv.OFDM, Rem. (the grouped equalization /
/// phase-offset / demapping process), channels carrying 80/64/64/52/b
/// 32-bit samples per symbol, one symbol per 4 us.
[[nodiscard]] kpn::Application make_hiperlan2_receiver(
    const Hiperlan2Config& config = {});

/// The receiver in demapping mode @p mode: the same KPN skeleton with the
/// per-mode token geometry of kHiperlan2Modes (the demapper's output
/// volume b and the matching Rem. phase shapes), named after the mode so
/// run-time scenarios can mix several mode variants as distinct
/// applications — the paper's mode switch expressed as admit/release of
/// mode variants. @p config provides the remaining parameters; its `mode`
/// field is overridden.
[[nodiscard]] kpn::Application hiperlan2_mode_variant(
    Hiperlan2Mode mode, Hiperlan2Config config = {});

/// Builds the paper's 3x3-mesh MPSoC of Figure 2: two ARM tiles, two
/// MONTIUM tiles, the A/D source and Sink tiles, and three tiles of
/// irrelevant type. Coordinates are the reconstruction that reproduces
/// Table 2 exactly (DESIGN.md assumption 1). Tiles are inserted in the
/// order ARM1, ARM2, MONTIUM1, MONTIUM2, A/D, Sink, X1..X3, which fixes the
/// first-fit order of step 1.
[[nodiscard]] arch::Platform make_paper_platform(
    const Hiperlan2Config& config = {});

/// Mapper configuration that reproduces the paper's Section 4 walkthrough
/// verbatim: step-1 desirability ranked on processing energy alone, step-2
/// sequential sweep with plain hop-count cost (Table 2), adaptive shortest-
/// path routing, full step-4 verification.
[[nodiscard]] core::MapperConfig paper_mapper_config();

/// Names used by the case study, centralised for tests and benches.
namespace hiperlan2_names {
inline constexpr const char* kAd = "A/D";
inline constexpr const char* kPrefixRemoval = "Pfx.rem.";
inline constexpr const char* kFreqOffset = "Frq.off.";
inline constexpr const char* kInverseOfdm = "Inv.OFDM";
inline constexpr const char* kRemainder = "Rem.";
inline constexpr const char* kSink = "Sink";
inline constexpr const char* kArm = "ARM";
inline constexpr const char* kMontium = "MONTIUM";
inline constexpr const char* kIo = "IO";
inline constexpr const char* kUnused = "OTHER";
}  // namespace hiperlan2_names

}  // namespace rtsm::workload
