#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rtsm {

/// Joins @p parts with @p sep ("a, b, c").
[[nodiscard]] std::string join(std::span<const std::string> parts,
                               const std::string& sep);

/// Fixed-precision decimal rendering (no locale, no scientific notation).
[[nodiscard]] std::string format_double(double value, int decimals);

/// Renders a phase-rate vector in the paper's compact notation:
/// <8^2, 0, 8^8> — runs of equal values are collapsed to value^count.
[[nodiscard]] std::string format_phase_vector(
    std::span<const std::uint32_t> values);

/// "1234567" -> "1,234,567" (thousands separators for table output).
[[nodiscard]] std::string group_digits(std::uint64_t value);

}  // namespace rtsm
