#include "util/rng.hpp"

#include "util/error.hpp"

namespace rtsm {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro state must not be all-zero; splitmix64 seeding guarantees that
  // with overwhelming probability, and we re-seed defensively otherwise.
  std::uint64_t sm = seed;
  do {
    for (auto& s : state_) s = splitmix64(sm);
  } while (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 &&
           state_[3] == 0);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int requires lo <= hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling for exact uniformity.
  const std::uint64_t limit = (~std::uint64_t{0} / range) * range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  return uniform01() < p;
}

std::size_t Rng::pick_index(std::size_t size) {
  require(size > 0, "Rng::pick_index on empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

}  // namespace rtsm
