#pragma once

#include <algorithm>
#include <cmath>

namespace rtsm {

/// Scale-relative floating-point comparison used by the residual-state
/// equality checks: floating-point sums depend on the order reservations
/// were committed, so states produced by different (e.g. concurrent)
/// histories can only be compared within a relative tolerance. The scale
/// floor of 1.0 makes the comparison absolute for small magnitudes.
[[nodiscard]] inline bool approx_equal(double a, double b, double rel_eps) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= rel_eps * scale;
}

}  // namespace rtsm
