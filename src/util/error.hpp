#pragma once

#include <stdexcept>
#include <string>

namespace rtsm {

/// Base exception for all errors raised by the rtsm library.
///
/// Thrown for contract violations and malformed models (e.g. inconsistent
/// CSDF phase vectors, unknown tile names). Expected run-time failures such
/// as "no feasible mapping exists" are reported through result types, not
/// exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws rtsm::Error with @p message when @p condition is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

/// Literal-message overload: no std::string is materialized on the
/// passing path. The resource-state mutators sit on the admission hot
/// path (journal replay runs them thousands of times per second), where
/// even an SSO construction per check is measurable.
inline void require(bool condition, const char* message) {
  if (!condition) throw Error(message);
}

}  // namespace rtsm
