#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace rtsm {

/// Type-safe index wrapper.
///
/// Each domain object family (processes, channels, tiles, links, CSDF actors,
/// ...) uses its own `Id<Tag>` instantiation so indices into one container
/// cannot silently be used with another. Ids are small value types ordered by
/// their underlying index; `Id{}` is the invalid sentinel.
template <class Tag>
class Id {
 public:
  using value_type = std::uint32_t;

  /// Constructs the invalid sentinel id.
  constexpr Id() = default;

  /// Wraps an index.
  constexpr explicit Id(value_type v) : value_(v) {}

  /// Underlying index; only meaningful when valid().
  [[nodiscard]] constexpr value_type value() const { return value_; }

  /// True when this id refers to an object (is not the sentinel).
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  constexpr auto operator<=>(const Id&) const = default;

 private:
  static constexpr value_type kInvalid =
      std::numeric_limits<value_type>::max();
  value_type value_ = kInvalid;
};

struct ProcessTag {};
struct ChannelTag {};
struct ImplementationTag {};
struct TileTag {};
struct TileTypeTag {};
struct RouterTag {};
struct LinkTag {};
struct ActorTag {};
struct EdgeTag {};
struct NodeTag {};
struct AppTag {};

/// A process (task) in a KPN application graph.
using ProcessId = Id<ProcessTag>;
/// A point-to-point FIFO channel between two processes.
using ChannelId = Id<ChannelTag>;
/// One concrete implementation of a process for one tile type.
using ImplementationId = Id<ImplementationTag>;
/// A tile (processing element + network interface) of the platform.
using TileId = Id<TileTag>;
/// A tile type (e.g. ARM, MONTIUM).
using TileTypeId = Id<TileTypeTag>;
/// A router of the NoC mesh.
using RouterId = Id<RouterTag>;
/// A directed NoC link (router->router or router<->tile).
using LinkId = Id<LinkTag>;
/// An actor of a CSDF graph.
using ActorId = Id<ActorTag>;
/// An edge (FIFO) of a CSDF graph.
using EdgeId = Id<EdgeTag>;
/// A node of a generic digraph.
using NodeId = Id<NodeTag>;
/// A running application instance registered with the resource manager.
using AppId = Id<AppTag>;

}  // namespace rtsm

template <class Tag>
struct std::hash<rtsm::Id<Tag>> {
  std::size_t operator()(const rtsm::Id<Tag>& id) const noexcept {
    return std::hash<typename rtsm::Id<Tag>::value_type>{}(id.value());
  }
};
