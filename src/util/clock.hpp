#pragma once

#include <chrono>

namespace rtsm {

/// Microseconds of wall clock elapsed since @p since (steady clock; used
/// for mapper-latency accounting and bench timing).
[[nodiscard]] inline double elapsed_us(
    std::chrono::steady_clock::time_point since) {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(now - since).count();
}

}  // namespace rtsm
