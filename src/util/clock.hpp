#pragma once

#include <chrono>
#include <cstdint>

namespace rtsm {

/// Microseconds of wall clock elapsed since @p since (steady clock; used
/// for mapper-latency accounting and bench timing).
[[nodiscard]] inline double elapsed_us(
    std::chrono::steady_clock::time_point since) {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(now - since).count();
}

/// Integer nanoseconds since @p since, for atomic phase-time counters
/// (a double cannot be fetch_add'ed portably).
[[nodiscard]] inline std::uint64_t elapsed_ns(
    std::chrono::steady_clock::time_point since) {
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - since)
          .count());
}

}  // namespace rtsm
