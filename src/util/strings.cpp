#include "util/strings.hpp"

#include <array>
#include <cstdio>

namespace rtsm {

std::string join(std::span<const std::string> parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double value, int decimals) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", decimals, value);
  return buf.data();
}

std::string format_phase_vector(std::span<const std::uint32_t> values) {
  std::string out = "<";
  std::size_t i = 0;
  bool first = true;
  while (i < values.size()) {
    std::size_t run = 1;
    while (i + run < values.size() && values[i + run] == values[i]) ++run;
    if (!first) out += ", ";
    first = false;
    out += std::to_string(values[i]);
    if (run > 1) out += "^" + std::to_string(run);
    i += run;
  }
  out += ">";
  return out;
}

std::string group_digits(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group =
      digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace rtsm
