#include "util/rational.hpp"

#include <cstdlib>
#include <limits>
#include <ostream>

#include "util/error.hpp"

namespace rtsm {

namespace {

using Int128 = __int128;

std::int64_t checked_narrow(Int128 v, const char* context) {
  require(v >= std::numeric_limits<std::int64_t>::min() &&
              v <= std::numeric_limits<std::int64_t>::max(),
          std::string("Rational overflow in ") + context);
  return static_cast<std::int64_t>(v);
}

}  // namespace

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  require(a > 0 && b > 0, "lcm64 requires positive operands");
  const std::int64_t g = gcd64(a, b);
  const Int128 result = static_cast<Int128>(a / g) * b;
  return checked_narrow(result, "lcm64");
}

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  require(den_ != 0, "Rational with zero denominator");
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  const std::int64_t g = gcd64(num_, den_);
  num_ /= g;
  den_ /= g;
}

std::int64_t Rational::to_integer() const {
  require(den_ == 1, "Rational::to_integer on non-integer " + to_string());
  return num_;
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = checked_narrow(-static_cast<Int128>(num_), "negation");
  r.den_ = den_;
  return r;
}

Rational Rational::operator+(const Rational& rhs) const {
  const Int128 n = static_cast<Int128>(num_) * rhs.den_ +
                   static_cast<Int128>(rhs.num_) * den_;
  const Int128 d = static_cast<Int128>(den_) * rhs.den_;
  // Reduce in 128 bits first so intermediate blowup does not spuriously
  // overflow the 64-bit narrow.
  Int128 a = n < 0 ? -n : n;
  Int128 b = d;
  while (b != 0) {
    const Int128 t = a % b;
    a = b;
    b = t;
  }
  if (a == 0) return Rational{};
  return {checked_narrow(n / a, "addition"), checked_narrow(d / a, "addition")};
}

Rational Rational::operator-(const Rational& rhs) const {
  return *this + (-rhs);
}

Rational Rational::operator*(const Rational& rhs) const {
  // Cross-reduce before multiplying to keep intermediates small.
  const std::int64_t g1 =
      num_ == 0 ? 1 : std::max<std::int64_t>(gcd64(num_, rhs.den_), 1);
  const std::int64_t g2 =
      rhs.num_ == 0 ? 1 : std::max<std::int64_t>(gcd64(rhs.num_, den_), 1);
  const Int128 n = static_cast<Int128>(num_ / g1) * (rhs.num_ / g2);
  const Int128 d = static_cast<Int128>(den_ / g2) * (rhs.den_ / g1);
  return {checked_narrow(n, "multiplication"),
          checked_narrow(d, "multiplication")};
}

Rational Rational::operator/(const Rational& rhs) const {
  require(rhs.num_ != 0, "Rational division by zero");
  return *this * rhs.inverse();
}

Rational Rational::inverse() const {
  require(num_ != 0, "Rational::inverse of zero");
  return {den_, num_};
}

std::strong_ordering Rational::operator<=>(const Rational& rhs) const {
  const Int128 lhs_v = static_cast<Int128>(num_) * rhs.den_;
  const Int128 rhs_v = static_cast<Int128>(rhs.num_) * den_;
  if (lhs_v < rhs_v) return std::strong_ordering::less;
  if (lhs_v > rhs_v) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace rtsm
