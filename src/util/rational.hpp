#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace rtsm {

/// Exact rational number on 64-bit integers.
///
/// Used by the CSDF balance-equation solver, where floating point would make
/// consistency checks unreliable. Always stored normalised: gcd(num, den) = 1
/// and den > 0. Arithmetic detects signed overflow (via 128-bit intermediates)
/// and throws rtsm::Error rather than wrapping.
class Rational {
 public:
  /// Zero.
  constexpr Rational() = default;

  /// Whole number @p n.
  constexpr Rational(std::int64_t n) : num_(n), den_(1) {}  // NOLINT

  /// @p num / @p den, normalised. Throws rtsm::Error if den == 0.
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }

  [[nodiscard]] bool is_zero() const { return num_ == 0; }
  [[nodiscard]] bool is_integer() const { return den_ == 1; }

  /// Integer value; throws rtsm::Error unless is_integer().
  [[nodiscard]] std::int64_t to_integer() const;

  /// Closest double approximation.
  [[nodiscard]] double to_double() const;

  Rational operator-() const;
  Rational operator+(const Rational& rhs) const;
  Rational operator-(const Rational& rhs) const;
  Rational operator*(const Rational& rhs) const;
  /// Throws rtsm::Error on division by zero.
  Rational operator/(const Rational& rhs) const;

  Rational& operator+=(const Rational& rhs) { return *this = *this + rhs; }
  Rational& operator-=(const Rational& rhs) { return *this = *this - rhs; }
  Rational& operator*=(const Rational& rhs) { return *this = *this * rhs; }
  Rational& operator/=(const Rational& rhs) { return *this = *this / rhs; }

  bool operator==(const Rational& rhs) const = default;
  std::strong_ordering operator<=>(const Rational& rhs) const;

  /// Reciprocal; throws rtsm::Error when zero.
  [[nodiscard]] Rational inverse() const;

  /// "num/den", or just "num" for integers.
  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

/// Least common multiple of two positive integers (overflow-checked).
[[nodiscard]] std::int64_t lcm64(std::int64_t a, std::int64_t b);

/// Greatest common divisor (non-negative result).
[[nodiscard]] std::int64_t gcd64(std::int64_t a, std::int64_t b);

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace rtsm
