#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rtsm {

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// All stochastic components of the library (synthetic workload generation,
/// simulated annealing, random mapping baselines) draw from this generator so
/// experiments are exactly reproducible from a seed. Not suitable for
/// cryptography, by design.
class Rng {
 public:
  /// Seeds the stream; equal seeds yield equal sequences on all platforms.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability @p p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Uniformly chosen index into a container of @p size elements.
  /// Requires size > 0.
  std::size_t pick_index(std::size_t size);

  /// Fisher-Yates shuffle of @p items.
  template <class T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = pick_index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Uniformly chosen element reference. Requires non-empty span.
  template <class T>
  const T& pick(std::span<const T> items) {
    return items[pick_index(items.size())];
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace rtsm
