#include "audit/lockdep.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "audit/mutex.hpp"

namespace rtsm::audit {

namespace {

// The handler registry is active in every build (tests install handlers
// even when the lockdep hooks are compiled out), guarded by a *raw*
// std::mutex: the audit layer must not audit itself.
std::mutex g_handler_mutex;
ViolationHandler g_handler;  // empty = default print-and-abort

}  // namespace

ViolationHandler set_violation_handler(ViolationHandler handler) {
  const std::lock_guard lock(g_handler_mutex);
  return std::exchange(g_handler, std::move(handler));
}

void report_violation(const Violation& violation) {
  ViolationHandler handler;
  {
    const std::lock_guard lock(g_handler_mutex);
    handler = g_handler;
  }
  if (handler) {
    handler(violation);
    return;
  }
  std::fprintf(stderr, "rtsm audit violation: %s\n",
               violation.message.c_str());
  std::abort();
}

namespace lockdep {

#if RTSM_AUDIT

namespace {

struct HeldLock {
  const Mutex* mutex = nullptr;
  bool trylock = false;
};

// Per-thread stack of audited locks currently held, innermost last.
thread_local std::vector<HeldLock> t_held;

/// Class-level witness graph: nodes are lock classes (the name passed to
/// the audit::Mutex constructor), edges record "a thread blocked on B
/// while holding A". Class granularity is what makes the graph total
/// across instances — two managers' state mutexes share one node, so an
/// ABBA between distinct instances of the same class shows up as a self
/// edge. Guarded by a raw std::mutex (the audit layer must not audit
/// itself); acquisitions only take it when a blocking acquire happens
/// while at least one other lock is held.
class WitnessGraph {
 public:
  /// Registers edge @p from -> @p to; on a *new* edge, checks whether the
  /// graph now contains a cycle through it and reports the violation.
  void add_edge(const char* from, const char* to) {
    std::string cycle;
    {
      const std::lock_guard lock(mutex_);
      const std::size_t a = node(from);
      const std::size_t b = node(to);
      bool known = false;
      for (const std::size_t succ : edges_[a]) {
        if (succ == b) {
          known = true;
          break;
        }
      }
      if (known) return;
      edges_[a].push_back(b);
      ++edge_count_;
      std::vector<std::size_t> path;
      if (reaches(b, a, path)) {
        cycle = names_[a];
        cycle += " -> ";
        cycle += names_[b];
        for (const std::size_t hop : path) {
          cycle += " -> ";
          cycle += names_[hop];
        }
      }
    }
    if (!cycle.empty()) {
      ++violation_count_;
      report_violation(
          {Violation::Kind::WitnessCycle,
           "lock witness graph gained a cycle: " + cycle +
               " (some interleaving of these acquisitions can deadlock)"});
    }
  }

  [[nodiscard]] bool acyclic() {
    const std::lock_guard lock(mutex_);
    // A fresh DFS over the whole graph, independent of the incremental
    // checks (used by tests and the RTSM_AUDIT suite's final assertion).
    std::vector<int> state(edges_.size(), 0);  // 0 new, 1 open, 2 done
    for (std::size_t n = 0; n < edges_.size(); ++n) {
      if (state[n] == 0 && !dfs_acyclic(n, state)) return false;
    }
    return true;
  }

  [[nodiscard]] std::uint64_t edge_count() {
    const std::lock_guard lock(mutex_);
    return edge_count_;
  }

  [[nodiscard]] std::uint64_t violation_count() {
    return violation_count_.load();
  }

  void count_violation() { ++violation_count_; }

  void reset() {
    const std::lock_guard lock(mutex_);
    names_.clear();
    edges_.clear();
    edge_count_ = 0;
    violation_count_ = 0;
  }

 private:
  std::size_t node(const char* name) {
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return i;
    }
    names_.emplace_back(name);
    edges_.emplace_back();
    return names_.size() - 1;
  }

  /// DFS: does @p to reach @p target? Fills @p path with the hops of the
  /// found route (excluding @p to, including @p target).
  bool reaches(std::size_t from, std::size_t target,
               std::vector<std::size_t>& path) {
    for (const std::size_t succ : edges_[from]) {
      path.push_back(succ);
      if (succ == target || reaches(succ, target, path)) return true;
      path.pop_back();
    }
    return false;
  }

  bool dfs_acyclic(std::size_t n, std::vector<int>& state) {
    state[n] = 1;
    for (const std::size_t succ : edges_[n]) {
      if (state[succ] == 1) return false;
      if (state[succ] == 0 && !dfs_acyclic(succ, state)) return false;
    }
    state[n] = 2;
    return true;
  }

  std::mutex mutex_;
  std::vector<std::string> names_;
  std::vector<std::vector<std::size_t>> edges_;
  std::uint64_t edge_count_ = 0;
  std::atomic<std::uint64_t> violation_count_{0};
};

WitnessGraph& witness() {
  static WitnessGraph graph;
  return graph;
}

std::atomic<std::uint64_t> g_acquisitions{0};

}  // namespace

void before_lock(const Mutex* m) {
  for (const HeldLock& held : t_held) {
    if (held.mutex == m) {
      witness().count_violation();
      report_violation({Violation::Kind::RankOrder,
                        std::string("re-entrant lock of audit::Mutex '") +
                            m->name() + "' (self-deadlock)"});
      return;
    }
    if (static_cast<int>(held.mutex->rank()) >=
        static_cast<int>(m->rank())) {
      witness().count_violation();
      report_violation(
          {Violation::Kind::RankOrder,
           std::string("lock rank inversion: blocking on '") + m->name() +
               "' (rank " + std::to_string(static_cast<int>(m->rank())) +
               ") while holding '" + held.mutex->name() + "' (rank " +
               std::to_string(static_cast<int>(held.mutex->rank())) + ")"});
      return;
    }
  }
}

void after_lock(const Mutex* m, bool trylock) {
  ++g_acquisitions;
  if (!trylock) {
    // Witness edges record "blocked on m while holding h" for every held
    // lock h — including trylocked ones: a trylocked hold still blocks
    // *other* threads that contend for it.
    for (const HeldLock& held : t_held) {
      witness().add_edge(held.mutex->name(), m->name());
    }
  }
  t_held.push_back({m, trylock});
}

void after_unlock(const Mutex* m) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mutex == m) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

std::size_t held_count() { return t_held.size(); }

Stats stats() {
  Stats s;
  s.acquisitions = g_acquisitions.load();
  s.edges = witness().edge_count();
  s.violations = witness().violation_count();
  return s;
}

bool witness_acyclic() { return witness().acyclic(); }

void reset_for_testing() {
  witness().reset();
  g_acquisitions = 0;
}

#else  // !RTSM_AUDIT

// Release builds: the hooks exist (so tests and tools link in every
// configuration) but audit::Mutex never calls them.
void before_lock(const Mutex*) {}
void after_lock(const Mutex*, bool) {}
void after_unlock(const Mutex*) {}
std::size_t held_count() { return 0; }
Stats stats() { return {}; }
bool witness_acyclic() { return true; }
void reset_for_testing() {}

#endif  // RTSM_AUDIT

}  // namespace lockdep

}  // namespace rtsm::audit
