#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace rtsm::audit {

class Mutex;

/// A correctness violation detected by the audit layer: a lock acquired
/// against the rank order, a cycle in the witness graph, or a
/// check_state() mismatch. Delivered to the installed violation handler;
/// the default handler prints the message and aborts, because continuing
/// past a detected potential deadlock or accounting drift would only let
/// the corruption propagate.
struct Violation {
  enum class Kind : std::uint8_t {
    /// Blocking acquisition of a mutex whose rank is not strictly above
    /// every lock already held by this thread (includes re-entry).
    RankOrder,
    /// The global witness graph of observed hold-while-acquiring edges
    /// gained a cycle: some interleaving of the involved threads can
    /// deadlock, even if this run never will.
    WitnessCycle,
    /// audit::check_state() found ResourceState's incremental accounting
    /// out of step with a from-first-principles replay.
    StateMismatch,
  };

  Kind kind = Kind::RankOrder;
  std::string message;
};

using ViolationHandler = std::function<void(const Violation&)>;

/// Installs @p handler (tests capture violations instead of aborting) and
/// returns the previous handler. Pass nullptr to restore the default
/// print-and-abort behaviour.
ViolationHandler set_violation_handler(ViolationHandler handler);

/// Routes @p violation to the installed handler (default: stderr + abort).
void report_violation(const Violation& violation);

namespace lockdep {

/// Counters for smoke tests and the stats report.
struct Stats {
  std::uint64_t acquisitions = 0;  ///< Audited lock acquisitions.
  std::uint64_t edges = 0;         ///< Distinct witness-graph edges seen.
  std::uint64_t violations = 0;    ///< Violations reported (all kinds).
};

// The hooks below are called by audit::Mutex only in RTSM_AUDIT builds;
// in release builds they are never referenced from the lock/unlock fast
// path, so their mere existence costs nothing.

/// Rank gate before a *blocking* acquisition: every lock this thread
/// already holds must rank strictly below @p m. try_lock skips this gate —
/// a non-blocking probe cannot contribute to a deadlock cycle.
void before_lock(const Mutex* m);

/// Records a successful acquisition on the thread-local held stack. A
/// blocking acquisition (@p trylock == false) also adds witness edges
/// held-class -> acquired-class and fails fast if one closes a cycle;
/// trylocked holds still serve as edge *sources* for later blocking
/// acquisitions.
void after_lock(const Mutex* m, bool trylock);

/// Removes @p m from the thread-local held stack (out-of-order release of
/// hand-over-hand patterns is legal).
void after_unlock(const Mutex* m);

/// Locks this thread currently holds (audited mutexes only).
[[nodiscard]] std::size_t held_count();

[[nodiscard]] Stats stats();

/// True when the accumulated witness graph has no cycle.
[[nodiscard]] bool witness_acyclic();

/// Clears the witness graph and counters (not the per-thread held stacks;
/// callers must not hold audited locks). Test-only.
void reset_for_testing();

}  // namespace lockdep

}  // namespace rtsm::audit
