#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/mapping.hpp"
#include "core/resource_state.hpp"
#include "kpn/application.hpp"

namespace rtsm::audit {

/// One live (application, mapping) pair a manager currently accounts for.
/// The auditor replays these through core::commit_mapping to rebuild the
/// books from first principles.
struct LiveApp {
  std::shared_ptr<const kpn::Application> app;
  const core::Mapping* mapping = nullptr;
};

/// Outcome of one conservation audit. ok == issues.empty().
struct CheckResult {
  bool ok = true;
  /// One human-readable line per detected discrepancy (tile id, quantity,
  /// live vs. replayed value).
  std::vector<std::string> issues;
};

/// Recomputes what @p live *should* book — per-tile utilisation, memory,
/// process slots and per-link load — by committing every app in
/// @p running into a fresh ResourceState over the same platform, through
/// the very mutators the incremental accounting uses. Compares the replay
/// against @p live: utilisation and link load within a relative 1e-9
/// (float sums are order-dependent across concurrent histories), memory
/// and process counts exactly. Also checks the journal window invariant
/// (the ring covers at most journal-capacity trailing versions) and that
/// no tile is booked outside [0, 1] utilisation or beyond its memory.
/// @p where tags the calling boundary ("commit", "release", ...) in the
/// issue messages.
[[nodiscard]] CheckResult check_state(const core::ResourceState& live,
                                      const std::vector<LiveApp>& running,
                                      const std::string& where);

/// check_state + report: routes every issue to the audit violation
/// handler as one Kind::StateMismatch (default: print and abort). The
/// RTSM_AUDIT boundary hooks in the managers call this.
void audit_state(const core::ResourceState& live,
                 const std::vector<LiveApp>& running,
                 const std::string& where);

}  // namespace rtsm::audit
