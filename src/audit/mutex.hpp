#pragma once

#include <mutex>

#include "audit/annotations.hpp"
#include "audit/lockdep.hpp"

namespace rtsm::audit {

/// Global acquisition order of every mutex in the tree: a thread may only
/// block on a lock whose rank is *strictly above* every lock it already
/// holds. The table linearises the nesting observed in the managers and
/// the fleet (outermost first); see docs/architecture.md "Correctness
/// tooling" for the per-edge justification.
enum class LockRank : int {
  // Fleet layer — outermost: fleet locks are held across manager calls.
  kFleetMaintenance = 10,  ///< FleetManager::maintenance_mutex_ (cv sleep).
  kFleetDefrag = 15,       ///< FleetManager::defrag_mutex_.
  kFleetRoute = 20,        ///< FleetManager::route_mutex_.
  kFleetStats = 25,        ///< FleetManager::stats_mutex_.

  // Manager layer. The shard lock ranks below the shape library: phase-1
  // sharded admission holds its stripe lock across validate_and_commit,
  // whose learn-on-admit tail takes the library lock.
  kManagerPump = 30,     ///< ConcurrentRuntimeManager::pump_mutex_.
  kManagerShard = 35,    ///< ConcurrentRuntimeManager::Shard::mutex.
  kShapeLibrary = 40,    ///< shapes::ShapeLibrary::mutex_.
  kManagerObserver = 45, ///< ConcurrentRuntimeManager::observer_mutex_.
  kManagerState = 50,    ///< ConcurrentRuntimeManager::state_mutex_.
  kPortfolioRace = 55,   ///< runtime::PortfolioRace::mutex_.

  // Mapper-shared caches — taken under state_mutex_ by the defrag /
  // preemption / mode-switch paths that run the mapper while holding the
  // live state.
  kVerifyEngine = 60,    ///< verify::Engine::mutex_.
  kExpansionCache = 65,  ///< verify::ExpansionCache::mutex_.
  kRouteCache = 70,      ///< noc::RouteCache::mutex_.

  // Manager leaf locks — only ever innermost.
  kManagerStats = 75,    ///< both managers' stats_mutex_.
  kManagerWaiting = 80,  ///< ConcurrentRuntimeManager::waiting_mutex_.
  kQueue = 85,           ///< runtime::BoundedQueue::mutex_.
  kManagerIdle = 90,     ///< ConcurrentRuntimeManager::idle_mutex_.
  kFleetIdle = 95,       ///< FleetManager::idle_mutex_.
};

/// std::mutex wrapper carrying a clang thread-safety capability, a static
/// lockdep rank and a class name. In release builds (RTSM_AUDIT off) every
/// audit hook compiles away and the wrapper is layout-identical to the
/// std::mutex it replaces (static_assert below).
class RTSM_CAPABILITY("mutex") Mutex {
 public:
#if RTSM_AUDIT
  explicit Mutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}
#else
  explicit Mutex(LockRank, const char*) {}
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RTSM_ACQUIRE() {
#if RTSM_AUDIT
    lockdep::before_lock(this);
#endif
    impl_.lock();
#if RTSM_AUDIT
    lockdep::after_lock(this, /*trylock=*/false);
#endif
  }

  void unlock() RTSM_RELEASE() {
#if RTSM_AUDIT
    lockdep::after_unlock(this);
#endif
    impl_.unlock();
  }

  [[nodiscard]] bool try_lock() RTSM_TRY_ACQUIRE(true) {
    const bool acquired = impl_.try_lock();
#if RTSM_AUDIT
    if (acquired) lockdep::after_lock(this, /*trylock=*/true);
#endif
    return acquired;
  }

#if RTSM_AUDIT
  [[nodiscard]] LockRank rank() const { return rank_; }
  [[nodiscard]] const char* name() const { return name_; }
#endif

 private:
  std::mutex impl_;
#if RTSM_AUDIT
  LockRank rank_;
  const char* name_;
#endif
};

#if !RTSM_AUDIT
// The zero-overhead contract: without RTSM_AUDIT the wrapper must be
// layout-identical to the std::mutex it replaces — no rank, no name, no
// vtable, nothing.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "audit::Mutex must add no state in release builds");
#endif

/// std::lock_guard equivalent over audit::Mutex, annotated as a scoped
/// capability so clang tracks the critical section.
class RTSM_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) RTSM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

  ~LockGuard() RTSM_RELEASE() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

/// std::unique_lock over audit::Mutex: movable critical section that
/// condition_variable_any can unlock/relock, with the audit hooks firing
/// on every transition (a parked waiter really does not hold the lock).
/// clang's analysis cannot model a lock whose ownership is a run-time
/// property, so functions using UniqueLock with waits are annotated
/// RTSM_NO_THREAD_SAFETY_ANALYSIS; the lockdep layer still audits them.
using UniqueLock = std::unique_lock<Mutex>;

}  // namespace rtsm::audit
