#include "audit/check_state.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "audit/lockdep.hpp"
#include "core/mapper.hpp"
#include "util/error.hpp"

namespace rtsm::audit {

namespace {

/// Mirrors ResourceState::approx_equals: float sums (utilisation, link
/// rates) are compared within a relative tolerance because their rounding
/// depends on commit order; everything integral must match exactly.
constexpr double kRelEps = 1e-9;

bool close(double a, double b) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= kRelEps * scale;
}

void add_issue(CheckResult& result, const std::string& where,
               std::string detail) {
  result.ok = false;
  result.issues.push_back("[" + where + "] " + std::move(detail));
}

}  // namespace

CheckResult check_state(const core::ResourceState& live,
                        const std::vector<LiveApp>& running,
                        const std::string& where) {
  CheckResult result;
  const arch::Platform& platform = live.platform();

  // Rebuild the books from first principles: an empty state plus one
  // commit per live application, through the same mutators the managers
  // use. Only the summation order can differ from the live history.
  core::ResourceState replayed(platform);
  for (const LiveApp& run : running) {
    if (run.app == nullptr || run.mapping == nullptr) {
      add_issue(result, where, "running set contains a null app or mapping");
      return result;
    }
    try {
      core::commit_mapping(replayed, *run.app, *run.mapping);
    } catch (const Error& e) {
      // The replay over-committing a tile or link means the live books
      // under-count what is actually reserved (the commit of this very
      // mapping succeeded against them earlier).
      add_issue(result, where,
                "replaying live mappings overflows the platform (live "
                "accounting under-counts): " +
                    std::string(e.what()));
      return result;
    }
  }

  for (std::uint32_t i = 0; i < platform.tile_count(); ++i) {
    const TileId tile{i};
    const double live_util = live.utilization(tile);
    const double replay_util = replayed.utilization(tile);
    if (!close(live_util, replay_util)) {
      add_issue(result, where,
                "tile " + std::to_string(i) + " utilisation drift: live " +
                    std::to_string(live_util) + " vs replayed " +
                    std::to_string(replay_util));
    }
    if (live_util < -core::ResourceState::kUtilSlack ||
        live_util > 1.0 + core::ResourceState::kUtilSlack) {
      add_issue(result, where,
                "tile " + std::to_string(i) + " utilisation " +
                    std::to_string(live_util) + " outside [0, 1]");
    }
    if (live.memory_used(tile) != replayed.memory_used(tile)) {
      add_issue(result, where,
                "tile " + std::to_string(i) + " memory drift: live " +
                    std::to_string(live.memory_used(tile)) +
                    " vs replayed " +
                    std::to_string(replayed.memory_used(tile)));
    }
    if (live.memory_used(tile) > platform.tile(tile).memory_bytes) {
      add_issue(result, where,
                "tile " + std::to_string(i) + " books " +
                    std::to_string(live.memory_used(tile)) +
                    " bytes beyond its capacity " +
                    std::to_string(platform.tile(tile).memory_bytes));
    }
    if (live.processes_hosted(tile) != replayed.processes_hosted(tile)) {
      add_issue(result, where,
                "tile " + std::to_string(i) + " process-count drift: live " +
                    std::to_string(live.processes_hosted(tile)) +
                    " vs replayed " +
                    std::to_string(replayed.processes_hosted(tile)));
    }
  }

  for (std::uint32_t i = 0; i < platform.link_count(); ++i) {
    const LinkId link{i};
    const double live_rate = live.links().reserved(link);
    const double replay_rate = replayed.links().reserved(link);
    if (!close(live_rate, replay_rate)) {
      add_issue(result, where,
                "link " + std::to_string(i) + " load drift: live " +
                    std::to_string(live_rate) + " vs replayed " +
                    std::to_string(replay_rate));
    }
  }

  // Journal-window consistency: the ring holds the entries taking the
  // state from journal_start_version() to version(), so the window may
  // never exceed the ring capacity or run ahead of the state.
  if (live.journal_enabled()) {
    const std::uint64_t version = live.version();
    const std::uint64_t start = live.journal_start_version();
    if (start > version) {
      add_issue(result, where,
                "journal window starts at version " + std::to_string(start) +
                    " ahead of state version " + std::to_string(version));
    } else if (version - start > live.journal_capacity()) {
      add_issue(result, where,
                "journal window [" + std::to_string(start) + ", " +
                    std::to_string(version) + ") wider than its ring (" +
                    std::to_string(live.journal_capacity()) + " entries)");
    }
  }

  return result;
}

void audit_state(const core::ResourceState& live,
                 const std::vector<LiveApp>& running,
                 const std::string& where) {
  const CheckResult result = check_state(live, running, where);
  if (result.ok) return;
  std::string message =
      "ResourceState conservation check failed at '" + where + "':";
  for (const std::string& issue : result.issues) {
    message += "\n  " + issue;
  }
  report_violation({Violation::Kind::StateMismatch, std::move(message)});
}

}  // namespace rtsm::audit
