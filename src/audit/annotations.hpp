#pragma once

/// Clang thread-safety-analysis attribute layer.
///
/// Every macro expands to the corresponding clang `thread_safety`
/// attribute under clang and to nothing elsewhere, so the annotations are
/// a compile-time contract checked by the clang CI leg
/// (`-Wthread-safety -Werror=thread-safety-analysis`) and completely
/// invisible to gcc. Conventions:
///
///  - every in-tree mutex is an audit::Mutex (RTSM_CAPABILITY type);
///  - fields written under a mutex carry RTSM_GUARDED_BY(mutex);
///  - `*_locked()` helpers that assume the caller holds a mutex carry
///    RTSM_REQUIRES(mutex);
///  - functions that park on a condition variable are
///    RTSM_NO_THREAD_SAFETY_ANALYSIS with a comment saying why (the
///    analysis cannot see through a wait's unlock/relock cycle).

#if defined(__clang__)
#define RTSM_TSA(x) __attribute__((x))
#else
#define RTSM_TSA(x)
#endif

/// A type whose instances can be held: audit::Mutex.
#define RTSM_CAPABILITY(x) RTSM_TSA(capability(x))

/// RAII type that acquires in its constructor and releases in its
/// destructor: audit::LockGuard / audit::UniqueLock.
#define RTSM_SCOPED_CAPABILITY RTSM_TSA(scoped_lockable)

/// Field that may only be read or written while holding the named mutex.
#define RTSM_GUARDED_BY(x) RTSM_TSA(guarded_by(x))

/// Pointer field whose *pointee* is guarded by the named mutex.
#define RTSM_PT_GUARDED_BY(x) RTSM_TSA(pt_guarded_by(x))

/// Function that acquires the capability and returns holding it.
#define RTSM_ACQUIRE(...) RTSM_TSA(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define RTSM_RELEASE(...) RTSM_TSA(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns the given value.
#define RTSM_TRY_ACQUIRE(...) RTSM_TSA(try_acquire_capability(__VA_ARGS__))

/// Function that must be entered with the capability already held.
#define RTSM_REQUIRES(...) RTSM_TSA(requires_capability(__VA_ARGS__))

/// Function that must NOT be entered holding the capability (it will
/// acquire it itself; documents non-reentrancy).
#define RTSM_EXCLUDES(...) RTSM_TSA(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the named capability.
#define RTSM_RETURN_CAPABILITY(x) RTSM_TSA(lock_returned(x))

/// Escape hatch for code the analysis cannot follow (condition-variable
/// wait loops, lock handoff through std::unique_lock). Always pair with a
/// comment explaining the manual argument.
#define RTSM_NO_THREAD_SAFETY_ANALYSIS RTSM_TSA(no_thread_safety_analysis)
