#pragma once

#include <array>
#include <cstdint>

namespace rtsm::arch {

/// A mesh coordinate: the (x, y) position of a router and of the tile
/// attached to it. Shapes (see src/shapes/) store placements as coordinate
/// sets, so the same geometry applies at any anchor of any mesh.
struct Coord {
  std::uint32_t x = 0;
  std::uint32_t y = 0;

  constexpr auto operator<=>(const Coord&) const = default;
};

/// The eight rigid symmetries of the square lattice (the dihedral group
/// D4): every hop-count-preserving way a placement's bounding box can be
/// laid back onto a mesh. Rotations are counter-clockwise.
enum class MeshSymmetry : std::uint8_t {
  Identity,
  Rot90,
  Rot180,
  Rot270,
  FlipX,          ///< Mirror across the vertical axis (x -> w-1-x).
  FlipY,          ///< Mirror across the horizontal axis (y -> h-1-y).
  Transpose,      ///< Mirror across the main diagonal (x <-> y).
  AntiTranspose,  ///< Mirror across the anti-diagonal.
};

inline constexpr std::array<MeshSymmetry, 8> kAllMeshSymmetries = {
    MeshSymmetry::Identity, MeshSymmetry::Rot90,
    MeshSymmetry::Rot180,   MeshSymmetry::Rot270,
    MeshSymmetry::FlipX,    MeshSymmetry::FlipY,
    MeshSymmetry::Transpose, MeshSymmetry::AntiTranspose,
};

/// Extent (width, height) of a bounding box after applying @p s: the four
/// transposing elements (Rot90, Rot270, Transpose, AntiTranspose) swap the
/// two dimensions, the others keep them.
[[nodiscard]] constexpr Coord transformed_extent(MeshSymmetry s,
                                                 Coord extent) {
  switch (s) {
    case MeshSymmetry::Rot90:
    case MeshSymmetry::Rot270:
    case MeshSymmetry::Transpose:
    case MeshSymmetry::AntiTranspose:
      return {extent.y, extent.x};
    default:
      return extent;
  }
}

/// Applies @p s to @p c within a bounding box of @p extent. @p c must lie
/// inside the box; the result lies inside transformed_extent(s, extent).
[[nodiscard]] constexpr Coord apply_symmetry(MeshSymmetry s, Coord c,
                                             Coord extent) {
  const std::uint32_t w = extent.x;
  const std::uint32_t h = extent.y;
  switch (s) {
    case MeshSymmetry::Identity:
      return c;
    case MeshSymmetry::Rot90:
      return {c.y, w - 1 - c.x};
    case MeshSymmetry::Rot180:
      return {w - 1 - c.x, h - 1 - c.y};
    case MeshSymmetry::Rot270:
      return {h - 1 - c.y, c.x};
    case MeshSymmetry::FlipX:
      return {w - 1 - c.x, c.y};
    case MeshSymmetry::FlipY:
      return {c.x, h - 1 - c.y};
    case MeshSymmetry::Transpose:
      return {c.y, c.x};
    case MeshSymmetry::AntiTranspose:
      return {h - 1 - c.y, w - 1 - c.x};
  }
  return c;  // unreachable
}

/// An anchor transform: one D4 symmetry followed by a translation. Mapping
/// shapes are stored in canonical (origin-anchored, symmetry-minimal) form
/// and instantiated onto the live mesh through a MeshTransform.
struct MeshTransform {
  MeshSymmetry symmetry = MeshSymmetry::Identity;
  std::uint32_t dx = 0;
  std::uint32_t dy = 0;

  /// Image of canonical coordinate @p c (inside a shape of @p extent).
  [[nodiscard]] constexpr Coord apply(Coord c, Coord extent) const {
    const Coord t = apply_symmetry(symmetry, c, extent);
    return {t.x + dx, t.y + dy};
  }
};

}  // namespace rtsm::arch
