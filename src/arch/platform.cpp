#include "arch/platform.hpp"

#include <cmath>
#include <cstdlib>

#include "util/error.hpp"

namespace rtsm::arch {

Platform::Platform(std::string name, std::uint32_t mesh_width,
                   std::uint32_t mesh_height, NocParams noc)
    : name_(std::move(name)), width_(mesh_width), height_(mesh_height),
      noc_(noc) {
  require(width_ > 0 && height_ > 0, "platform mesh must be non-empty");
  require(noc_.link_capacity_tokens_per_s > 0,
          "NoC link capacity must be positive");
  require(noc_.noc_clock_hz > 0, "NoC clock must be positive");

  router_out_.resize(router_count());
  router_tiles_.resize(router_count());

  // Eagerly create all router-to-router mesh links (4-neighbour, directed).
  for (std::uint32_t y = 0; y < height_; ++y) {
    for (std::uint32_t x = 0; x < width_; ++x) {
      const RouterId from = router_at(x, y);
      auto connect = [&](std::uint32_t nx, std::uint32_t ny) {
        const RouterId to = router_at(nx, ny);
        links_.push_back(Link{LinkKind::RouterToRouter, from, to, TileId{},
                              noc_.link_capacity_tokens_per_s});
        router_out_[from.value()].push_back(
            LinkId{static_cast<LinkId::value_type>(links_.size() - 1)});
      };
      if (x + 1 < width_) connect(x + 1, y);
      if (x > 0) connect(x - 1, y);
      if (y + 1 < height_) connect(x, y + 1);
      if (y > 0) connect(x, y - 1);
    }
  }
}

TileTypeId Platform::add_tile_type(const std::string& name,
                                   std::uint64_t clock_hz) {
  for (const TileType& t : types_) {
    require(t.name != name, "duplicate tile type '" + name + "'");
  }
  require(clock_hz > 0, "tile type clock must be positive");
  types_.push_back(TileType{name, clock_hz});
  return TileTypeId{static_cast<TileTypeId::value_type>(types_.size() - 1)};
}

TileId Platform::add_tile(const std::string& name, TileTypeId type,
                          std::uint32_t x, std::uint32_t y,
                          std::uint64_t memory_bytes,
                          std::uint32_t process_slots) {
  check_type(type);
  require(x < width_ && y < height_,
          "tile '" + name + "' placed outside the mesh");
  require(process_slots >= 1, "tile '" + name + "' needs >= 1 process slot");
  for (const Tile& t : tiles_) {
    require(t.name != name, "duplicate tile name '" + name + "'");
  }
  tiles_.push_back(Tile{name, type, x, y, memory_bytes, process_slots});
  const TileId id{static_cast<TileId::value_type>(tiles_.size() - 1)};
  const RouterId router = router_at(x, y);
  router_tiles_[router.value()].push_back(id);

  links_.push_back(Link{LinkKind::Inject, RouterId{}, router, id,
                        noc_.link_capacity_tokens_per_s});
  inject_.push_back(LinkId{static_cast<LinkId::value_type>(links_.size() - 1)});
  links_.push_back(Link{LinkKind::Eject, router, RouterId{}, id,
                        noc_.link_capacity_tokens_per_s});
  eject_.push_back(LinkId{static_cast<LinkId::value_type>(links_.size() - 1)});
  return id;
}

const TileType& Platform::tile_type(TileTypeId id) const {
  check_type(id);
  return types_[id.value()];
}

const Tile& Platform::tile(TileId id) const {
  check_tile(id);
  return tiles_[id.value()];
}

const Link& Platform::link(LinkId id) const {
  check_link(id);
  return links_[id.value()];
}

TileTypeId Platform::type_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name) {
      return TileTypeId{static_cast<TileTypeId::value_type>(i)};
    }
  }
  throw Error("unknown tile type '" + name + "' on platform '" + name_ + "'");
}

TileId Platform::tile_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    if (tiles_[i].name == name) {
      return TileId{static_cast<TileId::value_type>(i)};
    }
  }
  throw Error("unknown tile '" + name + "' on platform '" + name_ + "'");
}

std::vector<TileId> Platform::tile_ids() const {
  std::vector<TileId> ids;
  ids.reserve(tiles_.size());
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    ids.emplace_back(static_cast<TileId::value_type>(i));
  }
  return ids;
}

std::vector<TileId> Platform::tiles_of_type(TileTypeId type) const {
  check_type(type);
  std::vector<TileId> ids;
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    if (tiles_[i].type == type) {
      ids.emplace_back(static_cast<TileId::value_type>(i));
    }
  }
  return ids;
}

RouterId Platform::router_at(std::uint32_t x, std::uint32_t y) const {
  require(x < width_ && y < height_, "router coordinate outside the mesh");
  return RouterId{static_cast<RouterId::value_type>(y * width_ + x)};
}

std::pair<std::uint32_t, std::uint32_t> Platform::router_pos(
    RouterId router) const {
  require(router.valid() && router.value() < router_count(),
          "router id out of range");
  return {router.value() % width_, router.value() / width_};
}

RouterId Platform::tile_router(TileId tile) const {
  const Tile& t = this->tile(tile);
  return router_at(t.x, t.y);
}

std::uint32_t Platform::manhattan(TileId a, TileId b) const {
  const Tile& ta = tile(a);
  const Tile& tb = tile(b);
  return static_cast<std::uint32_t>(
      std::abs(static_cast<std::int64_t>(ta.x) - tb.x) +
      std::abs(static_cast<std::int64_t>(ta.y) - tb.y));
}

const std::vector<LinkId>& Platform::router_out_links(RouterId router) const {
  require(router.valid() && router.value() < router_count(),
          "router id out of range");
  return router_out_[router.value()];
}

LinkId Platform::inject_link(TileId tile) const {
  check_tile(tile);
  return inject_[tile.value()];
}

LinkId Platform::eject_link(TileId tile) const {
  check_tile(tile);
  return eject_[tile.value()];
}

const std::vector<TileId>& Platform::router_tiles(RouterId router) const {
  require(router.valid() && router.value() < router_count(),
          "router id out of range");
  return router_tiles_[router.value()];
}

std::uint64_t Platform::tile_clock_hz(TileId tile) const {
  return tile_type(this->tile(tile).type).clock_hz;
}

std::uint64_t Platform::cycles_to_ps(TileId tile, std::uint64_t cycles) const {
  const std::uint64_t hz = tile_clock_hz(tile);
  return cycles * 1'000'000'000'000ull / hz;
}

void Platform::check_type(TileTypeId id) const {
  require(id.valid() && id.value() < types_.size(),
          "tile type id out of range");
}

void Platform::check_tile(TileId id) const {
  require(id.valid() && id.value() < tiles_.size(), "tile id out of range");
}

void Platform::check_link(LinkId id) const {
  require(id.valid() && id.value() < links_.size(), "link id out of range");
}

}  // namespace rtsm::arch
