#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace rtsm::arch {

/// A class of processing elements (e.g. ARM, MONTIUM, ASIC I/O block).
struct TileType {
  std::string name;
  /// Clock of tiles of this type, Hz; converts WCET cycles to wall time.
  std::uint64_t clock_hz = 200'000'000;
};

/// A tile: one processing element plus its network interface, attached to
/// the router at mesh coordinate (x, y).
struct Tile {
  std::string name;
  TileTypeId type;
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  /// Local memory available for code, state and FIFO buffers, bytes.
  std::uint64_t memory_bytes = 64 * 1024;
  /// How many processes the tile can serve simultaneously. Single-context
  /// accelerators such as the MONTIUM hold one kernel configuration at a
  /// time (the paper: assigning one process "occupies" the tile); an
  /// RTOS-scheduled CPU tile may interleave several, bounded additionally
  /// by compute utilisation.
  std::uint32_t process_slots = 1;
};

/// Classification of directed NoC links.
enum class LinkKind {
  /// Router-to-router mesh link.
  RouterToRouter,
  /// Tile NI -> router (injection).
  Inject,
  /// Router -> tile NI (ejection).
  Eject,
};

/// A directed link of the NoC with a guaranteed-throughput capacity.
struct Link {
  LinkKind kind = LinkKind::RouterToRouter;
  RouterId from_router;  // valid for RouterToRouter and Eject
  RouterId to_router;    // valid for RouterToRouter and Inject
  TileId tile;           // valid for Inject and Eject
  /// Reservable throughput, tokens (32-bit words) per second.
  double capacity_tokens_per_s = 0.0;
};

/// NoC-wide parameters (Kavaldjiev-style guaranteed-throughput router [5]).
struct NocParams {
  /// Per-link reservable throughput, tokens per second
  /// (default: 1 token/cycle at 200 MHz).
  double link_capacity_tokens_per_s = 200e6;
  /// Worst-case cycles a token spends in one router (buffered inputs,
  /// round-robin arbitration; the paper uses 4).
  std::uint32_t router_latency_cc = 4;
  /// NoC clock, Hz.
  std::uint64_t noc_clock_hz = 200'000'000;
  /// Input buffer depth per router port, tokens; becomes the capacity of
  /// hop edges in the CSDF expansion.
  std::uint32_t hop_buffer_tokens = 4;

  /// Router latency in picoseconds.
  [[nodiscard]] std::uint64_t router_latency_ps() const {
    return static_cast<std::uint64_t>(router_latency_cc) *
           1'000'000'000'000ull / noc_clock_hz;
  }
};

/// A heterogeneous tiled MPSoC: a W x H router mesh with tiles attached to
/// routers (Figure 2 of the paper is a 3 x 3 instance).
///
/// Routers and router-to-router links are created eagerly with the mesh;
/// tile NI links are created as tiles are added. Tiles are kept in insertion
/// order, which defines the first-fit order used by mapping step 1.
class Platform {
 public:
  Platform(std::string name, std::uint32_t mesh_width,
           std::uint32_t mesh_height, NocParams noc = {});

  /// Registers a tile type; names must be unique.
  TileTypeId add_tile_type(const std::string& name,
                           std::uint64_t clock_hz = 200'000'000);

  /// Adds a tile at router (x, y); creates its inject/eject NI links.
  TileId add_tile(const std::string& name, TileTypeId type, std::uint32_t x,
                  std::uint32_t y, std::uint64_t memory_bytes = 64 * 1024,
                  std::uint32_t process_slots = 1);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t mesh_width() const { return width_; }
  [[nodiscard]] std::uint32_t mesh_height() const { return height_; }
  [[nodiscard]] const NocParams& noc() const { return noc_; }

  [[nodiscard]] std::size_t tile_type_count() const { return types_.size(); }
  [[nodiscard]] std::size_t tile_count() const { return tiles_.size(); }
  [[nodiscard]] std::size_t router_count() const { return width_ * height_; }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const TileType& tile_type(TileTypeId id) const;
  [[nodiscard]] const Tile& tile(TileId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;

  /// Tile type id by name; throws rtsm::Error if unknown.
  [[nodiscard]] TileTypeId type_by_name(const std::string& name) const;

  /// Tile id by name; throws rtsm::Error if unknown.
  [[nodiscard]] TileId tile_by_name(const std::string& name) const;

  /// All tile ids in insertion order (the platform's first-fit order).
  [[nodiscard]] std::vector<TileId> tile_ids() const;

  /// Tiles of @p type, in insertion order.
  [[nodiscard]] std::vector<TileId> tiles_of_type(TileTypeId type) const;

  /// Router at mesh coordinate (x, y).
  [[nodiscard]] RouterId router_at(std::uint32_t x, std::uint32_t y) const;

  /// Coordinate of @p router.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> router_pos(
      RouterId router) const;

  /// Router the tile's NI attaches to.
  [[nodiscard]] RouterId tile_router(TileId tile) const;

  /// Hop distance between the routers of two tiles (Manhattan metric, the
  /// communication estimate of mapping step 2).
  [[nodiscard]] std::uint32_t manhattan(TileId a, TileId b) const;

  /// Outgoing router-to-router links of @p router.
  [[nodiscard]] const std::vector<LinkId>& router_out_links(RouterId) const;

  /// NI links of a tile.
  [[nodiscard]] LinkId inject_link(TileId tile) const;
  [[nodiscard]] LinkId eject_link(TileId tile) const;

  /// Tiles attached to @p router (usually 0 or 1).
  [[nodiscard]] const std::vector<TileId>& router_tiles(RouterId) const;

  /// Clock of the tile's type, Hz.
  [[nodiscard]] std::uint64_t tile_clock_hz(TileId tile) const;

  /// Seconds -> cycles helper: WCET cycles of @p tile as picoseconds.
  [[nodiscard]] std::uint64_t cycles_to_ps(TileId tile,
                                           std::uint64_t cycles) const;

 private:
  void check_type(TileTypeId id) const;
  void check_tile(TileId id) const;
  void check_link(LinkId id) const;

  std::string name_;
  std::uint32_t width_;
  std::uint32_t height_;
  NocParams noc_;

  std::vector<TileType> types_;
  std::vector<Tile> tiles_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> router_out_;   // per router: RR links
  std::vector<std::vector<TileId>> router_tiles_; // per router
  std::vector<LinkId> inject_;                    // per tile
  std::vector<LinkId> eject_;                     // per tile
};

}  // namespace rtsm::arch
