#include "runtime/concurrent_manager.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "audit/check_state.hpp"
#include "core/fragmentation.hpp"
#include "core/spatial_mapper.hpp"
#include "runtime/portfolio.hpp"
#include "runtime/preemption.hpp"
#include "runtime/stats_report.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace rtsm::runtime {

ConcurrentRuntimeManager::ConcurrentRuntimeManager(
    const arch::Platform& platform, ManagerOptions manager,
    ConcurrentOptions options)
    : platform_(&platform),
      mapper_(manager.mapper != nullptr
                  ? std::move(manager.mapper)
                  : std::make_shared<core::SpatialMapper>()),
      policy_(manager.policy != nullptr
                  ? std::move(manager.policy)
                  : std::make_shared<FirstFitAdmission>()),
      priority_(options.priority != nullptr
                    ? std::move(options.priority)
                    : std::make_shared<FifoPriority>()),
      options_(std::move(options)),
      preemption_(manager.preemption),
      shapes_(std::move(manager.shapes)),
      state_(platform),
      observer_scratch_(platform),
      pump_scratch_(platform),
      queue_(options_.queue_capacity) {
  // Record mutations of the live state in a bounded journal so worker
  // scratches refresh in O(changes) and commits whose snapshot version
  // still matches skip re-validation entirely.
  state_.enable_journal();
  portfolio_ = make_portfolio(manager);
  require(options_.shards >= 1, "shards must be >= 1");
  require(options_.max_batch >= 1, "max_batch must be >= 1");
  require(shapes_ == nullptr || &shapes_->platform() == &platform,
          "shape library must be built for this manager's platform");
  planner_ = std::make_unique<DefragPlanner>(mapper_, manager.defrag);

  // Shards partition the mesh into vertical stripes; a tile belongs to the
  // stripe its router column falls in.
  const std::uint32_t shard_count = options_.shards;
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->owns_tile.assign(platform.tile_count(), false);
    shards_.push_back(std::move(shard));
  }
  for (const TileId tid : platform.tile_ids()) {
    shards_[shard_of(tid)]->owns_tile[tid.value()] = true;
  }

  workers_.reserve(options_.workers);
  for (std::uint32_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ConcurrentRuntimeManager::~ConcurrentRuntimeManager() { shutdown(); }

std::size_t ConcurrentRuntimeManager::shard_of(TileId tile) const {
  const std::uint32_t x = platform_->tile(tile).x;
  const std::uint32_t width = std::max(platform_->mesh_width(), 1u);
  const std::size_t shard =
      static_cast<std::size_t>(x) * options_.shards / width;
  return std::min<std::size_t>(shard, options_.shards - 1);
}

std::future<AdmitOutcome> ConcurrentRuntimeManager::submit(
    std::shared_ptr<const kpn::Application> app, double deadline_us,
    RequestClass cls) {
  require(app != nullptr, "admission request without an application");
  Request request;
  request.id = next_request_.fetch_add(1);
  request.priority = priority_->priority(*app, deadline_us);
  request.cls = cls;
  request.app = std::move(app);
  request.deadline_us = deadline_us;
  std::future<AdmitOutcome> future = request.promise.get_future();

  {
    const audit::LockGuard lock(stats_mutex_);
    ++stats_.offered;
  }
  in_flight_.fetch_add(1);
  Job job;
  job.request = std::move(request);
  if (options_.workers == 0) {
    // Inline mode: the caller is the only consumer, so a blocking push on
    // a full queue would deadlock this thread. Make room by pumping.
    while (!queue_.try_push(std::move(job))) {
      if (queue_.closed()) {
        reject_shut_down(std::move(job.request));
        return future;
      }
      pump();
    }
    return future;
  }
  if (!queue_.push(std::move(job))) {
    reject_shut_down(std::move(job.request));
  }
  return future;
}

void ConcurrentRuntimeManager::reject_shut_down(Request request) {
  AdmitOutcome outcome;
  outcome.request = request.id;
  outcome.status = AdmitStatus::Rejected;
  outcome.attempts = request.attempts;
  outcome.mapping_us = request.mapping_us;
  outcome.mapping.failure = "manager is shut down";
  resolve(std::move(request), std::move(outcome));
}

AdmitOutcome ConcurrentRuntimeManager::admit(const kpn::Application& app,
                                             double deadline_us,
                                             RequestClass cls) {
  auto future =
      submit(std::make_shared<kpn::Application>(app), deadline_us, cls);
  if (options_.workers == 0) pump();
  return future.get();
}

void ConcurrentRuntimeManager::pump() RTSM_NO_THREAD_SAFETY_ANALYSIS {
  // Reuse the manager-level pump scratch: the delta-refresh fast path
  // needs a buffer that survives the pump() call that armed its version
  // token, and inline mode (workers == 0) pumps once per admit. A
  // concurrent pump (an extra thread helping a live pool) takes a local
  // scratch instead of contending.
  audit::UniqueLock pump_lock(pump_mutex_, std::try_to_lock);
  std::optional<core::ResourceState> local;
  core::ResourceState& scratch =
      pump_lock.owns_lock() ? pump_scratch_ : local.emplace(*platform_);
  while (true) {
    std::vector<Job> jobs = queue_.try_pop_batch(options_.max_batch);
    if (jobs.empty()) return;
    process_jobs(std::move(jobs), scratch);
  }
}

void ConcurrentRuntimeManager::worker_loop() {
  // One scratch snapshot per worker for its whole lifetime: every
  // optimistic attempt copy-assigns the live state into it instead of
  // allocating a fresh snapshot (see snapshot_state_into).
  core::ResourceState scratch(*platform_);
  while (true) {
    std::vector<Job> jobs = queue_.pop_batch(options_.max_batch);
    if (jobs.empty()) return;  // closed and drained
    process_jobs(std::move(jobs), scratch);
  }
}

void ConcurrentRuntimeManager::process_jobs(std::vector<Job> jobs,
                                            core::ResourceState& scratch) {
  // Helper jobs first: the racing owner that queued one is blocked in
  // close_and_wait until every claimed strategy finishes, so lending this
  // worker to the race beats starting new admissions. A helper whose race
  // already closed (the owner ran the strategy itself) is a no-op.
  std::vector<Request> batch;
  batch.reserve(jobs.size());
  for (Job& job : jobs) {
    if (job.race != nullptr) {
      job.race->run(job.strategy);
    } else {
      batch.push_back(std::move(job.request));
    }
  }
  if (!batch.empty()) process_batch(std::move(batch), scratch);
}

void ConcurrentRuntimeManager::process_batch(std::vector<Request> batch,
                                             core::ResourceState& scratch) {
  // One drained burst: the request class outranks the pluggable priority
  // policy, which outranks arrival order.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Request& a, const Request& b) {
                     if (a.cls.priority != b.cls.priority) {
                       return a.cls.priority > b.cls.priority;
                     }
                     if (a.priority != b.priority) {
                       return a.priority > b.priority;
                     }
                     return a.id < b.id;
                   });
  for (Request& request : batch) {
    process_request(std::move(request), scratch);
  }
}

core::MappingResult ConcurrentRuntimeManager::run_mapper(
    Request& request, const core::ResourceState& base) {
  const auto start = std::chrono::steady_clock::now();
  core::MappingResult result = mapper_->map(*request.app, base);
  request.mapping_us += elapsed_us(start);
  map_ns_.fetch_add(elapsed_ns(start), std::memory_order_relaxed);
  ++request.attempts;
  return result;
}

core::MappingResult ConcurrentRuntimeManager::run_race(
    Request& request, const core::ResourceState& base) {
  auto race = std::make_shared<PortfolioRace>(*portfolio_, *request.app, base);
  // Offer strategies 1..N-1 to idle workers. try_push only: blocking on a
  // full queue from inside a worker would deadlock the pool, and an
  // unoffered strategy is simply run by the owner below.
  for (std::size_t i = 1; i < portfolio_->size(); ++i) {
    Job helper;
    helper.race = race;
    helper.strategy = i;
    if (!queue_.try_push(std::move(helper))) break;
  }
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < portfolio_->size(); ++i) {
    race->run(i);  // strategy 0 first, then whatever no helper claimed
  }
  RaceOutcome outcome = race->close_and_wait();
  // The owner's wall-clock span of the race — parallel helper time shows
  // up in the per-strategy spent_us stats, not in the request's latency.
  request.mapping_us += elapsed_us(start);
  map_ns_.fetch_add(elapsed_ns(start), std::memory_order_relaxed);
  request.attempts += std::max<std::uint32_t>(outcome.attempts, 1);
  {
    const audit::LockGuard lock(stats_mutex_);
    merge_portfolio_stats(stats_, *portfolio_, outcome);
    if (!outcome.has_winner()) ++stats_.portfolio_fallbacks;
  }
  if (outcome.has_winner()) {
    request.portfolio_winner = outcome.winning_run().name;
    return std::move(outcome.winning_run().result);
  }
  // Budget exhausted or every strategy failed: one unbudgeted primary run,
  // so a mis-tuned budget degrades to the single-mapper manager.
  request.portfolio_winner.clear();
  return run_mapper(request, base);
}

bool ConcurrentRuntimeManager::validate_and_commit(
    Request& request, core::MappingResult& result,
    const core::ResourceState* planned_on, bool shape_hit) {
  AppId id;
  {
    const audit::LockGuard lock(state_mutex_);
    // Version gate: the plan was pre-validated against @p planned_on, and
    // a still-armed sync token proves the live state has not mutated since
    // that scratch refreshed — the two are bit-identical, so re-running
    // mapping_fits here would recompute a known true. Any commit, release,
    // defrag or mode switch in between bumps the live version and the
    // token mismatches, forcing the full (O(touched)) re-check.
    if (planned_on != nullptr && planned_on->synced_with(state_)) {
      gated_commits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      const auto validate_start = std::chrono::steady_clock::now();
      const bool fits =
          core::mapping_fits(state_, *request.app, result.mapping);
      validate_ns_.fetch_add(elapsed_ns(validate_start),
                             std::memory_order_relaxed);
      if (!fits) return false;
      validated_commits_.fetch_add(1, std::memory_order_relaxed);
    }
    const auto commit_start = std::chrono::steady_clock::now();
    core::commit_mapping(state_, *request.app, result.mapping);
    commit_ns_.fetch_add(elapsed_ns(commit_start), std::memory_order_relaxed);
    id = AppId{next_app_.fetch_add(1)};
    running_.emplace(id, RunningApp{request.app, result.mapping,
                                    result.energy_nj_per_symbol, request.cls,
                                    request.id});
#if RTSM_AUDIT
    audit_check("commit");
#endif
  }
  // Learn-on-admit: a committed miss-path placement enters the library
  // (outside the state lock — the library has its own mutex) so future
  // structurally equal arrivals take the shape hot path.
  if (shapes_ != nullptr && !shape_hit) {
    const shapes::LearnResult learned =
        shapes_->learn(*request.app, result);
    const audit::LockGuard lock(stats_mutex_);
    if (learned.inserted) ++stats_.shape_inserts;
    stats_.shape_evictions += learned.evictions;
  }
  AdmitOutcome outcome;
  outcome.request = request.id;
  outcome.status = AdmitStatus::Admitted;
  outcome.app_id = id;
  outcome.attempts = request.attempts;
  outcome.mapping_us = request.mapping_us;
  outcome.shape_hit = shape_hit;
  outcome.portfolio_winner = std::move(request.portfolio_winner);
  outcome.mapping = std::move(result);
  resolve(std::move(request), std::move(outcome));
  return true;
}

void ConcurrentRuntimeManager::snapshot_state_into(
    core::ResourceState& out) const {
  const auto start = std::chrono::steady_clock::now();
  {
    const audit::LockGuard lock(state_mutex_);
    state_.refresh_snapshot_into(out);
  }
  snapshot_ns_.fetch_add(elapsed_ns(start), std::memory_order_relaxed);
  snapshot_reuses_.fetch_add(1, std::memory_order_relaxed);
}

void ConcurrentRuntimeManager::masked_snapshot_into(
    std::size_t shard, core::ResourceState& out) const {
  snapshot_state_into(out);
  const std::vector<bool>& owns = shards_[shard]->owns_tile;
  for (const TileId tid : out.platform().tile_ids()) {
    if (!owns[tid.value()]) out.saturate_tile(tid);
  }
}

bool ConcurrentRuntimeManager::try_shape_admit(Request& request,
                                               core::ResourceState& scratch) {
  std::uint32_t shape_conflicts = 0;
  while (true) {
    const auto start = std::chrono::steady_clock::now();
    snapshot_state_into(scratch);
    shapes::ShapeLookup lookup =
        shapes_->try_instantiate(*request.app, scratch);
    request.mapping_us += elapsed_us(start);
    {
      const audit::LockGuard lock(stats_mutex_);
      stats_.shape_anchor_probes += lookup.anchor_probes;
    }
    if (!lookup.plan.has_value()) {
      const audit::LockGuard lock(stats_mutex_);
      ++stats_.shape_misses;
      return false;
    }
    core::MappingResult plan = std::move(*lookup.plan);
    ++request.attempts;
    if (request.deadline_us > 0.0 && request.mapping_us > request.deadline_us) {
      AdmitOutcome outcome;
      outcome.request = request.id;
      outcome.status = AdmitStatus::DeadlineMiss;
      outcome.attempts = request.attempts;
      outcome.mapping_us = request.mapping_us;
      outcome.shape_hit = true;
      resolve(std::move(request), std::move(outcome));
      return true;
    }
    // The library already ran mapping_fits against this scratch (the
    // probe's full fit check), so the commit may take the version gate.
    if (validate_and_commit(request, plan, &scratch, /*shape_hit=*/true)) {
      return true;
    }
    // Outraced between snapshot and commit: re-probe against the fresh
    // state, bounded like the optimistic mapper loop.
    {
      const audit::LockGuard lock(stats_mutex_);
      ++stats_.conflicts;
    }
    if (++shape_conflicts > options_.validation_retries) {
      const audit::LockGuard lock(stats_mutex_);
      ++stats_.shape_misses;
      return false;
    }
  }
}

void ConcurrentRuntimeManager::process_request(
    Request request,
    core::ResourceState& scratch) RTSM_NO_THREAD_SAFETY_ANALYSIS {
  auto miss = [&](Request r) {
    AdmitOutcome outcome;
    outcome.request = r.id;
    outcome.status = AdmitStatus::DeadlineMiss;
    outcome.attempts = r.attempts;
    outcome.mapping_us = r.mapping_us;
    resolve(std::move(r), std::move(outcome));
  };

  // Phase 0 — shape-library hot path: instantiate a learned relocatable
  // placement and commit it through the ordinary two-phase commit,
  // skipping the mapper (and the shard machinery — a shape probe is
  // cheaper than the stripe bookkeeping it would be confined by).
  if (shapes_ != nullptr && try_shape_admit(request, scratch)) {
    return;
  }

  // Phase 1 — sharded admission: plan confined to the least-loaded stripe
  // of the mesh. The shard lock serializes planners per region (two
  // workers never plan into the same stripe at once), so shard-local
  // plans almost never hit a validation conflict; foreign-tile traffic
  // can still conflict and is caught by validate_and_commit. A portfolio
  // manager skips the stripe machinery: the race plans whole-platform
  // (its strategies spread across the pool instead of across stripes).
  if (options_.shards >= 2 && portfolio_ == nullptr) {
    const std::size_t s = pick_shard();
    audit::UniqueLock shard_lock(shards_[s]->mutex);
    masked_snapshot_into(s, scratch);
    core::MappingResult result = run_mapper(request, scratch);
    if (request.deadline_us > 0.0 && request.mapping_us > request.deadline_us) {
      shard_lock.unlock();
      miss(std::move(request));
      return;
    }
    if (result.success) {
      if (validate_and_commit(request, result)) return;
      // The shard plan got outraced (shared NoC links, foreign commits).
      const audit::LockGuard lock(stats_mutex_);
      ++stats_.conflicts;
    }
    // Shard full or outraced: phase 2 falls back to the whole platform.
    shard_lock.unlock();
    const audit::LockGuard lock(stats_mutex_);
    ++stats_.shard_fallbacks;
  }

  // Phase 2 — whole-platform optimistic loop: map on a snapshot outside
  // any lock, re-validate + commit under the state lock, re-map on
  // conflict.
  std::uint32_t conflicts = 0;
  while (true) {
    // Epoch before the snapshot: if a release advances it while this
    // attempt runs, the attempt's failure verdict may be stale and the
    // request must not park on it (it would miss that release's wake).
    const std::uint64_t epoch_seen = release_epoch_.load();
    snapshot_state_into(scratch);
    // A conflict retry re-races on the fresh snapshot (fresh budget): the
    // strategies' relative quality may change with the changed state.
    core::MappingResult result = portfolio_ != nullptr
                                     ? run_race(request, scratch)
                                     : run_mapper(request, scratch);
    if (request.deadline_us > 0.0 && request.mapping_us > request.deadline_us) {
      miss(std::move(request));
      return;
    }
    if (result.success) {
      // Pre-validate against the scratch the plan was made on, outside
      // any lock. This is the serial manager's design-time-baseline
      // screen (a plan that does not fit its own snapshot is a mapper
      // failure, not a conflict) and what arms validate_and_commit's
      // version gate: if the live state has not moved since the scratch
      // refreshed, this check already proved the commit precondition.
      const auto validate_start = std::chrono::steady_clock::now();
      const bool fits_snapshot =
          core::mapping_fits(scratch, *request.app, result.mapping);
      validate_ns_.fetch_add(elapsed_ns(validate_start),
                             std::memory_order_relaxed);
      if (!fits_snapshot) {
        result.success = false;
        result.failure = "mapping does not fit the residual resources";
      }
    }
    if (result.success) {
      if (validate_and_commit(request, result, &scratch)) return;
      {
        const audit::LockGuard lock(stats_mutex_);
        ++stats_.conflicts;
      }
      if (++conflicts <= options_.validation_retries) continue;
      result.success = false;
      result.failure = "optimistic validation kept conflicting (" +
                       std::to_string(conflicts) + " attempts)";
    }
    // OnReject: compact once per request, then retry against the
    // defragmented state (fresh snapshot, fresh epoch, and a fresh
    // validation-conflict budget — the pre-defrag conflicts say nothing
    // about the compacted state).
    if (planner_->options().policy == DefragPolicy::OnReject &&
        !request.defragged) {
      request.defragged = true;
      if (defrag_pass_locked().migrations > 0) {
        conflicts = 0;
        continue;
      }
    }
    // Last resort for an outranking arrival: evict lower-priority
    // preemptible victims. Plan, eviction and commit share one
    // state-lock hold, so no racing worker can steal the freed capacity
    // in between; the victims are re-parked after the lock is dropped.
    if (!request.reparked) {
      std::vector<Request> evicted;
      if (try_preempt_and_commit(request, evicted)) {
        park_evicted(std::move(evicted));
        return;
      }
    }
    if (policy_->on_failure(result, request.attempts) ==
        FailureAction::Retry) {
      if (try_park(request, epoch_seen)) return;
      continue;  // a release raced this attempt: retry on the fresh state
    }
    AdmitOutcome outcome;
    outcome.request = request.id;
    outcome.status = AdmitStatus::Rejected;
    outcome.attempts = request.attempts;
    outcome.mapping_us = request.mapping_us;
    outcome.mapping = std::move(result);
    resolve(std::move(request), std::move(outcome));
    return;
  }
}

void ConcurrentRuntimeManager::record_outcome(RequestId request,
                                              const AdmitOutcome& outcome) {
  const audit::LockGuard lock(stats_mutex_);
  switch (outcome.status) {
    case AdmitStatus::Admitted:
      ++stats_.admitted;
      if (outcome.shape_hit) ++stats_.shape_hits;
      break;
    case AdmitStatus::Rejected:
      ++stats_.rejected;
      break;
    case AdmitStatus::DeadlineMiss:
      ++stats_.deadline_misses;
      break;
    case AdmitStatus::Waiting:
      break;
  }
  stats_.latencies.record(outcome.mapping_us);
  resolution_order_.push_back(request);
}

void ConcurrentRuntimeManager::resolve(Request request, AdmitOutcome outcome) {
  record_outcome(request.id, outcome);
  request.promise.set_value(std::move(outcome));
  finish_one();
}

bool ConcurrentRuntimeManager::try_park(Request& request,
                                        std::uint64_t epoch_seen) {
  {
    const audit::LockGuard lock(waiting_mutex_);
    // requeue_waiting() bumps the epoch and drains the list under this
    // same mutex, so either this request makes it into the list before
    // the wake (and is woken), or it observes the bumped epoch here and
    // retries instead — a release can never fall between the two.
    if (release_epoch_.load() != epoch_seen) return false;
    waiting_.push_back(std::move(request));
  }
  // Parked requests wait for a future release, not for a worker.
  finish_one();
  return true;
}

void ConcurrentRuntimeManager::requeue_waiting(bool after_defrag_migration) {
  std::vector<Request> woken;
  {
    const audit::LockGuard lock(waiting_mutex_);
    release_epoch_.fetch_add(1);
    woken.swap(waiting_);
  }
  if (woken.empty()) return;
  for (Request& request : woken) {
    in_flight_.fetch_add(1);
    Job job;
    job.request = std::move(request);
    if (!queue_.push(std::move(job))) {
      // Shutting down: the queue refused (job untouched) — give up.
      // No retry is counted: no further mapping attempt will run.
      reject_shut_down(std::move(job.request));
      continue;
    }
    const audit::LockGuard lock(stats_mutex_);
    ++stats_.retries;
    if (after_defrag_migration) ++stats_.parked_woken_by_defrag;
  }
}

void ConcurrentRuntimeManager::finish_one() {
  if (in_flight_.fetch_sub(1) == 1) {
    // Empty critical section pairs with the predicate check in
    // wait_idle(): a waiter is either not yet blocked (re-checks) or
    // blocked (receives the notify).
    const audit::LockGuard lock(idle_mutex_);
    idle_cv_.notify_all();
  }
}

bool ConcurrentRuntimeManager::release(AppId id) {
  {
    const audit::LockGuard lock(state_mutex_);
    const auto it = running_.find(id);
    if (it == running_.end()) {
      const audit::LockGuard stats_lock(stats_mutex_);
      ++stats_.release_errors;
      release_errors_.push_back(
          {id, "release of unknown or already-released application id " +
                   std::to_string(id.value())});
      return false;
    }
    core::release_mapping(state_, *it->second.app, it->second.mapping);
    running_.erase(it);
#if RTSM_AUDIT
    audit_check("release");
#endif
  }
  {
    const audit::LockGuard lock(stats_mutex_);
    ++stats_.releases;
  }
  // Compact *before* waking parked requests so their retry plans against
  // the defragmented capacity.
  requeue_waiting(maybe_defrag_after_release());
  return true;
}

bool ConcurrentRuntimeManager::try_preempt_and_commit(
    Request& request, std::vector<Request>& evicted) {
  if (!preemption_.enabled) return false;

  AppId id;
  AdmitOutcome outcome;
  {
    // Victim selection (shared with the serial manager), eviction and
    // commit share one state-lock hold: the mapper runs under the lock —
    // preemption is a rare, last-resort path and the lock is what makes
    // evict+commit atomic against racing admissions (the same trade a
    // defrag pass makes).
    const audit::LockGuard lock(state_mutex_);
    PreemptionPlan plan = plan_preemption(
        state_, running_, *request.app, request.cls, request.deadline_us,
        request.mapping_us, *mapper_, preemption_,
        planner_->options().fragmentation);
    request.attempts += plan.attempts;
    request.mapping_us += plan.mapping_us;
    if (!plan.admits()) return false;

    for (const AppId vid : plan.victims) {
      auto it = running_.find(vid);
      core::release_mapping(state_, *it->second.app, it->second.mapping);
      Request reparked;
      reparked.id = next_request_.fetch_add(1);
      reparked.app = it->second.app;
      reparked.cls = it->second.cls;
      // Re-score for burst ordering so a woken victim competes under the
      // configured PriorityPolicy like any fresh request; no mapper
      // deadline — the original budget bounded an admission that already
      // succeeded.
      reparked.priority = priority_->priority(*reparked.app, 0.0);
      reparked.reparked = true;
      evicted.push_back(std::move(reparked));
      running_.erase(it);
    }
    core::commit_mapping(state_, *request.app, plan.plan.mapping);
    id = AppId{next_app_.fetch_add(1)};
    running_.emplace(id, RunningApp{request.app, plan.plan.mapping,
                                    plan.plan.energy_nj_per_symbol,
                                    request.cls, request.id});

    outcome.request = request.id;
    outcome.status = AdmitStatus::Admitted;
    outcome.app_id = id;
    outcome.attempts = request.attempts;
    outcome.mapping_us = request.mapping_us;
    outcome.mapping = std::move(plan.plan);
#if RTSM_AUDIT
    audit_check("preempt");
#endif
  }
  {
    const audit::LockGuard lock(stats_mutex_);
    ++stats_.preemption_grants;
    stats_.preemption_evictions += evicted.size();
    // Victims re-enter the admission stream as new requests.
    stats_.offered += evicted.size();
  }
  // A preemption plan is a full miss-path placement too: learn it so the
  // next structurally equal arrival can skip the mapper entirely.
  if (shapes_ != nullptr) {
    const shapes::LearnResult learned =
        shapes_->learn(*request.app, outcome.mapping);
    const audit::LockGuard lock(stats_mutex_);
    if (learned.inserted) ++stats_.shape_inserts;
    stats_.shape_evictions += learned.evictions;
  }
  resolve(std::move(request), std::move(outcome));
  return true;
}

void ConcurrentRuntimeManager::park_evicted(std::vector<Request> evicted) {
  if (evicted.empty()) return;
  const audit::LockGuard lock(waiting_mutex_);
  for (Request& victim : evicted) {
    waiting_.push_back(std::move(victim));
  }
}

bool ConcurrentRuntimeManager::maybe_defrag_after_release() {
  if (planner_->options().policy != DefragPolicy::OnReleaseThreshold) {
    return false;
  }
  {
    const audit::LockGuard lock(state_mutex_);
    const double score =
        core::measure_fragmentation(state_, planner_->options().fragmentation)
            .score();
    if (!planner_->triggers_after_release(score)) return false;
  }
  return defrag_pass_locked().migrations > 0;
}

DefragPassResult ConcurrentRuntimeManager::defrag_pass_locked() {
  DefragPassResult pass;
  {
    // The pass re-plans and commits under the state lock: migrations are
    // atomic against concurrent admissions (their validate_and_commit
    // serializes behind the pass and re-validates its own plan after).
    const audit::LockGuard lock(state_mutex_);
    pass = planner_->run_pass(state_, running_);
#if RTSM_AUDIT
    audit_check("defrag");
#endif
  }
  const audit::LockGuard lock(stats_mutex_);
  merge_defrag_stats(stats_, pass);
  return pass;
}

DefragPassResult ConcurrentRuntimeManager::defrag_now() {
  return defrag_pass_locked();
}

SwitchOutcome ConcurrentRuntimeManager::switch_mode(
    AppId id, std::shared_ptr<const kpn::Application> next,
    double deadline_us) {
  const auto start = std::chrono::steady_clock::now();
  std::optional<DefragPassResult> defrag;
  ModeSwitchOptions switch_options;
  switch_options.deadline_us = deadline_us;
  SwitchOutcome out;
  {
    // Plan and commit under the state lock: the switch (including its
    // pinned replan through the shared verification cache) is atomic
    // against racing admissions, exactly like a defrag pass.
    const audit::LockGuard lock(state_mutex_);
    out = switch_mode_in_place(state_, running_, id, std::move(next),
                               *mapper_, planner_.get(),
                               planner_->options().cost, &defrag,
                               switch_options);
#if RTSM_AUDIT
    audit_check("mode-switch");
#endif
  }
  out.switch_us = elapsed_us(start);

  bool committed = false;
  {
    const audit::LockGuard lock(stats_mutex_);
    committed = record_switch_stats(stats_, out);
    if (defrag.has_value()) merge_defrag_stats(stats_, *defrag);
  }
  // A narrower mode frees capacity like a release: wake parked requests.
  if (committed) requeue_waiting();
  return out;
}

std::size_t ConcurrentRuntimeManager::pick_shard() const {
  if (options_.shards < 2) return 0;
  std::vector<double> load(options_.shards, 0.0);
  std::vector<std::size_t> tiles(options_.shards, 0);
  {
    // One O(tiles) scan under the state lock per sharded admission. The
    // lock is taken by validate_and_commit right after anyway, and tile
    // counts are small; incrementally maintained per-shard occupancy
    // counters are the upgrade path if this scan ever shows up in a
    // profile.
    const audit::LockGuard lock(state_mutex_);
    for (const TileId tid : platform_->tile_ids()) {
      const std::size_t s = shard_of(tid);
      load[s] += core::tile_occupancy(state_, tid);
      ++tiles[s];
    }
  }
  double best_load = std::numeric_limits<double>::infinity();
  std::vector<double> mean(load.size());
  for (std::size_t s = 0; s < load.size(); ++s) {
    mean[s] = tiles[s] == 0 ? std::numeric_limits<double>::infinity()
                            : load[s] / static_cast<double>(tiles[s]);
    best_load = std::min(best_load, mean[s]);
  }
  // Near-ties rotate: on an empty or evenly loaded platform every worker
  // would otherwise compute the same winner and serialize on one stripe's
  // mutex — the burst-start herd sharding exists to avoid. Stripes within
  // a small band of the minimum are treated as equals and dealt out
  // round-robin.
  constexpr double kTieBand = 0.05;
  std::vector<std::size_t> candidates;
  for (std::size_t s = 0; s < mean.size(); ++s) {
    if (mean[s] <= best_load + kTieBand) candidates.push_back(s);
  }
  if (candidates.size() == 1) return candidates.front();
  return candidates[tie_break_.fetch_add(1) % candidates.size()];
}

void ConcurrentRuntimeManager::wait_idle() RTSM_NO_THREAD_SAFETY_ANALYSIS {
  audit::UniqueLock lock(idle_mutex_);
  idle_cv_.wait(lock, [&] { return in_flight_.load() == 0; });
}

std::vector<AdmitOutcome> ConcurrentRuntimeManager::reject_waiting() {
  std::vector<Request> parked;
  {
    const audit::LockGuard lock(waiting_mutex_);
    // Same epoch discipline as requeue_waiting(): a request about to park
    // concurrently must not strand itself in a list that was just
    // resolved — it observes the bump and retries instead.
    release_epoch_.fetch_add(1);
    parked.swap(waiting_);
  }
  std::vector<AdmitOutcome> outcomes;
  outcomes.reserve(parked.size());
  for (Request& request : parked) {
    AdmitOutcome outcome;
    outcome.request = request.id;
    outcome.status = AdmitStatus::Rejected;
    outcome.attempts = request.attempts;
    outcome.mapping_us = request.mapping_us;
    outcome.mapping.failure = "still waiting at end of scenario";
    // Shares resolve()'s bookkeeping but not its finish_one(): a parked
    // request already left the in-flight count when it parked.
    record_outcome(request.id, outcome);
    outcomes.push_back(outcome);
    request.promise.set_value(std::move(outcome));
  }
  return outcomes;
}

void ConcurrentRuntimeManager::shutdown() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  queue_.close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Without a pool the closed queue may still hold requests: drain them
  // inline so every future resolves.
  pump();
  reject_waiting();
}

core::ResourceState ConcurrentRuntimeManager::state_snapshot() const {
  // Observer fast path: refresh the shared observer scratch (O(changes)
  // under the state lock) and copy it out while holding only the observer
  // mutex — repeated pollers no longer hold up the admission hot path for
  // an O(platform) copy. Lock order: observer before state, nothing nests
  // the other way.
  const audit::LockGuard observer_lock(observer_mutex_);
  {
    const audit::LockGuard lock(state_mutex_);
    state_.refresh_snapshot_into(observer_scratch_);
  }
  return observer_scratch_;
}

double ConcurrentRuntimeManager::mean_occupancy() const {
  const audit::LockGuard lock(state_mutex_);
  return core::mean_occupancy(state_);
}

AdmissionStats ConcurrentRuntimeManager::stats() const {
  AdmissionStats out;
  {
    const audit::LockGuard lock(stats_mutex_);
    out = stats_;
  }
  out.snapshot_reuses = snapshot_reuses_.load(std::memory_order_relaxed);
  out.gated_commits = gated_commits_.load(std::memory_order_relaxed);
  out.validated_commits = validated_commits_.load(std::memory_order_relaxed);
  out.snapshot_time_us =
      static_cast<double>(snapshot_ns_.load(std::memory_order_relaxed)) /
      1000.0;
  out.map_time_us =
      static_cast<double>(map_ns_.load(std::memory_order_relaxed)) / 1000.0;
  out.validate_time_us =
      static_cast<double>(validate_ns_.load(std::memory_order_relaxed)) /
      1000.0;
  out.commit_time_us =
      static_cast<double>(commit_ns_.load(std::memory_order_relaxed)) / 1000.0;
  {
    const audit::LockGuard lock(state_mutex_);
    const core::RefreshStats refresh = state_.refresh_stats();
    out.snapshot_delta_refreshes = refresh.delta_refreshes;
    out.snapshot_full_copies = refresh.full_copies;
    out.journal_entries_replayed = refresh.entries_replayed;
  }
  return out;
}

StatsReport ConcurrentRuntimeManager::stats_report() {
  StatsReport report;
  report.admission = stats();
  report.verification = verification_stats();
  report.shapes = shape_stats();
  if (const auto cache = mapper_->route_cache()) {
    report.route_cache = cache->stats();
  }
  report.release_errors = drain_release_errors();
  return report;
}

verify::EngineStats ConcurrentRuntimeManager::verification_stats() const {
  const auto engine = mapper_->verification_engine();
  return engine ? engine->stats() : verify::EngineStats{};
}

shapes::ShapeLibraryStats ConcurrentRuntimeManager::shape_stats() const {
  return shapes_ != nullptr ? shapes_->stats()
                                    : shapes::ShapeLibraryStats{};
}

std::size_t ConcurrentRuntimeManager::running_count() const {
  const audit::LockGuard lock(state_mutex_);
  return running_.size();
}

std::size_t ConcurrentRuntimeManager::waiting_count() const {
  const audit::LockGuard lock(waiting_mutex_);
  return waiting_.size();
}

std::vector<AppId> ConcurrentRuntimeManager::running_ids() const {
  const audit::LockGuard lock(state_mutex_);
  std::vector<AppId> ids;
  ids.reserve(running_.size());
  for (const auto& [id, run] : running_) ids.push_back(id);
  return ids;
}

core::Mapping ConcurrentRuntimeManager::mapping_of(AppId id) const {
  const audit::LockGuard lock(state_mutex_);
  const auto it = running_.find(id);
  require(it != running_.end(), "mapping_of unknown application id");
  return it->second.mapping;
}

std::shared_ptr<const kpn::Application> ConcurrentRuntimeManager::app_of(
    AppId id) const {
  const audit::LockGuard lock(state_mutex_);
  const auto it = running_.find(id);
  require(it != running_.end(), "app_of unknown application id");
  return it->second.app;
}

std::string ConcurrentRuntimeManager::display_name(AppId id) const {
  const audit::LockGuard lock(state_mutex_);
  const auto it = running_.find(id);
  require(it != running_.end(), "display_name unknown application id");
  return it->second.app->name() + "#" + std::to_string(it->second.instance);
}

double ConcurrentRuntimeManager::total_energy_nj_per_symbol() const {
  const audit::LockGuard lock(state_mutex_);
  double total = 0.0;
  for (const auto& [id, run] : running_) total += run.energy_nj;
  return total;
}

std::vector<ReleaseError> ConcurrentRuntimeManager::drain_release_errors() {
  const audit::LockGuard lock(stats_mutex_);
  return std::exchange(release_errors_, {});
}

std::vector<RequestId> ConcurrentRuntimeManager::resolution_order() const {
  const audit::LockGuard lock(stats_mutex_);
  return resolution_order_;
}

#if RTSM_AUDIT
void ConcurrentRuntimeManager::audit_check(const char* where) const {
  std::vector<audit::LiveApp> running;
  running.reserve(running_.size());
  for (const auto& [id, run] : running_) {
    running.push_back({run.app, &run.mapping});
  }
  audit::audit_state(state_, running,
                     std::string("concurrent_manager/") + where);
}
#endif

}  // namespace rtsm::runtime
