#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/migration.hpp"
#include "runtime/defrag.hpp"

namespace rtsm::runtime {

// The in-place mode-switch planner/committer shared by both runtime
// managers. A mode switch replaces the graph of a *running* instance —
// same AppId, new token geometry and possibly new processes — without
// going through release + readmit, so an infeasible new mode can roll
// back to the old one instead of killing the stream.

/// How a mode switch ended.
enum class SwitchStatus {
  /// Name-matched processes stayed pinned to their tiles; only the delta
  /// was re-planned and the new mode committed onto the same instance.
  InPlace,
  /// The pinned plan was infeasible (or the structural diff was total):
  /// the new mode was fully re-planned, still committed atomically onto
  /// the same instance id.
  Replanned,
  /// No feasible plan for the new mode (even after a defrag-assisted
  /// retry): the old mode keeps running with its booking intact. Note:
  /// when the retry's defragmentation pass ran, *other* applications may
  /// have been migrated (compacted) even though this switch rolled back
  /// — a switch probe is not side-effect-free unless
  /// ModeSwitchOptions::defrag_on_misfit is off.
  RolledBack,
  /// The id was never admitted or was already released; nothing changed.
  UnknownId,
  /// ModeSwitchOptions::deadline_us was blown before the new mode could
  /// commit: the switch aborted and the old mode keeps running with its
  /// booking intact (same guarantee as RolledBack). The QoS story of the
  /// paper's arrivals — a bounded wall-clock budget — applied to the
  /// switch itself.
  DeadlineMiss,
};

/// Outcome of one switch_mode() call. The instance keeps its AppId across
/// every non-UnknownId outcome; on RolledBack the *old* mode keeps it.
struct SwitchOutcome {
  SwitchStatus status = SwitchStatus::UnknownId;
  AppId app_id;

  /// No process name is shared between the old and the new graph, so the
  /// pinned attempt was skipped entirely (release+replan semantics).
  bool structural_total = false;

  /// Name-matched processes that kept their tile and implementation.
  std::uint32_t pinned = 0;
  /// Name-matched processes that changed tile or implementation.
  std::uint32_t moved = 0;

  /// Modelled migration cost of the moved processes (pause + state
  /// transfer over the NoC), microseconds.
  double migration_cost_us = 0.0;

  /// Wall-clock time of the whole switch call, microseconds.
  double switch_us = 0.0;

  std::string message;
};

struct ModeSwitchOptions {
  /// When neither the pinned nor the free replan fits, spend one
  /// defragmentation pass (on the live state, migrating *other*
  /// applications) and retry once before rolling back.
  bool defrag_on_misfit = true;

  /// Wall-clock budget of the switch itself, microseconds (0 = none).
  /// Checked between planning stages and before the two-phase commit;
  /// once blown the switch aborts with DeadlineMiss and the old mode
  /// keeps its booking. The commit itself is never interrupted, so a
  /// switch either misses wholly or lands wholly.
  double deadline_us = 0.0;
};

/// Plans and commits the switch of running instance @p id to graph
/// @p next against @p state / @p running. The caller must hold whatever
/// lock guards the pair (the serial manager is single-threaded; the
/// concurrent manager calls this under its state mutex, like a defrag
/// pass). @p planner may be null (no defrag-assisted retry). @p cost
/// prices the state transfer of moved processes.
///
/// Plan: release the instance's own booking on a scratch snapshot, then
/// (1) map a copy of @p next whose name-matched processes are pinned —
///     as fixtures — to the tiles they currently occupy, so only the
///     structural delta is a decision variable and unchanged placements
///     hit the mapper's step-4 verification cache;
/// (2) on failure, map @p next unconstrained (full replan, still
///     in-place);
/// (3) on failure, run one defrag pass (policy-independent) and retry
///     the free replan against the compacted platform.
/// Commit: two-phase — release the old booking from the live state,
/// re-check the fit, commit the new mode; any misfit re-commits the old
/// booking exactly and reports RolledBack. The pass result of step (3)
/// is returned through @p defrag_out (engaged only when a pass ran) so
/// the caller can merge its counters.
[[nodiscard]] SwitchOutcome switch_mode_in_place(
    core::ResourceState& state, std::map<AppId, RunningApp>& running,
    AppId id, std::shared_ptr<const kpn::Application> next,
    const core::Mapper& mapper, const DefragPlanner* planner,
    const core::MigrationCostModel& cost,
    std::optional<DefragPassResult>* defrag_out,
    const ModeSwitchOptions& options = {});

}  // namespace rtsm::runtime
