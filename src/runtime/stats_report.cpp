#include "runtime/stats_report.hpp"

#include <cstdio>
#include <sstream>

namespace rtsm::runtime {

namespace {

/// %.6f without locale surprises; trailing zeros are fine for machine use.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string StatsReport::to_json() const {
  const AdmissionStats& a = admission;
  std::ostringstream out;
  out << "{\"admission\":{"
      << "\"offered\":" << a.offered << ",\"admitted\":" << a.admitted
      << ",\"rejected\":" << a.rejected
      << ",\"deadline_misses\":" << a.deadline_misses
      << ",\"retries\":" << a.retries << ",\"releases\":" << a.releases
      << ",\"release_errors\":" << a.release_errors
      << ",\"conflicts\":" << a.conflicts
      << ",\"shard_fallbacks\":" << a.shard_fallbacks
      << ",\"snapshot_reuses\":" << a.snapshot_reuses
      << ",\"mean_latency_us\":" << num(a.mean_latency_us())
      << ",\"p50_us\":" << num(a.latency_percentile_us(50.0))
      << ",\"p95_us\":" << num(a.latency_percentile_us(95.0))
      << ",\"max_us\":" << num(a.latencies.max_us());

  out << ",\"hot_path\":{\"snapshot_delta_refreshes\":"
      << a.snapshot_delta_refreshes
      << ",\"snapshot_full_copies\":" << a.snapshot_full_copies
      << ",\"journal_entries_replayed\":" << a.journal_entries_replayed
      << ",\"gated_commits\":" << a.gated_commits
      << ",\"validated_commits\":" << a.validated_commits
      << ",\"snapshot_time_us\":" << num(a.snapshot_time_us)
      << ",\"map_time_us\":" << num(a.map_time_us)
      << ",\"validate_time_us\":" << num(a.validate_time_us)
      << ",\"commit_time_us\":" << num(a.commit_time_us) << "}";

  out << ",\"defrag\":{\"passes\":" << a.defrag_passes
      << ",\"migrations\":" << a.migrations
      << ",\"migration_failures\":" << a.migration_failures
      << ",\"parked_woken_by_defrag\":" << a.parked_woken_by_defrag
      << ",\"migration_cost_us\":" << num(a.migration_cost_us)
      << ",\"fragmentation_before\":" << num(a.last_fragmentation_before)
      << ",\"fragmentation_after\":" << num(a.last_fragmentation_after) << "}";

  out << ",\"shapes\":{\"hits\":" << a.shape_hits
      << ",\"misses\":" << a.shape_misses
      << ",\"inserts\":" << a.shape_inserts
      << ",\"evictions\":" << a.shape_evictions
      << ",\"anchor_probes\":" << a.shape_anchor_probes << "}";

  out << ",\"preemption\":{\"grants\":" << a.preemption_grants
      << ",\"evictions\":" << a.preemption_evictions << "}";

  out << ",\"switches\":{\"total\":" << a.mode_switches
      << ",\"in_place\":" << a.switches_in_place
      << ",\"replanned\":" << a.switches_replanned
      << ",\"rolled_back\":" << a.switches_rolled_back
      << ",\"failures\":" << a.switch_failures
      << ",\"deadline_misses\":" << a.switch_deadline_misses
      << ",\"migration_cost_us\":" << num(a.switch_migration_cost_us)
      << ",\"p95_us\":" << num(a.switch_latencies.percentile_us(95.0)) << "}";

  out << ",\"portfolio\":{\"races\":" << a.portfolio_races
      << ",\"fallbacks\":" << a.portfolio_fallbacks << ",\"strategies\":[";
  for (std::size_t i = 0; i < a.portfolio.size(); ++i) {
    const PortfolioStrategyStats& s = a.portfolio[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << escape(s.name) << "\",\"runs\":" << s.runs
        << ",\"wins\":" << s.wins << ",\"losses\":" << s.losses
        << ",\"timeouts\":" << s.timeouts
        << ",\"spent_us\":" << num(s.spent_us) << "}";
  }
  out << "]}}";

  out << ",\"verification\":{\"lookups\":" << verification.lookups
      << ",\"hits\":" << verification.hits
      << ",\"misses\":" << verification.misses
      << ",\"hit_rate\":" << num(verification.hit_rate())
      << ",\"evictions\":" << verification.evictions
      << ",\"evicted_while_hot\":" << verification.evicted_while_hot
      << ",\"warm_started\":" << verification.warm_started
      << ",\"simulations\":" << verification.simulations
      << ",\"events_simulated\":" << verification.events_simulated
      << ",\"simulations_saved\":" << verification.simulations_saved
      << ",\"events_saved\":" << verification.events_saved << "}";

  out << ",\"shape_library\":{\"lookups\":" << shapes.lookups
      << ",\"hits\":" << shapes.hits << ",\"misses\":" << shapes.misses
      << ",\"hit_rate\":" << num(shapes.hit_rate())
      << ",\"inserts\":" << shapes.inserts
      << ",\"duplicates\":" << shapes.duplicates
      << ",\"evictions\":" << shapes.evictions
      << ",\"anchor_probes\":" << shapes.anchor_probes
      << ",\"full_fit_checks\":" << shapes.full_fit_checks << "}";

  out << ",\"route_cache\":{\"lookups\":" << route_cache.lookups
      << ",\"hits\":" << route_cache.hits
      << ",\"misses\":" << route_cache.misses
      << ",\"fallbacks\":" << route_cache.fallbacks
      << ",\"evictions\":" << route_cache.evictions
      << ",\"hit_rate\":" << num(route_cache.hit_rate()) << "}";

  out << ",\"release_errors\":[";
  for (std::size_t i = 0; i < release_errors.size(); ++i) {
    const ReleaseError& e = release_errors[i];
    if (i > 0) out << ",";
    out << "{\"id\":" << e.id.value() << ",\"request\":" << e.request
        << ",\"message\":\"" << escape(e.message) << "\"}";
  }
  out << "]}";
  return out.str();
}

}  // namespace rtsm::runtime
