#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "audit/mutex.hpp"
#include "core/cancellation.hpp"
#include "core/mapper.hpp"
#include "core/mapper_registry.hpp"
#include "core/portfolio.hpp"
#include "core/resource_state.hpp"
#include "runtime/runtime_manager.hpp"

namespace rtsm::runtime {

struct ManagerOptions;

/// One strategy's part in a portfolio race.
struct StrategyRun {
  std::string name;
  bool started = false;    ///< The mapper actually ran.
  bool timed_out = false;  ///< The shared budget expired before/while it ran.
  /// Stopped by the shared token — either the budget or a FirstFeasible
  /// winner cancelling the losers. Skipped runs (never started) count too.
  bool cancelled = false;
  double spent_us = 0.0;  ///< Mapper wall-clock of this strategy.
  core::MappingResult result;
  /// result.success and the plan fits the race's base snapshot.
  bool feasible = false;
};

/// What one portfolio race produced.
struct RaceOutcome {
  /// Index of the winning strategy; -1 when no strategy produced a
  /// feasible plan (budget exhausted or every strategy failed) — the
  /// manager then falls back to one unbudgeted run of its primary mapper
  /// (AdmissionStats::portfolio_fallbacks).
  int winner = -1;
  /// Per-strategy records, indexed like the portfolio's strategy list.
  std::vector<StrategyRun> runs;
  std::uint32_t attempts = 0;  ///< Strategies that started.
  double total_us = 0.0;       ///< Summed mapper wall-clock.

  [[nodiscard]] bool has_winner() const { return winner >= 0; }
  [[nodiscard]] StrategyRun& winning_run() {
    return runs[static_cast<std::size_t>(winner)];
  }
};

/// The raced strategy set of one manager, resolved once at construction
/// from a MapperRegistry. Immutable and therefore freely shared between
/// worker threads (the strategies themselves are const and plan on private
/// state copies).
class MapperPortfolio {
 public:
  /// Throws rtsm::Error when @p options names a strategy the registry does
  /// not have.
  MapperPortfolio(const core::MapperRegistry& registry,
                  core::PortfolioOptions options);

  [[nodiscard]] std::size_t size() const { return strategies_.size(); }
  [[nodiscard]] const std::string& name(std::size_t i) const {
    return options_.strategies[i];
  }
  [[nodiscard]] const core::Mapper& strategy(std::size_t i) const {
    return *strategies_[i];
  }
  [[nodiscard]] const core::PortfolioOptions& options() const {
    return options_;
  }

  /// Runs one whole race on the calling thread (the serial manager's
  /// path): strategies run in configuration order under the shared budget
  /// token, so a FirstFeasible win or budget expiry skips the rest.
  [[nodiscard]] RaceOutcome race(const kpn::Application& app,
                                 const core::ResourceState& base) const;

 private:
  core::PortfolioOptions options_;
  std::vector<std::unique_ptr<const core::Mapper>> strategies_;
};

/// One race in flight over an immutable base snapshot.
///
/// Built by the admitting thread (the serial manager's drain loop, or the
/// owning worker of the concurrent pool); any thread may then claim and
/// run individual strategies — the concurrent manager queues helper jobs
/// so idle workers join in. The owner finishes by claiming whatever is
/// still unclaimed itself and calling close_and_wait(), which blocks only
/// while a strategy is actively running on another thread. The protocol
/// therefore cannot deadlock regardless of pool size (including zero
/// workers, where the owner simply runs every strategy sequentially).
///
/// @p base must outlive the race (the owner blocks in close_and_wait()
/// until every runner is done, so a stack snapshot is safe).
class PortfolioRace {
 public:
  PortfolioRace(const MapperPortfolio& portfolio, const kpn::Application& app,
                const core::ResourceState& base);

  PortfolioRace(const PortfolioRace&) = delete;
  PortfolioRace& operator=(const PortfolioRace&) = delete;

  /// Claims and runs strategy @p i on the calling thread. Returns false
  /// without running when the slot is already claimed or the race closed
  /// (a stale helper job is a harmless no-op). A claim after the shared
  /// token stopped — budget expiry or a FirstFeasible winner — records a
  /// skipped run instead of starting the mapper, which is what makes a
  /// tiny budget deterministically produce zero attempts.
  bool run(std::size_t i);

  /// Closes the race: marks everything unclaimed as skipped, waits for
  /// running strategies to finish, and picks the winner per the
  /// portfolio's selection rule (FirstFeasible: first feasible plan
  /// recorded; BestEnergy: lowest energy among feasible plans, ties to the
  /// lowest strategy index). One-shot; owner only.
  [[nodiscard]] RaceOutcome close_and_wait();

 private:
  enum class Slot { Unclaimed, Running, Done };

  const MapperPortfolio* portfolio_;
  const kpn::Application* app_;
  const core::ResourceState* base_;
  /// Shared stop/budget token handed to every strategy. Allocated (not
  /// inline) only because the deadline variant needs a different
  /// constructor; owned exclusively by the race.
  std::unique_ptr<core::CancelToken> token_;

  /// Guards only the claim/record bookkeeping below — never held while a
  /// mapper runs, which is why its rank sits above state_mutex_: a worker
  /// holding the state lock may start a race, never the other way around.
  audit::Mutex mutex_{audit::LockRank::kPortfolioRace, "portfolio.race"};
  std::condition_variable_any cv_;
  std::vector<Slot> slots_ RTSM_GUARDED_BY(mutex_);
  std::vector<StrategyRun> runs_ RTSM_GUARDED_BY(mutex_);
  /// Indices of feasible runs in the order they recorded; the front is the
  /// FirstFeasible winner.
  std::vector<std::size_t> feasible_order_ RTSM_GUARDED_BY(mutex_);
  bool closed_ RTSM_GUARDED_BY(mutex_) = false;
};

/// Folds one race into the admission counters: portfolio_races, and per
/// strategy runs/wins/losses/timeouts/spent_us (the vector is sized and
/// named on first use). The caller holds whatever guards @p stats; it also
/// counts portfolio_fallbacks itself when the race produced no winner.
void merge_portfolio_stats(AdmissionStats& stats,
                           const MapperPortfolio& portfolio,
                           const RaceOutcome& outcome);

/// Builds the portfolio configured in @p options; null when disabled.
/// Throws rtsm::Error when the portfolio is enabled without a registry, or
/// names a strategy the registry does not have. Shared constructor tail of
/// both managers.
[[nodiscard]] std::unique_ptr<MapperPortfolio> make_portfolio(
    const ManagerOptions& options);

}  // namespace rtsm::runtime
