#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/platform.hpp"
#include "core/mapper.hpp"
#include "runtime/admission.hpp"
#include "runtime/defrag.hpp"
#include "runtime/manager_options.hpp"
#include "runtime/mode_switch.hpp"
#include "shapes/library.hpp"
#include "verify/engine.hpp"

namespace rtsm::runtime {

class MapperPortfolio;
struct StatsReport;

/// Identifier of a submitted admission request.
using RequestId = std::uint64_t;

/// How a processed admission request ended.
enum class AdmitStatus {
  /// Mapped and committed; the application is running.
  Admitted,
  /// The mapper found no placement and the policy gave up.
  Rejected,
  /// The mapper exceeded the request's wall-clock deadline; the application
  /// was not admitted (a run-time mapper that misses its budget is useless
  /// to a stream that has already started).
  DeadlineMiss,
  /// Parked by a retry policy; resolved after a future release.
  Waiting,
};

/// Outcome of one admission request.
struct AdmitOutcome {
  RequestId request = 0;
  AdmitStatus status = AdmitStatus::Rejected;
  /// Handle of the running application; valid when status == Admitted.
  AppId app_id;
  core::MappingResult mapping;
  /// Wall-clock time the mapper spent on this request, microseconds
  /// (summed over retry attempts).
  double mapping_us = 0.0;
  std::uint32_t attempts = 0;
  /// Admitted from the shape library (anchor instantiation of a learned
  /// placement) instead of a full mapper run.
  bool shape_hit = false;
  /// Name of the portfolio strategy whose plan was committed; empty when
  /// the portfolio is disabled, the admission was a shape hit, or the
  /// unbudgeted fallback run of the primary mapper produced the plan.
  std::string portfolio_winner;
};

/// A release request that could not be honoured: the id was never admitted
/// or was already released. Reported (not silently dropped, not fatal to
/// the event stream) so operators can spot double-release bugs in clients.
struct ReleaseError {
  AppId id;
  std::string message;
  /// Id of the submit_release() call that failed (0 when the release was
  /// applied directly, e.g. ConcurrentRuntimeManager::release()).
  RequestId request = 0;
};

/// Bounded latency sample: exact while fewer than kCapacity values were
/// recorded, an unbiased uniform reservoir (Vitter's algorithm R over a
/// deterministic xorshift64 stream) beyond that. Replaces the unbounded
/// per-request vector — which grew without limit and was copied whole on
/// every percentile query — with O(kCapacity) memory and O(kCapacity)
/// queries under sustained traffic. count/mean/min/max stay exact via
/// running accumulators; interior percentiles are exact until the
/// reservoir first overflows and an estimate thereafter.
class LatencyReservoir {
 public:
  static constexpr std::size_t kCapacity = 2048;

  void record(double value_us);

  /// Values recorded (not the retained sample size).
  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Values retained; never exceeds kCapacity.
  [[nodiscard]] std::size_t sample_size() const { return samples_.size(); }

  [[nodiscard]] double mean_us() const;
  [[nodiscard]] double min_us() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max_us() const { return count_ == 0 ? 0.0 : max_; }

  /// Percentile @p p in [0, 100] (clamped); 0 when nothing was recorded.
  /// p <= 0 and p >= 100 return the exact stream minimum / maximum even
  /// after the reservoir overflowed.
  [[nodiscard]] double percentile_us(double p) const;

 private:
  std::vector<double> samples_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  /// xorshift64 state; fixed seed so runs are reproducible.
  std::uint64_t rng_ = 0x2545f4914f6cdd1dull;
};

/// Per-strategy tallies of portfolio admission (see runtime/portfolio.hpp);
/// indexed like PortfolioOptions::strategies.
struct PortfolioStrategyStats {
  std::string name;
  std::uint64_t runs = 0;      ///< Races in which the strategy started.
  std::uint64_t wins = 0;      ///< Races whose plan this strategy supplied.
  std::uint64_t losses = 0;    ///< Ran (or was cancelled mid-run) but lost.
  std::uint64_t timeouts = 0;  ///< Stopped/skipped by the expired budget.
  double spent_us = 0.0;       ///< Summed mapper wall-clock.
};

/// Counters and latency distribution of the admission stream.
struct AdmissionStats {
  std::uint64_t offered = 0;    ///< Admit requests submitted.
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t retries = 0;    ///< Extra mapping attempts by a retry policy.
  std::uint64_t releases = 0;   ///< Release requests processed.
  std::uint64_t release_errors = 0;  ///< Unknown-id / double releases.
  /// Optimistic validation conflicts: a plan stopped fitting between
  /// snapshot and commit and was re-mapped (concurrent manager only).
  std::uint64_t conflicts = 0;

  /// Sharded-mode requests that fell back to whole-platform admission
  /// after their stripe could not host them (concurrent manager only).
  std::uint64_t shard_fallbacks = 0;

  // -- defragmentation (see runtime/defrag.hpp) ----------------------------
  std::uint64_t defrag_passes = 0;        ///< Passes that ran.
  std::uint64_t migrations = 0;           ///< Applications relocated.
  std::uint64_t migration_failures = 0;   ///< Rolled-back commit attempts.
  /// Parked requests whose wake-up followed a defrag pass that migrated
  /// at least one application in the same release event.
  std::uint64_t parked_woken_by_defrag = 0;
  /// Fragmentation score around the most recent pass.
  double last_fragmentation_before = 0.0;
  double last_fragmentation_after = 0.0;
  /// Summed modelled migration cost, microseconds.
  double migration_cost_us = 0.0;

  // -- shape library (see shapes/library.hpp) ------------------------------
  std::uint64_t shape_hits = 0;    ///< Admissions committed from a shape.
  std::uint64_t shape_misses = 0;  ///< Lookups that ran the full mapper.
  std::uint64_t shape_inserts = 0;    ///< Placements learned on admit.
  std::uint64_t shape_evictions = 0;  ///< Shapes evicted by those inserts.
  /// Anchor transforms screened on behalf of this manager's lookups.
  std::uint64_t shape_anchor_probes = 0;

  /// Snapshot copies served by reusing a per-worker scratch ResourceState
  /// instead of allocating a fresh one (concurrent manager only).
  std::uint64_t snapshot_reuses = 0;

  // -- admission hot path (see docs/architecture.md) -----------------------
  /// Scratch refreshes served by replaying the live state's mutation
  /// journal — O(changes since last sync) instead of the O(platform) full
  /// copy (see core::ResourceState::refresh_snapshot_into).
  std::uint64_t snapshot_delta_refreshes = 0;
  /// Refreshes that fell back to a full copy: first sync of a scratch,
  /// journal wrap, or a scratch mutated since it last synced.
  std::uint64_t snapshot_full_copies = 0;
  /// Journal entries replayed across all delta refreshes.
  std::uint64_t journal_entries_replayed = 0;
  /// Commits that skipped the full mapping_fits re-validation because the
  /// live state's version had not moved since the plan was pre-validated
  /// on its snapshot (concurrent manager only).
  std::uint64_t gated_commits = 0;
  /// Commits that ran the mapping_fits re-validation (the plan's snapshot
  /// was stale, masked, or never pre-validated).
  std::uint64_t validated_commits = 0;
  /// Wall-clock per admission phase, microseconds, summed over requests:
  /// snapshot refreshes, mapper/race/shape-probe planning, fit
  /// (re-)validation, and state commits.
  double snapshot_time_us = 0.0;
  double map_time_us = 0.0;
  double validate_time_us = 0.0;
  double commit_time_us = 0.0;

  // -- portfolio admission (see runtime/portfolio.hpp) ---------------------
  std::uint64_t portfolio_races = 0;  ///< Races run on shape-library misses.
  /// Races that produced no feasible plan (budget exhausted or every
  /// strategy failed); the primary mapper then ran once, unbudgeted.
  std::uint64_t portfolio_fallbacks = 0;
  /// Per-strategy wins/losses/timeouts/budget spend; empty until the first
  /// race.
  std::vector<PortfolioStrategyStats> portfolio;

  // -- preemption (see PreemptionOptions in runtime/admission.hpp) ---------
  std::uint64_t preemption_grants = 0;     ///< Arrivals admitted by evicting.
  std::uint64_t preemption_evictions = 0;  ///< Victims evicted (re-parked).

  // -- mode switches (see switch_mode()) -----------------------------------
  std::uint64_t mode_switches = 0;          ///< switch_mode() calls.
  std::uint64_t switches_in_place = 0;      ///< Committed with pins held.
  std::uint64_t switches_replanned = 0;     ///< Committed via full replan.
  std::uint64_t switches_rolled_back = 0;   ///< Old mode kept on misfit.
  std::uint64_t switch_failures = 0;        ///< Unknown-id switches.
  /// Switches aborted because their own wall-clock deadline blew while
  /// planning (old mode kept; see ModeSwitchOptions::deadline_us).
  std::uint64_t switch_deadline_misses = 0;
  /// Summed modelled migration cost of committed switches, microseconds.
  double switch_migration_cost_us = 0.0;
  /// Wall-clock latency of every switch_mode() call, us (bounded sample).
  LatencyReservoir switch_latencies;

  /// Mapper wall-clock latency of every resolved admit request, us.
  /// Bounded (see LatencyReservoir) so sustained traffic cannot grow the
  /// stats without limit.
  LatencyReservoir latencies;

  /// Latency percentile @p p in [0, 100] over resolved requests (0 when no
  /// request resolved yet).
  [[nodiscard]] double latency_percentile_us(double p) const {
    return latencies.percentile_us(p);
  }
  [[nodiscard]] double mean_latency_us() const { return latencies.mean_us(); }
};

/// Merges one defragmentation pass into @p stats. Shared by both managers
/// and every trigger path (policy-driven, on-reject, defrag_now, the
/// mode-switch misfit retry); the caller holds whatever guards @p stats.
void merge_defrag_stats(AdmissionStats& stats, const DefragPassResult& pass);

/// Counts one switch outcome into @p stats (mode_switches, the per-status
/// counter, the latency sample and the migration cost) and returns
/// whether the switch committed. Shared by both managers; the caller
/// holds whatever guards @p stats.
bool record_switch_stats(AdmissionStats& stats, const SwitchOutcome& out);

/// Run-time admission manager: the paper's run-time scenario as a subsystem.
///
/// Owns the platform's ResourceState and processes a FIFO stream of
/// admit/release requests. Every admission is planned by the pluggable
/// Mapper strategy against the *current* residual resources, screened by
/// mapping_fits(), and booked with commit_mapping(); releases return the
/// reservation with release_mapping(). A pluggable AdmissionPolicy decides
/// whether failed requests are dropped (first-fit) or parked and retried
/// when capacity is next released (retry-with-feedback). An optional
/// DefragPolicy compacts the platform by migrating running applications:
/// after releases (before parked requests are woken) or reactively when an
/// admission fails — see runtime/defrag.hpp.
///
/// With a ShapeLibrary (optionally shared across managers, like the verify
/// engine), admission first tries to instantiate a learned relocatable
/// placement against the live state — the hot path, skipping mapping
/// steps 1-4 — and only falls back to the full mapper on a miss, feeding
/// successful full-path placements back into the library (learn-on-admit).
/// Defragmentation, preemption re-plans and mode switches bypass the
/// library: their placements are position-constrained, and since shapes
/// are position-independent and re-validated against the live state on
/// every use, nothing they do can make a stored shape stale.
class RuntimeManager {
 public:
  /// Builds a manager from the unified options surface (shared with the
  /// concurrent manager; see runtime/manager_options.hpp). Null mapper /
  /// policy default to SpatialMapper / FirstFitAdmission, so
  /// `RuntimeManager(platform, {})` is a paper-faithful manager. Throws
  /// rtsm::Error when options enable the portfolio without a registry or
  /// name an unknown strategy.
  RuntimeManager(const arch::Platform& platform, ManagerOptions options);

  ~RuntimeManager();

  /// Queues an admission request. @p deadline_us > 0 bounds the mapper's
  /// wall-clock budget; exceeding it counts as a deadline miss. @p cls is
  /// the request's priority class (see RequestClass): when the mapper and
  /// the defrag policy both fail the request, a class that outranks
  /// running preemptible applications may evict the cheapest victim set
  /// instead of being rejected (victims are re-queued as parked). The
  /// request is processed by the next drain().
  RequestId submit(std::shared_ptr<const kpn::Application> app,
                   double deadline_us = 0.0, RequestClass cls = {});

  /// Queues the release of a running application (processed in FIFO order
  /// with the admissions around it). Releasing an id that was never
  /// admitted — or already released — is NOT fatal to the stream: drain()
  /// records a ReleaseError (see drain_release_errors()) and continues.
  /// Returns the request id, which a failed release's ReleaseError carries.
  RequestId submit_release(AppId id);

  /// Processes all queued requests in FIFO order. A release wakes parked
  /// requests: they re-enter the queue ahead of later arrivals, oldest
  /// first. Returns the outcomes of every resolved request not yet reported
  /// — including requests resolved inside an admit()/release() convenience
  /// call that were not that call's own, and outcomes stranded by an
  /// exception in an earlier drain. No outcome is ever silently dropped.
  std::vector<AdmitOutcome> drain();

  /// submit() + drain() convenience for interactive callers. Returns this
  /// request's outcome (status Waiting when a retry policy parked it);
  /// outcomes of *other* requests resolved along the way are held for the
  /// next drain().
  AdmitOutcome admit(const kpn::Application& app, double deadline_us = 0.0,
                     RequestClass cls = {});

  /// submit_release() + drain() convenience. Releasing an unknown or
  /// already-released id returns false and records a ReleaseError +
  /// stats().release_errors — the same non-fatal semantics as the queued
  /// drain() path and the concurrent manager, so clients observe one
  /// behaviour regardless of which entry point the release took. Outcomes
  /// of parked requests this release resolves are held for the next
  /// drain().
  bool release(AppId id);

  /// Switches running instance @p id to the graph @p next *in place*: the
  /// processes of @p next that share a name with the old graph are pinned
  /// to their current tiles and only the remaining delta is re-planned
  /// (through the ordinary mapper, so structurally-equal placements hit
  /// the shared step-4 verification cache). The new mode is committed with
  /// a two-phase release/fit/commit whose misfit path restores the old
  /// booking exactly; when no plan fits, one defragmentation pass is
  /// spent before rolling back to the old mode (so a rolled-back switch
  /// may still have compacted *other* applications). The instance keeps
  /// its AppId across the switch. A committed switch may free capacity,
  /// so it wakes parked requests like a release does (their outcomes are
  /// held for the next drain()). @p deadline_us > 0 bounds the switch's
  /// own wall-clock budget: blown while planning, the switch aborts with
  /// SwitchStatus::DeadlineMiss and the old mode keeps running (counted
  /// in stats().switch_deadline_misses).
  SwitchOutcome switch_mode(AppId id,
                            std::shared_ptr<const kpn::Application> next,
                            double deadline_us = 0.0);

  /// Hands out (and clears) the release errors recorded since the last
  /// call, in stream order.
  [[nodiscard]] std::vector<ReleaseError> drain_release_errors();

  /// Force-resolves all parked requests as rejected (end of a scenario).
  std::vector<AdmitOutcome> reject_waiting();

  [[nodiscard]] std::size_t running_count() const { return running_.size(); }
  [[nodiscard]] std::size_t waiting_count() const { return waiting_.size(); }
  [[nodiscard]] std::size_t queued_count() const { return queue_.size(); }

  /// Residual resource view (what the next admission will see).
  [[nodiscard]] const core::ResourceState& state() const { return state_; }

  /// Mean live tile occupancy in [0, 1] — the fleet dispatcher's load
  /// probe (see core::mean_occupancy).
  [[nodiscard]] double mean_occupancy() const;

  [[nodiscard]] const AdmissionStats& stats() const { return stats_; }

  /// One aggregate observability snapshot — admission counters, verify-
  /// engine counters, shape-library counters and the release errors
  /// recorded since the last report (drained, like
  /// drain_release_errors()). Shared shape with the concurrent manager;
  /// StatsReport::to_json() is what the benches embed.
  [[nodiscard]] StatsReport stats_report();

  /// Step-4 verification-engine counters of the underlying mapper (cache
  /// hits/misses across admissions, simulations and events saved). Zeros
  /// when the mapper runs without an engine.
  [[nodiscard]] verify::EngineStats verification_stats() const;

  /// Shape-library counters (library-global when the library is shared;
  /// the per-manager view lives in stats().shape_*). Zeros without a
  /// library.
  [[nodiscard]] shapes::ShapeLibraryStats shape_stats() const;

  /// The shape library this manager admits through; null when disabled.
  [[nodiscard]] const std::shared_ptr<shapes::ShapeLibrary>& shape_library()
      const {
    return shapes_;
  }

  [[nodiscard]] const core::Mapper& mapper() const { return *mapper_; }
  [[nodiscard]] const AdmissionPolicy& policy() const { return *policy_; }
  [[nodiscard]] const DefragOptions& defrag_options() const {
    return planner_.options();
  }

  /// The portfolio this manager races on shape misses; null when disabled.
  [[nodiscard]] const MapperPortfolio* portfolio() const {
    return portfolio_.get();
  }

  /// Runs one defragmentation pass right now, regardless of policy, and
  /// merges its result into stats(). For operators, benches and tests;
  /// the policy-driven passes run inside drain().
  DefragPassResult defrag_now();

  /// Total energy per symbol across running applications, nJ.
  [[nodiscard]] double total_energy_nj_per_symbol() const;

  /// Ids of all running applications, ascending.
  [[nodiscard]] std::vector<AppId> running_ids() const;

  /// Committed mapping of a running application; throws for unknown ids.
  [[nodiscard]] const core::Mapping& mapping_of(AppId id) const;

  /// Application of a running id; throws for unknown ids. With mapping_of
  /// this lets callers replay the surviving commits (the bookkeeping
  /// oracle of the defrag bench and tests).
  [[nodiscard]] std::shared_ptr<const kpn::Application> app_of(AppId id) const;

  /// Display label of a running instance: "<graph name>#<instance>". The
  /// suffix is the admitting request id, so two admissions of the same
  /// graph (e.g. the same hiperlan2_mode_variant twice) stay
  /// distinguishable in bench labels and logs. Throws for unknown ids.
  [[nodiscard]] std::string display_name(AppId id) const;

 private:
  struct Pending {
    enum class Kind { Admit, Release };
    Kind kind = Kind::Admit;
    RequestId request = 0;
    std::shared_ptr<const kpn::Application> app;  // Admit
    AppId target;                                 // Release
    double deadline_us = 0.0;
    RequestClass cls;
    std::uint32_t attempts = 0;
    double mapping_us = 0.0;
    /// An OnReject defrag pass was already spent on this request (the
    /// flag survives parking, matching the concurrent manager's
    /// one-pass-per-request contract).
    bool defragged = false;
    /// This request is a preemption victim re-entering the stream; it
    /// never preempts again (no eviction cascades).
    bool reparked = false;
  };

  /// Runs one mapping attempt for @p pending; returns the outcome, or
  /// nothing when the policy parked the request for a retry.
  [[nodiscard]] std::optional<AdmitOutcome> process_admit(Pending pending);

  /// One planning attempt against the live state: a portfolio race when
  /// configured (with one unbudgeted primary-mapper run as the fallback
  /// when the race has no winner), the primary mapper alone otherwise.
  /// Updates @p pending's attempt/time counters and the portfolio stats;
  /// @p winner receives the winning strategy's name (cleared otherwise).
  core::MappingResult plan_admission(Pending& pending, std::string& winner);
  void process_release(AppId id, RequestId request);

  /// Tries to admit @p pending by evicting lower-priority preemptible
  /// victims (cheapest set first; see docs/architecture.md). On success
  /// the victims are released and re-queued as parked, @p result holds
  /// the arrival's feasible plan against the post-eviction state, and
  /// true is returned. No state is touched on failure.
  bool try_preempt(Pending& pending, core::MappingResult& result);

  /// Moves all parked requests to the queue front (a release or a
  /// committed mode switch freed capacity), oldest first.
  void wake_waiting(bool after_defrag_migration);

  /// Runs a pass when the policy is OnReleaseThreshold and the score
  /// triggers; returns whether a pass migrated anything.
  bool maybe_defrag_after_release();
  void merge_defrag(const DefragPassResult& pass);

#if RTSM_AUDIT
  /// Recomputes the live accounting from first principles against running_
  /// and reports a StateMismatch violation on drift (audit/check_state.hpp).
  void audit_check(const char* where) const;
#endif

  core::ResourceState state_;
  std::shared_ptr<const core::Mapper> mapper_;
  std::shared_ptr<const AdmissionPolicy> policy_;
  DefragPlanner planner_;
  PreemptionOptions preemption_;
  std::shared_ptr<shapes::ShapeLibrary> shapes_;
  /// Raced on shape misses; null when portfolio admission is disabled.
  std::unique_ptr<MapperPortfolio> portfolio_;

  std::deque<Pending> queue_;
  std::vector<Pending> waiting_;
  std::map<AppId, RunningApp> running_;
  /// Resolved-but-unreported outcomes; handed out by the next drain().
  std::vector<AdmitOutcome> resolved_;
  /// Failed releases; handed out by drain_release_errors().
  std::vector<ReleaseError> release_errors_;
  AdmissionStats stats_;

  RequestId next_request_ = 1;
  AppId::value_type next_app_ = 0;
};

}  // namespace rtsm::runtime
