#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/platform.hpp"
#include "core/mapper.hpp"
#include "runtime/admission.hpp"
#include "runtime/defrag.hpp"
#include "verify/engine.hpp"

namespace rtsm::runtime {

/// Identifier of a submitted admission request.
using RequestId = std::uint64_t;

/// How a processed admission request ended.
enum class AdmitStatus {
  /// Mapped and committed; the application is running.
  Admitted,
  /// The mapper found no placement and the policy gave up.
  Rejected,
  /// The mapper exceeded the request's wall-clock deadline; the application
  /// was not admitted (a run-time mapper that misses its budget is useless
  /// to a stream that has already started).
  DeadlineMiss,
  /// Parked by a retry policy; resolved after a future release.
  Waiting,
};

/// Outcome of one admission request.
struct AdmitOutcome {
  RequestId request = 0;
  AdmitStatus status = AdmitStatus::Rejected;
  /// Handle of the running application; valid when status == Admitted.
  AppId app_id;
  core::MappingResult mapping;
  /// Wall-clock time the mapper spent on this request, microseconds
  /// (summed over retry attempts).
  double mapping_us = 0.0;
  std::uint32_t attempts = 0;
};

/// A release request that could not be honoured: the id was never admitted
/// or was already released. Reported (not silently dropped, not fatal to
/// the event stream) so operators can spot double-release bugs in clients.
struct ReleaseError {
  AppId id;
  std::string message;
  /// Id of the submit_release() call that failed (0 when the release was
  /// applied directly, e.g. ConcurrentRuntimeManager::release()).
  RequestId request = 0;
};

/// Counters and latency distribution of the admission stream.
struct AdmissionStats {
  std::uint64_t offered = 0;    ///< Admit requests submitted.
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t retries = 0;    ///< Extra mapping attempts by a retry policy.
  std::uint64_t releases = 0;   ///< Release requests processed.
  std::uint64_t release_errors = 0;  ///< Unknown-id / double releases.
  /// Optimistic validation conflicts: a plan stopped fitting between
  /// snapshot and commit and was re-mapped (concurrent manager only).
  std::uint64_t conflicts = 0;

  /// Sharded-mode requests that fell back to whole-platform admission
  /// after their stripe could not host them (concurrent manager only).
  std::uint64_t shard_fallbacks = 0;

  // -- defragmentation (see runtime/defrag.hpp) ----------------------------
  std::uint64_t defrag_passes = 0;        ///< Passes that ran.
  std::uint64_t migrations = 0;           ///< Applications relocated.
  std::uint64_t migration_failures = 0;   ///< Rolled-back commit attempts.
  /// Parked requests whose wake-up followed a defrag pass that migrated
  /// at least one application in the same release event.
  std::uint64_t parked_woken_by_defrag = 0;
  /// Fragmentation score around the most recent pass.
  double last_fragmentation_before = 0.0;
  double last_fragmentation_after = 0.0;
  /// Summed modelled migration cost, microseconds.
  double migration_cost_us = 0.0;

  /// Mapper wall-clock latency of every resolved admit request, us.
  std::vector<double> latencies_us;

  /// Latency percentile @p p in [0, 100] over resolved requests (0 when no
  /// request resolved yet).
  [[nodiscard]] double latency_percentile_us(double p) const;
  [[nodiscard]] double mean_latency_us() const;
};

/// Run-time admission manager: the paper's run-time scenario as a subsystem.
///
/// Owns the platform's ResourceState and processes a FIFO stream of
/// admit/release requests. Every admission is planned by the pluggable
/// Mapper strategy against the *current* residual resources, screened by
/// mapping_fits(), and booked with commit_mapping(); releases return the
/// reservation with release_mapping(). A pluggable AdmissionPolicy decides
/// whether failed requests are dropped (first-fit) or parked and retried
/// when capacity is next released (retry-with-feedback). An optional
/// DefragPolicy compacts the platform by migrating running applications:
/// after releases (before parked requests are woken) or reactively when an
/// admission fails — see runtime/defrag.hpp.
class RuntimeManager {
 public:
  RuntimeManager(const arch::Platform& platform,
                 std::shared_ptr<const core::Mapper> mapper,
                 std::shared_ptr<const AdmissionPolicy> policy =
                     std::make_shared<FirstFitAdmission>(),
                 DefragOptions defrag = {});

  /// Queues an admission request. @p deadline_us > 0 bounds the mapper's
  /// wall-clock budget; exceeding it counts as a deadline miss. The request
  /// is processed by the next drain().
  RequestId submit(std::shared_ptr<const kpn::Application> app,
                   double deadline_us = 0.0);

  /// Queues the release of a running application (processed in FIFO order
  /// with the admissions around it). Releasing an id that was never
  /// admitted — or already released — is NOT fatal to the stream: drain()
  /// records a ReleaseError (see drain_release_errors()) and continues.
  /// Returns the request id, which a failed release's ReleaseError carries.
  RequestId submit_release(AppId id);

  /// Processes all queued requests in FIFO order. A release wakes parked
  /// requests: they re-enter the queue ahead of later arrivals, oldest
  /// first. Returns the outcomes of every resolved request not yet reported
  /// — including requests resolved inside an admit()/release() convenience
  /// call that were not that call's own, and outcomes stranded by an
  /// exception in an earlier drain. No outcome is ever silently dropped.
  std::vector<AdmitOutcome> drain();

  /// submit() + drain() convenience for interactive callers. Returns this
  /// request's outcome (status Waiting when a retry policy parked it);
  /// outcomes of *other* requests resolved along the way are held for the
  /// next drain().
  AdmitOutcome admit(const kpn::Application& app, double deadline_us = 0.0);

  /// submit_release() + drain() convenience. Throws rtsm::Error when the
  /// release itself failed (unknown or already-released id) — the
  /// synchronous caller made the error, so it is reported synchronously.
  /// Outcomes of parked requests this release resolves are held for the
  /// next drain().
  void release(AppId id);

  /// Hands out (and clears) the release errors recorded since the last
  /// call, in stream order.
  [[nodiscard]] std::vector<ReleaseError> drain_release_errors();

  /// Force-resolves all parked requests as rejected (end of a scenario).
  std::vector<AdmitOutcome> reject_waiting();

  [[nodiscard]] std::size_t running_count() const { return running_.size(); }
  [[nodiscard]] std::size_t waiting_count() const { return waiting_.size(); }
  [[nodiscard]] std::size_t queued_count() const { return queue_.size(); }

  /// Residual resource view (what the next admission will see).
  [[nodiscard]] const core::ResourceState& state() const { return state_; }

  [[nodiscard]] const AdmissionStats& stats() const { return stats_; }

  /// Step-4 verification-engine counters of the underlying mapper (cache
  /// hits/misses across admissions, simulations and events saved). Zeros
  /// when the mapper runs without an engine.
  [[nodiscard]] verify::EngineStats verification_stats() const;

  [[nodiscard]] const core::Mapper& mapper() const { return *mapper_; }
  [[nodiscard]] const AdmissionPolicy& policy() const { return *policy_; }
  [[nodiscard]] const DefragOptions& defrag_options() const {
    return planner_.options();
  }

  /// Runs one defragmentation pass right now, regardless of policy, and
  /// merges its result into stats(). For operators, benches and tests;
  /// the policy-driven passes run inside drain().
  DefragPassResult defrag_now();

  /// Total energy per symbol across running applications, nJ.
  [[nodiscard]] double total_energy_nj_per_symbol() const;

  /// Ids of all running applications, ascending.
  [[nodiscard]] std::vector<AppId> running_ids() const;

  /// Committed mapping of a running application; throws for unknown ids.
  [[nodiscard]] const core::Mapping& mapping_of(AppId id) const;

  /// Application of a running id; throws for unknown ids. With mapping_of
  /// this lets callers replay the surviving commits (the bookkeeping
  /// oracle of the defrag bench and tests).
  [[nodiscard]] std::shared_ptr<const kpn::Application> app_of(AppId id) const;

 private:
  struct Pending {
    enum class Kind { Admit, Release };
    Kind kind = Kind::Admit;
    RequestId request = 0;
    std::shared_ptr<const kpn::Application> app;  // Admit
    AppId target;                                 // Release
    double deadline_us = 0.0;
    std::uint32_t attempts = 0;
    double mapping_us = 0.0;
    /// An OnReject defrag pass was already spent on this request (the
    /// flag survives parking, matching the concurrent manager's
    /// one-pass-per-request contract).
    bool defragged = false;
  };

  /// Runs one mapping attempt for @p pending; returns the outcome, or
  /// nothing when the policy parked the request for a retry.
  [[nodiscard]] std::optional<AdmitOutcome> process_admit(Pending pending);
  void process_release(AppId id, RequestId request);

  /// Runs a pass when the policy is OnReleaseThreshold and the score
  /// triggers; returns whether a pass migrated anything.
  bool maybe_defrag_after_release();
  void merge_defrag(const DefragPassResult& pass);

  core::ResourceState state_;
  std::shared_ptr<const core::Mapper> mapper_;
  std::shared_ptr<const AdmissionPolicy> policy_;
  DefragPlanner planner_;

  std::deque<Pending> queue_;
  std::vector<Pending> waiting_;
  std::map<AppId, RunningApp> running_;
  /// Resolved-but-unreported outcomes; handed out by the next drain().
  std::vector<AdmitOutcome> resolved_;
  /// Failed releases; handed out by drain_release_errors().
  std::vector<ReleaseError> release_errors_;
  AdmissionStats stats_;

  RequestId next_request_ = 1;
  AppId::value_type next_app_ = 0;
};

}  // namespace rtsm::runtime
