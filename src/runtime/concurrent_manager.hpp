#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "arch/platform.hpp"
#include "audit/mutex.hpp"
#include "core/mapper.hpp"
#include "runtime/admission.hpp"
#include "runtime/manager_options.hpp"
#include "runtime/request_queue.hpp"
#include "runtime/runtime_manager.hpp"

namespace rtsm::runtime {

class PortfolioRace;

/// Tuning knobs of the ConcurrentRuntimeManager.
struct ConcurrentOptions {
  /// Worker threads consuming the arrival queue. 0 = no pool: requests
  /// queue up and are processed inline by pump() (or admit()) on the
  /// caller's thread — deterministic, used by tests and for embedding the
  /// manager into an external event loop.
  std::uint32_t workers = 4;

  /// Bound of the arrival queue. submit() blocks while the queue is full,
  /// back-pressuring arrival sources instead of growing without limit.
  std::size_t queue_capacity = 256;

  /// Arrivals drained per worker wake: one burst batch. The batch is
  /// reordered by the PriorityPolicy and admitted greedily, so a burst is
  /// admitted in priority order even though arrivals raced.
  std::size_t max_batch = 8;

  /// Re-map attempts after an optimistic validation conflict (the residual
  /// state changed between snapshot and commit so the plan no longer
  /// fits). Each retry plans against a fresh snapshot.
  std::uint32_t validation_retries = 3;

  /// Batch-ordering policy: how requests within one drained burst are
  /// ranked (after the RequestClass, before arrival order). Null defaults
  /// to FifoPriority.
  std::shared_ptr<const PriorityPolicy> priority;

  /// Number of tile-region shards (vertical mesh stripes). >= 2 enables
  /// two-phase sharded admission: a request first plans confined to the
  /// least-loaded shard (per-shard lock, tiles outside the shard masked as
  /// saturated), and falls back to whole-platform optimistic admission
  /// when the shard cannot host it (counted in stats().shard_fallbacks).
  std::uint32_t shards = 1;
};

/// Thread-safe run-time admission manager: concurrent arrivals, a worker
/// pool, and optimistic map-then-validate-then-commit booking.
///
/// The expensive part of an admission — running the spatial mapper — is
/// executed on a value snapshot of the ResourceState *outside* any lock;
/// only the fit re-check (mapping_fits) and the reservation
/// (commit_mapping) are serialized on the state mutex. When the residual
/// state changed in between and the plan no longer fits, the request is
/// re-mapped against a fresh snapshot (a bounded number of times) — the
/// classic optimistic-concurrency loop, which works because admissions
/// rarely contend for the same tiles on a large platform.
///
/// Semantics relative to the serial RuntimeManager:
/// - submit() returns a std::future<AdmitOutcome> instead of feeding a
///   drain() stream; resolution order across racing requests is
///   nondeterministic (within one drained batch it follows the
///   PriorityPolicy).
/// - release() applies immediately (it only takes the state lock) and
///   wakes parked requests by re-queueing them.
/// - A retry policy parks failed requests exactly like the serial manager;
///   a parked request's future resolves after a later release readmits it,
///   or when reject_waiting()/shutdown() gives up on it.
class ConcurrentRuntimeManager {
 public:
  /// Builds a manager from the unified options surface shared with the
  /// serial RuntimeManager (mapper / policy / defrag / preemption / shapes
  /// / portfolio; see runtime/manager_options.hpp) plus the pool tuning in
  /// @p options. Null mapper / policy / priority default to SpatialMapper,
  /// FirstFitAdmission and FifoPriority. Throws rtsm::Error when @p manager
  /// enables the portfolio without a registry or names an unknown
  /// strategy.
  ConcurrentRuntimeManager(const arch::Platform& platform,
                           ManagerOptions manager,
                           ConcurrentOptions options = {});

  ConcurrentRuntimeManager(const ConcurrentRuntimeManager&) = delete;
  ConcurrentRuntimeManager& operator=(const ConcurrentRuntimeManager&) =
      delete;

  /// Joins the workers; queued requests are still processed, parked ones
  /// are rejected (see shutdown()).
  ~ConcurrentRuntimeManager();

  /// Enqueues an admission request from any thread; blocks while the
  /// arrival queue is full. The future resolves when the request is
  /// admitted, rejected or misses its deadline; with a retry policy it
  /// stays pending while the request is parked. @p cls orders the request
  /// within its drained burst (before the PriorityPolicy tie-break) and
  /// gates preemption: an otherwise-rejected arrival whose class outranks
  /// running preemptible applications may evict the cheapest victim set
  /// (victims are re-parked; see RequestClass).
  std::future<AdmitOutcome> submit(std::shared_ptr<const kpn::Application> app,
                                   double deadline_us = 0.0,
                                   RequestClass cls = {});

  /// submit() + future wait. With workers == 0 the caller's thread pumps
  /// the queue first. Do not combine with a retry policy when nothing else
  /// drives releases — a parked request would block forever.
  AdmitOutcome admit(const kpn::Application& app, double deadline_us = 0.0,
                     RequestClass cls = {});

  /// Releases a running application immediately (thread-safe) and wakes
  /// parked requests. Returns false — and records a ReleaseError — when
  /// the id is unknown or already released (the one release contract both
  /// managers share).
  bool release(AppId id);

  /// Switches running instance @p id to graph @p next in place — see
  /// RuntimeManager::switch_mode for the pin/replan/rollback contract.
  /// The plan *and* commit run under the state lock (like a defrag pass),
  /// so the switch is atomic against racing admissions and releases; the
  /// instance keeps its AppId. A committed switch wakes parked requests.
  /// @p deadline_us > 0 bounds the switch's own wall-clock budget
  /// (SwitchStatus::DeadlineMiss + old mode kept when blown).
  SwitchOutcome switch_mode(AppId id,
                            std::shared_ptr<const kpn::Application> next,
                            double deadline_us = 0.0);

  /// Processes queued requests inline on the caller's thread until the
  /// queue is empty. The workers == 0 mode's event loop; also safe to call
  /// concurrently with a running pool (the caller just becomes an extra
  /// worker for a while).
  void pump();

  /// Blocks until every submitted request has been resolved or parked.
  /// (Parked requests are waiting for a future release, not for a worker —
  /// counting them as in-flight would deadlock the caller.)
  void wait_idle();

  /// Force-resolves all parked requests as rejected; returns their
  /// outcomes (their futures resolve too).
  std::vector<AdmitOutcome> reject_waiting();

  /// Stops accepting new requests, drains the queue, joins the workers and
  /// rejects everything still parked. Idempotent; called by the
  /// destructor.
  void shutdown();

  // -- thread-safe observers (values are copied out under the lock) -------

  /// Residual resource snapshot (what a new admission would see).
  [[nodiscard]] core::ResourceState state_snapshot() const;

  /// Mean live tile occupancy in [0, 1], read under the state lock in one
  /// O(tiles) scan (no snapshot copy) — the fleet dispatcher's load probe.
  [[nodiscard]] double mean_occupancy() const;

  [[nodiscard]] AdmissionStats stats() const;

  /// One aggregate observability snapshot (admission + verification +
  /// shape-library counters, plus the release errors drained like
  /// drain_release_errors()). Identical shape to
  /// RuntimeManager::stats_report(); StatsReport::to_json() is what the
  /// benches embed.
  [[nodiscard]] StatsReport stats_report();

  /// Step-4 verification-engine counters of the underlying mapper — the
  /// engine is thread-safe, so this is just a snapshot of its stats.
  /// Zeros when the mapper runs without an engine.
  [[nodiscard]] verify::EngineStats verification_stats() const;

  /// Shape-library counters (library-global when the library is shared;
  /// the per-manager view lives in stats().shape_*). Zeros without a
  /// library.
  [[nodiscard]] shapes::ShapeLibraryStats shape_stats() const;

  [[nodiscard]] std::size_t running_count() const;
  [[nodiscard]] std::size_t waiting_count() const;
  [[nodiscard]] std::size_t queued_count() const { return queue_.size(); }

  [[nodiscard]] std::vector<AppId> running_ids() const;
  [[nodiscard]] core::Mapping mapping_of(AppId id) const;
  [[nodiscard]] std::shared_ptr<const kpn::Application> app_of(AppId id) const;
  /// "<graph name>#<instance>" — unique even when graph names collide.
  [[nodiscard]] std::string display_name(AppId id) const;
  [[nodiscard]] double total_energy_nj_per_symbol() const;

  /// Hands out (and clears) recorded release errors.
  [[nodiscard]] std::vector<ReleaseError> drain_release_errors();

  /// Request ids in the order they were resolved (admitted / rejected /
  /// deadline-missed) — the observable effect of batch reordering.
  [[nodiscard]] std::vector<RequestId> resolution_order() const;

  [[nodiscard]] const core::Mapper& mapper() const { return *mapper_; }
  [[nodiscard]] const AdmissionPolicy& policy() const { return *policy_; }
  [[nodiscard]] const PriorityPolicy& priority_policy() const {
    return *priority_;
  }
  [[nodiscard]] const ConcurrentOptions& options() const { return options_; }

  /// The portfolio raced on shape misses; null when disabled.
  [[nodiscard]] const MapperPortfolio* portfolio() const {
    return portfolio_.get();
  }

  /// Shard index hosting @p tile (tiles are partitioned into vertical mesh
  /// stripes); always 0 when sharding is off.
  [[nodiscard]] std::size_t shard_of(TileId tile) const;

  /// Runs one defragmentation pass right now (regardless of policy) under
  /// the state lock and merges its result into stats(). For operators,
  /// benches and tests.
  DefragPassResult defrag_now();

 private:
  struct Request {
    RequestId id = 0;
    std::shared_ptr<const kpn::Application> app;
    double deadline_us = 0.0;
    double priority = 0.0;
    RequestClass cls;
    std::uint32_t attempts = 0;
    double mapping_us = 0.0;
    /// An OnReject defrag pass was already spent on this request.
    bool defragged = false;
    /// Preemption victim re-entering the stream; never preempts again.
    bool reparked = false;
    /// Winning strategy of the portfolio race that produced the current
    /// plan (copied onto the outcome by validate_and_commit).
    std::string portfolio_winner;
    std::promise<AdmitOutcome> promise;
  };

  /// One queue entry: a client admission request, or — when race is set —
  /// a helper job lending the popping worker to another worker's portfolio
  /// race (strategy #strategy of that race). Helpers run before the
  /// batch's requests, carry no promise and are not counted in-flight; a
  /// helper whose race already closed is a no-op.
  struct Job {
    Request request;
    std::shared_ptr<PortfolioRace> race;
    std::size_t strategy = 0;
  };

  struct Shard {
    /// One class for every shard instance: shard locks are never nested
    /// (a fallback to whole-platform admission releases the shard lock
    /// first), which the witness graph would flag as a self-edge.
    audit::Mutex mutex{audit::LockRank::kManagerShard, "manager.shard"};
    std::vector<bool> owns_tile;  // indexed by TileId::value()
  };

  void worker_loop();
  /// Runs one popped batch: helper jobs first (a racing owner may be
  /// blocked on them), then the real requests through process_batch.
  void process_jobs(std::vector<Job> jobs, core::ResourceState& scratch);
  /// @p scratch is the calling worker's reusable snapshot buffer (the
  /// per-attempt ResourceState copies land in it instead of freshly
  /// allocated snapshots; see stats().snapshot_reuses).
  void process_batch(std::vector<Request> batch, core::ResourceState& scratch);
  void process_request(Request request, core::ResourceState& scratch);

  /// Shape-library hot path: probe on @p scratch, commit through
  /// validate_and_commit, re-probe on conflict (bounded by
  /// validation_retries). True when the request was resolved.
  bool try_shape_admit(Request& request, core::ResourceState& scratch);

  /// One mapping attempt against @p base; updates attempt counters.
  core::MappingResult run_mapper(Request& request,
                                 const core::ResourceState& base);

  /// One portfolio race against @p base: strategies 1..N-1 are offered to
  /// idle workers as helper jobs (try_push — the owner must never block on
  /// a full queue), the owner runs strategy 0 and then claims whatever no
  /// helper picked up, so the race finishes with any pool size. Returns
  /// the winner's plan, or — when the race has no winner — one unbudgeted
  /// run of the primary mapper (portfolio_fallbacks). @p base must stay
  /// valid for the whole call; the owner blocks in close_and_wait until
  /// every helper is done with it.
  core::MappingResult run_race(Request& request,
                               const core::ResourceState& base);

  /// Fit re-check + reservation under the state lock. False on conflict.
  /// @p planned_on, when non-null, is the scratch snapshot the plan was
  /// already pre-validated against (mapping_fits ran on it after its last
  /// refresh and passed, and it was not mutated since). If that scratch is
  /// still version-synced with the live state under the lock, the live
  /// state is bit-identical to it and the mapping_fits re-validation is
  /// skipped (stats().gated_commits); any intervening commit, release,
  /// defrag or switch bumps the live version and forces the full re-check
  /// (stats().validated_commits). @p shape_hit marks the plan as a
  /// shape-library instantiation (tagged on the outcome; a miss-path
  /// success learns into the library here).
  bool validate_and_commit(Request& request, core::MappingResult& result,
                           const core::ResourceState* planned_on = nullptr,
                           bool shape_hit = false);

  /// Refreshes @p out from the live state under the state lock: deltas
  /// since @p out's last sync are replayed from the state's journal
  /// (O(changes)); a first sync, a journal wrap or a mutated @p out falls
  /// back to a full copy-assign that still reuses @p out's vector
  /// capacity. Arms @p out's version token, which validate_and_commit's
  /// commit gate checks.
  void snapshot_state_into(core::ResourceState& out) const;

  /// snapshot_state_into + all tiles outside @p shard saturated.
  void masked_snapshot_into(std::size_t shard, core::ResourceState& out) const;

  /// Least-loaded shard by live occupancy (mean tile_occupancy of the
  /// stripe's tiles). Stripes within a small band of the minimum are
  /// dealt out round-robin so concurrent planners on an evenly loaded
  /// platform still start in disjoint stripes.
  [[nodiscard]] std::size_t pick_shard() const;

  /// Evicts lower-priority preemptible victims for @p request and commits
  /// its plan, all under one state-lock hold (atomic against racing
  /// admissions). On success the outcome is resolved and the evicted
  /// victims are returned through @p evicted for re-parking (done by the
  /// caller *outside* the state lock — lock order: state before waiting
  /// is never taken). False leaves all state untouched.
  bool try_preempt_and_commit(Request& request,
                              std::vector<Request>& evicted);
  /// Re-parks preemption victims (fresh request ids, reparked flag).
  void park_evicted(std::vector<Request> evicted);

#if RTSM_AUDIT
  /// RTSM_AUDIT boundary hook: rebuilds the books from running_ via
  /// audit::check_state and reports any drift as a violation. Called at
  /// every commit/release/defrag/switch/preemption boundary, under
  /// state_mutex_.
  void audit_check(const char* where) const RTSM_REQUIRES(state_mutex_);
#endif

  /// One defrag pass under the state lock; stats merged afterwards.
  DefragPassResult defrag_pass_locked();
  /// OnReleaseThreshold trigger: pass when the score is over threshold.
  /// Returns whether a pass migrated anything.
  bool maybe_defrag_after_release();

  /// Outcome bookkeeping shared by every resolution path: counters,
  /// latency sample, resolution order.
  void record_outcome(RequestId request, const AdmitOutcome& outcome);
  void resolve(Request request, AdmitOutcome outcome);
  /// Resolves @p request as rejected because the manager is shut down.
  void reject_shut_down(Request request);

  /// Parks @p request — unless a release advanced the epoch past
  /// @p epoch_seen since the failed attempt planned its snapshot, in which
  /// case parking would miss that release's wake-up (the lost-wakeup race)
  /// and the caller must retry against the fresh state instead. Returns
  /// whether the request was parked.
  [[nodiscard]] bool try_park(Request& request, std::uint64_t epoch_seen);

  /// Moves parked requests back into the queue after a release.
  /// @p after_defrag_migration marks the wake as following a defrag pass
  /// that moved something (counted in parked_woken_by_defrag).
  void requeue_waiting(bool after_defrag_migration = false);
  /// Decrements the in-flight count and wakes wait_idle().
  void finish_one();

  const arch::Platform* platform_;
  std::shared_ptr<const core::Mapper> mapper_;
  std::shared_ptr<const AdmissionPolicy> policy_;
  std::shared_ptr<const PriorityPolicy> priority_;
  ConcurrentOptions options_;
  /// Manager-level knobs from ManagerOptions (the pool tuning stays in
  /// options_).
  PreemptionOptions preemption_;
  std::shared_ptr<shapes::ShapeLibrary> shapes_;
  std::unique_ptr<DefragPlanner> planner_;
  /// Raced on shape misses; null when portfolio admission is disabled.
  std::unique_ptr<MapperPortfolio> portfolio_;

  /// Guards state_ and running_ (commit + bookkeeping are one atomic
  /// step). Never held while an *admission* mapper runs; a defrag pass
  /// does hold it while re-planning, serializing compaction against
  /// commits (see docs/architecture.md, migration safety) — which is why
  /// the mapper-shared cache locks rank above it.
  mutable audit::Mutex state_mutex_{audit::LockRank::kManagerState,
                                    "manager.state"};
  core::ResourceState state_ RTSM_GUARDED_BY(state_mutex_);
  std::map<AppId, RunningApp> running_ RTSM_GUARDED_BY(state_mutex_);

  /// Observer-path snapshot buffer: state_snapshot() delta-refreshes this
  /// scratch under the state lock and copies it out under observer_mutex_
  /// only, so repeated observers cost O(changes) of state-lock hold time
  /// instead of O(platform). Lock order: observer_mutex_ before
  /// state_mutex_ (no other path takes both).
  mutable audit::Mutex observer_mutex_{audit::LockRank::kManagerObserver,
                                       "manager.observer"};
  mutable core::ResourceState observer_scratch_
      RTSM_GUARDED_BY(observer_mutex_);

  /// Inline-pump scratch: pump() reuses this buffer across calls (so the
  /// workers == 0 mode delta-refreshes like a pool worker instead of
  /// paying a cold full copy per pump). Try-locked; a second thread
  /// pumping concurrently falls back to a local scratch. Outermost manager
  /// lock: held across whole admissions (which take every other lock).
  audit::Mutex pump_mutex_{audit::LockRank::kManagerPump, "manager.pump"};
  core::ResourceState pump_scratch_ RTSM_GUARDED_BY(pump_mutex_);

  mutable audit::Mutex stats_mutex_{audit::LockRank::kManagerStats,
                                    "manager.stats"};
  AdmissionStats stats_ RTSM_GUARDED_BY(stats_mutex_);
  /// Snapshot copies served from a per-worker scratch buffer (atomic: the
  /// hot path must not take stats_mutex_ per attempt); merged into
  /// stats().snapshot_reuses on read.
  mutable std::atomic<std::uint64_t> snapshot_reuses_{0};
  /// Commit-gate and per-phase timing tallies (atomic for the same
  /// reason; merged into stats() on read). Times are nanoseconds.
  mutable std::atomic<std::uint64_t> gated_commits_{0};
  mutable std::atomic<std::uint64_t> validated_commits_{0};
  mutable std::atomic<std::uint64_t> snapshot_ns_{0};
  mutable std::atomic<std::uint64_t> map_ns_{0};
  mutable std::atomic<std::uint64_t> validate_ns_{0};
  mutable std::atomic<std::uint64_t> commit_ns_{0};
  std::vector<ReleaseError> release_errors_ RTSM_GUARDED_BY(stats_mutex_);
  std::vector<RequestId> resolution_order_ RTSM_GUARDED_BY(stats_mutex_);

  mutable audit::Mutex waiting_mutex_{audit::LockRank::kManagerWaiting,
                                      "manager.waiting"};
  std::vector<Request> waiting_ RTSM_GUARDED_BY(waiting_mutex_);
  /// Bumped (under waiting_mutex_) by every wake of the parked list; a
  /// worker re-checks it under the same lock before parking so a release
  /// cannot slip between a failed attempt and the park (see try_park).
  std::atomic<std::uint64_t> release_epoch_{0};

  BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> next_request_{1};
  std::atomic<std::uint32_t> next_app_{0};
  /// Rotates pick_shard()'s choice among equally-loaded stripes.
  mutable std::atomic<std::uint64_t> tie_break_{0};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<bool> stopped_{false};
  /// Leaf: wait_idle() parks here; finish_one() only signals under it.
  audit::Mutex idle_mutex_{audit::LockRank::kManagerIdle, "manager.idle"};
  std::condition_variable_any idle_cv_;
};

}  // namespace rtsm::runtime
