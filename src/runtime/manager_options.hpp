#pragma once

#include <memory>

#include "core/mapper.hpp"
#include "core/mapper_registry.hpp"
#include "core/portfolio.hpp"
#include "runtime/admission.hpp"
#include "runtime/defrag.hpp"
#include "shapes/library.hpp"

namespace rtsm::runtime {

/// One configuration surface shared by both run-time managers, so the
/// serial RuntimeManager and the ConcurrentRuntimeManager are set up
/// identically (the concurrent manager adds its pool tuning separately in
/// ConcurrentOptions). Designated initializers keep call sites readable:
///
///   RuntimeManager manager(platform, {.mapper = mapper, .shapes = shapes});
///
/// Every field has a working default; `RuntimeManager(platform, {})` is a
/// paper-faithful manager running the spatial mapper under first-fit
/// admission.
struct ManagerOptions {
  /// Primary mapper: the single planning strategy when the portfolio is
  /// disabled, and the unbudgeted fallback when a race produces no winner.
  /// Null defaults to core::SpatialMapper (the paper's run-time strategy).
  std::shared_ptr<const core::Mapper> mapper;

  /// Drop-or-park decision for failed admissions. Null defaults to
  /// FirstFitAdmission (failures are rejected, never parked).
  std::shared_ptr<const AdmissionPolicy> policy;

  /// Defragmentation policy (see runtime/defrag.hpp).
  DefragOptions defrag = {};

  /// Preemption tuning (see runtime/admission.hpp).
  PreemptionOptions preemption = {};

  /// Shape library for hot-path admission (see shapes/library.hpp); may be
  /// shared across managers. Null disables the path.
  std::shared_ptr<shapes::ShapeLibrary> shapes;

  /// Portfolio admission (see core/portfolio.hpp): on a shape-library
  /// miss, race these registry strategies on independent state snapshots
  /// and commit the winner through the ordinary validate/commit path.
  /// Disabled while `strategies` is empty.
  core::PortfolioOptions portfolio = {};

  /// Registry the portfolio strategies are resolved from (typically
  /// baselines::builtin_mappers(), possibly extended). Only consulted when
  /// the portfolio is enabled; the managers throw rtsm::Error at
  /// construction when it is missing or names an unknown strategy then.
  std::shared_ptr<const core::MapperRegistry> registry;
};

}  // namespace rtsm::runtime
