#include "runtime/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "runtime/manager_options.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace rtsm::runtime {

MapperPortfolio::MapperPortfolio(const core::MapperRegistry& registry,
                                 core::PortfolioOptions options)
    : options_(std::move(options)) {
  strategies_.reserve(options_.strategies.size());
  for (const std::string& name : options_.strategies) {
    strategies_.push_back(registry.create(name));  // throws on unknown names
  }
}

RaceOutcome MapperPortfolio::race(const kpn::Application& app,
                                  const core::ResourceState& base) const {
  PortfolioRace race(*this, app, base);
  for (std::size_t i = 0; i < size(); ++i) {
    race.run(i);
  }
  return race.close_and_wait();
}

PortfolioRace::PortfolioRace(const MapperPortfolio& portfolio,
                             const kpn::Application& app,
                             const core::ResourceState& base)
    : portfolio_(&portfolio),
      app_(&app),
      base_(&base),
      slots_(portfolio.size(), Slot::Unclaimed),
      runs_(portfolio.size()) {
  const double budget_us = portfolio.options().budget_us;
  if (budget_us > 0.0) {
    token_ = std::make_unique<core::CancelToken>(
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::micro>(budget_us)));
  } else {
    token_ = std::make_unique<core::CancelToken>();
  }
}

bool PortfolioRace::run(std::size_t i) {
  {
    const audit::LockGuard lock(mutex_);
    if (closed_ || i >= slots_.size() || slots_[i] != Slot::Unclaimed) {
      return false;
    }
    slots_[i] = Slot::Running;
  }

  StrategyRun run;
  run.name = portfolio_->name(i);
  if (!token_->stop_requested()) {
    const auto start = std::chrono::steady_clock::now();
    run.started = true;
    run.result = portfolio_->strategy(i).map(*app_, *base_, token_.get());
    run.spent_us = elapsed_us(start);
    run.cancelled = run.result.cancelled;
    run.timed_out = run.result.cancelled && token_->deadline_expired();
    // A winner must fit the snapshot it planned against; this also screens
    // a (hypothetical) strategy that ignores the residual state.
    run.feasible = run.result.success &&
                   core::mapping_fits(*base_, *app_, run.result.mapping);
  } else {
    // Never started: the budget expired, or a winner stopped the race.
    run.cancelled = true;
    run.timed_out = token_->deadline_expired();
  }

  {
    const audit::LockGuard lock(mutex_);
    const bool feasible = run.feasible;
    runs_[i] = std::move(run);
    slots_[i] = Slot::Done;
    if (feasible) {
      feasible_order_.push_back(i);
      if (portfolio_->options().selection ==
          core::PortfolioSelection::FirstFeasible) {
        token_->request_stop();  // cancel the losers cooperatively
      }
    }
  }
  cv_.notify_all();
  return true;
}

// Parks on cv_ until every claimed strategy finished; clang cannot model
// the wait's unlock/relock through std::unique_lock, so the function opts
// out of the static analysis (lockdep still audits it).
RaceOutcome PortfolioRace::close_and_wait() RTSM_NO_THREAD_SAFETY_ANALYSIS {
  audit::UniqueLock lock(mutex_);
  closed_ = true;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] == Slot::Unclaimed) {
      // Nobody claimed it before the race closed (tiny budget, or a
      // FirstFeasible win while helper jobs were still queued).
      slots_[i] = Slot::Done;
      runs_[i].name = portfolio_->name(i);
      runs_[i].cancelled = true;
      runs_[i].timed_out = token_->deadline_expired();
    }
  }
  cv_.wait(lock, [&] {
    return std::none_of(slots_.begin(), slots_.end(),
                        [](Slot s) { return s == Slot::Running; });
  });

  RaceOutcome out;
  switch (portfolio_->options().selection) {
    case core::PortfolioSelection::FirstFeasible:
      if (!feasible_order_.empty()) {
        out.winner = static_cast<int>(feasible_order_.front());
      }
      break;
    case core::PortfolioSelection::BestEnergy: {
      double best = 0.0;
      for (std::size_t i = 0; i < runs_.size(); ++i) {
        if (!runs_[i].feasible) continue;
        const double energy = runs_[i].result.energy_nj_per_symbol;
        if (out.winner < 0 || energy < best) {
          best = energy;
          out.winner = static_cast<int>(i);
        }
      }
      break;
    }
  }
  for (const StrategyRun& run : runs_) {
    if (run.started) ++out.attempts;
    out.total_us += run.spent_us;
  }
  out.runs = std::move(runs_);
  return out;
}

void merge_portfolio_stats(AdmissionStats& stats,
                           const MapperPortfolio& portfolio,
                           const RaceOutcome& outcome) {
  ++stats.portfolio_races;
  if (stats.portfolio.size() != portfolio.size()) {
    stats.portfolio.assign(portfolio.size(), {});
    for (std::size_t i = 0; i < portfolio.size(); ++i) {
      stats.portfolio[i].name = portfolio.name(i);
    }
  }
  for (std::size_t i = 0; i < outcome.runs.size(); ++i) {
    PortfolioStrategyStats& s = stats.portfolio[i];
    const StrategyRun& run = outcome.runs[i];
    if (run.started) ++s.runs;
    s.spent_us += run.spent_us;
    if (static_cast<int>(i) == outcome.winner) {
      ++s.wins;
    } else if (run.timed_out) {
      ++s.timeouts;
    } else if (run.started) {
      ++s.losses;
    }
  }
}

std::unique_ptr<MapperPortfolio> make_portfolio(const ManagerOptions& options) {
  if (!options.portfolio.enabled()) return nullptr;
  if (options.registry == nullptr) {
    throw Error(
        "portfolio admission is enabled but ManagerOptions::registry is "
        "null; supply the registry the strategies resolve from (e.g. "
        "baselines::builtin_mappers())");
  }
  return std::make_unique<MapperPortfolio>(*options.registry,
                                           options.portfolio);
}

}  // namespace rtsm::runtime
