#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/platform.hpp"
#include "audit/mutex.hpp"
#include "core/migration.hpp"
#include "runtime/concurrent_manager.hpp"
#include "runtime/request_queue.hpp"
#include "runtime/scenario.hpp"
#include "runtime/stats_report.hpp"

namespace rtsm::runtime {

/// Rate limiting of the fleet's background maintenance loop.
struct BackgroundDefragOptions {
  /// Start the maintenance thread (off by default: deterministic fleets
  /// and tests drive compaction through defrag_tick() instead).
  bool enabled = false;

  /// Sleep between maintenance ticks, microseconds. The budget knob: one
  /// tick spends at most `platforms_per_tick` bounded defrag passes, so
  /// the maintenance cost per second is platforms_per_tick/period — never
  /// a function of admission traffic.
  std::uint64_t period_us = 20000;

  /// Platforms visited (round-robin) per tick; each gets at most one
  /// defrag_now() pass.
  std::size_t platforms_per_tick = 1;

  /// Fragmentation score below which a platform's pass is skipped (the
  /// pass would migrate nothing useful; counted in defrag_skipped).
  double min_fragmentation = 0.05;
};

/// Tuning of a FleetManager.
struct FleetOptions {
  /// Platform instances (K). Each is an independent ResourceState over
  /// one shared arch::Platform copy owned by the fleet.
  std::size_t platforms = 2;

  /// Fleet dispatcher threads popping the submit queue. 0 = no threads:
  /// submissions queue up and pump() (or admit()) dispatches them inline
  /// on the caller's thread in submission order — deterministic, the mode
  /// scenario replays and tests use.
  std::uint32_t workers = 2;

  /// Worker pool of each per-platform ConcurrentRuntimeManager. 0 (the
  /// default) keeps platform managers in pump mode: the dispatcher thread
  /// that picked a platform runs the admission itself, so fleet
  /// parallelism comes from dispatchers, not nested pools.
  std::uint32_t platform_workers = 0;

  /// Bound of the fleet submit queue (back-pressure, like the managers').
  std::size_t queue_capacity = 256;

  /// Platforms tried per admission: the least-loaded choice plus up to
  /// this many spill-over retries on the next-best platforms. Defaults to
  /// every other platform.
  std::size_t spill_retries = SIZE_MAX;

  /// After the last spill target rejected: migrate the cheapest running
  /// app off the first-choice platform onto the emptiest other platform
  /// (priced by ManagerOptions::defrag.cost) and retry the admission once
  /// on the vacated platform.
  bool cross_migration = false;

  /// Load score = mean live tile occupancy + this weight x in-flight
  /// dispatches already heading to the platform (so concurrent
  /// dispatchers spread even while occupancies still look equal).
  double queue_depth_weight = 0.05;

  BackgroundDefragOptions background_defrag;

  /// Template applied to every platform manager (mapper / policy / defrag
  /// / preemption / shapes / portfolio). A shape library given here is
  /// shared by all platforms — legal because every manager maps the same
  /// platform object. Parking admission policies are not fleet-tracked:
  /// the fleet's spill-over is its retry story, so keep the default
  /// first-fit policy unless something else drives per-platform releases.
  ManagerOptions manager;
};

/// Fleet counters (on top of the per-platform StatsReports).
struct FleetStats {
  /// Admissions dispatched to a first-choice platform.
  std::uint64_t dispatches = 0;
  /// Retries on a spill-over platform after a reject.
  std::uint64_t spills = 0;
  /// Admissions rejected by the first choice and every spill target.
  std::uint64_t spill_failures = 0;

  std::uint64_t cross_migrations = 0;
  std::uint64_t cross_migration_failures = 0;
  /// Summed modelled cost of committed cross-platform migrations, us.
  double cross_migration_cost_us = 0.0;

  /// Maintenance loop: ticks run, defrag passes spent, passes skipped
  /// because the platform was already compact.
  std::uint64_t defrag_ticks = 0;
  std::uint64_t defrag_passes = 0;
  std::uint64_t defrag_skipped = 0;

  /// Largest (max - min) mean-occupancy gap observed at dispatch time —
  /// how unbalanced the fleet ever got.
  double max_imbalance = 0.0;

  std::vector<std::uint64_t> per_platform_dispatches;
};

/// Fleet-wide observability snapshot: fleet counters + one StatsReport
/// per platform.
struct FleetStatsReport {
  FleetStats fleet;
  std::vector<StatsReport> platforms;

  /// {"fleet":{...},"platforms":[StatsReport...]} — same conventions as
  /// StatsReport::to_json().
  [[nodiscard]] std::string to_json() const;
};

/// Multi-platform federation: K independent platform instances — each its
/// own ConcurrentRuntimeManager over a private ResourceState — behind one
/// submit/release/switch_mode front-end. One mesh is one chip; the fleet
/// is the row of chips a production deployment load-balances across.
///
/// Dispatch lifts the shard machinery's least-loaded heuristic to platform
/// granularity: an admission goes to the platform with the lowest mean
/// live tile occupancy (+ a small in-flight term), spills over to the
/// next-best platform when rejected, and can optionally make room by
/// migrating a running app across platforms (priced by the existing
/// MigrationCostModel) before giving up. A rate-limited background
/// maintenance thread walks the platforms round-robin and spends bounded
/// defrag_now() passes off the admission path.
///
/// Ids: the fleet assigns its own AppIds (stable across cross-platform
/// migration) and routes them to the owning platform's local id. All
/// public APIs speak fleet ids.
class FleetManager {
 public:
  /// @p platform must outlive the fleet (the managers' own contract);
  /// every platform manager references this one object, so a shape
  /// library built on it may be shared across the whole fleet.
  FleetManager(const arch::Platform& platform, FleetOptions options);

  FleetManager(const FleetManager&) = delete;
  FleetManager& operator=(const FleetManager&) = delete;

  /// shutdown(), then joins everything.
  ~FleetManager();

  /// Enqueues an admission; blocks while the fleet queue is full. The
  /// future resolves with the terminal outcome (app_id is a fleet id).
  /// With workers == 0 nothing resolves until pump() runs.
  std::future<AdmitOutcome> submit(std::shared_ptr<const kpn::Application> app,
                                   double deadline_us = 0.0,
                                   RequestClass cls = {});

  /// submit() + wait (pumping inline first when workers == 0).
  AdmitOutcome admit(const kpn::Application& app, double deadline_us = 0.0,
                     RequestClass cls = {});

  /// Dispatches queued submissions inline on the caller's thread until
  /// the queue is empty — the workers == 0 event loop, also a helping
  /// hand next to a running dispatcher pool.
  void pump();

  /// Blocks until every submitted request has been dispatched + resolved.
  void wait_idle();

  /// Releases fleet id @p id on its platform. False (with the owning
  /// manager's ReleaseError recorded) when unknown or already released.
  bool release(AppId id);

  /// Routes RuntimeManager::switch_mode to the owning platform.
  /// @p deadline_us > 0 bounds the switch's own wall-clock budget.
  SwitchOutcome switch_mode(AppId id,
                            std::shared_ptr<const kpn::Application> next,
                            double deadline_us = 0.0);

  /// Moves running fleet app @p id onto platform @p to: admit there,
  /// release here, fleet id unchanged. Priced by the cost model into
  /// stats. False (nothing changed) when the id is unknown, already on
  /// @p to, or @p to cannot host it.
  bool migrate(AppId id, std::size_t to);

  /// Stops dispatchers and the maintenance thread, drains the queue
  /// (resolving everything), shuts every platform manager down.
  /// Idempotent.
  void shutdown();

  // -- observers ----------------------------------------------------------

  [[nodiscard]] std::size_t platform_count() const { return fleet_.size(); }

  /// The shared platform object every manager maps onto.
  [[nodiscard]] const arch::Platform& platform() const { return *platform_; }

  /// Platform index hosting fleet id @p id; platform_count() if unknown.
  [[nodiscard]] std::size_t platform_of(AppId id) const;

  /// All running fleet ids, ascending.
  [[nodiscard]] std::vector<AppId> running_ids() const;
  [[nodiscard]] std::size_t running_count() const;

  [[nodiscard]] std::shared_ptr<const kpn::Application> app_of(AppId id) const;
  [[nodiscard]] core::Mapping mapping_of(AppId id) const;

  /// Residual state snapshot of platform @p p.
  [[nodiscard]] core::ResourceState state_snapshot(std::size_t p) const;

  /// Mean live tile occupancy of platform @p p (the dispatch probe).
  [[nodiscard]] double platform_occupancy(std::size_t p) const;

  /// Direct access to platform @p p's manager (operators, tests).
  [[nodiscard]] ConcurrentRuntimeManager& manager(std::size_t p) {
    return *fleet_[p]->manager;
  }

  /// One deterministic maintenance tick, inline: walk up to
  /// background_defrag.platforms_per_tick platforms round-robin and run a
  /// defrag pass on each fragmented one — exactly what the background
  /// thread does per period, callable without the thread (benches that
  /// must stay reproducible, workers == 0 fleets).
  void defrag_tick();

  /// Fleet counters + per-platform StatsReports.
  [[nodiscard]] FleetStatsReport stats_report();
  [[nodiscard]] FleetStats fleet_stats() const;

 private:
  struct PlatformEntry {
    std::unique_ptr<ConcurrentRuntimeManager> manager;
    /// Dispatches currently in flight toward this platform (picked but
    /// not yet resolved) — the queue-depth term of the load score.
    std::atomic<std::uint64_t> pending{0};
  };

  struct FleetRequest {
    std::shared_ptr<const kpn::Application> app;
    double deadline_us = 0.0;
    RequestClass cls;
    std::promise<AdmitOutcome> promise;
  };

  void worker_loop();
  /// Dispatch + spill-over + optional cross-migration retry for one
  /// request; resolves its promise.
  void dispatch(FleetRequest request);
  /// Platform indices in ascending load-score order.
  [[nodiscard]] std::vector<std::size_t> ranked_platforms();
  /// Synchronous admission on platform @p p (the manager runs in pump
  /// mode, so this plans inline on the calling thread).
  AdmitOutcome admit_on(std::size_t p, const FleetRequest& request);
  /// Cross-migration escape hatch: vacate the cheapest app of @p from
  /// onto another platform. True when an app moved.
  bool try_make_room(std::size_t from);
  /// migrate() body; caller holds route_mutex_.
  bool migrate_locked(AppId id, std::size_t to) RTSM_REQUIRES(route_mutex_);
  void maintenance_loop();

#if RTSM_AUDIT
  /// Route-table consistency: every fleet route must resolve to an app
  /// actually running on its platform (a platform may run extras — parked
  /// admissions the fleet abandoned — but never miss a routed one).
  void audit_routes(const char* where) const RTSM_REQUIRES(route_mutex_);
#endif
  /// One round-robin maintenance step over up to @p budget platforms.
  void defrag_step(std::size_t budget);
  void finish_one();

  /// The caller's platform object, referenced by all managers (shape
  /// libraries check pointer identity between their platform and the
  /// manager's).
  const arch::Platform* platform_;
  FleetOptions options_;
  core::MigrationCostModel cost_;

  std::vector<std::unique_ptr<PlatformEntry>> fleet_;

  /// Guards routes_ (fleet id -> platform + local id) and next_id_.
  /// Outermost of the whole tree bar the maintenance/defrag pair: held
  /// across manager release / submit+pump / switch calls.
  mutable audit::Mutex route_mutex_{audit::LockRank::kFleetRoute,
                                    "fleet.route"};
  struct Route {
    std::size_t platform = 0;
    AppId local;
  };
  std::map<AppId, Route> routes_ RTSM_GUARDED_BY(route_mutex_);
  std::uint32_t next_id_ RTSM_GUARDED_BY(route_mutex_) = 0;

  mutable audit::Mutex stats_mutex_{audit::LockRank::kFleetStats,
                                    "fleet.stats"};
  FleetStats stats_ RTSM_GUARDED_BY(stats_mutex_);
  /// Next platform the round-robin maintenance walk visits.
  std::size_t defrag_cursor_ RTSM_GUARDED_BY(defrag_mutex_) = 0;
  /// Serializes maintenance ticks (thread vs. defrag_tick() callers);
  /// held across whole manager defrag passes, hence ranked above only the
  /// maintenance sleep lock.
  audit::Mutex defrag_mutex_{audit::LockRank::kFleetDefrag, "fleet.defrag"};

  BoundedQueue<FleetRequest> queue_;
  std::vector<std::thread> workers_;
  std::thread maintenance_;
  /// Only pairs the shutdown flag with the maintenance thread's timed
  /// sleep; nothing else nests inside it.
  audit::Mutex maintenance_mutex_{audit::LockRank::kFleetMaintenance,
                                  "fleet.maintenance"};
  std::condition_variable_any maintenance_cv_;

  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<bool> stopped_{false};
  audit::Mutex idle_mutex_{audit::LockRank::kFleetIdle, "fleet.idle"};
  std::condition_variable_any idle_cv_;
};

/// Drives a FleetManager through the scenario engine — ConcurrentTarget
/// semantics (futures collected on settle()), fleet ids throughout, and a
/// per-platform serial-replay oracle.
class FleetTarget final : public ScenarioTarget {
 public:
  explicit FleetTarget(FleetManager& fleet) : fleet_(&fleet) {}

  std::uint64_t submit(std::shared_ptr<const kpn::Application> app,
                       double deadline_us, RequestClass cls) override;
  bool release(AppId id) override { return fleet_->release(id); }
  SwitchOutcome switch_mode(AppId id,
                            std::shared_ptr<const kpn::Application> next,
                            double deadline_us) override {
    return fleet_->switch_mode(id, std::move(next), deadline_us);
  }
  std::vector<SettledOutcome> settle() override;
  std::vector<SettledOutcome> finish() override;

  bool is_running(AppId id) const override;
  std::vector<AppId> running_ids() const override {
    return fleet_->running_ids();
  }
  std::shared_ptr<const kpn::Application> app_of(AppId id) const override {
    return fleet_->app_of(id);
  }
  core::Mapping mapping_of(AppId id) const override {
    return fleet_->mapping_of(id);
  }
  /// Platform 0's snapshot (the oracle below checks every platform and
  /// never goes through this).
  core::ResourceState state_copy() const override {
    return fleet_->state_snapshot(0);
  }
  /// Integer counters summed over the platforms (latency reservoirs stay
  /// per-platform; read them through FleetManager::stats_report()).
  AdmissionStats stats() const override;

  /// Serial-replay oracle per platform: every platform's live state must
  /// equal the replay of its own surviving (app, mapping) pairs.
  [[nodiscard]] bool replay_matches() const override;

 private:
  FleetManager* fleet_;
  std::uint64_t next_ticket_ = 0;
  std::vector<std::pair<std::uint64_t, std::future<AdmitOutcome>>> pending_;
};

}  // namespace rtsm::runtime
