#include "runtime/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <sstream>
#include <utility>

#include "core/fragmentation.hpp"
#include "util/error.hpp"

namespace rtsm::runtime {

FleetManager::FleetManager(const arch::Platform& platform,
                           FleetOptions options)
    : platform_(&platform),
      options_(std::move(options)),
      cost_(options_.manager.defrag.cost),
      queue_(options_.queue_capacity) {
  require(options_.platforms > 0, "fleet needs at least one platform");
  // Platform-local preemption is force-disabled: a preempted victim is
  // re-parked inside its platform manager and re-admitted later under a
  // fresh local AppId, which silently invalidates the fleet's route for
  // it (release/switch_mode on the fleet id would then hit the wrong —
  // or a vanished — application). Until victims can be re-routed, the
  // fleet's answer to contention is spilling to another platform, same
  // as its no-parking stance in admit_on.
  ManagerOptions manager = options_.manager;
  manager.preemption.enabled = false;
  for (std::size_t p = 0; p < options_.platforms; ++p) {
    auto entry = std::make_unique<PlatformEntry>();
    ConcurrentOptions pool;
    pool.workers = options_.platform_workers;
    entry->manager = std::make_unique<ConcurrentRuntimeManager>(
        *platform_, manager, pool);
    fleet_.push_back(std::move(entry));
  }
  stats_.per_platform_dispatches.assign(fleet_.size(), 0);

  workers_.reserve(options_.workers);
  for (std::uint32_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (options_.background_defrag.enabled) {
    maintenance_ = std::thread([this] { maintenance_loop(); });
  }
}

FleetManager::~FleetManager() { shutdown(); }

void FleetManager::shutdown() {
  if (stopped_.exchange(true)) return;
  {
    // The maintenance loop re-checks stopped_ under its mutex; taking it
    // here pairs the flag with the notify so the sleeper cannot miss it.
    const audit::LockGuard lock(maintenance_mutex_);
  }
  maintenance_cv_.notify_all();
  queue_.close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // With no dispatchers (workers == 0) the closed queue may still hold
  // requests: dispatch them inline so every promise resolves.
  pump();
  if (maintenance_.joinable()) maintenance_.join();
  for (const auto& entry : fleet_) entry->manager->shutdown();
}

// -------------------------------------------------------------- admission

std::future<AdmitOutcome> FleetManager::submit(
    std::shared_ptr<const kpn::Application> app, double deadline_us,
    RequestClass cls) {
  FleetRequest request;
  request.app = std::move(app);
  request.deadline_us = deadline_us;
  request.cls = cls;
  std::future<AdmitOutcome> future = request.promise.get_future();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.push(std::move(request))) {
    // Shut down: push did not consume the request, resolve it here.
    AdmitOutcome outcome;
    outcome.status = AdmitStatus::Rejected;
    request.promise.set_value(std::move(outcome));
    finish_one();
  }
  return future;
}

AdmitOutcome FleetManager::admit(const kpn::Application& app,
                                 double deadline_us, RequestClass cls) {
  std::future<AdmitOutcome> future = submit(
      std::make_shared<kpn::Application>(app), deadline_us, cls);
  if (options_.workers == 0) pump();
  return future.get();
}

void FleetManager::pump() {
  while (true) {
    std::vector<FleetRequest> batch = queue_.try_pop_batch(1);
    if (batch.empty()) return;
    dispatch(std::move(batch.front()));
  }
}

void FleetManager::wait_idle() RTSM_NO_THREAD_SAFETY_ANALYSIS {
  audit::UniqueLock lock(idle_mutex_);
  idle_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void FleetManager::worker_loop() {
  while (true) {
    // One request per pop: each dispatch re-ranks the platforms, so a
    // dispatcher never commits a stale spill order for a whole batch.
    std::vector<FleetRequest> batch = queue_.pop_batch(1);
    if (batch.empty()) return;  // closed and drained
    dispatch(std::move(batch.front()));
  }
}

std::vector<std::size_t> FleetManager::ranked_platforms() {
  struct Scored {
    double score = 0.0;
    std::size_t index = 0;
  };
  std::vector<Scored> scored(fleet_.size());
  double min_occ = 1.0;
  double max_occ = 0.0;
  for (std::size_t p = 0; p < fleet_.size(); ++p) {
    const double occ = fleet_[p]->manager->mean_occupancy();
    min_occ = std::min(min_occ, occ);
    max_occ = std::max(max_occ, occ);
    const double pending = static_cast<double>(
        fleet_[p]->pending.load(std::memory_order_relaxed));
    scored[p] = {occ + options_.queue_depth_weight * pending, p};
  }
  {
    const audit::LockGuard lock(stats_mutex_);
    stats_.max_imbalance =
        std::max(stats_.max_imbalance, std::max(0.0, max_occ - min_occ));
  }
  // Stable ascending by (score, index): deterministic in pump mode, and
  // the pending term already spreads concurrent dispatchers off the tie.
  std::sort(scored.begin(), scored.end(), [](const Scored& a,
                                             const Scored& b) {
    return a.score != b.score ? a.score < b.score : a.index < b.index;
  });
  std::vector<std::size_t> order(scored.size());
  for (std::size_t i = 0; i < scored.size(); ++i) order[i] = scored[i].index;
  return order;
}

AdmitOutcome FleetManager::admit_on(std::size_t p,
                                    const FleetRequest& request) {
  ConcurrentRuntimeManager& manager = *fleet_[p]->manager;
  std::future<AdmitOutcome> future =
      manager.submit(request.app, request.deadline_us, request.cls);
  // Platform managers default to pump mode: the admission runs inline
  // right here, on the dispatcher's thread. With a per-platform pool the
  // pump just helps drain and the wait covers the rest.
  manager.pump();
  manager.wait_idle();
  if (future.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    // Parked by a per-platform retry policy. The fleet does not track
    // parked requests (its spill-over is the retry story) — report
    // Waiting and move on; the platform resolves the abandoned future
    // on a later release or at shutdown.
    AdmitOutcome parked;
    parked.status = AdmitStatus::Waiting;
    return parked;
  }
  return future.get();
}

void FleetManager::dispatch(FleetRequest request) {
  const std::vector<std::size_t> order = ranked_platforms();
  const std::size_t tries =
      std::min(order.size(),
               options_.spill_retries >= order.size()
                   ? order.size()
                   : options_.spill_retries + 1);

  AdmitOutcome outcome;
  std::size_t admitted_on = fleet_.size();
  for (std::size_t i = 0; i < tries; ++i) {
    const std::size_t p = order[i];
    fleet_[p]->pending.fetch_add(1, std::memory_order_relaxed);
    outcome = admit_on(p, request);
    fleet_[p]->pending.fetch_sub(1, std::memory_order_relaxed);
    {
      const audit::LockGuard lock(stats_mutex_);
      if (i == 0) {
        ++stats_.dispatches;
      } else {
        ++stats_.spills;
      }
      ++stats_.per_platform_dispatches[p];
    }
    if (outcome.status != AdmitStatus::Rejected) {
      admitted_on = p;
      break;
    }
  }

  if (outcome.status == AdmitStatus::Rejected && options_.cross_migration &&
      try_make_room(order[0])) {
    // One retry on the vacated first choice.
    const std::size_t p = order[0];
    fleet_[p]->pending.fetch_add(1, std::memory_order_relaxed);
    outcome = admit_on(p, request);
    fleet_[p]->pending.fetch_sub(1, std::memory_order_relaxed);
    {
      const audit::LockGuard lock(stats_mutex_);
      ++stats_.spills;
      ++stats_.per_platform_dispatches[p];
    }
    if (outcome.status != AdmitStatus::Rejected) admitted_on = p;
  }

  if (outcome.status == AdmitStatus::Admitted) {
    const audit::LockGuard lock(route_mutex_);
    const AppId fleet_id(next_id_++);
    routes_[fleet_id] = Route{admitted_on, outcome.app_id};
    outcome.app_id = fleet_id;
#if RTSM_AUDIT
    audit_routes("dispatch");
#endif
  } else if (outcome.status == AdmitStatus::Rejected) {
    const audit::LockGuard lock(stats_mutex_);
    ++stats_.spill_failures;
  }
  request.promise.set_value(std::move(outcome));
  finish_one();
}

bool FleetManager::try_make_room(std::size_t from) {
  // Cheapest victim: the running app with the fewest processes (smallest
  // state image to ship). Emptiest other platform hosts it.
  const audit::LockGuard lock(route_mutex_);
  AppId victim;
  std::size_t victim_processes = SIZE_MAX;
  for (const auto& [fleet_id, route] : routes_) {
    if (route.platform != from) continue;
    const auto app = fleet_[from]->manager->app_of(route.local);
    if (app->process_count() < victim_processes) {
      victim_processes = app->process_count();
      victim = fleet_id;
    }
  }
  if (!victim.valid()) return false;

  std::size_t target = fleet_.size();
  double target_occ = 2.0;
  for (std::size_t p = 0; p < fleet_.size(); ++p) {
    if (p == from) continue;
    const double occ = fleet_[p]->manager->mean_occupancy();
    if (occ < target_occ) {
      target_occ = occ;
      target = p;
    }
  }
  if (target >= fleet_.size()) return false;
  return migrate_locked(victim, target);
}

bool FleetManager::migrate(AppId id, std::size_t to) {
  const audit::LockGuard lock(route_mutex_);
  return migrate_locked(id, to);
}

bool FleetManager::migrate_locked(AppId id, std::size_t to) {
  if (to >= fleet_.size()) return false;
  const auto it = routes_.find(id);
  if (it == routes_.end() || it->second.platform == to) return false;
  const Route route = it->second;
  ConcurrentRuntimeManager& src = *fleet_[route.platform]->manager;
  ConcurrentRuntimeManager& dst = *fleet_[to]->manager;

  const std::shared_ptr<const kpn::Application> app = src.app_of(route.local);
  const core::Mapping before = src.mapping_of(route.local);

  // Admit on the destination first: the app is briefly double-booked but
  // never lost — a failed migration leaves the source untouched.
  std::future<AdmitOutcome> future = dst.submit(app);
  dst.pump();
  dst.wait_idle();
  AdmitOutcome outcome;
  if (future.wait_for(std::chrono::seconds(0)) ==
      std::future_status::ready) {
    outcome = future.get();
  }
  if (outcome.status != AdmitStatus::Admitted) {
    const audit::LockGuard stats_lock(stats_mutex_);
    ++stats_.cross_migration_failures;
    return false;
  }

  src.release(route.local);
  it->second = Route{to, outcome.app_id};

  const core::Mapping after = dst.mapping_of(outcome.app_id);
  // Both bookings live in the same tile-id space (one shared platform
  // object), so the single-platform cost model prices the placement delta
  // directly — but a cross-platform move quiesces *every* process even
  // when the destination placement is coordinate-identical, so the pause
  // overhead of the full process set is the floor.
  const double pause_floor =
      cost_.pause_us * static_cast<double>(app->process_count());
  double cost_us = pause_floor;
  if (before.all_assigned() && before.all_routed() && after.all_assigned() &&
      after.all_routed()) {
    cost_us =
        std::max(pause_floor, cost_.migration_us(*app, *platform_, before, after));
  }
  {
    const audit::LockGuard stats_lock(stats_mutex_);
    ++stats_.cross_migrations;
    stats_.cross_migration_cost_us += cost_us;
  }
#if RTSM_AUDIT
  audit_routes("migrate");
#endif
  return true;
}

// -------------------------------------------------------------- lifecycle

bool FleetManager::release(AppId id) {
  const audit::LockGuard lock(route_mutex_);
  const auto it = routes_.find(id);
  if (it == routes_.end()) return false;
  const Route route = it->second;
  routes_.erase(it);
  const bool released = fleet_[route.platform]->manager->release(route.local);
#if RTSM_AUDIT
  audit_routes("release");
#endif
  return released;
}

SwitchOutcome FleetManager::switch_mode(
    AppId id, std::shared_ptr<const kpn::Application> next,
    double deadline_us) {
  Route route;
  {
    const audit::LockGuard lock(route_mutex_);
    const auto it = routes_.find(id);
    if (it == routes_.end()) {
      SwitchOutcome out;
      out.app_id = id;
      out.status = SwitchStatus::UnknownId;
      out.message = "switch_mode of unknown fleet application id " +
                    std::to_string(id.value());
      return out;
    }
    route = it->second;
  }
  SwitchOutcome out = fleet_[route.platform]->manager->switch_mode(
      route.local, std::move(next), deadline_us);
  out.app_id = id;
  return out;
}

// -------------------------------------------------------------- observers

std::size_t FleetManager::platform_of(AppId id) const {
  const audit::LockGuard lock(route_mutex_);
  const auto it = routes_.find(id);
  return it == routes_.end() ? fleet_.size() : it->second.platform;
}

std::vector<AppId> FleetManager::running_ids() const {
  const audit::LockGuard lock(route_mutex_);
  std::vector<AppId> ids;
  ids.reserve(routes_.size());
  for (const auto& [fleet_id, route] : routes_) ids.push_back(fleet_id);
  return ids;  // std::map: already ascending
}

std::size_t FleetManager::running_count() const {
  const audit::LockGuard lock(route_mutex_);
  return routes_.size();
}

std::shared_ptr<const kpn::Application> FleetManager::app_of(AppId id) const {
  const audit::LockGuard lock(route_mutex_);
  const auto it = routes_.find(id);
  if (it == routes_.end()) return nullptr;
  return fleet_[it->second.platform]->manager->app_of(it->second.local);
}

core::Mapping FleetManager::mapping_of(AppId id) const {
  const audit::LockGuard lock(route_mutex_);
  const auto it = routes_.find(id);
  require(it != routes_.end(), "mapping_of unknown fleet application id");
  return fleet_[it->second.platform]->manager->mapping_of(it->second.local);
}

core::ResourceState FleetManager::state_snapshot(std::size_t p) const {
  return fleet_[p]->manager->state_snapshot();
}

double FleetManager::platform_occupancy(std::size_t p) const {
  return fleet_[p]->manager->mean_occupancy();
}

// ------------------------------------------------------------ maintenance

void FleetManager::maintenance_loop() RTSM_NO_THREAD_SAFETY_ANALYSIS {
  audit::UniqueLock lock(maintenance_mutex_);
  while (!stopped_.load(std::memory_order_acquire)) {
    maintenance_cv_.wait_for(
        lock, std::chrono::microseconds(options_.background_defrag.period_us),
        [&] { return stopped_.load(std::memory_order_acquire); });
    if (stopped_.load(std::memory_order_acquire)) return;
    lock.unlock();
    defrag_step(options_.background_defrag.platforms_per_tick);
    lock.lock();
  }
}

void FleetManager::defrag_tick() {
  defrag_step(options_.background_defrag.platforms_per_tick);
}

void FleetManager::defrag_step(std::size_t budget) {
  // One tick at a time: the background thread and inline defrag_tick()
  // callers share the round-robin cursor.
  const audit::LockGuard tick_lock(defrag_mutex_);
  {
    const audit::LockGuard lock(stats_mutex_);
    ++stats_.defrag_ticks;
  }
  const std::size_t visits = std::min(budget, fleet_.size());
  for (std::size_t v = 0; v < visits; ++v) {
    const std::size_t p = defrag_cursor_;
    defrag_cursor_ = (defrag_cursor_ + 1) % fleet_.size();

    // Fragmentation probe on a snapshot — off the admission path; only
    // the pass itself (bounded, budgeted by DefragOptions) takes the
    // platform's state lock for long.
    const double score =
        core::measure_fragmentation(fleet_[p]->manager->state_snapshot())
            .score();
    if (score < options_.background_defrag.min_fragmentation) {
      const audit::LockGuard lock(stats_mutex_);
      ++stats_.defrag_skipped;
      continue;
    }
    fleet_[p]->manager->defrag_now();
    const audit::LockGuard lock(stats_mutex_);
    ++stats_.defrag_passes;
  }
}

#if RTSM_AUDIT
void FleetManager::audit_routes(const char* where) const {
  for (const auto& [fleet_id, route] : routes_) {
    bool found = false;
    for (const AppId local : fleet_[route.platform]->manager->running_ids()) {
      if (local.value() == route.local.value()) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::string locals;
      for (const AppId local :
           fleet_[route.platform]->manager->running_ids()) {
        if (!locals.empty()) locals += ", ";
        locals += std::to_string(local.value());
      }
      audit::Violation violation;
      violation.kind = audit::Violation::Kind::StateMismatch;
      violation.message =
          std::string("fleet/") + where + ": fleet id " +
          std::to_string(fleet_id.value()) + " routes to platform " +
          std::to_string(route.platform) + " local id " +
          std::to_string(route.local.value()) +
          ", which is not running there (running: [" + locals + "])";
      audit::report_violation(violation);
    }
  }
}
#endif

void FleetManager::finish_one() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const audit::LockGuard lock(idle_mutex_);
    idle_cv_.notify_all();
  }
}

// ------------------------------------------------------------------ stats

FleetStats FleetManager::fleet_stats() const {
  const audit::LockGuard lock(stats_mutex_);
  return stats_;
}

FleetStatsReport FleetManager::stats_report() {
  FleetStatsReport report;
  report.fleet = fleet_stats();
  report.platforms.reserve(fleet_.size());
  for (const auto& entry : fleet_) {
    report.platforms.push_back(entry->manager->stats_report());
  }
  return report;
}

std::string FleetStatsReport::to_json() const {
  std::ostringstream out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", fleet.cross_migration_cost_us);
  const std::string cost_us = buf;
  std::snprintf(buf, sizeof(buf), "%.6f", fleet.max_imbalance);
  const std::string imbalance = buf;

  out << "{\"fleet\":{\"dispatches\":" << fleet.dispatches
      << ",\"spills\":" << fleet.spills
      << ",\"spill_failures\":" << fleet.spill_failures
      << ",\"cross_migrations\":" << fleet.cross_migrations
      << ",\"cross_migration_failures\":" << fleet.cross_migration_failures
      << ",\"cross_migration_cost_us\":" << cost_us
      << ",\"defrag_ticks\":" << fleet.defrag_ticks
      << ",\"defrag_passes\":" << fleet.defrag_passes
      << ",\"defrag_skipped\":" << fleet.defrag_skipped
      << ",\"max_imbalance\":" << imbalance
      << ",\"per_platform_dispatches\":[";
  for (std::size_t p = 0; p < fleet.per_platform_dispatches.size(); ++p) {
    if (p > 0) out << ",";
    out << fleet.per_platform_dispatches[p];
  }
  out << "]},\"platforms\":[";
  for (std::size_t p = 0; p < platforms.size(); ++p) {
    if (p > 0) out << ",";
    out << platforms[p].to_json();
  }
  out << "]}";
  return out.str();
}

// ------------------------------------------------------------ FleetTarget

std::uint64_t FleetTarget::submit(std::shared_ptr<const kpn::Application> app,
                                  double deadline_us, RequestClass cls) {
  std::future<AdmitOutcome> future =
      fleet_->submit(std::move(app), deadline_us, cls);
  pending_.emplace_back(++next_ticket_, std::move(future));
  return next_ticket_;
}

std::vector<SettledOutcome> FleetTarget::settle() {
  fleet_->pump();
  fleet_->wait_idle();
  std::vector<SettledOutcome> settled;
  auto it = pending_.begin();
  while (it != pending_.end()) {
    if (it->second.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      settled.push_back({it->first, it->second.get()});
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return settled;
}

std::vector<SettledOutcome> FleetTarget::finish() { return settle(); }

bool FleetTarget::is_running(AppId id) const {
  return fleet_->platform_of(id) < fleet_->platform_count();
}

AdmissionStats FleetTarget::stats() const {
  AdmissionStats sum;
  for (std::size_t p = 0; p < fleet_->platform_count(); ++p) {
    const AdmissionStats s = fleet_->manager(p).stats();
    sum.offered += s.offered;
    sum.admitted += s.admitted;
    sum.rejected += s.rejected;
    sum.deadline_misses += s.deadline_misses;
    sum.retries += s.retries;
    sum.releases += s.releases;
    sum.release_errors += s.release_errors;
    sum.conflicts += s.conflicts;
    sum.defrag_passes += s.defrag_passes;
    sum.migrations += s.migrations;
    sum.migration_failures += s.migration_failures;
    sum.migration_cost_us += s.migration_cost_us;
    sum.preemption_grants += s.preemption_grants;
    sum.preemption_evictions += s.preemption_evictions;
    sum.mode_switches += s.mode_switches;
    sum.switches_in_place += s.switches_in_place;
    sum.switches_replanned += s.switches_replanned;
    sum.switches_rolled_back += s.switches_rolled_back;
    sum.switch_failures += s.switch_failures;
    sum.switch_deadline_misses += s.switch_deadline_misses;
    sum.switch_migration_cost_us += s.switch_migration_cost_us;
    sum.shape_hits += s.shape_hits;
    sum.shape_misses += s.shape_misses;
  }
  return sum;
}

bool FleetTarget::replay_matches() const {
  // Per-platform oracle: every platform's live state must equal the
  // replay of its own surviving (app, mapping) pairs — including apps
  // the fleet no longer tracks (abandoned parked admissions).
  for (std::size_t p = 0; p < fleet_->platform_count(); ++p) {
    ConcurrentRuntimeManager& manager = fleet_->manager(p);
    const core::ResourceState live = manager.state_snapshot();
    core::ResourceState replayed(live.platform());
    for (const AppId id : manager.running_ids()) {
      core::commit_mapping(replayed, *manager.app_of(id),
                           manager.mapping_of(id));
    }
    if (!live.approx_equals(replayed)) return false;
  }
  return true;
}

}  // namespace rtsm::runtime
