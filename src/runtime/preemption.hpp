#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/fragmentation.hpp"
#include "core/mapper.hpp"
#include "runtime/admission.hpp"
#include "runtime/defrag.hpp"

namespace rtsm::runtime {

/// The victim set and feasible plan a preemption would commit: shared by
/// both managers so victim selection cannot diverge between them (the
/// commit/re-park tail stays per-manager — locking differs).
struct PreemptionPlan {
  /// Eviction admits the arrival: @p victims + @p plan are valid.
  [[nodiscard]] bool admits() const { return plan.success; }

  /// Victims in eviction order (cheapest first).
  std::vector<AppId> victims;
  /// The arrival's plan, feasible against @p state minus the victims.
  core::MappingResult plan;
  /// Mapper attempts / wall clock the planning consumed. The caller adds
  /// them to the request's counters even when admits() is false — the
  /// time was spent either way and feeds deadline accounting.
  std::uint32_t attempts = 0;
  double mapping_us = 0.0;
};

/// Selects the cheapest set of lower-priority preemptible victims whose
/// eviction lets @p app fit. Candidates are ranked by (priority class,
/// fragmentation of the platform after the hypothetical eviction, running
/// energy) and evicted greedily — re-planning after each — up to
/// options.max_victims. Pure planning: @p state and @p running are never
/// modified. admits() is false when no eviction admits the app, when no
/// candidate is outranked, or when the added mapper time would blow
/// @p deadline_us (given @p mapping_us_spent so far) — evicting for an
/// arrival that then misses its deadline would sacrifice victims for
/// nothing.
[[nodiscard]] PreemptionPlan plan_preemption(
    const core::ResourceState& state,
    const std::map<AppId, RunningApp>& running, const kpn::Application& app,
    RequestClass cls, double deadline_us, double mapping_us_spent,
    const core::Mapper& mapper, const PreemptionOptions& options,
    const core::FragmentationOptions& fragmentation);

}  // namespace rtsm::runtime
