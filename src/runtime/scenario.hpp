#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "runtime/concurrent_manager.hpp"
#include "runtime/runtime_manager.hpp"
#include "workload/hiperlan2.hpp"
#include "workload/synthetic.hpp"

namespace rtsm::runtime {

/// One event of a run-time scenario: the paper's premise that applications
/// arrive, leave and *change mode* while the platform is live, as data.
/// Events reference applications by a scenario-local @p slot (the arrival
/// ordinal), so one generated schedule can be replayed against any manager
/// or policy configuration and stay comparable.
struct ScenarioEvent {
  enum class Kind { Arrive, Depart, SwitchMode };
  Kind kind = Kind::Arrive;

  /// Wave (coarse scenario time step) this event fires in.
  std::uint32_t wave = 0;

  /// Scenario-local application slot the event refers to.
  std::size_t slot = 0;

  /// Arrive: the application to admit.
  std::shared_ptr<const kpn::Application> app;

  /// SwitchMode: the graph the slot's instance switches to.
  std::shared_ptr<const kpn::Application> next;

  /// Arrive: priority class of the admission request.
  RequestClass cls;

  /// Arrive: mapper wall-clock budget. SwitchMode: the switch's own QoS
  /// deadline (see ModeSwitchOptions::deadline_us). 0 = none.
  double deadline_us = 0.0;
};

/// A generated scenario: wave-major event list (within one wave departures
/// come first, then mode switches, then arrivals — departures punch the
/// holes the rest has to fit into).
struct Schedule {
  std::uint32_t waves = 0;
  std::vector<ScenarioEvent> events;
  /// Slots that ever arrive (arrival count).
  std::size_t slots = 0;
};

/// Parameters of the seeded mode-churn + priority-mix generator.
struct ScheduleParams {
  std::uint32_t waves = 40;
  std::uint32_t arrivals_per_wave = 3;

  /// Fraction of arrivals that are HIPERLAN/2 mode variants (the apps
  /// that later receive switch_mode events); the rest are synthetic.
  double hiperlan_fraction = 0.35;

  /// Fraction of the synthetic arrivals drawn from @p big_app (tile-
  /// hungry co-locating pairs); the rest from @p small_app.
  double big_fraction = 0.4;

  /// Lifetime in waves, uniform (departure scheduled at arrival+lifetime;
  /// apps whose departure falls past the horizon never depart).
  std::uint32_t lifetime_min = 4;
  std::uint32_t lifetime_max = 10;

  /// Per live HIPERLAN/2 slot and wave: probability of a switch_mode
  /// event to a uniformly drawn *different* demapping mode.
  double switch_prob = 0.45;

  /// Fraction of arrivals tagged high-priority (and not preemptible);
  /// the rest arrive with the default class (priority 0, preemptible).
  double high_priority_fraction = 0.15;
  std::int32_t high_priority = 10;

  /// QoS deadline stamped on every switch_mode event, microseconds
  /// (0 = unbounded switches, the pre-deadline behaviour).
  double switch_deadline_us = 0.0;

  workload::Hiperlan2Config hiperlan;
  workload::SyntheticAppParams small_app;
  workload::SyntheticAppParams big_app;

  ScheduleParams() {
    small_app.process_count = 2;
    small_app.with_fixtures = false;
    small_app.tile_types = {"ARM"};
    small_app.max_preferred_utilization = 0.25;
    big_app = small_app;
    big_app.max_preferred_utilization = 0.4;
    big_app.energy_min = 120.0;
    big_app.energy_max = 200.0;
  }
};

/// Generates a reproducible mode-churn schedule: same seed, same events,
/// same graphs (shared between replays, so every configuration sees the
/// identical workload).
[[nodiscard]] Schedule make_mode_churn_schedule(const ScheduleParams& params,
                                                std::uint64_t seed);

// ----------------------------------------------------- record / replay

/// Cumulative driver counters snapshotted after one wave settled. A run's
/// wave-outcome log is its behavioural fingerprint: two runs of the same
/// schedule against equivalent targets must produce equal logs (the
/// bit-identical-replay gate of bench X11).
struct WaveOutcome {
  std::uint32_t wave = 0;
  /// Driver-tracked slots live after the wave.
  std::uint64_t running = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t departures = 0;
  std::uint64_t skipped_events = 0;
  std::uint64_t switches_in_place = 0;
  std::uint64_t switches_replanned = 0;
  std::uint64_t switches_rolled_back = 0;
  std::uint64_t switch_deadline_misses = 0;
  std::uint64_t naive_switch_losses = 0;

  bool operator==(const WaveOutcome&) const = default;
};

/// A persisted scenario: the seeded schedule plus the per-wave outcome
/// log of one recorded run. Replaying the schedule against an equivalent
/// target and comparing wave logs is the cross-version regression gate.
struct ScenarioTrace {
  /// Provenance only (the schedule is stored expanded, not re-generated).
  std::uint64_t seed = 0;
  Schedule schedule;
  std::vector<WaveOutcome> outcomes;
};

/// Renders a schedule to the trace JSON (applications deduplicated and
/// embedded in the io::save_application text format, loss-free).
[[nodiscard]] std::string schedule_to_json(const Schedule& schedule);

/// Parses a schedule back. Events that referenced one application object
/// share one again. Throws rtsm::Error on malformed input.
[[nodiscard]] Schedule schedule_from_json(const std::string& text);

/// Full trace: schedule + recorded wave outcomes (+ seed provenance).
[[nodiscard]] std::string trace_to_json(const ScenarioTrace& trace);
[[nodiscard]] ScenarioTrace trace_from_json(const std::string& text);

/// True when two runs behaved identically wave for wave.
[[nodiscard]] bool outcomes_identical(const std::vector<WaveOutcome>& a,
                                      const std::vector<WaveOutcome>& b);

/// An outcome as the driver receives it: @p ticket is the target-assigned
/// submission handle (0 when the request was not submitted through the
/// target — e.g. a preemption victim re-entering the stream).
struct SettledOutcome {
  std::uint64_t ticket = 0;
  AdmitOutcome outcome;
};

/// Adapter hiding which manager a scenario drives. submit() returns a
/// target-assigned ticket (monotone from 1) that settle()/finish() hand
/// back with the resolved outcome — request-id plumbing differs between
/// the managers (the concurrent one only reveals ids through futures), so
/// the driver correlates by ticket. settle() resolves everything
/// resolvable right now and hands each outcome out exactly once;
/// finish() additionally gives up on parked requests.
class ScenarioTarget {
 public:
  virtual ~ScenarioTarget() = default;

  virtual std::uint64_t submit(std::shared_ptr<const kpn::Application> app,
                               double deadline_us, RequestClass cls) = 0;
  virtual bool release(AppId id) = 0;
  virtual SwitchOutcome switch_mode(AppId id,
                                    std::shared_ptr<const kpn::Application> next,
                                    double deadline_us) = 0;

  /// Outcomes resolved since the last settle()/finish() call.
  virtual std::vector<SettledOutcome> settle() = 0;
  /// settle() + reject all still-parked requests (end of scenario).
  virtual std::vector<SettledOutcome> finish() = 0;

  virtual bool is_running(AppId id) const = 0;
  virtual std::vector<AppId> running_ids() const = 0;
  virtual std::shared_ptr<const kpn::Application> app_of(AppId id) const = 0;
  virtual core::Mapping mapping_of(AppId id) const = 0;
  virtual core::ResourceState state_copy() const = 0;
  virtual AdmissionStats stats() const = 0;

  /// Serial-replay oracle: committing every surviving (app, mapping) pair
  /// onto a fresh ResourceState must reproduce the live resource state —
  /// admissions, releases, preemptions, defrag migrations and mode
  /// switches may never leak or double-book a reservation. Virtual so
  /// multi-platform targets (the fleet) can run the check per platform.
  [[nodiscard]] virtual bool replay_matches() const;
};

/// Drives the serial RuntimeManager.
class SerialTarget final : public ScenarioTarget {
 public:
  explicit SerialTarget(RuntimeManager& manager) : manager_(&manager) {}

  std::uint64_t submit(std::shared_ptr<const kpn::Application> app,
                       double deadline_us, RequestClass cls) override {
    const RequestId request = manager_->submit(std::move(app), deadline_us,
                                               cls);
    tickets_[request] = ++next_ticket_;
    return next_ticket_;
  }
  bool release(AppId id) override { return manager_->release(id); }
  SwitchOutcome switch_mode(AppId id,
                            std::shared_ptr<const kpn::Application> next,
                            double deadline_us) override {
    return manager_->switch_mode(id, std::move(next), deadline_us);
  }
  std::vector<SettledOutcome> settle() override;
  std::vector<SettledOutcome> finish() override;

  bool is_running(AppId id) const override;
  std::vector<AppId> running_ids() const override {
    return manager_->running_ids();
  }
  std::shared_ptr<const kpn::Application> app_of(AppId id) const override {
    return manager_->app_of(id);
  }
  core::Mapping mapping_of(AppId id) const override {
    return manager_->mapping_of(id);
  }
  core::ResourceState state_copy() const override { return manager_->state(); }
  AdmissionStats stats() const override { return manager_->stats(); }

 private:
  /// Maps manager outcomes to their tickets (erasing the used entries)
  /// and appends them to @p settled; shared by settle() and finish().
  std::vector<SettledOutcome> correlate(std::vector<AdmitOutcome> outcomes,
                                        std::vector<SettledOutcome> settled);

  RuntimeManager* manager_;
  std::uint64_t next_ticket_ = 0;
  /// Manager request id -> ticket for outcomes not yet settled.
  std::map<RequestId, std::uint64_t> tickets_;
};

/// Drives the ConcurrentRuntimeManager; collects resolved futures on
/// settle(). Safe to use while the manager's worker pool runs — settle()
/// waits for the in-flight work to drain first.
class ConcurrentTarget final : public ScenarioTarget {
 public:
  explicit ConcurrentTarget(ConcurrentRuntimeManager& manager)
      : manager_(&manager) {}

  std::uint64_t submit(std::shared_ptr<const kpn::Application> app,
                       double deadline_us, RequestClass cls) override;
  bool release(AppId id) override { return manager_->release(id); }
  SwitchOutcome switch_mode(AppId id,
                            std::shared_ptr<const kpn::Application> next,
                            double deadline_us) override {
    return manager_->switch_mode(id, std::move(next), deadline_us);
  }
  std::vector<SettledOutcome> settle() override;
  std::vector<SettledOutcome> finish() override;

  bool is_running(AppId id) const override;
  std::vector<AppId> running_ids() const override {
    return manager_->running_ids();
  }
  std::shared_ptr<const kpn::Application> app_of(AppId id) const override {
    return manager_->app_of(id);
  }
  core::Mapping mapping_of(AppId id) const override {
    return manager_->mapping_of(id);
  }
  core::ResourceState state_copy() const override {
    return manager_->state_snapshot();
  }
  AdmissionStats stats() const override { return manager_->stats(); }

 private:
  ConcurrentRuntimeManager* manager_;
  std::uint64_t next_ticket_ = 0;
  /// Futures of submitted requests not yet resolved, with their tickets.
  std::vector<std::pair<std::uint64_t, std::future<AdmitOutcome>>> pending_;
};

/// Tuning of one scenario replay.
struct ScenarioOptions {
  /// Replace switch_mode() with naive release + readmit — the baseline
  /// the in-place path is benchmarked against. A naive switch whose
  /// readmission fails loses the application (there is no old mode to
  /// roll back to); the driver counts these.
  bool naive_switch = false;

  /// Run the serial-replay oracle after every wave (else only at the
  /// end).
  bool oracle_every_wave = true;
};

/// Aggregate result of one scenario replay.
struct ScenarioStats {
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t departures = 0;
  /// Depart/switch events skipped because the slot was no longer live
  /// (rejected arrival, preempted victim, lost naive switch).
  std::uint64_t skipped_events = 0;

  std::uint64_t switches = 0;
  std::uint64_t switches_in_place = 0;
  std::uint64_t switches_replanned = 0;
  std::uint64_t switches_rolled_back = 0;
  /// Switches aborted on their own QoS deadline (old mode kept).
  std::uint64_t switch_deadline_misses = 0;
  /// Naive mode only: release+readmit lost the application.
  std::uint64_t naive_switch_losses = 0;

  /// Outcomes without a driver ticket — preemption victims re-entering
  /// the stream (admitted again or finally rejected). Only the serial
  /// target surfaces these; the concurrent manager resolves victim
  /// promises nobody holds (its stats() still count them).
  std::uint64_t reparked_outcomes = 0;

  /// Wall-clock latency of each switch operation as the driver saw it
  /// (in-place: the switch_mode call; naive: release + readmit).
  LatencyReservoir switch_latency;

  /// Serial-replay oracle verdict over all checks performed.
  bool oracle_ok = true;

  /// Per-wave cumulative outcome snapshots (one entry per wave plus a
  /// final post-finish entry at index waves) — the run's behavioural
  /// fingerprint for record/replay comparison (see ScenarioTrace).
  std::vector<WaveOutcome> wave_log;
};

/// Replays a Schedule against a ScenarioTarget: the run-time mode-switch
/// scenario engine. Waves execute in order; after each wave the target is
/// settled and (optionally) the replay oracle checked. At the end parked
/// requests are rejected and a final oracle check runs.
class ScenarioDriver {
 public:
  ScenarioDriver(ScenarioTarget& target, Schedule schedule,
                 ScenarioOptions options = {});

  /// Runs the whole scenario once. Call on a fresh target/manager.
  ScenarioStats run();

 private:
  void handle_outcomes(const std::vector<SettledOutcome>& outcomes);
  /// Appends the cumulative counter snapshot for @p wave to the wave log.
  void record_wave(std::uint32_t wave);

  ScenarioTarget* target_;
  Schedule schedule_;
  ScenarioOptions options_;

  ScenarioStats stats_;
  /// Ticket -> slot of arrivals the driver submitted.
  std::map<std::uint64_t, std::size_t> pending_slot_;
  /// Tickets that are naive-switch readmissions (their rejection is a
  /// lost application, not an ordinary reject).
  std::set<std::uint64_t> naive_retry_;
  /// Live slot -> running instance id.
  std::map<std::size_t, AppId> live_;
  /// Class each slot arrived with (naive switches readmit with it).
  std::map<std::size_t, RequestClass> slot_cls_;
};

}  // namespace rtsm::runtime
