#include "runtime/defrag.hpp"

#include <optional>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace rtsm::runtime {

DefragPlanner::DefragPlanner(std::shared_ptr<const core::Mapper> mapper,
                             DefragOptions options)
    : mapper_(std::move(mapper)), options_(options) {
  require(mapper_ != nullptr, "DefragPlanner needs a mapper");
  require(options_.max_migrations_per_pass >= 1,
          "max_migrations_per_pass must be >= 1");
}

DefragPassResult DefragPlanner::run_pass(
    core::ResourceState& state, std::map<AppId, RunningApp>& running) const {
  const auto score_of = [&](const core::ResourceState& s) {
    return core::measure_fragmentation(s, options_.fragmentation).score();
  };

  DefragPassResult result;
  double current = score_of(state);
  result.fragmentation_before = current;
  result.fragmentation_after = current;
  if (running.empty()) return result;

  double budget_left = options_.migration_budget_us;
  for (std::uint32_t round = 0; round < options_.max_migrations_per_pass;
       ++round) {
    struct Candidate {
      AppId id;
      core::MappingResult plan;
      double score = 0.0;
      double cost_us = 0.0;
      double energy_nj = 0.0;
    };
    std::optional<Candidate> best;

    // Phase 1 — plan: hypothetically relocate each candidate on a scratch
    // copy (its own booking released first, so the mapper sees the
    // capacity the app itself would vacate) and score the result. The
    // first planning attempt masks every fully-free tile as saturated:
    // a first-fit mapper would otherwise scatter into the holes defrag
    // is trying to grow, while the masked plan *packs* the candidate
    // into existing partial slack (best-fit bias) and leaves whole-tile
    // holes intact. When the packed plan fails, the unmasked snapshot is
    // the fallback.
    std::uint32_t considered = 0;
    for (const auto& [id, run] : running) {
      if (considered++ >= options_.max_candidates) break;
      if (!plan_scratch_.has_value()) {
        plan_scratch_.emplace(state.platform());
      }
      state.refresh_snapshot_into(*plan_scratch_);
      core::ResourceState& scratch = *plan_scratch_;
      core::release_mapping(scratch, *run.app, run.mapping);

      std::vector<TileId> maskable;
      for (const TileId tid : scratch.platform().tile_ids()) {
        if (core::is_free_tile(scratch, tid, options_.fragmentation)) {
          maskable.push_back(tid);
        }
      }
      core::MappingResult plan;
      if (!maskable.empty()) {
        if (!packed_scratch_.has_value()) {
          packed_scratch_.emplace(state.platform());
        }
        core::ResourceState& packed = *packed_scratch_;
        packed = scratch;
        for (const TileId tid : maskable) packed.saturate_tile(tid);
        plan = mapper_->map(*run.app, packed);
      }
      if (!plan.success) plan = mapper_->map(*run.app, scratch);
      if (!plan.success) continue;
      if (core::diff_mappings(*run.app, run.mapping, plan.mapping).empty()) {
        continue;  // the mapper kept the placement: nothing to move
      }
      if (!core::mapping_fits(scratch, *run.app, plan.mapping)) continue;
      core::commit_mapping(scratch, *run.app, plan.mapping);
      const double cand_score = score_of(scratch);
      if (current - cand_score < options_.min_score_improvement) continue;
      const double cost_us = options_.cost.migration_us(
          *run.app, state.platform(), run.mapping, plan.mapping);
      if (options_.migration_budget_us > 0.0 && cost_us > budget_left) {
        continue;
      }
      if (!best || cand_score < best->score) {
        const double energy_nj = options_.cost.migration_energy_nj(
            *run.app, state.platform(), run.mapping, plan.mapping);
        best =
            Candidate{id, std::move(plan), cand_score, cost_us, energy_nj};
      }
    }
    if (!best) break;

    // Phase 2 — commit: replay the winning relocation onto the live state
    // as its delta sequence; roll the applied prefix back on any misfit.
    RunningApp& run = running.at(best->id);
    const std::vector<core::MappingDelta> deltas =
        core::diff_mappings(*run.app, run.mapping, best->plan.mapping);
    core::Mapping next = run.mapping;
    std::vector<const core::MappingDelta*> applied;
    applied.reserve(deltas.size());
    bool committed = true;
    for (const core::MappingDelta& delta : deltas) {
      if (!core::apply_delta(state, *run.app, next, delta)) {
        committed = false;
        break;
      }
      applied.push_back(&delta);
    }
    if (!committed) {
      for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
        core::rollback_delta(state, *run.app, next, **it);
      }
      ++result.migration_failures;
      break;  // the live state diverged from the plan: end the pass
    }

    result.deltas_applied += static_cast<std::uint32_t>(applied.size());
    run.mapping = std::move(next);
    run.energy_nj = best->plan.energy_nj_per_symbol;
    ++result.migrations;
    result.migration_cost_us += best->cost_us;
    result.migration_energy_nj += best->energy_nj;
    if (options_.migration_budget_us > 0.0) budget_left -= best->cost_us;
    current = score_of(state);
  }
  result.fragmentation_after = current;
  return result;
}

}  // namespace rtsm::runtime
