#pragma once

#include <string>
#include <vector>

#include "noc/route_cache.hpp"
#include "runtime/runtime_manager.hpp"
#include "shapes/library.hpp"
#include "verify/engine.hpp"

namespace rtsm::runtime {

/// One aggregate observability snapshot, produced identically by
/// RuntimeManager::stats_report() and
/// ConcurrentRuntimeManager::stats_report(). It replaces the four separate
/// stats()/verification_stats()/shape_stats()/drain_release_errors()
/// round-trips every JSON-emitting bench used to hand-roll — the benches
/// now embed to_json() as one sub-object next to their gated metrics.
struct StatsReport {
  AdmissionStats admission;
  verify::EngineStats verification;
  shapes::ShapeLibraryStats shapes;
  /// Step-3 route-cache counters of the underlying mapper (idle-route
  /// lookups, validated hits, live-search fallbacks). Zeros when the
  /// mapper routes without a cache.
  noc::RouteCacheStats route_cache;
  /// Release errors recorded since the last report; taking a report drains
  /// the manager's buffer exactly like drain_release_errors().
  std::vector<ReleaseError> release_errors;

  /// The report as one JSON object with keys "admission" (counters,
  /// latency percentiles, hot-path / defrag / shapes / preemption /
  /// switch / portfolio sub-objects), "verification", "shape_library",
  /// "route_cache" and "release_errors".
  [[nodiscard]] std::string to_json() const;
};

}  // namespace rtsm::runtime
