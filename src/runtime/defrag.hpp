#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "core/fragmentation.hpp"
#include "core/mapper.hpp"
#include "core/migration.hpp"
#include "kpn/application.hpp"
#include "runtime/admission.hpp"

namespace rtsm::runtime {

/// When the runtime manager compacts the platform.
enum class DefragPolicy {
  /// Never migrate (the paper's base behaviour: admissions only ever add).
  Off,
  /// After a release, when the fragmentation score exceeds a threshold —
  /// capacity was just freed, so compacting *before* waking parked
  /// requests maximises what the retry sees.
  OnReleaseThreshold,
  /// When an admission fails: compact once, then retry the request
  /// against the compacted state (reactive, no background work).
  OnReject,
};

/// Tuning of the defragmentation planner.
struct DefragOptions {
  DefragPolicy policy = DefragPolicy::Off;

  /// OnReleaseThreshold: a pass runs only when the fragmentation score
  /// (core::FragmentationMetrics::score) is at least this.
  double fragmentation_threshold = 0.3;

  /// Budget k: at most this many running applications are migrated per
  /// pass (greedy, most score reduction first).
  std::uint32_t max_migrations_per_pass = 2;

  /// At most this many running applications are evaluated as relocation
  /// candidates per greedy round (bounds the mapper invocations; the
  /// shared verify::Engine makes structurally-equal re-plans near-free).
  std::uint32_t max_candidates = 16;

  /// A candidate migration must reduce the fragmentation score by at
  /// least this much to be worth the move.
  double min_score_improvement = 1e-3;

  /// Upper bound on the summed migration cost of one pass, microseconds
  /// (0 = unbounded). Candidates whose transfer would exceed the
  /// remaining budget are skipped.
  double migration_budget_us = 0.0;

  core::FragmentationOptions fragmentation;
  core::MigrationCostModel cost;
};

/// A running application as both runtime managers book it. The map key
/// (AppId) — not the application's graph name — is the instance identity:
/// the same graph admitted twice yields two RunningApp entries that differ
/// only in their key and @p instance, and a mode switch replaces @p app
/// while the key stays.
struct RunningApp {
  std::shared_ptr<const kpn::Application> app;
  core::Mapping mapping{0, 0};
  double energy_nj = 0.0;

  /// Priority class of the admitting request; drives victim selection
  /// when a higher-priority arrival preempts.
  RequestClass cls;

  /// Id of the request that admitted this instance (display/bookkeeping
  /// breadcrumb; unique even when graph names collide).
  std::uint64_t instance = 0;
};

/// Outcome of one defragmentation pass.
struct DefragPassResult {
  std::uint32_t migrations = 0;
  std::uint32_t migration_failures = 0;
  std::uint32_t deltas_applied = 0;
  double fragmentation_before = 0.0;
  double fragmentation_after = 0.0;
  double migration_cost_us = 0.0;
  double migration_energy_nj = 0.0;
};

/// Plans and commits bounded-budget compaction passes.
///
/// One pass runs up to max_migrations_per_pass greedy rounds. Each round
/// re-plans every candidate application with the *existing* mapper
/// strategy on a scratch snapshot that excludes the candidate's own
/// booking (phase 1 — the mapper re-verifies the moved mapping through
/// its shared verify::Engine, where equal-clock moves hit the structural
/// cache), scores the hypothetical state, and picks the relocation that
/// most reduces the fragmentation score. The winning migration is then
/// committed onto the *live* state as a MappingDelta sequence (phase 2);
/// if any delta stops fitting mid-commit, the applied prefix is rolled
/// back in reverse order, the live state is exactly restored, and the
/// pass aborts with a recorded migration failure. On a sharded
/// concurrent manager the mapper plans across the whole platform, so a
/// pass also rebalances applications across shard stripes (cross-shard
/// work stealing).
class DefragPlanner {
 public:
  DefragPlanner(std::shared_ptr<const core::Mapper> mapper,
                DefragOptions options);

  [[nodiscard]] const DefragOptions& options() const { return options_; }

  /// True when the policy wants a pass after a release, given the current
  /// fragmentation @p score.
  [[nodiscard]] bool triggers_after_release(double score) const {
    return options_.policy == DefragPolicy::OnReleaseThreshold &&
           score >= options_.fragmentation_threshold;
  }

  /// Runs one pass against @p state / @p running (mutating both: migrated
  /// applications get their new mapping and energy). The caller must hold
  /// whatever lock guards the pair; the planner itself takes none.
  DefragPassResult run_pass(core::ResourceState& state,
                            std::map<AppId, RunningApp>& running) const;

 private:
  std::shared_ptr<const core::Mapper> mapper_;
  DefragOptions options_;

  /// Reusable candidate-snapshot buffers, lazily sized to the pass's
  /// platform. Candidate evaluation mutates them (release + saturate +
  /// commit), so each reuse is a full-copy refresh — the win is the
  /// recycled vector capacity, not delta replay. Callers already
  /// serialize passes (the concurrent manager runs them under its state
  /// lock, the serial manager is single-threaded), which is what makes
  /// these mutable members safe in the const run_pass().
  mutable std::optional<core::ResourceState> plan_scratch_;
  mutable std::optional<core::ResourceState> packed_scratch_;
};

}  // namespace rtsm::runtime
