#include "runtime/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "io/json.hpp"
#include "io/serialize.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rtsm::runtime {

// ---------------------------------------------------------------- schedule

Schedule make_mode_churn_schedule(const ScheduleParams& params,
                                  std::uint64_t seed) {
  require(params.waves > 0, "schedule needs at least one wave");
  require(params.lifetime_min >= 1 &&
              params.lifetime_min <= params.lifetime_max,
          "schedule lifetime range is invalid");
  Rng rng(seed);
  Schedule schedule;
  schedule.waves = params.waves;

  /// Per-slot bookkeeping while generating (mode churn needs to know
  /// which hiperlan slots are alive in a wave and their current mode).
  struct Slot {
    std::uint32_t depart_wave = 0;  // 0 = never departs
    bool hiperlan = false;
    workload::Hiperlan2Mode mode = workload::Hiperlan2Mode::QPSK;
  };
  std::vector<Slot> slots;

  // Wave-major generation keeps the event order deterministic: per wave,
  // departures first, then switches of live hiperlan slots, then the
  // wave's arrivals.
  for (std::uint32_t wave = 0; wave < params.waves; ++wave) {
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (slots[s].depart_wave != 0 && slots[s].depart_wave == wave) {
        ScenarioEvent ev;
        ev.kind = ScenarioEvent::Kind::Depart;
        ev.wave = wave;
        ev.slot = s;
        schedule.events.push_back(std::move(ev));
      }
    }

    for (std::size_t s = 0; s < slots.size(); ++s) {
      Slot& slot = slots[s];
      const bool alive =
          slot.depart_wave == 0 || wave < slot.depart_wave;
      if (!slot.hiperlan || !alive) continue;
      if (!rng.bernoulli(params.switch_prob)) continue;
      // A switch to a uniformly drawn *different* demapping mode.
      const auto& modes = workload::kHiperlan2Modes;
      workload::Hiperlan2Mode next = slot.mode;
      while (next == slot.mode) {
        next = modes[rng.pick_index(modes.size())].mode;
      }
      slot.mode = next;
      ScenarioEvent ev;
      ev.kind = ScenarioEvent::Kind::SwitchMode;
      ev.wave = wave;
      ev.slot = s;
      ev.next = std::make_shared<kpn::Application>(
          workload::hiperlan2_mode_variant(next, params.hiperlan));
      ev.deadline_us = params.switch_deadline_us;
      schedule.events.push_back(std::move(ev));
    }

    for (std::uint32_t a = 0; a < params.arrivals_per_wave; ++a) {
      Slot slot;
      const std::uint32_t lifetime = static_cast<std::uint32_t>(
          rng.uniform_int(params.lifetime_min, params.lifetime_max));
      if (wave + lifetime < params.waves) slot.depart_wave = wave + lifetime;

      ScenarioEvent ev;
      ev.kind = ScenarioEvent::Kind::Arrive;
      ev.wave = wave;
      ev.slot = slots.size();
      const std::string name = "s" + std::to_string(slots.size());
      if (rng.bernoulli(params.hiperlan_fraction)) {
        slot.hiperlan = true;
        const auto& modes = workload::kHiperlan2Modes;
        slot.mode = modes[rng.pick_index(modes.size())].mode;
        ev.app = std::make_shared<kpn::Application>(
            workload::hiperlan2_mode_variant(slot.mode, params.hiperlan));
      } else if (rng.bernoulli(params.big_fraction)) {
        ev.app = std::make_shared<kpn::Application>(
            workload::make_synthetic_app(rng, params.big_app, name));
      } else {
        ev.app = std::make_shared<kpn::Application>(
            workload::make_synthetic_app(rng, params.small_app, name));
      }
      if (rng.bernoulli(params.high_priority_fraction)) {
        ev.cls.priority = params.high_priority;
        ev.cls.preemptible = false;
      }
      slots.push_back(slot);
      schedule.events.push_back(std::move(ev));
    }
  }
  schedule.slots = slots.size();
  return schedule;
}

// --------------------------------------------------------- record / replay

namespace {

/// %.6f, matching the library's other JSON writers.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

const char* kind_name(ScenarioEvent::Kind kind) {
  switch (kind) {
    case ScenarioEvent::Kind::Arrive: return "arrive";
    case ScenarioEvent::Kind::Depart: return "depart";
    case ScenarioEvent::Kind::SwitchMode: return "switch";
  }
  return "?";
}

ScenarioEvent::Kind kind_of(const std::string& name) {
  if (name == "arrive") return ScenarioEvent::Kind::Arrive;
  if (name == "depart") return ScenarioEvent::Kind::Depart;
  if (name == "switch") return ScenarioEvent::Kind::SwitchMode;
  throw Error("unknown scenario event kind \"" + name + "\"");
}

/// Deduplicating application pool: graphs are stored once in the
/// io::save_application text format (loss-free) and events reference
/// them by index — the HIPERLAN/2 mode variants repeat heavily.
class AppPool {
 public:
  std::size_t index_of(const kpn::Application& app) {
    const std::string text = io::save_application(app);
    const auto it = by_text_.find(text);
    if (it != by_text_.end()) return it->second;
    const std::size_t index = texts_.size();
    texts_.push_back(text);
    by_text_.emplace(texts_.back(), index);
    return index;
  }

  [[nodiscard]] const std::vector<std::string>& texts() const {
    return texts_;
  }

 private:
  std::vector<std::string> texts_;
  std::unordered_map<std::string, std::size_t> by_text_;
};

void write_schedule(std::ostringstream& out, const Schedule& schedule) {
  AppPool pool;
  struct Ref {
    std::size_t app = 0;
    std::size_t next = 0;
  };
  std::vector<Ref> refs(schedule.events.size());
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    const ScenarioEvent& ev = schedule.events[i];
    if (ev.app != nullptr) refs[i].app = pool.index_of(*ev.app);
    if (ev.next != nullptr) refs[i].next = pool.index_of(*ev.next);
  }

  out << "\"waves\":" << schedule.waves << ",\"slots\":" << schedule.slots
      << ",\"apps\":[";
  for (std::size_t i = 0; i < pool.texts().size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << io::json_escape(pool.texts()[i]) << "\"";
  }
  out << "],\"events\":[";
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    const ScenarioEvent& ev = schedule.events[i];
    if (i > 0) out << ",";
    out << "{\"kind\":\"" << kind_name(ev.kind) << "\",\"wave\":" << ev.wave
        << ",\"slot\":" << ev.slot;
    if (ev.app != nullptr) out << ",\"app\":" << refs[i].app;
    if (ev.next != nullptr) out << ",\"next\":" << refs[i].next;
    if (ev.cls.priority != 0) out << ",\"priority\":" << ev.cls.priority;
    if (!ev.cls.preemptible) out << ",\"preemptible\":false";
    if (ev.deadline_us > 0.0) {
      out << ",\"deadline_us\":" << num(ev.deadline_us);
    }
    out << "}";
  }
  out << "]";
}

Schedule read_schedule(const io::JsonValue& doc) {
  Schedule schedule;
  schedule.waves = static_cast<std::uint32_t>(doc.at("waves").as_uint());
  schedule.slots = static_cast<std::size_t>(doc.at("slots").as_uint());

  // One shared graph per pool entry: events that referenced one
  // application object share one again after the round trip.
  std::vector<std::shared_ptr<const kpn::Application>> apps;
  for (const io::JsonValue& text : doc.at("apps").as_array()) {
    apps.push_back(std::make_shared<kpn::Application>(
        io::load_application(text.as_string())));
  }
  auto app_at = [&](const io::JsonValue& index) {
    const std::uint64_t i = index.as_uint();
    require(i < apps.size(), "scenario event references app " +
                                 std::to_string(i) + " of " +
                                 std::to_string(apps.size()));
    return apps[static_cast<std::size_t>(i)];
  };

  for (const io::JsonValue& item : doc.at("events").as_array()) {
    ScenarioEvent ev;
    ev.kind = kind_of(item.at("kind").as_string());
    ev.wave = static_cast<std::uint32_t>(item.at("wave").as_uint());
    ev.slot = static_cast<std::size_t>(item.at("slot").as_uint());
    if (item.has("app")) ev.app = app_at(item.at("app"));
    if (item.has("next")) ev.next = app_at(item.at("next"));
    if (item.has("priority")) {
      ev.cls.priority =
          static_cast<std::int32_t>(item.at("priority").as_double());
    }
    if (item.has("preemptible")) {
      ev.cls.preemptible = item.at("preemptible").as_bool();
    }
    if (item.has("deadline_us")) {
      ev.deadline_us = item.at("deadline_us").as_double();
    }
    schedule.events.push_back(std::move(ev));
  }
  return schedule;
}

void write_outcomes(std::ostringstream& out,
                    const std::vector<WaveOutcome>& outcomes) {
  out << "\"outcomes\":[";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const WaveOutcome& w = outcomes[i];
    if (i > 0) out << ",";
    out << "{\"wave\":" << w.wave << ",\"running\":" << w.running
        << ",\"admitted\":" << w.admitted << ",\"rejected\":" << w.rejected
        << ",\"deadline_misses\":" << w.deadline_misses
        << ",\"departures\":" << w.departures
        << ",\"skipped_events\":" << w.skipped_events
        << ",\"switches_in_place\":" << w.switches_in_place
        << ",\"switches_replanned\":" << w.switches_replanned
        << ",\"switches_rolled_back\":" << w.switches_rolled_back
        << ",\"switch_deadline_misses\":" << w.switch_deadline_misses
        << ",\"naive_switch_losses\":" << w.naive_switch_losses << "}";
  }
  out << "]";
}

std::vector<WaveOutcome> read_outcomes(const io::JsonValue& array) {
  std::vector<WaveOutcome> outcomes;
  for (const io::JsonValue& item : array.as_array()) {
    WaveOutcome w;
    w.wave = static_cast<std::uint32_t>(item.at("wave").as_uint());
    w.running = item.at("running").as_uint();
    w.admitted = item.at("admitted").as_uint();
    w.rejected = item.at("rejected").as_uint();
    w.deadline_misses = item.at("deadline_misses").as_uint();
    w.departures = item.at("departures").as_uint();
    w.skipped_events = item.at("skipped_events").as_uint();
    w.switches_in_place = item.at("switches_in_place").as_uint();
    w.switches_replanned = item.at("switches_replanned").as_uint();
    w.switches_rolled_back = item.at("switches_rolled_back").as_uint();
    w.switch_deadline_misses = item.at("switch_deadline_misses").as_uint();
    w.naive_switch_losses = item.at("naive_switch_losses").as_uint();
    outcomes.push_back(w);
  }
  return outcomes;
}

constexpr const char* kTraceFormat = "rtsm-scenario-trace-v1";

}  // namespace

std::string schedule_to_json(const Schedule& schedule) {
  std::ostringstream out;
  out << "{\"format\":\"" << kTraceFormat << "\",";
  write_schedule(out, schedule);
  out << "}";
  return out.str();
}

Schedule schedule_from_json(const std::string& text) {
  const io::JsonValue doc = io::parse_json(text);
  require(doc.at("format").as_string() == kTraceFormat,
          "not a scenario trace: format \"" + doc.at("format").as_string() +
              "\"");
  return read_schedule(doc);
}

std::string trace_to_json(const ScenarioTrace& trace) {
  std::ostringstream out;
  out << "{\"format\":\"" << kTraceFormat << "\",\"seed\":" << trace.seed
      << ",";
  write_schedule(out, trace.schedule);
  out << ",";
  write_outcomes(out, trace.outcomes);
  out << "}";
  return out.str();
}

ScenarioTrace trace_from_json(const std::string& text) {
  const io::JsonValue doc = io::parse_json(text);
  require(doc.at("format").as_string() == kTraceFormat,
          "not a scenario trace: format \"" + doc.at("format").as_string() +
              "\"");
  ScenarioTrace trace;
  if (doc.has("seed")) trace.seed = doc.at("seed").as_uint();
  trace.schedule = read_schedule(doc);
  if (doc.has("outcomes")) trace.outcomes = read_outcomes(doc.at("outcomes"));
  return trace;
}

bool outcomes_identical(const std::vector<WaveOutcome>& a,
                        const std::vector<WaveOutcome>& b) {
  return a == b;
}

// ----------------------------------------------------------------- targets

bool ScenarioTarget::replay_matches() const {
  const core::ResourceState live = state_copy();
  core::ResourceState replayed(live.platform());
  for (const AppId id : running_ids()) {
    core::commit_mapping(replayed, *app_of(id), mapping_of(id));
  }
  return live.approx_equals(replayed);
}

std::vector<SettledOutcome> SerialTarget::correlate(
    std::vector<AdmitOutcome> outcomes,
    std::vector<SettledOutcome> settled) {
  for (AdmitOutcome& outcome : outcomes) {
    SettledOutcome s;
    const auto it = tickets_.find(outcome.request);
    if (it != tickets_.end()) {
      s.ticket = it->second;
      tickets_.erase(it);
    }
    s.outcome = std::move(outcome);
    settled.push_back(std::move(s));
  }
  return settled;
}

std::vector<SettledOutcome> SerialTarget::settle() {
  return correlate(manager_->drain(), {});
}

std::vector<SettledOutcome> SerialTarget::finish() {
  return correlate(manager_->reject_waiting(), settle());
}

bool SerialTarget::is_running(AppId id) const {
  const std::vector<AppId> ids = manager_->running_ids();
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

std::uint64_t ConcurrentTarget::submit(
    std::shared_ptr<const kpn::Application> app, double deadline_us,
    RequestClass cls) {
  std::future<AdmitOutcome> future =
      manager_->submit(std::move(app), deadline_us, cls);
  pending_.emplace_back(++next_ticket_, std::move(future));
  return next_ticket_;
}

std::vector<SettledOutcome> ConcurrentTarget::settle() {
  // With workers == 0 nobody else drains the queue; with a pool the
  // caller just helps out for a moment.
  manager_->pump();
  manager_->wait_idle();
  std::vector<SettledOutcome> settled;
  auto it = pending_.begin();
  while (it != pending_.end()) {
    if (it->second.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      settled.push_back({it->first, it->second.get()});
      it = pending_.erase(it);
    } else {
      ++it;  // parked: resolves after a later release or at finish()
    }
  }
  return settled;
}

std::vector<SettledOutcome> ConcurrentTarget::finish() {
  manager_->pump();
  manager_->wait_idle();
  manager_->reject_waiting();
  return settle();
}

bool ConcurrentTarget::is_running(AppId id) const {
  const std::vector<AppId> ids = manager_->running_ids();
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

// ------------------------------------------------------------------ driver

ScenarioDriver::ScenarioDriver(ScenarioTarget& target, Schedule schedule,
                               ScenarioOptions options)
    : target_(&target),
      schedule_(std::move(schedule)),
      options_(options) {}

void ScenarioDriver::handle_outcomes(
    const std::vector<SettledOutcome>& outcomes) {
  for (const SettledOutcome& settled : outcomes) {
    const AdmitOutcome& outcome = settled.outcome;
    const auto it = pending_slot_.find(settled.ticket);
    if (it == pending_slot_.end()) {
      // A request the driver never submitted: a preemption victim that
      // re-entered the stream. Its instance (when re-admitted) runs
      // detached from slot tracking until the scenario ends.
      ++stats_.reparked_outcomes;
      continue;
    }
    if (outcome.status == AdmitStatus::Waiting) {
      // Still parked: keep the ticket mapping (and any naive-retry tag)
      // so the eventual resolution still lands on its slot.
      continue;
    }
    const std::size_t slot = it->second;
    pending_slot_.erase(it);
    const bool naive_retry = naive_retry_.erase(settled.ticket) > 0;
    switch (outcome.status) {
      case AdmitStatus::Admitted:
        if (!naive_retry) ++stats_.admitted;
        live_[slot] = outcome.app_id;
        break;
      case AdmitStatus::Rejected:
        if (naive_retry) {
          ++stats_.naive_switch_losses;  // the released mode is gone
        } else {
          ++stats_.rejected;
        }
        break;
      case AdmitStatus::DeadlineMiss:
        if (naive_retry) {
          ++stats_.naive_switch_losses;
        } else {
          ++stats_.deadline_misses;
        }
        break;
      case AdmitStatus::Waiting:
        break;  // unreachable: handled before the ticket was erased
    }
  }
}

ScenarioStats ScenarioDriver::run() {
  std::size_t next_event = 0;
  for (std::uint32_t wave = 0; wave < schedule_.waves; ++wave) {
    while (next_event < schedule_.events.size() &&
           schedule_.events[next_event].wave == wave) {
      const ScenarioEvent& ev = schedule_.events[next_event];
      ++next_event;

      switch (ev.kind) {
        case ScenarioEvent::Kind::Arrive: {
          ++stats_.arrivals;
          slot_cls_[ev.slot] = ev.cls;
          const std::uint64_t ticket =
              target_->submit(ev.app, ev.deadline_us, ev.cls);
          pending_slot_[ticket] = ev.slot;
          break;
        }
        case ScenarioEvent::Kind::Depart: {
          const auto live = live_.find(ev.slot);
          if (live == live_.end() || !target_->is_running(live->second)) {
            ++stats_.skipped_events;  // rejected earlier or preempted
            if (live != live_.end()) live_.erase(live);
            break;
          }
          target_->release(live->second);
          live_.erase(live);
          ++stats_.departures;
          break;
        }
        case ScenarioEvent::Kind::SwitchMode: {
          const auto live = live_.find(ev.slot);
          if (live == live_.end() || !target_->is_running(live->second)) {
            ++stats_.skipped_events;
            if (live != live_.end()) live_.erase(live);
            break;
          }
          ++stats_.switches;
          const auto start = std::chrono::steady_clock::now();
          if (options_.naive_switch) {
            // The baseline: release, then hope the readmission fits. No
            // rollback exists — a failed readmission loses the stream.
            // The settle runs inside the timed window so the naive
            // latency includes the full replan, like switch_mode's does.
            target_->release(live->second);
            const std::uint64_t ticket =
                target_->submit(ev.next, 0.0, slot_cls_[ev.slot]);
            live_.erase(live);
            pending_slot_[ticket] = ev.slot;
            naive_retry_.insert(ticket);
            handle_outcomes(target_->settle());
            stats_.switch_latency.record(elapsed_us(start));
          } else {
            const SwitchOutcome out =
                target_->switch_mode(live->second, ev.next, ev.deadline_us);
            stats_.switch_latency.record(elapsed_us(start));
            switch (out.status) {
              case SwitchStatus::InPlace:
                ++stats_.switches_in_place;
                break;
              case SwitchStatus::Replanned:
                ++stats_.switches_replanned;
                break;
              case SwitchStatus::RolledBack:
                ++stats_.switches_rolled_back;
                break;
              case SwitchStatus::DeadlineMiss:
                // The old mode keeps running — the slot stays live.
                ++stats_.switch_deadline_misses;
                break;
              case SwitchStatus::UnknownId:
                ++stats_.skipped_events;
                live_.erase(live);
                break;
            }
          }
          break;
        }
      }
    }

    handle_outcomes(target_->settle());
    if (options_.oracle_every_wave && !target_->replay_matches()) {
      stats_.oracle_ok = false;
    }
    record_wave(wave);
  }

  handle_outcomes(target_->finish());
  if (!target_->replay_matches()) stats_.oracle_ok = false;
  // One post-finish entry (parked requests just resolved) closes the log.
  record_wave(schedule_.waves);
  return stats_;
}

void ScenarioDriver::record_wave(std::uint32_t wave) {
  WaveOutcome out;
  out.wave = wave;
  out.running = static_cast<std::uint64_t>(live_.size());
  out.admitted = stats_.admitted;
  out.rejected = stats_.rejected;
  out.deadline_misses = stats_.deadline_misses;
  out.departures = stats_.departures;
  out.skipped_events = stats_.skipped_events;
  out.switches_in_place = stats_.switches_in_place;
  out.switches_replanned = stats_.switches_replanned;
  out.switches_rolled_back = stats_.switches_rolled_back;
  out.switch_deadline_misses = stats_.switch_deadline_misses;
  out.naive_switch_losses = stats_.naive_switch_losses;
  stats_.wave_log.push_back(out);
}

}  // namespace rtsm::runtime
