#include "runtime/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rtsm::runtime {

// ---------------------------------------------------------------- schedule

Schedule make_mode_churn_schedule(const ScheduleParams& params,
                                  std::uint64_t seed) {
  require(params.waves > 0, "schedule needs at least one wave");
  require(params.lifetime_min >= 1 &&
              params.lifetime_min <= params.lifetime_max,
          "schedule lifetime range is invalid");
  Rng rng(seed);
  Schedule schedule;
  schedule.waves = params.waves;

  /// Per-slot bookkeeping while generating (mode churn needs to know
  /// which hiperlan slots are alive in a wave and their current mode).
  struct Slot {
    std::uint32_t depart_wave = 0;  // 0 = never departs
    bool hiperlan = false;
    workload::Hiperlan2Mode mode = workload::Hiperlan2Mode::QPSK;
  };
  std::vector<Slot> slots;

  // Wave-major generation keeps the event order deterministic: per wave,
  // departures first, then switches of live hiperlan slots, then the
  // wave's arrivals.
  for (std::uint32_t wave = 0; wave < params.waves; ++wave) {
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (slots[s].depart_wave != 0 && slots[s].depart_wave == wave) {
        ScenarioEvent ev;
        ev.kind = ScenarioEvent::Kind::Depart;
        ev.wave = wave;
        ev.slot = s;
        schedule.events.push_back(std::move(ev));
      }
    }

    for (std::size_t s = 0; s < slots.size(); ++s) {
      Slot& slot = slots[s];
      const bool alive =
          slot.depart_wave == 0 || wave < slot.depart_wave;
      if (!slot.hiperlan || !alive) continue;
      if (!rng.bernoulli(params.switch_prob)) continue;
      // A switch to a uniformly drawn *different* demapping mode.
      const auto& modes = workload::kHiperlan2Modes;
      workload::Hiperlan2Mode next = slot.mode;
      while (next == slot.mode) {
        next = modes[rng.pick_index(modes.size())].mode;
      }
      slot.mode = next;
      ScenarioEvent ev;
      ev.kind = ScenarioEvent::Kind::SwitchMode;
      ev.wave = wave;
      ev.slot = s;
      ev.next = std::make_shared<kpn::Application>(
          workload::hiperlan2_mode_variant(next, params.hiperlan));
      schedule.events.push_back(std::move(ev));
    }

    for (std::uint32_t a = 0; a < params.arrivals_per_wave; ++a) {
      Slot slot;
      const std::uint32_t lifetime = static_cast<std::uint32_t>(
          rng.uniform_int(params.lifetime_min, params.lifetime_max));
      if (wave + lifetime < params.waves) slot.depart_wave = wave + lifetime;

      ScenarioEvent ev;
      ev.kind = ScenarioEvent::Kind::Arrive;
      ev.wave = wave;
      ev.slot = slots.size();
      const std::string name = "s" + std::to_string(slots.size());
      if (rng.bernoulli(params.hiperlan_fraction)) {
        slot.hiperlan = true;
        const auto& modes = workload::kHiperlan2Modes;
        slot.mode = modes[rng.pick_index(modes.size())].mode;
        ev.app = std::make_shared<kpn::Application>(
            workload::hiperlan2_mode_variant(slot.mode, params.hiperlan));
      } else if (rng.bernoulli(params.big_fraction)) {
        ev.app = std::make_shared<kpn::Application>(
            workload::make_synthetic_app(rng, params.big_app, name));
      } else {
        ev.app = std::make_shared<kpn::Application>(
            workload::make_synthetic_app(rng, params.small_app, name));
      }
      if (rng.bernoulli(params.high_priority_fraction)) {
        ev.cls.priority = params.high_priority;
        ev.cls.preemptible = false;
      }
      slots.push_back(slot);
      schedule.events.push_back(std::move(ev));
    }
  }
  schedule.slots = slots.size();
  return schedule;
}

// ----------------------------------------------------------------- targets

bool ScenarioTarget::replay_matches() const {
  const core::ResourceState live = state_copy();
  core::ResourceState replayed(live.platform());
  for (const AppId id : running_ids()) {
    core::commit_mapping(replayed, *app_of(id), mapping_of(id));
  }
  return live.approx_equals(replayed);
}

std::vector<SettledOutcome> SerialTarget::correlate(
    std::vector<AdmitOutcome> outcomes,
    std::vector<SettledOutcome> settled) {
  for (AdmitOutcome& outcome : outcomes) {
    SettledOutcome s;
    const auto it = tickets_.find(outcome.request);
    if (it != tickets_.end()) {
      s.ticket = it->second;
      tickets_.erase(it);
    }
    s.outcome = std::move(outcome);
    settled.push_back(std::move(s));
  }
  return settled;
}

std::vector<SettledOutcome> SerialTarget::settle() {
  return correlate(manager_->drain(), {});
}

std::vector<SettledOutcome> SerialTarget::finish() {
  return correlate(manager_->reject_waiting(), settle());
}

bool SerialTarget::is_running(AppId id) const {
  const std::vector<AppId> ids = manager_->running_ids();
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

std::uint64_t ConcurrentTarget::submit(
    std::shared_ptr<const kpn::Application> app, double deadline_us,
    RequestClass cls) {
  std::future<AdmitOutcome> future =
      manager_->submit(std::move(app), deadline_us, cls);
  pending_.emplace_back(++next_ticket_, std::move(future));
  return next_ticket_;
}

std::vector<SettledOutcome> ConcurrentTarget::settle() {
  // With workers == 0 nobody else drains the queue; with a pool the
  // caller just helps out for a moment.
  manager_->pump();
  manager_->wait_idle();
  std::vector<SettledOutcome> settled;
  auto it = pending_.begin();
  while (it != pending_.end()) {
    if (it->second.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      settled.push_back({it->first, it->second.get()});
      it = pending_.erase(it);
    } else {
      ++it;  // parked: resolves after a later release or at finish()
    }
  }
  return settled;
}

std::vector<SettledOutcome> ConcurrentTarget::finish() {
  manager_->pump();
  manager_->wait_idle();
  manager_->reject_waiting();
  return settle();
}

bool ConcurrentTarget::is_running(AppId id) const {
  const std::vector<AppId> ids = manager_->running_ids();
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

// ------------------------------------------------------------------ driver

ScenarioDriver::ScenarioDriver(ScenarioTarget& target, Schedule schedule,
                               ScenarioOptions options)
    : target_(&target),
      schedule_(std::move(schedule)),
      options_(options) {}

void ScenarioDriver::handle_outcomes(
    const std::vector<SettledOutcome>& outcomes) {
  for (const SettledOutcome& settled : outcomes) {
    const AdmitOutcome& outcome = settled.outcome;
    const auto it = pending_slot_.find(settled.ticket);
    if (it == pending_slot_.end()) {
      // A request the driver never submitted: a preemption victim that
      // re-entered the stream. Its instance (when re-admitted) runs
      // detached from slot tracking until the scenario ends.
      ++stats_.reparked_outcomes;
      continue;
    }
    if (outcome.status == AdmitStatus::Waiting) {
      // Still parked: keep the ticket mapping (and any naive-retry tag)
      // so the eventual resolution still lands on its slot.
      continue;
    }
    const std::size_t slot = it->second;
    pending_slot_.erase(it);
    const bool naive_retry = naive_retry_.erase(settled.ticket) > 0;
    switch (outcome.status) {
      case AdmitStatus::Admitted:
        if (!naive_retry) ++stats_.admitted;
        live_[slot] = outcome.app_id;
        break;
      case AdmitStatus::Rejected:
        if (naive_retry) {
          ++stats_.naive_switch_losses;  // the released mode is gone
        } else {
          ++stats_.rejected;
        }
        break;
      case AdmitStatus::DeadlineMiss:
        if (naive_retry) {
          ++stats_.naive_switch_losses;
        } else {
          ++stats_.deadline_misses;
        }
        break;
      case AdmitStatus::Waiting:
        break;  // unreachable: handled before the ticket was erased
    }
  }
}

ScenarioStats ScenarioDriver::run() {
  std::size_t next_event = 0;
  for (std::uint32_t wave = 0; wave < schedule_.waves; ++wave) {
    while (next_event < schedule_.events.size() &&
           schedule_.events[next_event].wave == wave) {
      const ScenarioEvent& ev = schedule_.events[next_event];
      ++next_event;

      switch (ev.kind) {
        case ScenarioEvent::Kind::Arrive: {
          ++stats_.arrivals;
          slot_cls_[ev.slot] = ev.cls;
          const std::uint64_t ticket =
              target_->submit(ev.app, ev.deadline_us, ev.cls);
          pending_slot_[ticket] = ev.slot;
          break;
        }
        case ScenarioEvent::Kind::Depart: {
          const auto live = live_.find(ev.slot);
          if (live == live_.end() || !target_->is_running(live->second)) {
            ++stats_.skipped_events;  // rejected earlier or preempted
            if (live != live_.end()) live_.erase(live);
            break;
          }
          target_->release(live->second);
          live_.erase(live);
          ++stats_.departures;
          break;
        }
        case ScenarioEvent::Kind::SwitchMode: {
          const auto live = live_.find(ev.slot);
          if (live == live_.end() || !target_->is_running(live->second)) {
            ++stats_.skipped_events;
            if (live != live_.end()) live_.erase(live);
            break;
          }
          ++stats_.switches;
          const auto start = std::chrono::steady_clock::now();
          if (options_.naive_switch) {
            // The baseline: release, then hope the readmission fits. No
            // rollback exists — a failed readmission loses the stream.
            // The settle runs inside the timed window so the naive
            // latency includes the full replan, like switch_mode's does.
            target_->release(live->second);
            const std::uint64_t ticket =
                target_->submit(ev.next, 0.0, slot_cls_[ev.slot]);
            live_.erase(live);
            pending_slot_[ticket] = ev.slot;
            naive_retry_.insert(ticket);
            handle_outcomes(target_->settle());
            stats_.switch_latency.record(elapsed_us(start));
          } else {
            const SwitchOutcome out =
                target_->switch_mode(live->second, ev.next);
            stats_.switch_latency.record(elapsed_us(start));
            switch (out.status) {
              case SwitchStatus::InPlace:
                ++stats_.switches_in_place;
                break;
              case SwitchStatus::Replanned:
                ++stats_.switches_replanned;
                break;
              case SwitchStatus::RolledBack:
                ++stats_.switches_rolled_back;
                break;
              case SwitchStatus::UnknownId:
                ++stats_.skipped_events;
                live_.erase(live);
                break;
            }
          }
          break;
        }
      }
    }

    handle_outcomes(target_->settle());
    if (options_.oracle_every_wave && !target_->replay_matches()) {
      stats_.oracle_ok = false;
    }
  }

  handle_outcomes(target_->finish());
  if (!target_->replay_matches()) stats_.oracle_ok = false;
  return stats_;
}

}  // namespace rtsm::runtime
