#include "runtime/preemption.hpp"

#include <algorithm>
#include <chrono>

#include "util/clock.hpp"

namespace rtsm::runtime {

PreemptionPlan plan_preemption(
    const core::ResourceState& state,
    const std::map<AppId, RunningApp>& running, const kpn::Application& app,
    RequestClass cls, double deadline_us, double mapping_us_spent,
    const core::Mapper& mapper, const PreemptionOptions& options,
    const core::FragmentationOptions& fragmentation) {
  PreemptionPlan result;
  if (!options.enabled) return result;

  // Candidates: strictly outranked AND willing. Cheapest first — lowest
  // priority class, then the eviction whose aftermath is the *least*
  // fragmented platform (free capacity concentrated where it can actually
  // host the arrival), then the smallest running energy.
  struct Victim {
    AppId id;
    std::int32_t priority;
    double frag_after;
    double energy_nj;
  };
  std::vector<Victim> victims;
  for (const auto& [id, run] : running) {
    if (!run.cls.preemptible || run.cls.priority >= cls.priority) continue;
    core::ResourceState scratch = state;
    core::release_mapping(scratch, *run.app, run.mapping);
    const double frag_after =
        core::measure_fragmentation(scratch, fragmentation).score();
    victims.push_back({id, run.cls.priority, frag_after, run.energy_nj});
  }
  if (victims.empty()) return result;
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) {
              if (a.priority != b.priority) return a.priority < b.priority;
              if (a.frag_after != b.frag_after) {
                return a.frag_after < b.frag_after;
              }
              return a.energy_nj < b.energy_nj;
            });

  // Greedy: hypothetically evict one victim at a time and re-plan until
  // the arrival fits (bounded by max_victims). Nothing is committed.
  core::ResourceState scratch = state;
  for (const Victim& victim : victims) {
    if (result.victims.size() >= options.max_victims) break;
    const RunningApp& run = running.at(victim.id);
    core::release_mapping(scratch, *run.app, run.mapping);
    result.victims.push_back(victim.id);

    const auto start = std::chrono::steady_clock::now();
    result.plan = mapper.map(app, scratch);
    result.mapping_us += elapsed_us(start);
    ++result.attempts;
    if (result.plan.success &&
        core::mapping_fits(scratch, app, result.plan.mapping)) {
      break;
    }
    result.plan.success = false;
  }
  if (deadline_us > 0.0 &&
      mapping_us_spent + result.mapping_us > deadline_us) {
    result.plan.success = false;
  }
  return result;
}

}  // namespace rtsm::runtime
