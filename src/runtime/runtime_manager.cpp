#include "runtime/runtime_manager.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "audit/check_state.hpp"
#include "core/fragmentation.hpp"
#include "core/spatial_mapper.hpp"
#include "runtime/portfolio.hpp"
#include "runtime/preemption.hpp"
#include "runtime/stats_report.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace rtsm::runtime {

void LatencyReservoir::record(double value_us) {
  if (count_ == 0) {
    min_ = value_us;
    max_ = value_us;
  } else {
    min_ = std::min(min_, value_us);
    max_ = std::max(max_, value_us);
  }
  sum_ += value_us;
  ++count_;
  if (samples_.size() < kCapacity) {
    samples_.push_back(value_us);
    return;
  }
  // Algorithm R: keep the new value with probability kCapacity / count_,
  // replacing a uniformly chosen resident — every value recorded so far
  // ends up retained with equal probability.
  rng_ ^= rng_ << 13;
  rng_ ^= rng_ >> 7;
  rng_ ^= rng_ << 17;
  const std::uint64_t slot = rng_ % count_;
  if (slot < kCapacity) samples_[slot] = value_us;
}

double LatencyReservoir::mean_us() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void merge_defrag_stats(AdmissionStats& stats, const DefragPassResult& pass) {
  ++stats.defrag_passes;
  stats.migrations += pass.migrations;
  stats.migration_failures += pass.migration_failures;
  stats.last_fragmentation_before = pass.fragmentation_before;
  stats.last_fragmentation_after = pass.fragmentation_after;
  stats.migration_cost_us += pass.migration_cost_us;
}

bool record_switch_stats(AdmissionStats& stats, const SwitchOutcome& out) {
  ++stats.mode_switches;
  stats.switch_latencies.record(out.switch_us);
  stats.switch_migration_cost_us += out.migration_cost_us;
  switch (out.status) {
    case SwitchStatus::InPlace:
      ++stats.switches_in_place;
      return true;
    case SwitchStatus::Replanned:
      ++stats.switches_replanned;
      return true;
    case SwitchStatus::RolledBack:
      ++stats.switches_rolled_back;
      return false;
    case SwitchStatus::UnknownId:
      ++stats.switch_failures;
      return false;
    case SwitchStatus::DeadlineMiss:
      ++stats.switch_deadline_misses;
      return false;
  }
  return false;
}

double LatencyReservoir::percentile_us(double p) const {
  if (samples_.empty()) return 0.0;
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  // The extremes are tracked exactly and survive reservoir eviction.
  if (clamped == 0.0) return min_;
  if (clamped == 100.0) return max_;
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  std::vector<double> scratch = samples_;  // bounded by kCapacity
  std::nth_element(scratch.begin(), scratch.begin() + index, scratch.end());
  return scratch[index];
}

RuntimeManager::RuntimeManager(const arch::Platform& platform,
                               ManagerOptions options)
    : state_(platform),
      mapper_(options.mapper != nullptr
                  ? std::move(options.mapper)
                  : std::make_shared<core::SpatialMapper>()),
      policy_(options.policy != nullptr
                  ? std::move(options.policy)
                  : std::make_shared<FirstFitAdmission>()),
      planner_(mapper_, options.defrag),
      preemption_(options.preemption),
      shapes_(std::move(options.shapes)),
      portfolio_(make_portfolio(options)) {
  require(shapes_ == nullptr || &shapes_->platform() == &platform,
          "shape library built for a different platform");
}

RuntimeManager::~RuntimeManager() = default;

RequestId RuntimeManager::submit(std::shared_ptr<const kpn::Application> app,
                                 double deadline_us, RequestClass cls) {
  require(app != nullptr, "admission request without an application");
  Pending pending;
  pending.kind = Pending::Kind::Admit;
  pending.request = next_request_++;
  pending.app = std::move(app);
  pending.deadline_us = deadline_us;
  pending.cls = cls;
  queue_.push_back(std::move(pending));
  ++stats_.offered;
  return queue_.back().request;
}

RequestId RuntimeManager::submit_release(AppId id) {
  Pending pending;
  pending.kind = Pending::Kind::Release;
  pending.request = next_request_++;
  pending.target = id;
  queue_.push_back(std::move(pending));
  return queue_.back().request;
}

std::vector<AdmitOutcome> RuntimeManager::drain() {
  // Outcomes accumulate in resolved_ (not a local) so nothing is lost when
  // a release of an unknown id throws mid-drain, or when an admit()/
  // release() convenience call resolves requests that are not its own.
  while (!queue_.empty()) {
    Pending pending = std::move(queue_.front());
    queue_.pop_front();

    if (pending.kind == Pending::Kind::Release) {
      process_release(pending.target, pending.request);
      // Freed capacity: wake parked requests ahead of later arrivals,
      // oldest first. When further releases are queued back-to-back, defer
      // the wake until after the last one — retrying between releases of a
      // batch would burn retry attempts against capacity that is about to
      // grow anyway.
      const bool more_releases_first =
          !queue_.empty() && queue_.front().kind == Pending::Kind::Release;
      if (!more_releases_first) {
        // Compact *before* waking parked requests so the retry sees the
        // defragmented capacity.
        wake_waiting(maybe_defrag_after_release());
      }
      continue;
    }

    if (auto outcome = process_admit(std::move(pending))) {
      resolved_.push_back(std::move(*outcome));
    }
  }
  return std::exchange(resolved_, {});
}

std::optional<AdmitOutcome> RuntimeManager::process_admit(Pending pending) {
  // Shape-library hot path: instantiate a learned relocatable placement
  // against the live residual state, skipping mapping steps 1-4. A hit is
  // committed directly — the library already ran mapping_fits against
  // state_, which is exactly the commit precondition of the full path.
  if (shapes_ != nullptr) {
    const auto start = std::chrono::steady_clock::now();
    shapes::ShapeLookup lookup =
        shapes_->try_instantiate(*pending.app, state_);
    const double probe_us = elapsed_us(start);
    pending.mapping_us += probe_us;
    stats_.map_time_us += probe_us;
    stats_.shape_anchor_probes += lookup.anchor_probes;
    if (lookup.plan.has_value()) {
      core::MappingResult result = std::move(*lookup.plan);
      ++pending.attempts;
      AdmitOutcome outcome;
      outcome.request = pending.request;
      outcome.attempts = pending.attempts;
      outcome.mapping_us = pending.mapping_us;
      outcome.shape_hit = true;
      if (pending.deadline_us > 0.0 &&
          pending.mapping_us > pending.deadline_us) {
        outcome.status = AdmitStatus::DeadlineMiss;
        outcome.mapping = std::move(result);
        ++stats_.deadline_misses;
        stats_.latencies.record(pending.mapping_us);
        return outcome;
      }
      const auto commit_start = std::chrono::steady_clock::now();
      core::commit_mapping(state_, *pending.app, result.mapping);
      stats_.commit_time_us += elapsed_us(commit_start);
      const AppId id{next_app_++};
      running_.emplace(id,
                       RunningApp{pending.app, result.mapping,
                                  result.energy_nj_per_symbol, pending.cls,
                                  pending.request});
#if RTSM_AUDIT
      audit_check("shape-commit");
#endif
      outcome.status = AdmitStatus::Admitted;
      outcome.app_id = id;
      outcome.mapping = std::move(result);
      ++stats_.shape_hits;
      ++stats_.admitted;
      stats_.latencies.record(pending.mapping_us);
      return outcome;
    }
    ++stats_.shape_misses;
  }

  core::MappingResult result;
  std::string portfolio_winner;
  while (true) {
    result = plan_admission(pending, portfolio_winner);

    // A successful plan may still not fit: design-time baselines ignore
    // the residual state. Screen before committing and treat a misfit as
    // a mapper failure.
    if (result.success) {
      const auto validate_start = std::chrono::steady_clock::now();
      const bool fits =
          core::mapping_fits(state_, *pending.app, result.mapping);
      stats_.validate_time_us += elapsed_us(validate_start);
      if (!fits) {
        result.success = false;
        result.failure = "mapping does not fit the residual resources";
      }
    }

    // OnReject: compact once per request — the flag survives parking, so
    // a retried request does not re-trigger a pass on every wake — then
    // give it a second attempt against the defragmented state (unless
    // its deadline is spent).
    if (!result.success &&
        planner_.options().policy == DefragPolicy::OnReject &&
        !pending.defragged &&
        (pending.deadline_us <= 0.0 ||
         pending.mapping_us <= pending.deadline_us)) {
      pending.defragged = true;
      const DefragPassResult pass = planner_.run_pass(state_, running_);
      merge_defrag(pass);
      if (pass.migrations > 0) continue;
    }
    // Last resort for an outranking arrival: evict the cheapest set of
    // lower-priority preemptible applications. try_preempt() hands back a
    // plan that fits the post-eviction state, so the commit path below
    // admits it like any success. Re-parked victims never preempt again.
    if (!result.success && !pending.reparked) {
      portfolio_winner.clear();  // a preemption plan is the primary mapper's
      try_preempt(pending, result);
    }
    break;
  }

  AdmitOutcome outcome;
  outcome.request = pending.request;
  outcome.attempts = pending.attempts;
  outcome.mapping_us = pending.mapping_us;

  if (pending.deadline_us > 0.0 && pending.mapping_us > pending.deadline_us) {
    outcome.status = AdmitStatus::DeadlineMiss;
    outcome.mapping = std::move(result);
    ++stats_.deadline_misses;
    stats_.latencies.record(pending.mapping_us);
    return outcome;
  }

  if (result.success) {
    // Learn-on-admit: canonicalize this full-mapper placement so future
    // structurally equal arrivals take the shape hot path above.
    if (shapes_ != nullptr) {
      const shapes::LearnResult learned =
          shapes_->learn(*pending.app, result);
      if (learned.inserted) ++stats_.shape_inserts;
      stats_.shape_evictions += learned.evictions;
    }
    const auto commit_start = std::chrono::steady_clock::now();
    core::commit_mapping(state_, *pending.app, result.mapping);
    stats_.commit_time_us += elapsed_us(commit_start);
    ++stats_.validated_commits;
    const AppId id{next_app_++};
    running_.emplace(id,
                     RunningApp{pending.app, result.mapping,
                                result.energy_nj_per_symbol, pending.cls,
                                pending.request});
#if RTSM_AUDIT
    audit_check("commit");
#endif
    outcome.status = AdmitStatus::Admitted;
    outcome.app_id = id;
    outcome.mapping = std::move(result);
    outcome.portfolio_winner = std::move(portfolio_winner);
    ++stats_.admitted;
    stats_.latencies.record(pending.mapping_us);
    return outcome;
  }

  if (policy_->on_failure(result, pending.attempts) == FailureAction::Retry) {
    waiting_.push_back(std::move(pending));
    return std::nullopt;
  }

  outcome.status = AdmitStatus::Rejected;
  outcome.mapping = std::move(result);
  ++stats_.rejected;
  stats_.latencies.record(pending.mapping_us);
  return outcome;
}

core::MappingResult RuntimeManager::plan_admission(Pending& pending,
                                                   std::string& winner) {
  winner.clear();
  if (portfolio_ == nullptr) {
    const auto start = std::chrono::steady_clock::now();
    core::MappingResult result = mapper_->map(*pending.app, state_);
    const double spent_us = elapsed_us(start);
    pending.mapping_us += spent_us;
    stats_.map_time_us += spent_us;
    ++pending.attempts;
    return result;
  }

  // Portfolio admission: race the configured strategies sequentially under
  // the shared budget token (a FirstFeasible win or budget expiry skips
  // the rest) and take the selected winner's plan.
  const auto start = std::chrono::steady_clock::now();
  RaceOutcome race = portfolio_->race(*pending.app, state_);
  const double race_us = elapsed_us(start);
  pending.mapping_us += race_us;
  stats_.map_time_us += race_us;
  pending.attempts += std::max<std::uint32_t>(race.attempts, 1);
  merge_portfolio_stats(stats_, *portfolio_, race);
  if (race.has_winner()) {
    winner = race.winning_run().name;
    return std::move(race.winning_run().result);
  }

  // No strategy produced a feasible plan inside the budget: one unbudgeted
  // run of the primary mapper, so a mis-tuned budget degrades to the
  // single-mapper manager instead of rejecting everything.
  ++stats_.portfolio_fallbacks;
  const auto fallback_start = std::chrono::steady_clock::now();
  core::MappingResult result = mapper_->map(*pending.app, state_);
  const double fallback_us = elapsed_us(fallback_start);
  pending.mapping_us += fallback_us;
  stats_.map_time_us += fallback_us;
  ++pending.attempts;
  return result;
}

StatsReport RuntimeManager::stats_report() {
  StatsReport report;
  report.admission = stats_;
  // Journal/refresh counters live on the state (the defrag planner's
  // scratch reuse funnels through refresh_snapshot_into); surface them
  // next to the admission counters.
  const core::RefreshStats refresh = state_.refresh_stats();
  report.admission.snapshot_delta_refreshes = refresh.delta_refreshes;
  report.admission.snapshot_full_copies = refresh.full_copies;
  report.admission.journal_entries_replayed = refresh.entries_replayed;
  report.verification = verification_stats();
  report.shapes = shape_stats();
  if (const auto cache = mapper_->route_cache()) {
    report.route_cache = cache->stats();
  }
  report.release_errors = drain_release_errors();
  return report;
}

bool RuntimeManager::try_preempt(Pending& pending,
                                 core::MappingResult& result) {
  PreemptionPlan plan = plan_preemption(
      state_, running_, *pending.app, pending.cls, pending.deadline_us,
      pending.mapping_us, *mapper_, preemption_,
      planner_.options().fragmentation);
  pending.attempts += plan.attempts;
  pending.mapping_us += plan.mapping_us;
  if (!plan.admits()) return false;

  // Commit the eviction: victims leave the live state and re-enter the
  // admission stream as parked requests (woken by the next release, or
  // resolved as rejected by reject_waiting at scenario end). A reparked
  // victim carries its class but no mapper deadline — the original
  // budget bounded an admission that already succeeded.
  for (const AppId id : plan.victims) {
    auto it = running_.find(id);
    core::release_mapping(state_, *it->second.app, it->second.mapping);
    Pending reparked;
    reparked.kind = Pending::Kind::Admit;
    reparked.request = next_request_++;
    reparked.app = it->second.app;
    reparked.cls = it->second.cls;
    reparked.reparked = true;
    waiting_.push_back(std::move(reparked));
    running_.erase(it);
    ++stats_.offered;
    ++stats_.preemption_evictions;
  }
#if RTSM_AUDIT
  audit_check("preempt");
#endif
  ++stats_.preemption_grants;
  result = std::move(plan.plan);
  return true;
}

void RuntimeManager::wake_waiting(bool after_defrag_migration) {
  if (waiting_.empty()) return;
  stats_.retries += waiting_.size();
  if (after_defrag_migration) {
    stats_.parked_woken_by_defrag += waiting_.size();
  }
  queue_.insert(queue_.begin(), std::make_move_iterator(waiting_.begin()),
                std::make_move_iterator(waiting_.end()));
  waiting_.clear();
}

void RuntimeManager::process_release(AppId id, RequestId request) {
  const auto it = running_.find(id);
  if (it == running_.end()) {
    // A client bug (unknown id or double release) must not kill the event
    // stream of every other client: record it and keep draining.
    ++stats_.release_errors;
    release_errors_.push_back(
        {id,
         "release of unknown or already-released application id " +
             std::to_string(id.value()),
         request});
    return;
  }
  core::release_mapping(state_, *it->second.app, it->second.mapping);
  running_.erase(it);
#if RTSM_AUDIT
  audit_check("release");
#endif
  ++stats_.releases;
}

AdmitOutcome RuntimeManager::admit(const kpn::Application& app,
                                   double deadline_us, RequestClass cls) {
  const RequestId request =
      submit(std::make_shared<kpn::Application>(app), deadline_us, cls);
  std::optional<AdmitOutcome> mine;
  // Other requests resolved by this drain go back into resolved_ so the
  // next drain() reports them.
  for (AdmitOutcome& outcome : drain()) {
    if (outcome.request == request) {
      mine = std::move(outcome);
    } else {
      resolved_.push_back(std::move(outcome));
    }
  }
  if (mine) return std::move(*mine);
  // Parked by a retry policy: report it as waiting.
  AdmitOutcome waiting;
  waiting.request = request;
  waiting.status = AdmitStatus::Waiting;
  return waiting;
}

bool RuntimeManager::release(AppId id) {
  const RequestId request = submit_release(id);
  // Outcomes of requests this release wakes are kept for the next drain().
  for (AdmitOutcome& outcome : drain()) {
    resolved_.push_back(std::move(outcome));
  }
  // One release contract for every entry point of both managers: a bad id
  // (unknown or double release) is a recorded ReleaseError + counter, not
  // an exception — a client bug must not look different depending on
  // whether the release was queued or called synchronously. The record
  // stays queued for drain_release_errors(); false tells this caller it
  // was their release that failed.
  return std::none_of(
      release_errors_.begin(), release_errors_.end(),
      [&](const ReleaseError& e) { return e.request == request; });
}

SwitchOutcome RuntimeManager::switch_mode(
    AppId id, std::shared_ptr<const kpn::Application> next,
    double deadline_us) {
  const auto start = std::chrono::steady_clock::now();
  std::optional<DefragPassResult> defrag;
  ModeSwitchOptions switch_options;
  switch_options.deadline_us = deadline_us;
  SwitchOutcome out =
      switch_mode_in_place(state_, running_, id, std::move(next), *mapper_,
                           &planner_, planner_.options().cost, &defrag,
                           switch_options);
#if RTSM_AUDIT
  audit_check("mode-switch");
#endif
  out.switch_us = elapsed_us(start);

  if (defrag.has_value()) merge_defrag(*defrag);
  const bool committed = record_switch_stats(stats_, out);
  if (committed) {
    // A narrower mode frees capacity exactly like a release does: wake
    // parked requests against it (their outcomes are held for the next
    // drain()).
    wake_waiting(false);
    for (AdmitOutcome& outcome : drain()) {
      resolved_.push_back(std::move(outcome));
    }
  }
  return out;
}

double RuntimeManager::mean_occupancy() const {
  return core::mean_occupancy(state_);
}

std::vector<ReleaseError> RuntimeManager::drain_release_errors() {
  return std::exchange(release_errors_, {});
}

bool RuntimeManager::maybe_defrag_after_release() {
  if (planner_.options().policy != DefragPolicy::OnReleaseThreshold) {
    return false;
  }
  const double score =
      core::measure_fragmentation(state_, planner_.options().fragmentation)
          .score();
  if (!planner_.triggers_after_release(score)) return false;
  const DefragPassResult pass = planner_.run_pass(state_, running_);
#if RTSM_AUDIT
  audit_check("defrag");
#endif
  merge_defrag(pass);
  return pass.migrations > 0;
}

void RuntimeManager::merge_defrag(const DefragPassResult& pass) {
  merge_defrag_stats(stats_, pass);
}

DefragPassResult RuntimeManager::defrag_now() {
  const DefragPassResult pass = planner_.run_pass(state_, running_);
#if RTSM_AUDIT
  audit_check("defrag");
#endif
  merge_defrag(pass);
  return pass;
}

verify::EngineStats RuntimeManager::verification_stats() const {
  const auto engine = mapper_->verification_engine();
  return engine ? engine->stats() : verify::EngineStats{};
}

shapes::ShapeLibraryStats RuntimeManager::shape_stats() const {
  return shapes_ != nullptr ? shapes_->stats() : shapes::ShapeLibraryStats{};
}

std::vector<AdmitOutcome> RuntimeManager::reject_waiting() {
  std::vector<AdmitOutcome> resolved;
  for (Pending& pending : waiting_) {
    AdmitOutcome outcome;
    outcome.request = pending.request;
    outcome.status = AdmitStatus::Rejected;
    outcome.attempts = pending.attempts;
    outcome.mapping_us = pending.mapping_us;
    outcome.mapping.failure = "still waiting at end of scenario";
    ++stats_.rejected;
    stats_.latencies.record(pending.mapping_us);
    resolved.push_back(std::move(outcome));
  }
  waiting_.clear();
  return resolved;
}

double RuntimeManager::total_energy_nj_per_symbol() const {
  double total = 0.0;
  for (const auto& [id, run] : running_) total += run.energy_nj;
  return total;
}

std::vector<AppId> RuntimeManager::running_ids() const {
  std::vector<AppId> ids;
  ids.reserve(running_.size());
  for (const auto& [id, run] : running_) ids.push_back(id);
  return ids;
}

const core::Mapping& RuntimeManager::mapping_of(AppId id) const {
  const auto it = running_.find(id);
  require(it != running_.end(), "mapping_of unknown application id");
  return it->second.mapping;
}

std::shared_ptr<const kpn::Application> RuntimeManager::app_of(
    AppId id) const {
  const auto it = running_.find(id);
  require(it != running_.end(), "app_of unknown application id");
  return it->second.app;
}

std::string RuntimeManager::display_name(AppId id) const {
  const auto it = running_.find(id);
  require(it != running_.end(), "display_name unknown application id");
  return it->second.app->name() + "#" + std::to_string(it->second.instance);
}

#if RTSM_AUDIT
void RuntimeManager::audit_check(const char* where) const {
  std::vector<audit::LiveApp> running;
  running.reserve(running_.size());
  for (const auto& [id, run] : running_) {
    running.push_back({run.app, &run.mapping});
  }
  audit::audit_state(state_, running,
                     std::string("runtime_manager/") + where);
}
#endif

}  // namespace rtsm::runtime
