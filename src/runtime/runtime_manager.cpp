#include "runtime/runtime_manager.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "util/clock.hpp"
#include "util/error.hpp"

namespace rtsm::runtime {

double AdmissionStats::latency_percentile_us(double p) const {
  if (latencies_us.empty()) return 0.0;
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(latencies_us.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  // O(n) selection on a scratch copy; bounding the sample set itself is the
  // ROADMAP's runtime-scaling item.
  std::vector<double> scratch = latencies_us;
  std::nth_element(scratch.begin(), scratch.begin() + index, scratch.end());
  return scratch[index];
}

double AdmissionStats::mean_latency_us() const {
  if (latencies_us.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : latencies_us) sum += v;
  return sum / static_cast<double>(latencies_us.size());
}

RuntimeManager::RuntimeManager(const arch::Platform& platform,
                               std::shared_ptr<const core::Mapper> mapper,
                               std::shared_ptr<const AdmissionPolicy> policy,
                               DefragOptions defrag)
    : state_(platform),
      mapper_((require(mapper != nullptr, "RuntimeManager needs a mapper"),
               std::move(mapper))),
      policy_(std::move(policy)),
      planner_(mapper_, defrag) {
  require(policy_ != nullptr, "RuntimeManager needs an admission policy");
}

RequestId RuntimeManager::submit(std::shared_ptr<const kpn::Application> app,
                                 double deadline_us) {
  require(app != nullptr, "admission request without an application");
  Pending pending;
  pending.kind = Pending::Kind::Admit;
  pending.request = next_request_++;
  pending.app = std::move(app);
  pending.deadline_us = deadline_us;
  queue_.push_back(std::move(pending));
  ++stats_.offered;
  return queue_.back().request;
}

RequestId RuntimeManager::submit_release(AppId id) {
  Pending pending;
  pending.kind = Pending::Kind::Release;
  pending.request = next_request_++;
  pending.target = id;
  queue_.push_back(std::move(pending));
  return queue_.back().request;
}

std::vector<AdmitOutcome> RuntimeManager::drain() {
  // Outcomes accumulate in resolved_ (not a local) so nothing is lost when
  // a release of an unknown id throws mid-drain, or when an admit()/
  // release() convenience call resolves requests that are not its own.
  while (!queue_.empty()) {
    Pending pending = std::move(queue_.front());
    queue_.pop_front();

    if (pending.kind == Pending::Kind::Release) {
      process_release(pending.target, pending.request);
      // Freed capacity: wake parked requests ahead of later arrivals,
      // oldest first. When further releases are queued back-to-back, defer
      // the wake until after the last one — retrying between releases of a
      // batch would burn retry attempts against capacity that is about to
      // grow anyway.
      const bool more_releases_first =
          !queue_.empty() && queue_.front().kind == Pending::Kind::Release;
      if (!more_releases_first) {
        // Compact *before* waking parked requests so the retry sees the
        // defragmented capacity.
        const bool defragged = maybe_defrag_after_release();
        if (!waiting_.empty()) {
          stats_.retries += waiting_.size();
          if (defragged) stats_.parked_woken_by_defrag += waiting_.size();
          queue_.insert(queue_.begin(),
                        std::make_move_iterator(waiting_.begin()),
                        std::make_move_iterator(waiting_.end()));
          waiting_.clear();
        }
      }
      continue;
    }

    if (auto outcome = process_admit(std::move(pending))) {
      resolved_.push_back(std::move(*outcome));
    }
  }
  return std::exchange(resolved_, {});
}

std::optional<AdmitOutcome> RuntimeManager::process_admit(Pending pending) {
  core::MappingResult result;
  while (true) {
    const auto start = std::chrono::steady_clock::now();
    result = mapper_->map(*pending.app, state_);
    pending.mapping_us += elapsed_us(start);
    ++pending.attempts;

    // A successful plan may still not fit: design-time baselines ignore
    // the residual state. Screen before committing and treat a misfit as
    // a mapper failure.
    if (result.success && !core::mapping_fits(state_, *pending.app,
                                              result.mapping)) {
      result.success = false;
      result.failure = "mapping does not fit the residual resources";
    }

    // OnReject: compact once per request — the flag survives parking, so
    // a retried request does not re-trigger a pass on every wake — then
    // give it a second attempt against the defragmented state (unless
    // its deadline is spent).
    if (!result.success &&
        planner_.options().policy == DefragPolicy::OnReject &&
        !pending.defragged &&
        (pending.deadline_us <= 0.0 ||
         pending.mapping_us <= pending.deadline_us)) {
      pending.defragged = true;
      const DefragPassResult pass = planner_.run_pass(state_, running_);
      merge_defrag(pass);
      if (pass.migrations > 0) continue;
    }
    break;
  }

  AdmitOutcome outcome;
  outcome.request = pending.request;
  outcome.attempts = pending.attempts;
  outcome.mapping_us = pending.mapping_us;

  if (pending.deadline_us > 0.0 && pending.mapping_us > pending.deadline_us) {
    outcome.status = AdmitStatus::DeadlineMiss;
    outcome.mapping = std::move(result);
    ++stats_.deadline_misses;
    stats_.latencies_us.push_back(pending.mapping_us);
    return outcome;
  }

  if (result.success) {
    core::commit_mapping(state_, *pending.app, result.mapping);
    const AppId id{next_app_++};
    running_.emplace(id, RunningApp{pending.app, result.mapping,
                                    result.energy_nj_per_symbol});
    outcome.status = AdmitStatus::Admitted;
    outcome.app_id = id;
    outcome.mapping = std::move(result);
    ++stats_.admitted;
    stats_.latencies_us.push_back(pending.mapping_us);
    return outcome;
  }

  if (policy_->on_failure(result, pending.attempts) == FailureAction::Retry) {
    waiting_.push_back(std::move(pending));
    return std::nullopt;
  }

  outcome.status = AdmitStatus::Rejected;
  outcome.mapping = std::move(result);
  ++stats_.rejected;
  stats_.latencies_us.push_back(pending.mapping_us);
  return outcome;
}

void RuntimeManager::process_release(AppId id, RequestId request) {
  const auto it = running_.find(id);
  if (it == running_.end()) {
    // A client bug (unknown id or double release) must not kill the event
    // stream of every other client: record it and keep draining.
    ++stats_.release_errors;
    release_errors_.push_back(
        {id,
         "release of unknown or already-released application id " +
             std::to_string(id.value()),
         request});
    return;
  }
  core::release_mapping(state_, *it->second.app, it->second.mapping);
  running_.erase(it);
  ++stats_.releases;
}

AdmitOutcome RuntimeManager::admit(const kpn::Application& app,
                                   double deadline_us) {
  const RequestId request =
      submit(std::make_shared<kpn::Application>(app), deadline_us);
  std::optional<AdmitOutcome> mine;
  // Other requests resolved by this drain go back into resolved_ so the
  // next drain() reports them.
  for (AdmitOutcome& outcome : drain()) {
    if (outcome.request == request) {
      mine = std::move(outcome);
    } else {
      resolved_.push_back(std::move(outcome));
    }
  }
  if (mine) return std::move(*mine);
  // Parked by a retry policy: report it as waiting.
  AdmitOutcome waiting;
  waiting.request = request;
  waiting.status = AdmitStatus::Waiting;
  return waiting;
}

void RuntimeManager::release(AppId id) {
  const RequestId request = submit_release(id);
  // Outcomes of requests this release wakes are kept for the next drain().
  for (AdmitOutcome& outcome : drain()) {
    resolved_.push_back(std::move(outcome));
  }
  // The synchronous caller is the one who passed the bad id: report THIS
  // call's failure as an exception (and take its record back out — it has
  // been reported). Errors of other queued releases the drain processed
  // stay recorded for drain_release_errors().
  const auto mine = std::find_if(
      release_errors_.begin(), release_errors_.end(),
      [&](const ReleaseError& e) { return e.request == request; });
  if (mine != release_errors_.end()) {
    const std::string message = mine->message;
    release_errors_.erase(mine);
    throw Error(message);
  }
}

std::vector<ReleaseError> RuntimeManager::drain_release_errors() {
  return std::exchange(release_errors_, {});
}

bool RuntimeManager::maybe_defrag_after_release() {
  if (planner_.options().policy != DefragPolicy::OnReleaseThreshold) {
    return false;
  }
  const double score =
      core::measure_fragmentation(state_, planner_.options().fragmentation)
          .score();
  if (!planner_.triggers_after_release(score)) return false;
  const DefragPassResult pass = planner_.run_pass(state_, running_);
  merge_defrag(pass);
  return pass.migrations > 0;
}

void RuntimeManager::merge_defrag(const DefragPassResult& pass) {
  ++stats_.defrag_passes;
  stats_.migrations += pass.migrations;
  stats_.migration_failures += pass.migration_failures;
  stats_.last_fragmentation_before = pass.fragmentation_before;
  stats_.last_fragmentation_after = pass.fragmentation_after;
  stats_.migration_cost_us += pass.migration_cost_us;
}

DefragPassResult RuntimeManager::defrag_now() {
  const DefragPassResult pass = planner_.run_pass(state_, running_);
  merge_defrag(pass);
  return pass;
}

verify::EngineStats RuntimeManager::verification_stats() const {
  const auto engine = mapper_->verification_engine();
  return engine ? engine->stats() : verify::EngineStats{};
}

std::vector<AdmitOutcome> RuntimeManager::reject_waiting() {
  std::vector<AdmitOutcome> resolved;
  for (Pending& pending : waiting_) {
    AdmitOutcome outcome;
    outcome.request = pending.request;
    outcome.status = AdmitStatus::Rejected;
    outcome.attempts = pending.attempts;
    outcome.mapping_us = pending.mapping_us;
    outcome.mapping.failure = "still waiting at end of scenario";
    ++stats_.rejected;
    stats_.latencies_us.push_back(pending.mapping_us);
    resolved.push_back(std::move(outcome));
  }
  waiting_.clear();
  return resolved;
}

double RuntimeManager::total_energy_nj_per_symbol() const {
  double total = 0.0;
  for (const auto& [id, run] : running_) total += run.energy_nj;
  return total;
}

std::vector<AppId> RuntimeManager::running_ids() const {
  std::vector<AppId> ids;
  ids.reserve(running_.size());
  for (const auto& [id, run] : running_) ids.push_back(id);
  return ids;
}

const core::Mapping& RuntimeManager::mapping_of(AppId id) const {
  const auto it = running_.find(id);
  require(it != running_.end(), "mapping_of unknown application id");
  return it->second.mapping;
}

std::shared_ptr<const kpn::Application> RuntimeManager::app_of(
    AppId id) const {
  const auto it = running_.find(id);
  require(it != running_.end(), "app_of unknown application id");
  return it->second.app;
}

}  // namespace rtsm::runtime
