#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "audit/mutex.hpp"
#include "util/error.hpp"

namespace rtsm::runtime {

/// Bounded multi-producer multi-consumer queue feeding the admission worker
/// pool.
///
/// Producers block in push() while the queue is full (back-pressure towards
/// arrival sources); consumers block in pop_batch() while it is empty.
/// pop_batch() drains up to @p max items per wake, which is what turns an
/// arrival burst into one batch the manager can reorder by priority before
/// admitting greedily. close() releases all waiters: producers fail fast,
/// consumers drain the remaining items and then see end-of-stream.
///
/// The queue mutex is an audit::Mutex at rank kQueue — a leaf: nothing is
/// ever acquired while holding it. The wait loops go through
/// condition_variable_any over audit::UniqueLock so the lockdep hooks see
/// every unlock/relock of a parked waiter; those functions are
/// RTSM_NO_THREAD_SAFETY_ANALYSIS because clang cannot model run-time
/// lock ownership through std::unique_lock.
template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    require(capacity > 0, "BoundedQueue needs a nonzero capacity");
  }

  /// Blocks while full. Returns false when the queue is closed — @p item
  /// is NOT moved from in that case, so the caller can still resolve it.
  bool push(T&& item) RTSM_NO_THREAD_SAFETY_ANALYSIS {
    audit::UniqueLock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false (item untouched) when full or closed.
  bool try_push(T&& item) {
    {
      const audit::LockGuard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until at least one item is available, then drains up to @p max
  /// items. Returns an empty vector only when the queue is closed and
  /// empty (end of stream).
  std::vector<T> pop_batch(std::size_t max) RTSM_NO_THREAD_SAFETY_ANALYSIS {
    audit::UniqueLock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return drain_locked(max, lock);
  }

  /// Drains up to @p max items without blocking; empty when none queued.
  std::vector<T> try_pop_batch(std::size_t max)
      RTSM_NO_THREAD_SAFETY_ANALYSIS {
    audit::UniqueLock lock(mutex_);
    return drain_locked(max, lock);
  }

  /// Wakes all waiters; push() fails from now on, pops drain the rest.
  void close() {
    {
      const audit::LockGuard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const audit::LockGuard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const audit::LockGuard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  /// Pops up to @p max items and, when it took any, unlocks @p lock to
  /// notify producers — which is why it takes the unique_lock, not the
  /// mutex (and why the callers are opted out of clang's analysis).
  std::vector<T> drain_locked(std::size_t max, audit::UniqueLock& lock)
      RTSM_NO_THREAD_SAFETY_ANALYSIS {
    std::vector<T> batch;
    const std::size_t take = std::min(max, items_.size());
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (take > 0) {
      lock.unlock();
      not_full_.notify_all();
    }
    return batch;
  }

  mutable audit::Mutex mutex_{audit::LockRank::kQueue, "queue"};
  std::condition_variable_any not_empty_;
  std::condition_variable_any not_full_;
  std::deque<T> items_ RTSM_GUARDED_BY(mutex_);
  std::size_t capacity_;
  bool closed_ RTSM_GUARDED_BY(mutex_) = false;
};

}  // namespace rtsm::runtime
