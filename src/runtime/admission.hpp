#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "core/mapper.hpp"
#include "kpn/application.hpp"

namespace rtsm::runtime {

/// Priority class of an admission request (and of the running application
/// it becomes). @p priority orders drained bursts — larger is admitted
/// first — and gates preemption: when a request is about to be rejected,
/// it may evict running applications of *strictly lower* priority that
/// declared themselves @p preemptible. The default class (priority 0,
/// preemptible) never evicts anything and never outranks anyone, so the
/// pre-class behaviour is unchanged.
struct RequestClass {
  std::int32_t priority = 0;
  bool preemptible = true;
};

/// Tuning of the preemption path both managers share. Preemption only ever
/// triggers after the mapper (and, when configured, a defragmentation
/// pass) failed to place a request the ordinary way.
struct PreemptionOptions {
  /// Master switch. Even when enabled, only an arrival whose class
  /// outranks a running preemptible application can evict.
  bool enabled = true;

  /// At most this many victims are evicted for one granted arrival.
  std::uint32_t max_victims = 4;
};

/// Verdict of an admission policy after a failed mapping attempt.
enum class FailureAction {
  /// Give up on the request immediately.
  Reject,
  /// Park the request; the manager retries it after resources are next
  /// released.
  Retry,
};

/// Admission-control strategy of the RuntimeManager: decides what happens
/// to a request the mapper could not place against the current residual
/// resources.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called after mapping attempt @p attempt (1-based) of a request failed
  /// with @p result; the failed MappingResult carries the mapper's feedback
  /// (failure reason, refinement trace) for policies that want it.
  [[nodiscard]] virtual FailureAction on_failure(
      const core::MappingResult& result, std::uint32_t attempt) const = 0;
};

/// First-fit admission: one mapping attempt against the current residual
/// state; failure rejects the application outright (the paper's base
/// scenario — an application that does not fit now is refused).
class FirstFitAdmission final : public AdmissionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "first-fit"; }

  [[nodiscard]] FailureAction on_failure(const core::MappingResult&,
                                         std::uint32_t) const override {
    return FailureAction::Reject;
  }
};

/// Retry-with-feedback admission: a failed request is parked and retried —
/// against the then-current residual state — whenever a release returns
/// resources, up to @p max_attempts total mapping attempts. Models admission
/// control that queues arrivals instead of dropping them.
class RetryAdmission final : public AdmissionPolicy {
 public:
  explicit RetryAdmission(std::uint32_t max_attempts = 4)
      : max_attempts_(max_attempts) {}

  [[nodiscard]] std::string name() const override { return "retry"; }

  [[nodiscard]] FailureAction on_failure(const core::MappingResult&,
                                         std::uint32_t attempt) const override {
    return attempt < max_attempts_ ? FailureAction::Retry
                                   : FailureAction::Reject;
  }

 private:
  std::uint32_t max_attempts_;
};

/// Orders the arrivals of one drained burst before they are admitted
/// greedily (ConcurrentRuntimeManager batching). Higher priority is
/// admitted first; ties fall back to arrival (request id) order, so the
/// default policy degenerates to FIFO.
class PriorityPolicy {
 public:
  virtual ~PriorityPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Priority of an arrival; larger = earlier in the batch. @p deadline_us
  /// is the request's mapper budget (0 = none).
  [[nodiscard]] virtual double priority(const kpn::Application& app,
                                        double deadline_us) const = 0;
};

/// All arrivals equal: batches are admitted in arrival order.
class FifoPriority final : public PriorityPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "fifo"; }

  [[nodiscard]] double priority(const kpn::Application&,
                                double) const override {
    return 0.0;
  }
};

/// Earliest-deadline-first: tighter mapper budgets go first; requests
/// without a deadline go last (in arrival order).
class DeadlinePriority final : public PriorityPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "deadline"; }

  [[nodiscard]] double priority(const kpn::Application&,
                                double deadline_us) const override {
    return deadline_us > 0.0 ? -deadline_us
                             : -std::numeric_limits<double>::infinity();
  }
};

/// Smallest-application-first: admitting small applications before large
/// ones maximises the admitted count of a burst (greedy knapsack order).
class SmallestFirstPriority final : public PriorityPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "smallest-first"; }

  [[nodiscard]] double priority(const kpn::Application& app,
                                double) const override {
    return -static_cast<double>(app.process_count());
  }
};

}  // namespace rtsm::runtime
