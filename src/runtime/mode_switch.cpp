#include "runtime/mode_switch.hpp"

#include <chrono>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/clock.hpp"
#include "util/error.hpp"

namespace rtsm::runtime {

namespace {

/// Old-graph process for every name-matched process of the new graph,
/// indexed by the new graph's process id value (invalid = unmatched).
/// Duplicate names (parallel workers) match by ordinal among their
/// duplicates, in id order on both sides, so two processes of the new
/// graph never pin to the same old booking.
std::vector<ProcessId> match_by_name(const kpn::Application& old_app,
                                     const kpn::Application& next) {
  auto ordinal_key = [](const std::string& name,
                        std::unordered_map<std::string, int>& ordinals) {
    return name + '\x1f' + std::to_string(ordinals[name]++);
  };
  std::unordered_map<std::string, ProcessId> old_by_name;
  std::unordered_map<std::string, int> old_ordinals;
  for (const ProcessId pid : old_app.process_ids()) {
    old_by_name.emplace(ordinal_key(old_app.process(pid).name, old_ordinals),
                        pid);
  }
  std::vector<ProcessId> matched(next.process_count());
  std::unordered_map<std::string, int> next_ordinals;
  for (const ProcessId pid : next.process_ids()) {
    const auto it = old_by_name.find(
        ordinal_key(next.process(pid).name, next_ordinals));
    if (it != old_by_name.end()) matched[pid.value()] = it->second;
  }
  return matched;
}

/// Copy of @p next whose name-matched processes are pinned — as fixtures —
/// to the tile currently hosting their old-graph counterpart. Processes
/// and channels are re-added in id order, so the copy shares @p next's id
/// space and a mapping planned for it is valid for @p next.
kpn::Application pin_matched(const kpn::Application& next,
                             const std::vector<ProcessId>& matched,
                             const core::Mapping& old_mapping,
                             const arch::Platform& platform) {
  kpn::Application pinned(next.name(), next.qos());
  for (const ProcessId pid : next.process_ids()) {
    const kpn::Process& p = next.process(pid);
    const ProcessId old_pid = matched[pid.value()];
    if (old_pid.valid() && old_mapping.is_assigned(old_pid)) {
      pinned.add_fixture(p.name,
                         platform.tile(old_mapping.tile_of(old_pid)).name);
    } else if (p.is_fixture()) {
      pinned.add_fixture(p.name, *p.pinned_tile);
    } else {
      pinned.add_process(p.name);
    }
  }
  for (const ChannelId cid : next.channel_ids()) {
    const kpn::Channel& c = next.channel(cid);
    pinned.connect(c.src, c.dst, c.tokens_per_symbol, c.token_bytes);
  }
  for (const ProcessId pid : next.process_ids()) {
    for (const kpn::Implementation& im : next.process(pid).implementations) {
      pinned.add_implementation(pid, im);
    }
  }
  return pinned;
}

/// The old booking expressed in the new graph's id space, for the
/// migration cost model only (never applied). Possible only when every
/// process and channel of @p next has an old counterpart (match by
/// process name / channel endpoint names, ordinal among parallels) and
/// the old implementation indices are valid for @p next.
std::optional<core::Mapping> translate_old_mapping(
    const kpn::Application& old_app, const kpn::Application& next,
    const std::vector<ProcessId>& matched, const core::Mapping& old) {
  core::Mapping t(next.process_count(), next.channel_count());
  for (const ProcessId pid : next.process_ids()) {
    const ProcessId old_pid = matched[pid.value()];
    if (!old_pid.valid() || !old.is_assigned(old_pid)) return std::nullopt;
    const ImplementationId impl = old.impl_of(old_pid);
    if (impl.value() >= next.process(pid).implementations.size()) {
      return std::nullopt;
    }
    t.assign(pid, impl, old.tile_of(old_pid));
  }

  auto endpoint_key = [](const kpn::Application& app, const kpn::Channel& c,
                         std::unordered_map<std::string, int>& ordinals) {
    std::string key = app.process(c.src).name + '\x1f' +
                      app.process(c.dst).name;
    key += '\x1f' + std::to_string(ordinals[key]++);
    return key;
  };
  std::unordered_map<std::string, ChannelId> old_channels;
  std::unordered_map<std::string, int> old_ordinals;
  for (const ChannelId cid : old_app.channel_ids()) {
    old_channels.emplace(
        endpoint_key(old_app, old_app.channel(cid), old_ordinals), cid);
  }
  std::unordered_map<std::string, int> next_ordinals;
  for (const ChannelId cid : next.channel_ids()) {
    const auto it = old_channels.find(
        endpoint_key(next, next.channel(cid), next_ordinals));
    if (it == old_channels.end()) return std::nullopt;
    const ChannelId old_cid = it->second;
    if (const auto& path = old.path(old_cid)) t.set_path(cid, *path);
    if (const auto tokens = old.buffer_tokens(old_cid)) {
      t.set_buffer_tokens(cid, *tokens);
    }
  }
  return t;
}

}  // namespace

SwitchOutcome switch_mode_in_place(core::ResourceState& state,
                                   std::map<AppId, RunningApp>& running,
                                   AppId id,
                                   std::shared_ptr<const kpn::Application> next,
                                   const core::Mapper& mapper,
                                   const DefragPlanner* planner,
                                   const core::MigrationCostModel& cost,
                                   std::optional<DefragPassResult>* defrag_out,
                                   const ModeSwitchOptions& options) {
  require(next != nullptr, "switch_mode without a target application");
  const auto start = std::chrono::steady_clock::now();
  auto budget_blown = [&] {
    return options.deadline_us > 0.0 &&
           elapsed_us(start) > options.deadline_us;
  };
  SwitchOutcome out;
  out.app_id = id;

  const auto it = running.find(id);
  if (it == running.end()) {
    out.status = SwitchStatus::UnknownId;
    out.message = "switch_mode of unknown or already-released application "
                  "id " +
                  std::to_string(id.value());
    return out;
  }
  RunningApp& run = it->second;

  const std::vector<ProcessId> matched = match_by_name(*run.app, *next);
  std::size_t shared = 0;
  for (const ProcessId old_pid : matched) {
    if (old_pid.valid()) ++shared;
  }
  out.structural_total = shared == 0;

  // Phase 1 — plan on a scratch snapshot that excludes the instance's own
  // booking (the capacity the switch itself vacates).
  auto scratch_without_self = [&] {
    core::ResourceState scratch = state;
    core::release_mapping(scratch, *run.app, run.mapping);
    return scratch;
  };

  core::MappingResult plan;
  bool pinned_plan = false;
  if (!out.structural_total) {
    const kpn::Application pinned =
        pin_matched(*next, matched, run.mapping, state.platform());
    plan = mapper.map(pinned, scratch_without_self());
    pinned_plan = plan.success;
  }
  if (!plan.success && !budget_blown()) {
    plan = mapper.map(*next, scratch_without_self());
  }
  if (!plan.success && !budget_blown() && planner != nullptr &&
      options.defrag_on_misfit) {
    // Compact by migrating running applications, then retry once. The
    // pass may also relocate this instance; the retry and the
    // measurement below read run.mapping fresh, so both stay correct.
    const DefragPassResult pass = planner->run_pass(state, running);
    if (defrag_out != nullptr) defrag_out->emplace(pass);
    if (pass.migrations > 0) {
      plan = mapper.map(*next, scratch_without_self());
    }
  }
  // The deadline gate sits before the commit, never inside it: a switch
  // that planned in budget commits even if the commit itself straddles
  // the boundary, so the live state is never left half-switched.
  if (budget_blown()) {
    out.status = SwitchStatus::DeadlineMiss;
    out.message = "switch deadline of " +
                  std::to_string(options.deadline_us) +
                  " us blown while planning; old mode kept";
    return out;
  }
  if (!plan.success) {
    out.status = SwitchStatus::RolledBack;
    out.message = plan.failure.empty()
                      ? "no feasible mapping for the new mode"
                      : plan.failure;
    return out;
  }

  // Phase 2 — two-phase commit: vacate the old mode, re-check, book the
  // new one. The misfit path re-commits the old booking, which fits by
  // construction (it was just released), restoring the state exactly.
  core::release_mapping(state, *run.app, run.mapping);
  if (!core::mapping_fits(state, *next, plan.mapping)) {
    core::commit_mapping(state, *run.app, run.mapping);
    out.status = SwitchStatus::RolledBack;
    out.message = "new mode stopped fitting at commit; old mode restored";
    return out;
  }
  core::commit_mapping(state, *next, plan.mapping);

  // Measurement: how much of the old placement survived, and what the
  // state transfer of the moved processes costs. When the whole booking
  // translates into the new id space the exact MappingDelta/cost-model
  // path prices it; otherwise only the pause overhead is charged (the
  // unmatched remainder is new work, not a migration).
  for (const ProcessId pid : next->process_ids()) {
    const ProcessId old_pid = matched[pid.value()];
    if (!old_pid.valid() || !run.mapping.is_assigned(old_pid)) continue;
    const bool same_tile =
        run.mapping.tile_of(old_pid) == plan.mapping.tile_of(pid);
    if (same_tile) {
      ++out.pinned;
    } else {
      ++out.moved;
    }
  }
  const std::optional<core::Mapping> before =
      translate_old_mapping(*run.app, *next, matched, run.mapping);
  if (before.has_value() && before->all_routed() &&
      plan.mapping.all_assigned() && plan.mapping.all_routed()) {
    const std::vector<core::MappingDelta> deltas =
        core::diff_mappings(*next, *before, plan.mapping);
    std::uint32_t moved = 0;
    for (const core::MappingDelta& d : deltas) {
      if (d.kind == core::MappingDelta::Kind::MoveProcess) ++moved;
    }
    out.moved = moved;
    out.pinned =
        static_cast<std::uint32_t>(next->process_count()) - moved;
    out.migration_cost_us =
        cost.migration_us(*next, state.platform(), *before, plan.mapping);
  } else {
    out.migration_cost_us = cost.pause_us * out.moved;
  }

  run.app = std::move(next);
  run.mapping = std::move(plan.mapping);
  run.energy_nj = plan.energy_nj_per_symbol;
  out.status = pinned_plan ? SwitchStatus::InPlace : SwitchStatus::Replanned;
  return out;
}

}  // namespace rtsm::runtime
