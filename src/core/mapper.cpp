#include "core/mapper.hpp"

#include "util/error.hpp"

namespace rtsm::core {

MappingResult Mapper::map(const kpn::Application& app,
                          const arch::Platform& platform) const {
  return map(app, ResourceState(platform));
}

void commit_mapping(ResourceState& state, const kpn::Application& app,
                    const Mapping& mapping) {
  const arch::Platform& platform = state.platform();
  for (const ProcessId pid : app.process_ids()) {
    const TileId tile = mapping.tile_of(pid);
    const ImplementationId impl = mapping.impl_of(pid);
    const double util = claimed_utilization(
        impl_utilization(app, pid, impl, platform.tile_clock_hz(tile)));
    state.reserve_tile(tile, util, app.implementation(pid, impl).memory_bytes);
  }
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    const auto& path = mapping.path(cid);
    require(path.has_value(), "commit of an unrouted mapping");
    state.links().reserve_path(*path, app.tokens_per_second(cid));
    if (const auto tokens = mapping.buffer_tokens(cid)) {
      state.reserve_tile(mapping.tile_of(c.dst), 0.0,
                         static_cast<std::uint64_t>(*tokens) * c.token_bytes,
                         0);
    }
  }
}

void release_mapping(ResourceState& state, const kpn::Application& app,
                     const Mapping& mapping) {
  const arch::Platform& platform = state.platform();
  for (const ProcessId pid : app.process_ids()) {
    const TileId tile = mapping.tile_of(pid);
    const ImplementationId impl = mapping.impl_of(pid);
    const double util = claimed_utilization(
        impl_utilization(app, pid, impl, platform.tile_clock_hz(tile)));
    state.release_tile(tile, util, app.implementation(pid, impl).memory_bytes);
  }
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    const auto& path = mapping.path(cid);
    if (!path) continue;
    state.links().release_path(*path, app.tokens_per_second(cid));
    if (const auto tokens = mapping.buffer_tokens(cid)) {
      state.release_tile(mapping.tile_of(c.dst), 0.0,
                         static_cast<std::uint64_t>(*tokens) * c.token_bytes,
                         0);
    }
  }
}

namespace {

// mapping_fits() probes with small flat accumulators over the handful of
// tiles and links one mapping touches instead of copying the whole
// platform-sized state: the check is O(processes + channels x path length),
// independent of the platform. Linear scans beat hashing at these sizes
// (tens of entries). The accumulators replicate the float association order
// of sequential reserve calls exactly — seed with the base value, compare
// `current + extra` against the same bound, then `current += extra` — so
// the verdict is bit-identical to the old copy-based probe and
// mapping_fits() still implies commit_mapping() succeeds.

struct TileProbe {
  std::uint32_t tile;
  double util;
  std::uint64_t mem;
  std::uint32_t procs;
};

struct LinkProbe {
  std::uint32_t link;
  double reserved;
};

TileProbe& probe_tile(std::vector<TileProbe>& tiles, const ResourceState& base,
                      TileId tile) {
  for (TileProbe& t : tiles) {
    if (t.tile == tile.value()) return t;
  }
  tiles.push_back({tile.value(), base.utilization(tile),
                   base.memory_used(tile), base.processes_hosted(tile)});
  return tiles.back();
}

LinkProbe& probe_link(std::vector<LinkProbe>& links, const ResourceState& base,
                      LinkId link) {
  for (LinkProbe& l : links) {
    if (l.link == link.value()) return l;
  }
  links.push_back({link.value(), base.links().reserved(link)});
  return links.back();
}

/// Mirrors ResourceState::reserve_tile() against the accumulator: false
/// exactly when the real reservation would fail.
bool probe_reserve_tile(std::vector<TileProbe>& tiles,
                        const ResourceState& base, TileId tile, double util,
                        std::uint64_t mem, std::uint32_t procs) {
  if (!(util >= 0.0)) return false;  // commit's require(); also rejects NaN
  TileProbe& t = probe_tile(tiles, base, tile);
  const arch::Tile& spec = base.platform().tile(tile);
  if (t.util + util > 1.0 + ResourceState::kUtilSlack) return false;
  if (t.procs + procs > spec.process_slots) return false;
  const std::uint64_t free =
      t.mem >= spec.memory_bytes ? 0 : spec.memory_bytes - t.mem;
  if (mem > free) return false;
  t.util += util;
  t.mem += mem;
  t.procs += procs;
  return true;
}

/// Mirrors LinkLoad::reserve_path(): validate every link against the state
/// at path start, then reserve sequentially (the second pass re-checks, so
/// a path crossing one link twice is accounted like the real reservation).
bool probe_reserve_path(std::vector<LinkProbe>& links,
                        const ResourceState& base, const noc::Path& path,
                        double demand) {
  if (!(demand >= 0.0)) return false;
  const arch::Platform& platform = base.platform();
  for (const LinkId link : path.links) {
    const LinkProbe& l = probe_link(links, base, link);
    const double cap = platform.link(link).capacity_tokens_per_s;
    if (l.reserved + demand > cap * (1.0 + noc::LinkLoad::kSlack)) {
      return false;
    }
  }
  for (const LinkId link : path.links) {
    LinkProbe& l = probe_link(links, base, link);
    const double cap = platform.link(link).capacity_tokens_per_s;
    if (l.reserved + demand > cap * (1.0 + noc::LinkLoad::kSlack)) {
      return false;
    }
    l.reserved += demand;
  }
  return true;
}

}  // namespace

bool mapping_fits(const ResourceState& base, const kpn::Application& app,
                  const Mapping& mapping) {
  if (!mapping.all_assigned() || !mapping.all_routed()) return false;

  const arch::Platform& platform = base.platform();
  std::vector<TileProbe> tiles;
  std::vector<LinkProbe> links;
  for (const ProcessId pid : app.process_ids()) {
    const TileId tile = mapping.tile_of(pid);
    const ImplementationId impl = mapping.impl_of(pid);
    const double util = claimed_utilization(
        impl_utilization(app, pid, impl, platform.tile_clock_hz(tile)));
    const std::uint64_t mem = app.implementation(pid, impl).memory_bytes;
    if (!probe_reserve_tile(tiles, base, tile, util, mem, 1)) return false;
  }
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    const auto& path = mapping.path(cid);
    const double demand = app.tokens_per_second(cid);
    if (!probe_reserve_path(links, base, *path, demand)) return false;
    if (const auto tokens = mapping.buffer_tokens(cid)) {
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(*tokens) * c.token_bytes;
      const TileId consumer = mapping.tile_of(c.dst);
      if (!probe_reserve_tile(tiles, base, consumer, 0.0, bytes, 0)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace rtsm::core
