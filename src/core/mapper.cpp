#include "core/mapper.hpp"

#include "util/error.hpp"

namespace rtsm::core {

MappingResult Mapper::map(const kpn::Application& app,
                          const arch::Platform& platform) const {
  return map(app, ResourceState(platform));
}

void commit_mapping(ResourceState& state, const kpn::Application& app,
                    const Mapping& mapping) {
  const arch::Platform& platform = state.platform();
  for (const ProcessId pid : app.process_ids()) {
    const TileId tile = mapping.tile_of(pid);
    const ImplementationId impl = mapping.impl_of(pid);
    const double util = claimed_utilization(
        impl_utilization(app, pid, impl, platform.tile_clock_hz(tile)));
    state.reserve_tile(tile, util, app.implementation(pid, impl).memory_bytes);
  }
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    const auto& path = mapping.path(cid);
    require(path.has_value(), "commit of an unrouted mapping");
    state.links().reserve_path(*path, app.tokens_per_second(cid));
    if (const auto tokens = mapping.buffer_tokens(cid)) {
      state.reserve_tile(mapping.tile_of(c.dst), 0.0,
                         static_cast<std::uint64_t>(*tokens) * c.token_bytes,
                         0);
    }
  }
}

void release_mapping(ResourceState& state, const kpn::Application& app,
                     const Mapping& mapping) {
  const arch::Platform& platform = state.platform();
  for (const ProcessId pid : app.process_ids()) {
    const TileId tile = mapping.tile_of(pid);
    const ImplementationId impl = mapping.impl_of(pid);
    const double util = claimed_utilization(
        impl_utilization(app, pid, impl, platform.tile_clock_hz(tile)));
    state.release_tile(tile, util, app.implementation(pid, impl).memory_bytes);
  }
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    const auto& path = mapping.path(cid);
    if (!path) continue;
    state.links().release_path(*path, app.tokens_per_second(cid));
    if (const auto tokens = mapping.buffer_tokens(cid)) {
      state.release_tile(mapping.tile_of(c.dst), 0.0,
                         static_cast<std::uint64_t>(*tokens) * c.token_bytes,
                         0);
    }
  }
}

bool mapping_fits(const ResourceState& base, const kpn::Application& app,
                  const Mapping& mapping) {
  if (!mapping.all_assigned() || !mapping.all_routed()) return false;

  // Probe on a private copy so accumulation across this application's own
  // processes (several on one tile, several channels per link) is counted.
  ResourceState probe = base;
  const arch::Platform& platform = base.platform();
  for (const ProcessId pid : app.process_ids()) {
    const TileId tile = mapping.tile_of(pid);
    const ImplementationId impl = mapping.impl_of(pid);
    const double util = claimed_utilization(
        impl_utilization(app, pid, impl, platform.tile_clock_hz(tile)));
    const std::uint64_t mem = app.implementation(pid, impl).memory_bytes;
    if (!probe.tile_fits(tile, util, mem)) return false;
    probe.reserve_tile(tile, util, mem);
  }
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    const auto& path = mapping.path(cid);
    const double demand = app.tokens_per_second(cid);
    for (const LinkId link : path->links) {
      if (!probe.links().fits(link, demand)) return false;
    }
    probe.links().reserve_path(*path, demand);
    if (const auto tokens = mapping.buffer_tokens(cid)) {
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(*tokens) * c.token_bytes;
      const TileId consumer = mapping.tile_of(c.dst);
      if (!probe.tile_fits(consumer, 0.0, bytes, 0)) return false;
      probe.reserve_tile(consumer, 0.0, bytes, 0);
    }
  }
  return true;
}

}  // namespace rtsm::core
