#include "core/csdf_expansion.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rtsm::core {

ExpandedGraph expand_mapping(const kpn::Application& app,
                             const arch::Platform& platform,
                             const Mapping& mapping) {
  require(mapping.all_assigned() && mapping.all_routed(),
          "CSDF expansion requires a placed and routed mapping");

  ExpandedGraph out;
  out.process_actor.resize(app.process_count());
  out.hop_actors.resize(app.channel_count());
  out.consumer_edge.resize(app.channel_count());

  // Process actors: WCET phases converted to wall time at the tile's clock.
  for (const ProcessId pid : app.process_ids()) {
    const kpn::Implementation& im =
        app.implementation(pid, mapping.impl_of(pid));
    const TileId tile = mapping.tile_of(pid);
    std::vector<std::uint64_t> wcet_ps;
    wcet_ps.reserve(im.wcet_cc.size());
    for (const std::uint32_t cc : im.wcet_cc) {
      wcet_ps.push_back(platform.cycles_to_ps(tile, cc));
    }
    out.process_actor[pid.value()] =
        out.graph.add_actor(app.process(pid).name, std::move(wcet_ps));
  }

  const std::uint64_t hop_wcet_ps = platform.noc().router_latency_ps();
  const std::uint32_t hop_buffer = platform.noc().hop_buffer_tokens;

  auto output_rates = [&](ProcessId pid,
                          ChannelId cid) -> const kpn::PhaseRates& {
    const kpn::Implementation& im =
        app.implementation(pid, mapping.impl_of(pid));
    for (const kpn::PortSpec& port : im.outputs) {
      if (port.channel == cid) return port.rates;
    }
    throw Error("implementation '" + im.name + "' lacks output port for '" +
                app.channel(cid).name + "'");
  };
  auto input_rates = [&](ProcessId pid,
                         ChannelId cid) -> const kpn::PhaseRates& {
    const kpn::Implementation& im =
        app.implementation(pid, mapping.impl_of(pid));
    for (const kpn::PortSpec& port : im.inputs) {
      if (port.channel == cid) return port.rates;
    }
    throw Error("implementation '" + im.name + "' lacks input port for '" +
                app.channel(cid).name + "'");
  };

  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    const noc::Path& path = *mapping.path(cid);
    const ActorId src_actor = out.process_actor[c.src.value()];
    const ActorId dst_actor = out.process_actor[c.dst.value()];
    const kpn::PhaseRates& prod = output_rates(c.src, cid);
    const kpn::PhaseRates& cons = input_rates(c.dst, cid);

    const std::vector<RouterId> routers = path.routers(platform);
    if (routers.empty()) {
      // Intra-tile channel: one direct FIFO, sized by step 4.
      csdf::Edge e;
      e.name = c.name;
      e.src = src_actor;
      e.dst = dst_actor;
      e.production = prod;
      e.consumption = cons;
      out.consumer_edge[cid.value()] = out.graph.add_edge(std::move(e));
      continue;
    }

    // One forwarding actor per traversed router: consume 1, produce 1,
    // 4 NoC cycles per token (the paper's R actors in Figure 3).
    std::vector<ActorId>& hops = out.hop_actors[cid.value()];
    for (std::size_t h = 0; h < routers.size(); ++h) {
      hops.push_back(out.graph.add_actor(
          "R" + std::to_string(routers[h].value()) + "[" + c.name + "]",
          {hop_wcet_ps}));
    }

    auto connect = [&](ActorId from, ActorId to, std::vector<std::uint32_t> p,
                       std::vector<std::uint32_t> q,
                       std::optional<std::uint32_t> capacity,
                       const std::string& name) {
      csdf::Edge e;
      e.name = name;
      e.src = from;
      e.dst = to;
      e.production = std::move(p);
      e.consumption = std::move(q);
      e.capacity = capacity;
      return out.graph.add_edge(std::move(e));
    };

    // The producer-side NI buffer must at least hold one phase's burst.
    std::uint32_t burst = 0;
    for (const std::uint32_t r : prod) burst = std::max(burst, r);
    connect(src_actor, hops.front(), prod, {1},
            std::max(hop_buffer, burst), c.name + "/inject");
    for (std::size_t h = 0; h + 1 < hops.size(); ++h) {
      connect(hops[h], hops[h + 1], {1}, {1}, hop_buffer,
              c.name + "/hop" + std::to_string(h));
    }
    out.consumer_edge[cid.value()] =
        connect(hops.back(), dst_actor, {1}, cons, std::nullopt,
                c.name + "/eject");
  }
  return out;
}

}  // namespace rtsm::core
