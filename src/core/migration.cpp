#include "core/migration.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace rtsm::core {

namespace {

bool paths_equal(const std::optional<noc::Path>& a,
                 const std::optional<noc::Path>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return a->src_tile == b->src_tile && a->dst_tile == b->dst_tile &&
         a->links == b->links;
}

/// Bytes of the sized input buffers of @p process as booked right now —
/// they live on the consumer's (= this process's) tile and move with it.
std::uint64_t in_buffer_bytes(const kpn::Application& app,
                              const Mapping& mapping, ProcessId process) {
  std::uint64_t bytes = 0;
  for (const ChannelId cid : app.in_channels(process)) {
    if (const auto tokens = mapping.buffer_tokens(cid)) {
      bytes += static_cast<std::uint64_t>(*tokens) *
               app.channel(cid).token_bytes;
    }
  }
  return bytes;
}

bool apply_move(ResourceState& state, const kpn::Application& app,
                Mapping& mapping, const MappingDelta& d) {
  const arch::Platform& platform = state.platform();
  const double util_before = claimed_utilization(impl_utilization(
      app, d.process, d.impl_before, platform.tile_clock_hz(d.tile_before)));
  const double util_after = claimed_utilization(impl_utilization(
      app, d.process, d.impl_after, platform.tile_clock_hz(d.tile_after)));
  const std::uint64_t mem_before =
      app.implementation(d.process, d.impl_before).memory_bytes;
  const std::uint64_t mem_after =
      app.implementation(d.process, d.impl_after).memory_bytes;
  const std::uint64_t buffers = in_buffer_bytes(app, mapping, d.process);

  state.release_tile(d.tile_before, util_before, mem_before + buffers, 1);
  if (!state.tile_fits(d.tile_after, util_after, mem_after + buffers, 1)) {
    state.reserve_tile(d.tile_before, util_before, mem_before + buffers, 1);
    return false;
  }
  state.reserve_tile(d.tile_after, util_after, mem_after + buffers, 1);
  mapping.assign(d.process, d.impl_after, d.tile_after);
  return true;
}

bool apply_reroute(ResourceState& state, const kpn::Application& app,
                   Mapping& mapping, const MappingDelta& d) {
  const kpn::Channel& c = app.channel(d.channel);
  const double demand = app.tokens_per_second(d.channel);
  const TileId consumer = mapping.tile_of(c.dst);
  const std::uint64_t bytes_before =
      d.buffer_before
          ? static_cast<std::uint64_t>(*d.buffer_before) * c.token_bytes
          : 0;
  const std::uint64_t bytes_after =
      d.buffer_after
          ? static_cast<std::uint64_t>(*d.buffer_after) * c.token_bytes
          : 0;

  if (d.path_before) state.links().release_path(*d.path_before, demand);
  state.release_tile(consumer, 0.0, bytes_before, 0);

  bool fits = state.tile_fits(consumer, 0.0, bytes_after, 0);
  if (fits && d.path_after) {
    for (const LinkId link : d.path_after->links) {
      if (!state.links().fits(link, demand)) {
        fits = false;
        break;
      }
    }
  }
  if (!fits) {
    state.reserve_tile(consumer, 0.0, bytes_before, 0);
    if (d.path_before) state.links().reserve_path(*d.path_before, demand);
    return false;
  }

  if (d.path_after) {
    state.links().reserve_path(*d.path_after, demand);
    mapping.set_path(d.channel, *d.path_after);
  }
  state.reserve_tile(consumer, 0.0, bytes_after, 0);
  if (d.buffer_after) mapping.set_buffer_tokens(d.channel, *d.buffer_after);
  return true;
}

}  // namespace

MappingDelta MappingDelta::inverse() const {
  MappingDelta inv = *this;
  std::swap(inv.impl_before, inv.impl_after);
  std::swap(inv.tile_before, inv.tile_after);
  std::swap(inv.path_before, inv.path_after);
  std::swap(inv.buffer_before, inv.buffer_after);
  return inv;
}

std::vector<MappingDelta> diff_mappings(const kpn::Application& app,
                                        const Mapping& before,
                                        const Mapping& after) {
  require(before.all_assigned() && before.all_routed() &&
              after.all_assigned() && after.all_routed(),
          "diff_mappings needs two complete mappings");
  std::vector<MappingDelta> deltas;

  for (const ProcessId pid : app.process_ids()) {
    if (before.tile_of(pid) == after.tile_of(pid) &&
        before.impl_of(pid) == after.impl_of(pid)) {
      continue;
    }
    MappingDelta d;
    d.kind = MappingDelta::Kind::MoveProcess;
    d.process = pid;
    d.impl_before = before.impl_of(pid);
    d.impl_after = after.impl_of(pid);
    d.tile_before = before.tile_of(pid);
    d.tile_after = after.tile_of(pid);
    deltas.push_back(std::move(d));
  }

  for (const ChannelId cid : app.channel_ids()) {
    const bool same_path = paths_equal(before.path(cid), after.path(cid));
    const bool same_buffer =
        before.buffer_tokens(cid) == after.buffer_tokens(cid);
    if (same_path && same_buffer) continue;
    MappingDelta d;
    d.kind = MappingDelta::Kind::RerouteChannel;
    d.channel = cid;
    d.path_before = before.path(cid);
    d.path_after = after.path(cid);
    d.buffer_before = before.buffer_tokens(cid);
    d.buffer_after = after.buffer_tokens(cid);
    deltas.push_back(std::move(d));
  }
  return deltas;
}

bool apply_delta(ResourceState& state, const kpn::Application& app,
                 Mapping& mapping, const MappingDelta& delta) {
  switch (delta.kind) {
    case MappingDelta::Kind::MoveProcess:
      return apply_move(state, app, mapping, delta);
    case MappingDelta::Kind::RerouteChannel:
      return apply_reroute(state, app, mapping, delta);
  }
  return false;
}

void rollback_delta(ResourceState& state, const kpn::Application& app,
                    Mapping& mapping, const MappingDelta& delta) {
  require(apply_delta(state, app, mapping, delta.inverse()),
          "migration rollback no longer fits — deltas must be rolled back "
          "in reverse application order");
}

double MigrationCostModel::migration_us(const kpn::Application& app,
                                        const arch::Platform& platform,
                                        const Mapping& before,
                                        const Mapping& after) const {
  const double hop_us =
      static_cast<double>(platform.noc().router_latency_ps()) * 1e-6;
  double us = 0.0;
  for (const ProcessId pid : app.process_ids()) {
    if (before.tile_of(pid) == after.tile_of(pid) &&
        before.impl_of(pid) == after.impl_of(pid)) {
      continue;
    }
    const std::uint64_t bytes =
        app.implementation(pid, after.impl_of(pid)).memory_bytes +
        in_buffer_bytes(app, before, pid);
    const auto tokens = static_cast<double>(
        (bytes + token_bytes - 1) / std::max<std::uint32_t>(token_bytes, 1));
    const auto hops = static_cast<double>(
        platform.manhattan(before.tile_of(pid), after.tile_of(pid)));
    us += pause_us + tokens * hops * hop_us;
  }
  return us;
}

double MigrationCostModel::migration_energy_nj(const kpn::Application& app,
                                               const arch::Platform& platform,
                                               const Mapping& before,
                                               const Mapping& after) const {
  double nj = 0.0;
  for (const ProcessId pid : app.process_ids()) {
    if (before.tile_of(pid) == after.tile_of(pid) &&
        before.impl_of(pid) == after.impl_of(pid)) {
      continue;
    }
    const std::uint64_t bytes =
        app.implementation(pid, after.impl_of(pid)).memory_bytes +
        in_buffer_bytes(app, before, pid);
    const auto tokens = static_cast<std::uint32_t>(
        (bytes + token_bytes - 1) / std::max<std::uint32_t>(token_bytes, 1));
    nj += energy.comm_nj(
        tokens, platform.manhattan(before.tile_of(pid), after.tile_of(pid)));
  }
  return nj;
}

}  // namespace rtsm::core
