#pragma once

#include <cstdint>

#include "arch/platform.hpp"
#include "core/mapping.hpp"
#include "energy/model.hpp"
#include "kpn/application.hpp"

namespace rtsm::core {

/// Weighting of the step-2 communication cost.
enum class CommCostModel {
  /// Sum of Manhattan distances over all channels — the paper's cost
  /// (Table 2's cost column).
  HopCount,
  /// Manhattan distance weighted by the channel's tokens per symbol;
  /// prioritises keeping heavy channels short.
  TokenWeighted,
  /// Full energy estimate (hop + NI energy, token-weighted).
  EnergyWeighted,
};

/// Step-2 communication cost of a (partial) placement: channels with both
/// endpoints assigned contribute their weighted Manhattan distance.
[[nodiscard]] double placement_cost(const kpn::Application& app,
                                    const arch::Platform& platform,
                                    const Mapping& mapping, CommCostModel model,
                                    const energy::EnergyModel& energy);

/// Contribution of a single channel at hop distance @p hops.
[[nodiscard]] double channel_cost(const kpn::Channel& channel,
                                  std::uint32_t hops, CommCostModel model,
                                  const energy::EnergyModel& energy);

/// Total energy per symbol of a fully routed mapping: processing energy of
/// every chosen implementation plus communication energy over actual paths.
[[nodiscard]] double total_energy_nj_per_symbol(
    const kpn::Application& app, const arch::Platform& platform,
    const Mapping& mapping, const energy::EnergyModel& energy);

/// Processing-only energy per symbol of the chosen implementations.
[[nodiscard]] double processing_energy_nj_per_symbol(
    const kpn::Application& app, const Mapping& mapping);

/// Communication-only energy per symbol over the routed paths.
[[nodiscard]] double comm_energy_nj_per_symbol(
    const kpn::Application& app, const arch::Platform& platform,
    const Mapping& mapping, const energy::EnergyModel& energy);

}  // namespace rtsm::core
