#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "arch/platform.hpp"
#include "core/spatial_mapper.hpp"

namespace rtsm::core {

/// Run-time resource manager: admits streaming applications as they start,
/// maps them against the *current* residual resources, and releases their
/// reservations when they stop.
///
/// This realises the run-time scenario of the paper's introduction: instead
/// of worst-case design-time allocations, every admission sees the actual
/// set of running applications.
class RuntimeResourceManager {
 public:
  explicit RuntimeResourceManager(const arch::Platform& platform);

  /// Result of an admission attempt.
  struct StartResult {
    bool admitted = false;
    AppId id;
    MappingResult mapping;
  };

  /// Maps @p app with @p mapper against current residual resources and, on
  /// success, commits the mapping. The application description is copied
  /// and retained until stop().
  StartResult start(const kpn::Application& app, const SpatialMapper& mapper);

  /// Stops a running application, releasing all of its resources.
  /// Throws rtsm::Error for unknown ids.
  void stop(AppId id);

  [[nodiscard]] std::size_t running_count() const { return running_.size(); }

  /// Residual resource view (what a new application would see).
  [[nodiscard]] const ResourceState& state() const { return state_; }

  /// Total energy per symbol across running applications, nJ.
  [[nodiscard]] double total_energy_nj_per_symbol() const;

 private:
  struct Running {
    std::shared_ptr<const kpn::Application> app;
    Mapping mapping;
    double energy_nj = 0.0;
  };

  ResourceState state_;
  std::map<AppId, Running> running_;
  AppId::value_type next_id_ = 0;
};

}  // namespace rtsm::core
