#include "core/implementation_selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "util/error.hpp"

namespace rtsm::core {

namespace {

/// Best admissible realisation of a process on one tile type.
struct TypeOption {
  ImplementationId impl;
  TileTypeId type;
  double cost = 0.0;
  TileId first_fit_tile;  // first tile (insertion order) with capacity
};

/// Communication estimate: cheapest placed-neighbour distance cost if the
/// process were put on @p tile.
double comm_estimate(const MappingContext& ctx, ProcessId pid, TileId tile) {
  double cost = 0.0;
  auto add = [&](ChannelId cid, ProcessId other) {
    if (!ctx.mapping.is_assigned(other)) return;
    const std::uint32_t hops =
        ctx.platform.manhattan(tile, ctx.mapping.tile_of(other));
    cost += ctx.energy.comm_nj(ctx.app.channel(cid).tokens_per_symbol, hops);
  };
  for (const ChannelId cid : ctx.app.in_channels(pid)) {
    add(cid, ctx.app.channel(cid).src);
  }
  for (const ChannelId cid : ctx.app.out_channels(pid)) {
    add(cid, ctx.app.channel(cid).dst);
  }
  return cost;
}

/// All tile-type options still open to @p pid, cheapest first.
std::vector<TypeOption> type_options(const MappingContext& ctx,
                                     const Step1Options& options,
                                     ProcessId pid) {
  const kpn::Process& p = ctx.app.process(pid);
  std::vector<TypeOption> result;

  for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
    const ImplementationId impl{static_cast<ImplementationId::value_type>(ii)};
    if (ctx.feedback.impl_forbidden(pid, impl)) continue;
    const kpn::Implementation& im = p.implementations[ii];

    TileTypeId type;
    try {
      type = ctx.platform.type_by_name(im.tile_type);
    } catch (const Error&) {
      continue;  // platform has no tile of this type at all
    }

    const double util = impl_utilization(ctx.app, pid, impl,
                                         ctx.platform.tile_type(type).clock_hz);
    if (options.utilization_screen && util > 1.0) continue;

    // Find the candidate tiles with capacity; remember the first (first-fit)
    // and the cheapest communication estimate (for ranking).
    TileId first_fit;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const TileId tile : ctx.platform.tiles_of_type(type)) {
      if (ctx.feedback.tile_forbidden(pid, tile)) continue;
      if (!ctx.state.tile_fits(tile, claimed_utilization(util),
                               im.memory_bytes)) {
        continue;
      }
      if (!first_fit.valid()) first_fit = tile;
      const double cost =
          ctx.energy.processing_nj(im) +
          (options.comm_aware ? comm_estimate(ctx, pid, tile) : 0.0);
      best_cost = std::min(best_cost, cost);
    }
    if (!first_fit.valid()) continue;  // no tile of this type can host it

    // Keep the cheapest implementation per tile type.
    auto existing =
        std::find_if(result.begin(), result.end(),
                     [&](const TypeOption& o) { return o.type == type; });
    if (existing == result.end()) {
      result.push_back(TypeOption{impl, type, best_cost, first_fit});
    } else if (best_cost < existing->cost) {
      *existing = TypeOption{impl, type, best_cost, first_fit};
    }
  }

  std::sort(result.begin(), result.end(),
            [](const TypeOption& a, const TypeOption& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.type < b.type;
            });
  return result;
}

/// Binds fixtures to their pinned tiles: they are boundary conditions of the
/// optimisation, not decision variables.
Step1Outcome place_fixtures(MappingContext& ctx) {
  for (const ProcessId pid : ctx.app.process_ids()) {
    const kpn::Process& p = ctx.app.process(pid);
    if (!p.is_fixture()) continue;
    TileId tile;
    try {
      tile = ctx.platform.tile_by_name(*p.pinned_tile);
    } catch (const Error&) {
      return {false, "fixture '" + p.name + "' pins unknown tile '" +
                         *p.pinned_tile + "'"};
    }
    const std::string& tile_type =
        ctx.platform.tile_type(ctx.platform.tile(tile).type).name;
    std::optional<ImplementationId> impl;
    for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
      if (p.implementations[ii].tile_type == tile_type) {
        impl = ImplementationId{static_cast<ImplementationId::value_type>(ii)};
        break;
      }
    }
    if (!impl) {
      return {false, "fixture '" + p.name + "' has no implementation for its "
                     "pinned tile type '" + tile_type + "'"};
    }
    const double util = claimed_utilization(impl_utilization(
        ctx.app, pid, *impl, ctx.platform.tile_clock_hz(tile)));
    const std::uint64_t mem = ctx.app.implementation(pid, *impl).memory_bytes;
    if (!ctx.state.tile_fits(tile, util, mem)) {
      return {false, "pinned tile '" + *p.pinned_tile +
                         "' lacks capacity for fixture '" + p.name + "'"};
    }
    ctx.state.reserve_tile(tile, util, mem);
    ctx.mapping.assign(pid, *impl, tile);
  }
  return {true, ""};
}

}  // namespace

Step1Outcome run_step1(MappingContext& ctx, const Step1Options& options) {
  const Step1Outcome fixtures = place_fixtures(ctx);
  if (!fixtures.success) return fixtures;

  // Iteratively place the most desirable process.
  while (true) {
    std::vector<ProcessId> open;
    for (const ProcessId pid : ctx.app.process_ids()) {
      if (!ctx.mapping.is_assigned(pid)) open.push_back(pid);
    }
    if (open.empty()) break;

    ProcessId chosen;
    std::vector<TypeOption> chosen_options;
    double chosen_desirability = -1.0;

    for (const ProcessId pid : open) {
      auto opts = type_options(ctx, options, pid);
      if (opts.empty()) {
        return {false, "process '" + ctx.app.process(pid).name +
                           "' has no admissible implementation left"};
      }
      const double desirability =
          opts.size() == 1 ? std::numeric_limits<double>::infinity()
                           : opts[1].cost - opts[0].cost;
      const bool better =
          options.desirability_order
              ? desirability > chosen_desirability
              : !chosen.valid();  // plain order: first open process wins
      if (better) {
        chosen = pid;
        chosen_options = std::move(opts);
        chosen_desirability = desirability;
      }
      if (!options.desirability_order && chosen.valid()) break;
    }

    const TypeOption& pick = chosen_options.front();
    const kpn::Implementation& im = ctx.app.implementation(chosen, pick.impl);
    const TileId tile = pick.first_fit_tile;
    const double util = claimed_utilization(impl_utilization(
        ctx.app, chosen, pick.impl, ctx.platform.tile_clock_hz(tile)));
    if (!ctx.state.tile_fits(tile, util, im.memory_bytes)) {
      // Only possible with utilization_screen off; surfaced to the driver.
      return {false, "first-fit tile '" + ctx.platform.tile(tile).name +
                         "' cannot host '" + im.name + "'"};
    }
    ctx.state.reserve_tile(tile, util, im.memory_bytes);
    ctx.mapping.assign(chosen, pick.impl, tile);

    ctx.trace.step1.push_back(Step1Record{
        ctx.app.process(chosen).name, im.name, im.tile_type,
        ctx.platform.tile(tile).name, chosen_desirability,
        std::isinf(chosen_desirability)});
  }
  return {true, ""};
}

}  // namespace rtsm::core
