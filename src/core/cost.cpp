#include "core/cost.hpp"

#include "util/error.hpp"

namespace rtsm::core {

double channel_cost(const kpn::Channel& channel, std::uint32_t hops,
                    CommCostModel model, const energy::EnergyModel& energy) {
  switch (model) {
    case CommCostModel::HopCount:
      return static_cast<double>(hops);
    case CommCostModel::TokenWeighted:
      return static_cast<double>(hops) * channel.tokens_per_symbol;
    case CommCostModel::EnergyWeighted:
      return energy.comm_nj(channel.tokens_per_symbol, hops);
  }
  throw Error("unknown CommCostModel");
}

double placement_cost(const kpn::Application& app,
                      const arch::Platform& platform, const Mapping& mapping,
                      CommCostModel model, const energy::EnergyModel& energy) {
  double cost = 0.0;
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    if (!mapping.is_assigned(c.src) || !mapping.is_assigned(c.dst)) continue;
    const std::uint32_t hops =
        platform.manhattan(mapping.tile_of(c.src), mapping.tile_of(c.dst));
    cost += channel_cost(c, hops, model, energy);
  }
  return cost;
}

double processing_energy_nj_per_symbol(const kpn::Application& app,
                                       const Mapping& mapping) {
  double total = 0.0;
  for (const ProcessId pid : app.process_ids()) {
    require(mapping.is_assigned(pid),
            "energy of a mapping with unassigned processes");
    total += app.implementation(pid, mapping.impl_of(pid)).energy_nj_per_symbol;
  }
  return total;
}

double comm_energy_nj_per_symbol(const kpn::Application& app,
                                 const arch::Platform& platform,
                                 const Mapping& mapping,
                                 const energy::EnergyModel& energy) {
  double total = 0.0;
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    const auto& path = mapping.path(cid);
    require(path.has_value(), "comm energy of an unrouted mapping");
    total += energy.comm_nj(c, *path, platform);
  }
  return total;
}

double total_energy_nj_per_symbol(const kpn::Application& app,
                                  const arch::Platform& platform,
                                  const Mapping& mapping,
                                  const energy::EnergyModel& energy) {
  return processing_energy_nj_per_symbol(app, mapping) +
         comm_energy_nj_per_symbol(app, platform, mapping, energy);
}

}  // namespace rtsm::core
