#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/mapping_context.hpp"
#include "csdf/simulator.hpp"

namespace rtsm::core {

/// Options of mapping step 4 (check application constraints).
struct FeasibilityOptions {
  /// Simulation window for throughput measurement and buffer sizing.
  csdf::SimulationConfig simulation;

  /// Divergence guard for buffer capacities.
  std::uint32_t capacity_limit = 1u << 16;
};

/// Result of the dataflow feasibility analysis.
struct FeasibilityReport {
  bool feasible = false;
  std::string failure;

  /// Sustained iteration period of the mapped graph, ps.
  std::uint64_t achieved_period_ps = 0;

  /// Worst source-start to sink-completion time of one symbol, ps.
  std::uint64_t latency_ps = 0;

  /// Constraint suggestion for the next refinement round, when derivable.
  std::optional<FeedbackConstraint> feedback;
};

/// Step 4: expands the mapped application into its CSDF graph (router
/// actors included), computes minimal consumer-side buffer capacities under
/// the period constraint (the role of Wiggers et al. [11]), verifies the
/// buffers fit the consuming tiles' memory, and checks the latency bound.
///
/// When ctx.engine is set, the expansion + sizing part is served through
/// the shared verify::Engine (structural-signature cache, warm-started
/// sizing) — behaviourally identical to the direct computation.
///
/// On success the buffer capacities are written into ctx.mapping and the
/// buffer memory is reserved in ctx.state. On failure a feedback constraint
/// is attached when one can be derived and ctx.state is left exactly as it
/// was (partial buffer reservations are rolled back). The analysis summary
/// — including achieved period and latency on every outcome path — is
/// logged to ctx.trace.step4.
[[nodiscard]] FeasibilityReport run_step4(
    MappingContext& ctx, const FeasibilityOptions& options = {});

}  // namespace rtsm::core
