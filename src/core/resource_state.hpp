#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/platform.hpp"
#include "kpn/application.hpp"
#include "noc/link_load.hpp"
#include "util/ids.hpp"

namespace rtsm::core {

/// Counters of refresh_snapshot_into() on the *source* state. Guarded by
/// whatever synchronizes mutations of the source (the managers' state
/// mutex); not internally synchronized.
struct RefreshStats {
  /// Refreshes served by replaying journal deltas (the fast path).
  std::uint64_t delta_refreshes = 0;
  /// Refreshes that fell back to a full value copy (cold scratch, mutated
  /// scratch, journal wrapped past the scratch's version, journal off).
  std::uint64_t full_copies = 0;
  /// Journal entries applied across all delta refreshes.
  std::uint64_t entries_replayed = 0;
};

/// Mutable view of what is still free on the platform.
///
/// The run-time mapper maps against this residual state rather than the bare
/// platform, which is exactly the paper's motivation: at run time the actual
/// set of running applications is known, so a new application is fitted into
/// the *remaining* capacity. Tracks per-tile compute utilisation (fraction of
/// the period spent executing) and memory, plus all NoC link reservations.
///
/// Every mutation — tile reserve/release/saturate and, via an internal
/// LinkLoad listener, every link reserve/release — bumps a monotonic
/// version(). A state with enable_journal() additionally records each
/// mutation in a bounded ring, which lets refresh_snapshot_into() bring a
/// previously-synced scratch up to date by replaying only the deltas since
/// the scratch's version instead of copying the whole platform-sized value.
class ResourceState : private noc::LinkLoadListener {
 public:
  /// Tolerates float accumulation when many small reservations sum to ~1.0.
  /// Public so out-of-state admission probes (core::mapping_fits) can
  /// replicate tile_fits() bit-for-bit without a state copy.
  static constexpr double kUtilSlack = 1e-9;

  explicit ResourceState(const arch::Platform& platform);

  /// Copies the residual bookkeeping and marks the copy as synced with
  /// @p other at its current version, so a later
  /// other.refresh_snapshot_into(copy) can take the delta fast path. The
  /// copy starts with version 0, no journal, and its own identity.
  ResourceState(const ResourceState& other);

  /// Overwrites the bookkeeping (keeping this object's identity, journal
  /// capacity and listener registration) and syncs the destination with
  /// @p other, like the copy constructor. The destination's own journal is
  /// invalidated: its old entries no longer describe this value.
  ResourceState& operator=(const ResourceState& other);

  ~ResourceState() override = default;

  [[nodiscard]] const arch::Platform& platform() const { return *platform_; }

  /// Fraction of the tile's time already committed (0 = idle, 1 = full).
  [[nodiscard]] double utilization(TileId tile) const;

  /// Bytes of tile-local memory already committed.
  [[nodiscard]] std::uint64_t memory_used(TileId tile) const;

  /// Memory still available on @p tile.
  [[nodiscard]] std::uint64_t memory_free(TileId tile) const;

  /// Processes currently hosted by @p tile.
  [[nodiscard]] std::uint32_t processes_hosted(TileId tile) const;

  /// True when @p extra_utilization, @p extra_memory and @p extra_processes
  /// still fit on @p tile (slots, utilisation and memory all respected).
  /// Pass extra_processes = 0 for pure memory reservations (channel
  /// buffers).
  [[nodiscard]] bool tile_fits(TileId tile, double extra_utilization,
                               std::uint64_t extra_memory,
                               std::uint32_t extra_processes = 1) const;

  void reserve_tile(TileId tile, double utilization, std::uint64_t memory,
                    std::uint32_t processes = 1);
  void release_tile(TileId tile, double utilization, std::uint64_t memory,
                    std::uint32_t processes = 1);

  [[nodiscard]] noc::LinkLoad& links() { return links_; }
  [[nodiscard]] const noc::LinkLoad& links() const { return links_; }

  /// Count of tiles with zero committed utilisation (for shutdown/energy
  /// reporting: unused tiles can be power-gated).
  [[nodiscard]] std::size_t idle_tile_count() const;

  /// Value copy of the residual state. The copy is what optimistic
  /// concurrent admission plans against: a mapper runs on the snapshot
  /// outside any lock, and the plan is re-validated against the live state
  /// (mapping_fits) before commit. Prefer refresh_snapshot_into() on the
  /// admission hot path: it reuses a scratch and replays only deltas.
  [[nodiscard]] ResourceState snapshot() const { return *this; }

  /// Marks @p tile as completely occupied (full utilisation, no free
  /// memory, no free process slots). Used on snapshots to mask tiles
  /// outside a shard so a mapper can only place within the shard's region.
  void saturate_tile(TileId tile);

  /// True when @p other books the same residual resources within a relative
  /// tolerance of @p rel_eps per tile/link quantity. Utilisation and link
  /// reservations are floating-point sums whose rounding depends on commit
  /// order, so concurrent histories are compared approximately; memory and
  /// process counts must match exactly.
  [[nodiscard]] bool approx_equals(const ResourceState& other,
                                   double rel_eps = 1e-9) const;

  // ------------------------------------------------ versioning & journal --

  /// Monotonic mutation counter: every tile or link reserve/release/saturate
  /// bumps it by one. Two observations at the same version (with no
  /// intervening overwrite of the object) saw bit-identical state.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Starts journaling mutations into a ring of @p capacity entries, the
  /// substrate of refresh_snapshot_into()'s delta fast path. Scratches that
  /// fall more than @p capacity mutations behind fall back to a full copy.
  /// Intended for the live state of a runtime manager; snapshots normally
  /// leave it off (copies never inherit it).
  void enable_journal(std::size_t capacity = 4096);

  [[nodiscard]] bool journal_enabled() const { return journal_capacity_ > 0; }

  /// Ring capacity of the journal (0 = journaling off).
  [[nodiscard]] std::size_t journal_capacity() const {
    return journal_capacity_;
  }

  /// Oldest version the journal still covers; entries span
  /// [journal_start_version(), version()). The audit layer checks this
  /// window never exceeds the ring capacity.
  [[nodiscard]] std::uint64_t journal_start_version() const {
    return journal_start_version_;
  }

  /// Brings @p scratch up to date with this state. Fast path: when
  /// @p scratch was last synced from this very object (and not mutated
  /// since) and the journal still covers its version, only the journaled
  /// deltas are replayed — O(mutations since last sync), not O(platform).
  /// Every delta replays through the same public mutators that produced it,
  /// so a refreshed scratch is bit-identical to a full copy (asserted by
  /// the hot-path test suite). Falls back to a plain full copy otherwise.
  /// Must be called under the same lock that guards mutations of this
  /// state.
  void refresh_snapshot_into(ResourceState& scratch) const;

  /// Counters of refresh_snapshot_into() calls on this (source) state.
  [[nodiscard]] RefreshStats refresh_stats() const { return refresh_stats_; }

  /// True when this state is a bit-identical image of @p source at its
  /// current version: it was copied or refreshed from @p source, has not
  /// been mutated since, and @p source has not moved past that version.
  /// The soundness condition of the managers' version-gated commit.
  [[nodiscard]] bool synced_with(const ResourceState& source) const {
    return synced_from_ == &source && synced_uid_ == source.uid_ &&
           synced_version_ == source.version_;
  }

 private:
  /// One journaled mutation; replaying it on a state bit-identical to the
  /// pre-mutation source reproduces the post-mutation source exactly.
  struct JournalEntry {
    enum class Op : std::uint8_t {
      ReserveTile,
      ReleaseTile,
      SaturateTile,
      LinkReserve,
      LinkRelease,
    };
    Op op = Op::ReserveTile;
    std::uint32_t index = 0;  ///< Tile or link index.
    double amount = 0.0;      ///< Utilisation or link demand.
    std::uint64_t memory = 0;
    std::uint32_t processes = 0;
  };

  void check_tile(TileId tile) const;

  /// Records @p entry (when the journal is on), bumps version() and drops
  /// this object's own sync token — it has diverged from whatever it was
  /// last synced with. Called after every successful mutation.
  void note_mutation(const JournalEntry& entry);

  /// Replays one journal entry through the public mutators.
  void apply(const JournalEntry& entry);

  void on_link_reserve(LinkId link, double demand) override;
  void on_link_release(LinkId link, double demand) override;

  const arch::Platform* platform_;
  std::vector<double> utilization_;
  std::vector<std::uint64_t> memory_used_;
  std::vector<std::uint32_t> processes_;
  noc::LinkLoad links_;

  /// Process-unique identity (never reused), so a sync token cannot
  /// mistake a new state allocated at a dead source's address for the
  /// original.
  std::uint64_t uid_;
  std::uint64_t version_ = 0;

  /// Ring journal: the entry that took this state from version v to v + 1
  /// lives at journal_[v % capacity]; entries cover versions
  /// [journal_start_version_, version_). Empty capacity = journaling off.
  std::vector<JournalEntry> journal_;
  std::size_t journal_capacity_ = 0;
  std::uint64_t journal_start_version_ = 0;

  /// Sync token (scratch side): the source object, its uid, and the source
  /// version this state was last made bit-identical to. Compared, never
  /// dereferenced. Cleared by note_mutation().
  const ResourceState* synced_from_ = nullptr;
  std::uint64_t synced_uid_ = 0;
  std::uint64_t synced_version_ = 0;

  /// Mutated in const refresh_snapshot_into(); guarded by the caller's
  /// state lock like the journal itself.
  mutable RefreshStats refresh_stats_;
};

/// Wall-clock time one symbol of work takes for @p impl of @p process when
/// run on a tile clocked at @p clock_hz, in nanoseconds.
[[nodiscard]] double impl_time_per_symbol_ns(const kpn::Application& app,
                                             ProcessId process,
                                             ImplementationId impl,
                                             std::uint64_t clock_hz);

/// Fraction of the application period consumed by @p impl on such a tile.
[[nodiscard]] double impl_utilization(const kpn::Application& app,
                                      ProcessId process, ImplementationId impl,
                                      std::uint64_t clock_hz);

/// Utilisation as booked against a tile budget. An implementation slower
/// than the period (raw > 1) claims the whole tile; whether it is admissible
/// at all is decided by step 1's screen or step 4's dataflow check, not by
/// the bookkeeping.
[[nodiscard]] inline double claimed_utilization(double raw_utilization) {
  return raw_utilization < 1.0 ? raw_utilization : 1.0;
}

}  // namespace rtsm::core
