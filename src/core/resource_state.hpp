#pragma once

#include <cstdint>
#include <vector>

#include "arch/platform.hpp"
#include "kpn/application.hpp"
#include "noc/link_load.hpp"
#include "util/ids.hpp"

namespace rtsm::core {

/// Mutable view of what is still free on the platform.
///
/// The run-time mapper maps against this residual state rather than the bare
/// platform, which is exactly the paper's motivation: at run time the actual
/// set of running applications is known, so a new application is fitted into
/// the *remaining* capacity. Tracks per-tile compute utilisation (fraction of
/// the period spent executing) and memory, plus all NoC link reservations.
class ResourceState {
 public:
  explicit ResourceState(const arch::Platform& platform);

  [[nodiscard]] const arch::Platform& platform() const { return *platform_; }

  /// Fraction of the tile's time already committed (0 = idle, 1 = full).
  [[nodiscard]] double utilization(TileId tile) const;

  /// Bytes of tile-local memory already committed.
  [[nodiscard]] std::uint64_t memory_used(TileId tile) const;

  /// Memory still available on @p tile.
  [[nodiscard]] std::uint64_t memory_free(TileId tile) const;

  /// Processes currently hosted by @p tile.
  [[nodiscard]] std::uint32_t processes_hosted(TileId tile) const;

  /// True when @p extra_utilization, @p extra_memory and @p extra_processes
  /// still fit on @p tile (slots, utilisation and memory all respected).
  /// Pass extra_processes = 0 for pure memory reservations (channel
  /// buffers).
  [[nodiscard]] bool tile_fits(TileId tile, double extra_utilization,
                               std::uint64_t extra_memory,
                               std::uint32_t extra_processes = 1) const;

  void reserve_tile(TileId tile, double utilization, std::uint64_t memory,
                    std::uint32_t processes = 1);
  void release_tile(TileId tile, double utilization, std::uint64_t memory,
                    std::uint32_t processes = 1);

  [[nodiscard]] noc::LinkLoad& links() { return links_; }
  [[nodiscard]] const noc::LinkLoad& links() const { return links_; }

  /// Count of tiles with zero committed utilisation (for shutdown/energy
  /// reporting: unused tiles can be power-gated).
  [[nodiscard]] std::size_t idle_tile_count() const;

  /// Value copy of the residual state. The copy is what optimistic
  /// concurrent admission plans against: a mapper runs on the snapshot
  /// outside any lock, and the plan is re-validated against the live state
  /// (mapping_fits) before commit. Cheap — four flat vectors.
  [[nodiscard]] ResourceState snapshot() const { return *this; }

  /// Marks @p tile as completely occupied (full utilisation, no free
  /// memory, no free process slots). Used on snapshots to mask tiles
  /// outside a shard so a mapper can only place within the shard's region.
  void saturate_tile(TileId tile);

  /// True when @p other books the same residual resources within a relative
  /// tolerance of @p rel_eps per tile/link quantity. Utilisation and link
  /// reservations are floating-point sums whose rounding depends on commit
  /// order, so concurrent histories are compared approximately; memory and
  /// process counts must match exactly.
  [[nodiscard]] bool approx_equals(const ResourceState& other,
                                   double rel_eps = 1e-9) const;

 private:
  void check_tile(TileId tile) const;

  const arch::Platform* platform_;
  std::vector<double> utilization_;
  std::vector<std::uint64_t> memory_used_;
  std::vector<std::uint32_t> processes_;
  noc::LinkLoad links_;
};

/// Wall-clock time one symbol of work takes for @p impl of @p process when
/// run on a tile clocked at @p clock_hz, in nanoseconds.
[[nodiscard]] double impl_time_per_symbol_ns(const kpn::Application& app,
                                             ProcessId process,
                                             ImplementationId impl,
                                             std::uint64_t clock_hz);

/// Fraction of the application period consumed by @p impl on such a tile.
[[nodiscard]] double impl_utilization(const kpn::Application& app,
                                      ProcessId process, ImplementationId impl,
                                      std::uint64_t clock_hz);

/// Utilisation as booked against a tile budget. An implementation slower
/// than the period (raw > 1) claims the whole tile; whether it is admissible
/// at all is decided by step 1's screen or step 4's dataflow check, not by
/// the bookkeeping.
[[nodiscard]] inline double claimed_utilization(double raw_utilization) {
  return raw_utilization < 1.0 ? raw_utilization : 1.0;
}

}  // namespace rtsm::core
