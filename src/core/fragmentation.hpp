#pragma once

#include <cstddef>

#include "core/resource_state.hpp"

namespace rtsm::core {

/// Tuning of the fragmentation measurement.
struct FragmentationOptions {
  /// A tile belongs to a *free region* when it hosts no process and its
  /// committed utilisation / memory stay below these fractions. Buffer
  /// bytes land on consumer tiles (which host the consumer process), so a
  /// process-free tile is normally byte-free too; the slack tolerates
  /// rounding and exotic bookkeeping.
  double free_utilization_max = 1e-9;
  double free_memory_fraction_max = 0.05;
};

/// Snapshot of how fragmented the platform's residual capacity is.
///
/// Two phenomena make a mesh reject applications that would fit a compacted
/// platform of the same total load:
///
/// 1. *Occupancy dispersion* — the booked capacity is smeared over many
///    partially-used tiles instead of packed onto few. A process that needs
///    most of a tile then fits nowhere although the summed slack would hold
///    several of it.
/// 2. *Free-capacity scatter* — the free capacity that does exist is split
///    into small, mutually distant islands. An application whose processes
///    must sit close together (NoC link budgets, hop-buffer throttling,
///    latency bounds) cannot use islands that are far apart.
///
/// Both are reported in [0, 1]; score() combines them. 0 = perfectly
/// compact (an idle platform, or one packed tile-by-tile), 1 = maximally
/// fragmented.
struct FragmentationMetrics {
  std::size_t tile_count = 0;
  /// Tiles with any occupancy at all.
  std::size_t busy_tiles = 0;
  /// Tiles counting as free per FragmentationOptions.
  std::size_t free_tiles = 0;
  /// Largest mesh-connected component of free tiles (adjacency = router
  /// Manhattan distance <= 1, so tiles sharing a router are adjacent).
  std::size_t largest_free_region = 0;

  /// Sum over tiles of occupancy(tile) = max(utilisation, memory fraction,
  /// slot fraction) — the booked capacity in "tile units".
  double total_occupancy = 0.0;

  /// 1 - (sum of occupancy^2) / (sum of occupancy): how far the booked
  /// capacity is from being packed onto saturated tiles. 0 when every
  /// dirtied tile is fully occupied; approaches 1 as the same load smears
  /// into thin slivers. Continuous, so *every* consolidation move (load
  /// shifted from an emptier tile onto a fuller one) strictly reduces it
  /// — the defrag planner's greedy search cannot plateau between moves
  /// that only become visible once a tile is completely emptied.
  double occupancy_dispersion = 0.0;

  /// 1 - largest_free_region / free capacity (in tile units). 0 when all
  /// free capacity forms one fully-free connected region; 1 when free
  /// capacity exists only as scattered partial slack.
  double free_scatter = 0.0;

  /// Combined fragmentation score in [0, 1]; the defrag trigger quantity.
  [[nodiscard]] double score() const {
    return 0.5 * occupancy_dispersion + 0.5 * free_scatter;
  }
};

/// Per-tile occupancy in [0, 1]: the most constrained of compute
/// utilisation, memory use and process slots.
[[nodiscard]] double tile_occupancy(const ResourceState& state, TileId tile);

/// Mean tile_occupancy over the whole platform — the load probe the
/// fleet dispatcher ranks platforms by (one O(tiles) scan).
[[nodiscard]] double mean_occupancy(const ResourceState& state);

/// The free-region membership predicate of the metric, shared with the
/// defrag planner's packing mask so both always agree on what "free"
/// means.
[[nodiscard]] bool is_free_tile(const ResourceState& state, TileId tile,
                                const FragmentationOptions& options = {});

/// Measures the fragmentation of @p state (one pass over the tiles plus a
/// BFS over the free ones).
[[nodiscard]] FragmentationMetrics measure_fragmentation(
    const ResourceState& state, const FragmentationOptions& options = {});

}  // namespace rtsm::core
