#include "core/spatial_mapper.hpp"

#include "core/cost.hpp"
#include "core/criteria.hpp"
#include "util/error.hpp"

namespace rtsm::core {

SpatialMapper::SpatialMapper(MapperConfig config) : config_(std::move(config)) {}

MappingResult SpatialMapper::map(const kpn::Application& app,
                                 const arch::Platform& platform) const {
  return map(app, ResourceState(platform));
}

MappingResult SpatialMapper::map(const kpn::Application& app,
                                 const ResourceState& base) const {
  app.validate();
  const arch::Platform& platform = base.platform();

  MappingResult result;
  result.mapping = Mapping(app.process_count(), app.channel_count());

  FeedbackSet feedback;

  for (std::uint32_t round = 0; round < config_.max_refinement_rounds;
       ++round) {
    result.rounds = round + 1;
    MappingTrace::Round& rt = result.trace.rounds.emplace_back();

    // Each round works on a private copy of the residual resources, so a
    // failed round leaves no partial reservations behind.
    ResourceState state = base;
    Mapping mapping(app.process_count(), app.channel_count());

    // Step 1: assign implementations to processes.
    const Step1Outcome s1 =
        run_step1(app, platform, state, feedback, config_.step1,
                  config_.energy, mapping, rt.step1);
    if (!s1.success) {
      rt.outcome = "step 1 failed: " + s1.failure;
      result.failure = rt.outcome;
      // Step 1 exhausts options monotonically; more rounds cannot help
      // unless feedback shrinks elsewhere, so stop here.
      return result;
    }

    // Step 2: assign processes to tiles (local search refinement).
    if (config_.run_step2) {
      run_step2(app, platform, state, feedback, config_.step2, config_.energy,
                mapping, rt.step2);
    } else {
      rt.step2.initial_cost = rt.step2.final_cost = placement_cost(
          app, platform, mapping, config_.step2.cost_model, config_.energy);
    }

    // Step 3: assign channels to paths.
    const Step3Outcome s3 = run_step3(app, platform, state, config_.step3,
                                      mapping, rt.step3);
    if (!s3.success) {
      rt.outcome = "step 3 failed: " + s3.failure;
      result.failure = rt.outcome;
      if (!s3.feedback) return result;
      feedback.add(*s3.feedback);
      continue;
    }

    // Step 4: check application constraints via dataflow analysis.
    if (config_.run_step4) {
      const FeasibilityReport report = run_step4(
          app, platform, state, config_.step4, mapping, rt.step4);
      if (!report.feasible) {
        rt.outcome = "step 4 failed: " + report.failure;
        result.failure = rt.outcome;
        if (!report.feedback) return result;
        feedback.add(*report.feedback);
        continue;
      }
      result.achieved_period_ps = report.achieved_period_ps;
      result.latency_ps = report.latency_ps;
    }

    rt.outcome = "feasible";
    result.success = true;
    result.failure.clear();
    result.mapping = std::move(mapping);
    result.energy_nj_per_symbol = total_energy_nj_per_symbol(
        app, platform, result.mapping, config_.energy);
    return result;
  }

  if (result.failure.empty()) {
    result.failure = "refinement round limit reached";
  }
  return result;
}

void commit_mapping(ResourceState& state, const kpn::Application& app,
                    const Mapping& mapping) {
  const arch::Platform& platform = state.platform();
  for (const ProcessId pid : app.process_ids()) {
    const TileId tile = mapping.tile_of(pid);
    const ImplementationId impl = mapping.impl_of(pid);
    const double util = claimed_utilization(
        impl_utilization(app, pid, impl, platform.tile_clock_hz(tile)));
    state.reserve_tile(tile, util, app.implementation(pid, impl).memory_bytes);
  }
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    const auto& path = mapping.path(cid);
    require(path.has_value(), "commit of an unrouted mapping");
    state.links().reserve_path(*path, app.tokens_per_second(cid));
    if (const auto tokens = mapping.buffer_tokens(cid)) {
      state.reserve_tile(mapping.tile_of(c.dst), 0.0,
                         static_cast<std::uint64_t>(*tokens) * c.token_bytes,
                         0);
    }
  }
}

void release_mapping(ResourceState& state, const kpn::Application& app,
                     const Mapping& mapping) {
  const arch::Platform& platform = state.platform();
  for (const ProcessId pid : app.process_ids()) {
    const TileId tile = mapping.tile_of(pid);
    const ImplementationId impl = mapping.impl_of(pid);
    const double util = claimed_utilization(
        impl_utilization(app, pid, impl, platform.tile_clock_hz(tile)));
    state.release_tile(tile, util, app.implementation(pid, impl).memory_bytes);
  }
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    const auto& path = mapping.path(cid);
    if (!path) continue;
    state.links().release_path(*path, app.tokens_per_second(cid));
    if (const auto tokens = mapping.buffer_tokens(cid)) {
      state.release_tile(mapping.tile_of(c.dst), 0.0,
                         static_cast<std::uint64_t>(*tokens) * c.token_bytes,
                         0);
    }
  }
}

}  // namespace rtsm::core
