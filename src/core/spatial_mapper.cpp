#include "core/spatial_mapper.hpp"

#include <string>

#include "core/cost.hpp"
#include "core/criteria.hpp"
#include "core/mapping_context.hpp"
#include "util/error.hpp"

namespace rtsm::core {

namespace {

/// Verdict of one pipeline stage within a refinement round.
enum class StageStatus {
  /// Stage succeeded; continue with the next stage.
  Proceed,
  /// Stage failed and emitted feedback; start the next refinement round.
  Refine,
  /// Stage failed without usable feedback; the search space is exhausted.
  Abort,
};

/// Stage 1: assign implementations to processes (greedy by desirability).
StageStatus select_implementations(MappingContext& ctx,
                                   const MapperConfig& config,
                                   MappingResult& result) {
  const Step1Outcome s1 = run_step1(ctx, config.step1);
  if (s1.success) return StageStatus::Proceed;
  ctx.trace.outcome = "step 1 failed: " + s1.failure;
  result.failure = ctx.trace.outcome;
  // Step 1 exhausts options monotonically; more rounds cannot help unless
  // feedback shrinks elsewhere, so stop here.
  return StageStatus::Abort;
}

/// Stage 2: refine the placement by local search (optional).
StageStatus refine_placement(MappingContext& ctx, const MapperConfig& config) {
  if (config.run_step2) {
    run_step2(ctx, config.step2);
  } else {
    ctx.trace.step2.initial_cost = ctx.trace.step2.final_cost =
        placement_cost(ctx.app, ctx.platform, ctx.mapping,
                       config.step2.cost_model, config.energy);
  }
  return StageStatus::Proceed;
}

/// Stage 3: assign channels to NoC paths.
StageStatus route_channels(MappingContext& ctx, const MapperConfig& config,
                           MappingResult& result, FeedbackSet& feedback) {
  const Step3Outcome s3 = run_step3(ctx, config.step3);
  if (s3.success) return StageStatus::Proceed;
  ctx.trace.outcome = "step 3 failed: " + s3.failure;
  result.failure = ctx.trace.outcome;
  if (!s3.feedback) return StageStatus::Abort;
  feedback.add(*s3.feedback);
  return StageStatus::Refine;
}

/// Stage 4: verify application constraints via dataflow analysis (optional).
StageStatus verify_constraints(MappingContext& ctx, const MapperConfig& config,
                               MappingResult& result, FeedbackSet& feedback) {
  if (!config.run_step4) return StageStatus::Proceed;
  const FeasibilityReport report = run_step4(ctx, config.step4);
  if (report.feasible) {
    result.achieved_period_ps = report.achieved_period_ps;
    result.latency_ps = report.latency_ps;
    return StageStatus::Proceed;
  }
  ctx.trace.outcome = "step 4 failed: " + report.failure;
  result.failure = ctx.trace.outcome;
  if (!report.feedback) return StageStatus::Abort;
  feedback.add(*report.feedback);
  return StageStatus::Refine;
}

}  // namespace

SpatialMapper::SpatialMapper(MapperConfig config)
    : config_(std::move(config)) {
  // cache_verification=false means exactly that — even an explicitly
  // passed engine is dropped, so every step 4 recomputes from scratch.
  config_.engine = config_.cache_verification
                       ? verify::ensure_engine(config_.run_step4,
                                               std::move(config_.engine))
                       : nullptr;
  // Same contract for step 3: cache_routes=false drops even an explicitly
  // passed cache.
  config_.route_cache =
      config_.cache_routes
          ? noc::ensure_route_cache(true, std::move(config_.route_cache))
          : nullptr;
}

std::string SpatialMapper::describe() const {
  return "paper's four-step run-time heuristic: desirability-ordered "
         "implementation selection, local-search placement, incremental "
         "routing, dataflow verification, with iterative refinement";
}

MappingResult SpatialMapper::map(const kpn::Application& app,
                                 const ResourceState& base) const {
  return map(app, base, nullptr);
}

MappingResult SpatialMapper::map(const kpn::Application& app,
                                 const ResourceState& base,
                                 const CancelToken* cancel) const {
  app.validate();

  MappingResult result;
  result.mapping = Mapping(app.process_count(), app.channel_count());

  FeedbackSet feedback;

  for (std::uint32_t round = 0; round < config_.max_refinement_rounds;
       ++round) {
    if (cancel != nullptr && cancel->stop_requested()) {
      result.cancelled = true;
      result.failure = "cancelled before refinement round " +
                       std::to_string(round + 1);
      return result;
    }
    result.rounds = round + 1;

    // Each round works on a private copy of the residual resources and a
    // fresh mapping, so a failed round leaves no partial reservations.
    ResourceState state = base;
    Mapping mapping(app.process_count(), app.channel_count());
    MappingTrace::Round& rt = result.trace.rounds.emplace_back();
    MappingContext ctx{app,    base.platform(), state,  feedback,
                       config_.energy, mapping, rt,
                       config_.engine.get(), cancel,
                       config_.route_cache.get()};

    StageStatus status = select_implementations(ctx, config_, result);
    if (status == StageStatus::Proceed) status = refine_placement(ctx, config_);
    if (status == StageStatus::Proceed) {
      status = route_channels(ctx, config_, result, feedback);
    }
    if (status == StageStatus::Proceed) {
      status = verify_constraints(ctx, config_, result, feedback);
    }

    if (status == StageStatus::Abort) return result;
    if (status == StageStatus::Refine) continue;

    rt.outcome = "feasible";
    result.success = true;
    result.failure.clear();
    result.mapping = std::move(mapping);
    result.energy_nj_per_symbol = total_energy_nj_per_symbol(
        app, base.platform(), result.mapping, config_.energy);
    return result;
  }

  if (result.failure.empty()) {
    result.failure = "refinement round limit reached";
  }
  return result;
}

}  // namespace rtsm::core
