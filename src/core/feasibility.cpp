#include "core/feasibility.hpp"

#include <utility>

#include "util/error.hpp"
#include "verify/engine.hpp"

namespace rtsm::core {

FeasibilityReport run_step4(MappingContext& ctx,
                            const FeasibilityOptions& options) {
  const kpn::Application& app = ctx.app;
  const arch::Platform& platform = ctx.platform;
  ResourceState& state = ctx.state;
  Mapping& mapping = ctx.mapping;
  Step4Trace& trace = ctx.trace.step4;

  FeasibilityReport report;
  trace.ran = true;

  verify::SizingKey key;
  key.target_period_ps =
      static_cast<std::uint64_t>(app.qos().symbol_period_ns) * 1000ull;
  key.capacity_limit = options.capacity_limit;
  key.simulation = options.simulation;

  // The structural part — CSDF expansion, self-timed buffer sizing, blame
  // derivation — goes through the shared verification engine when one is
  // attached; the engine serves repeated signatures from its cache. The
  // state-dependent checks below always run.
  std::shared_ptr<const verify::VerificationOutcome> outcome =
      ctx.engine != nullptr
          ? ctx.engine->verify(app, platform, mapping, key)
          : std::make_shared<const verify::VerificationOutcome>(
                verify::compute_verification(app, platform, mapping, key));

  report.achieved_period_ps = outcome->achieved_period_ps;
  report.latency_ps = outcome->latency_ps;
  trace.achieved_period_ps = outcome->achieved_period_ps;
  trace.latency_ps = outcome->latency_ps;

  if (!outcome->feasible) {
    report.failure = "throughput constraint violated: " + outcome->failure;
    report.feedback = outcome->feedback;
    trace.feasible = false;
    trace.message = report.failure;
    return report;
  }

  // Record buffers and charge their memory to the consuming tiles. A later
  // channel's misfit must roll the earlier reservations back: the caller
  // retries on the same state, which a partial booking would corrupt.
  trace.buffer_tokens = outcome->buffer_tokens;
  std::vector<std::pair<TileId, std::uint64_t>> reserved;
  reserved.reserve(app.channel_count());
  auto roll_back = [&] {
    for (const auto& [tile, bytes] : reserved) {
      state.release_tile(tile, 0.0, bytes, 0);
    }
  };
  for (const ChannelId cid : app.channel_ids()) {
    const std::uint32_t tokens = outcome->buffer_tokens[cid.value()];
    mapping.set_buffer_tokens(cid, tokens);

    const kpn::Channel& c = app.channel(cid);
    const TileId consumer_tile = mapping.tile_of(c.dst);
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(tokens) * c.token_bytes;
    if (!state.tile_fits(consumer_tile, 0.0, bytes, 0)) {
      roll_back();
      report.failure = "buffer of channel '" + c.name + "' (" +
                       std::to_string(bytes) + " B) does not fit tile '" +
                       platform.tile(consumer_tile).name + "'";
      FeedbackConstraint fc;
      fc.kind = FeedbackConstraint::Kind::ForbidTile;
      fc.process = c.dst;
      fc.tile = consumer_tile;
      fc.reason = report.failure;
      report.feedback = fc;
      trace.feasible = false;
      trace.message = report.failure;
      return report;
    }
    state.reserve_tile(consumer_tile, 0.0, bytes, 0);
    reserved.emplace_back(consumer_tile, bytes);
  }

  // Latency bound, when the ALS specifies one.
  if (app.qos().max_latency_ns) {
    const std::uint64_t bound_ps = *app.qos().max_latency_ns * 1000ull;
    if (outcome->latency_ps > bound_ps) {
      roll_back();
      report.failure = "latency " +
                       std::to_string(outcome->latency_ps / 1000) +
                       "ns exceeds bound " +
                       std::to_string(*app.qos().max_latency_ns) + "ns";
      trace.feasible = false;
      trace.message = report.failure;
      return report;
    }
  }

  report.feasible = true;
  trace.feasible = true;
  trace.message = "feasible";
  return report;
}

}  // namespace rtsm::core
