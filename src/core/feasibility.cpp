#include "core/feasibility.hpp"

#include <algorithm>

#include "core/csdf_expansion.hpp"
#include "csdf/buffer_sizing.hpp"
#include "util/error.hpp"

namespace rtsm::core {

namespace {

/// The stream endpoints: first KPN source process and first KPN sink
/// process (by id). The sink's iterations define the period.
struct Endpoints {
  ProcessId source;
  ProcessId sink;
};

Endpoints find_endpoints(const kpn::Application& app) {
  Endpoints ep;
  for (const ProcessId pid : app.process_ids()) {
    if (!ep.source.valid() && app.in_channels(pid).empty()) ep.source = pid;
    if (!ep.sink.valid() && app.out_channels(pid).empty()) ep.sink = pid;
  }
  require(ep.source.valid() && ep.sink.valid(),
          "application has no stream source/sink process");
  return ep;
}

/// When the period is unreachable, blame the slowest implementation: the
/// mapped process whose per-symbol work occupies the largest fraction of
/// the period on its tile.
std::optional<FeedbackConstraint> blame_slowest(const kpn::Application& app,
                                                const arch::Platform& platform,
                                                const Mapping& mapping) {
  ProcessId worst;
  double worst_util = 0.0;
  for (const ProcessId pid : app.process_ids()) {
    if (app.process(pid).is_fixture()) continue;
    const double util =
        impl_utilization(app, pid, mapping.impl_of(pid),
                         platform.tile_clock_hz(mapping.tile_of(pid)));
    if (util > worst_util) {
      worst_util = util;
      worst = pid;
    }
  }
  if (!worst.valid()) return std::nullopt;
  FeedbackConstraint fc;
  fc.kind = FeedbackConstraint::Kind::ForbidImplementation;
  fc.process = worst;
  fc.impl = mapping.impl_of(worst);
  fc.reason = "implementation '" +
              app.implementation(worst, mapping.impl_of(worst)).name +
              "' cannot sustain the period (utilization " +
              std::to_string(worst_util) + ")";
  return fc;
}

}  // namespace

FeasibilityReport run_step4(MappingContext& ctx,
                            const FeasibilityOptions& options) {
  const kpn::Application& app = ctx.app;
  const arch::Platform& platform = ctx.platform;
  ResourceState& state = ctx.state;
  Mapping& mapping = ctx.mapping;
  Step4Trace& trace = ctx.trace.step4;

  FeasibilityReport report;
  trace.ran = true;

  ExpandedGraph expanded = expand_mapping(app, platform, mapping);
  const Endpoints ep = find_endpoints(app);

  csdf::BufferSizingConfig cfg;
  cfg.target_period_ps =
      static_cast<std::uint64_t>(app.qos().symbol_period_ns) * 1000ull;
  cfg.reference = expanded.process_actor[ep.sink.value()];
  cfg.probe = csdf::LatencyProbe{expanded.process_actor[ep.source.value()],
                                 expanded.process_actor[ep.sink.value()]};
  cfg.simulation = options.simulation;
  cfg.capacity_limit = options.capacity_limit;

  const auto sizing =
      csdf::size_buffers(expanded.graph, expanded.consumer_edge, cfg);

  report.achieved_period_ps = sizing.achieved_period_ps;
  report.latency_ps = sizing.latency_ps;

  if (!sizing.feasible) {
    report.failure = "throughput constraint violated: " + sizing.message;
    report.feedback = blame_slowest(app, platform, mapping);
    trace.feasible = false;
    trace.message = report.failure;
    trace.achieved_period_ps = sizing.achieved_period_ps;
    return report;
  }

  // Record buffers and charge their memory to the consuming tiles.
  trace.buffer_tokens.assign(app.channel_count(), 0);
  for (const ChannelId cid : app.channel_ids()) {
    const std::uint32_t tokens = sizing.capacities[cid.value()];
    mapping.set_buffer_tokens(cid, tokens);
    trace.buffer_tokens[cid.value()] = tokens;

    const kpn::Channel& c = app.channel(cid);
    const TileId consumer_tile = mapping.tile_of(c.dst);
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(tokens) * c.token_bytes;
    if (!state.tile_fits(consumer_tile, 0.0, bytes, 0)) {
      report.failure = "buffer of channel '" + c.name + "' (" +
                       std::to_string(bytes) + " B) does not fit tile '" +
                       platform.tile(consumer_tile).name + "'";
      FeedbackConstraint fc;
      fc.kind = FeedbackConstraint::Kind::ForbidTile;
      fc.process = c.dst;
      fc.tile = consumer_tile;
      fc.reason = report.failure;
      report.feedback = fc;
      trace.feasible = false;
      trace.message = report.failure;
      return report;
    }
    state.reserve_tile(consumer_tile, 0.0, bytes, 0);
  }

  // Latency bound, when the ALS specifies one.
  if (app.qos().max_latency_ns) {
    const std::uint64_t bound_ps = *app.qos().max_latency_ns * 1000ull;
    if (sizing.latency_ps > bound_ps) {
      report.failure = "latency " + std::to_string(sizing.latency_ps / 1000) +
                       "ns exceeds bound " +
                       std::to_string(*app.qos().max_latency_ns) + "ns";
      trace.feasible = false;
      trace.message = report.failure;
      trace.achieved_period_ps = sizing.achieved_period_ps;
      trace.latency_ps = sizing.latency_ps;
      return report;
    }
  }

  report.feasible = true;
  trace.feasible = true;
  trace.achieved_period_ps = sizing.achieved_period_ps;
  trace.latency_ps = sizing.latency_ps;
  trace.message = "feasible";
  return report;
}

}  // namespace rtsm::core
