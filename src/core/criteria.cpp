#include "core/criteria.hpp"

#include "core/resource_state.hpp"
#include "noc/link_load.hpp"
#include "util/error.hpp"

namespace rtsm::core {

CriteriaVerdict check_adequate(const kpn::Application& app,
                               const arch::Platform& platform,
                               const Mapping& mapping) {
  for (const ProcessId pid : app.process_ids()) {
    const kpn::Process& p = app.process(pid);
    if (!mapping.is_assigned(pid)) {
      return {false, "process '" + p.name + "' is unassigned"};
    }
    const ImplementationId impl = mapping.impl_of(pid);
    if (impl.value() >= p.implementations.size()) {
      return {false, "process '" + p.name + "' has an invalid implementation"};
    }
    const TileId tile = mapping.tile_of(pid);
    const arch::Tile& t = platform.tile(tile);
    const std::string& impl_type = p.implementations[impl.value()].tile_type;
    if (platform.tile_type(t.type).name != impl_type) {
      return {false, "process '" + p.name + "' implementation targets '" +
                         impl_type + "' but sits on '" +
                         platform.tile_type(t.type).name + "' tile '" +
                         t.name + "'"};
    }
    if (p.pinned_tile && t.name != *p.pinned_tile) {
      return {false, "pinned process '" + p.name + "' sits on '" + t.name +
                         "' instead of '" + *p.pinned_tile + "'"};
    }
  }
  return {true, ""};
}

CriteriaVerdict check_path_structure(const kpn::Application& app,
                                     const arch::Platform& platform,
                                     const Mapping& mapping,
                                     ChannelId channel) {
  const kpn::Channel& c = app.channel(channel);
  const auto& opt_path = mapping.path(channel);
  if (!opt_path) return {false, "channel '" + c.name + "' is unrouted"};
  const noc::Path& path = *opt_path;

  const TileId src = mapping.tile_of(c.src);
  const TileId dst = mapping.tile_of(c.dst);
  if (path.src_tile != src || path.dst_tile != dst) {
    return {false, "channel '" + c.name + "': path endpoints disagree with "
                   "the process placement"};
  }
  if (src == dst) {
    if (!path.links.empty()) {
      return {false, "channel '" + c.name + "': intra-tile path has links"};
    }
    return {true, ""};
  }
  if (path.links.size() < 2) {
    return {false, "channel '" + c.name + "': inter-tile path too short"};
  }

  // Walk: inject from src tile, contiguous routers, eject into dst tile.
  const arch::Link& first = platform.link(path.links.front());
  if (first.kind != arch::LinkKind::Inject || first.tile != src) {
    return {false, "channel '" + c.name + "': path does not start with the "
                   "source tile's injection link"};
  }
  RouterId at = first.to_router;
  for (std::size_t i = 1; i + 1 < path.links.size(); ++i) {
    const arch::Link& l = platform.link(path.links[i]);
    if (l.kind != arch::LinkKind::RouterToRouter || l.from_router != at) {
      return {false, "channel '" + c.name + "': discontinuous path at link " +
                         std::to_string(i)};
    }
    at = l.to_router;
  }
  const arch::Link& last = platform.link(path.links.back());
  if (last.kind != arch::LinkKind::Eject || last.tile != dst ||
      last.from_router != at) {
    return {false, "channel '" + c.name + "': path does not end with the "
                   "destination tile's ejection link"};
  }
  return {true, ""};
}

CriteriaVerdict check_adherent(const kpn::Application& app,
                               const arch::Platform& platform,
                               const Mapping& mapping) {
  const CriteriaVerdict adequate = check_adequate(app, platform, mapping);
  if (!adequate.ok) return adequate;

  // Tile budgets: recompute from scratch for this application alone.
  ResourceState state(platform);
  for (const ProcessId pid : app.process_ids()) {
    const TileId tile = mapping.tile_of(pid);
    const ImplementationId impl = mapping.impl_of(pid);
    const double util =
        impl_utilization(app, pid, impl, platform.tile_clock_hz(tile));
    std::uint64_t memory =
        app.implementation(pid, impl).memory_bytes;
    // Consumer-side channel buffers live on the consuming tile.
    for (const ChannelId cid : app.in_channels(pid)) {
      if (const auto tokens = mapping.buffer_tokens(cid)) {
        memory += static_cast<std::uint64_t>(*tokens) *
                  app.channel(cid).token_bytes;
      }
    }
    if (!state.tile_fits(tile, util, memory)) {
      return {false, "tile '" + platform.tile(tile).name +
                         "' over-subscribed by process '" +
                         app.process(pid).name + "'"};
    }
    state.reserve_tile(tile, util, memory);
  }

  // Channel routing: structural and capacity checks.
  for (const ChannelId cid : app.channel_ids()) {
    const CriteriaVerdict path_ok =
        check_path_structure(app, platform, mapping, cid);
    if (!path_ok.ok) return path_ok;
    const double demand = app.tokens_per_second(cid);
    const noc::Path& path = *mapping.path(cid);
    for (const LinkId link : path.links) {
      if (!state.links().fits(link, demand)) {
        return {false, "channel '" + app.channel(cid).name +
                           "' over-subscribes link " +
                           std::to_string(link.value())};
      }
    }
    state.links().reserve_path(path, demand);
  }
  return {true, ""};
}

}  // namespace rtsm::core
