#pragma once

#include <vector>

#include "arch/platform.hpp"
#include "core/mapping.hpp"
#include "csdf/graph.hpp"
#include "kpn/application.hpp"

namespace rtsm::core {

/// The CSDF graph of a fully mapped application (the paper's Figure 3):
/// one actor per process (WCET = implementation phases at the tile's clock)
/// and one 4-cycle router actor per router traversed by each channel, with
/// finite hop buffers between routers and a sizable consumer-side buffer.
struct ExpandedGraph {
  csdf::Graph graph;

  /// Actor of each process (parallel to process ids).
  std::vector<ActorId> process_actor;

  /// Router actors of each channel, in path order (empty for intra-tile
  /// channels), parallel to channel ids.
  std::vector<std::vector<ActorId>> hop_actors;

  /// The consumer-side edge of each channel — the B_i buffers of Figure 3,
  /// sized by step 4. Parallel to channel ids.
  std::vector<EdgeId> consumer_edge;
};

/// Expands the mapped application. Requires all processes assigned and all
/// channels routed. Hop buffers get the platform's router input-buffer
/// depth; consumer edges start unbounded (step 4 assigns capacities).
[[nodiscard]] ExpandedGraph expand_mapping(const kpn::Application& app,
                                           const arch::Platform& platform,
                                           const Mapping& mapping);

}  // namespace rtsm::core
