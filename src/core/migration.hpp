#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/mapper.hpp"
#include "core/mapping.hpp"
#include "core/resource_state.hpp"
#include "energy/model.hpp"
#include "kpn/application.hpp"
#include "noc/route.hpp"

namespace rtsm::core {

/// One reversible edit of a *committed* mapping: move a single process to
/// another tile (possibly switching its implementation), or re-route /
/// re-size a single channel. A migration between two complete mappings is
/// the ordered delta list produced by diff_mappings(); applying the list
/// transfers exactly the difference between the two bookings, and rolling
/// the applied prefix back in reverse order restores the original state
/// bit-for-bit (modulo floating-point re-accumulation, which the
/// ResourceState comparisons already tolerate).
struct MappingDelta {
  enum class Kind {
    /// Re-assign one process: tile and/or implementation change. Transfers
    /// the tile booking (utilisation, implementation memory, process slot)
    /// and the bytes of the process's sized in-channel buffers, which live
    /// on the consumer's tile.
    MoveProcess,
    /// Re-route and/or re-size one channel: transfers the link
    /// reservations from the old path to the new one and adjusts the
    /// consumer-side buffer bytes.
    RerouteChannel,
  };

  Kind kind = Kind::MoveProcess;

  // -- MoveProcess ---------------------------------------------------------
  ProcessId process;
  ImplementationId impl_before;
  ImplementationId impl_after;
  TileId tile_before;
  TileId tile_after;

  // -- RerouteChannel ------------------------------------------------------
  ChannelId channel;
  std::optional<noc::Path> path_before;
  std::optional<noc::Path> path_after;
  std::optional<std::uint32_t> buffer_before;
  std::optional<std::uint32_t> buffer_after;

  /// The delta that undoes this one (before/after sides swapped).
  [[nodiscard]] MappingDelta inverse() const;
};

/// Decomposes the difference between two complete (assigned + routed)
/// mappings of @p app into process moves followed by channel reroutes.
/// Empty when the mappings are identical. Apply in the returned order;
/// roll back in reverse order — reroute deltas account the consumer-side
/// buffer bytes against the *post-move* tile of the consumer, so moves
/// must be applied first and rolled back last.
[[nodiscard]] std::vector<MappingDelta> diff_mappings(
    const kpn::Application& app, const Mapping& before, const Mapping& after);

/// Applies @p delta to @p state and @p mapping. Atomic: when the after
/// side does not fit the residual resources, @p state and @p mapping are
/// left exactly as they were and false is returned.
[[nodiscard]] bool apply_delta(ResourceState& state,
                               const kpn::Application& app, Mapping& mapping,
                               const MappingDelta& delta);

/// Undoes a previously applied @p delta (throws rtsm::Error if the inverse
/// no longer fits, which cannot happen when deltas of one migration are
/// rolled back in reverse application order).
void rollback_delta(ResourceState& state, const kpn::Application& app,
                    Mapping& mapping, const MappingDelta& delta);

/// Cost model of a live migration. Moving a running process means pausing
/// it, shipping its state image — the implementation's memory footprint
/// plus the tokens parked in its sized input buffers — across the NoC, and
/// resuming on the destination tile; the transfer crosses the same routers
/// a channel would, so the NoC parameters and energy model are reused.
struct MigrationCostModel {
  /// Fixed quiesce + restart overhead per moved process, microseconds.
  double pause_us = 25.0;

  /// NoC word size used to convert state bytes into transfer tokens.
  std::uint32_t token_bytes = 4;

  energy::EnergyModel energy;

  /// Wall-clock migration cost of transforming @p before into @p after:
  /// per moved process, pause_us + state tokens x router hop latency x
  /// hops between the tiles. Channel reroutes are reservation updates and
  /// cost nothing here.
  [[nodiscard]] double migration_us(const kpn::Application& app,
                                    const arch::Platform& platform,
                                    const Mapping& before,
                                    const Mapping& after) const;

  /// NoC energy of the same state transfers, nanojoule (hop + NI energy
  /// per token, as for channel traffic).
  [[nodiscard]] double migration_energy_nj(const kpn::Application& app,
                                           const arch::Platform& platform,
                                           const Mapping& before,
                                           const Mapping& after) const;
};

}  // namespace rtsm::core
