#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "noc/link_load.hpp"
#include "util/ids.hpp"

namespace rtsm::core {

/// A (partial) spatial mapping: the decision variables of the problem.
///
/// Per process: which implementation runs on which tile. Per channel: the
/// NoC path (set by step 3) and the buffer capacity at the consumer side
/// (set by step 4). A mapping starts empty and is filled in by the steps;
/// the criteria predicates in criteria.hpp classify its quality.
class Mapping {
 public:
  Mapping(std::size_t process_count, std::size_t channel_count);

  [[nodiscard]] std::size_t process_count() const {
    return assignments_.size();
  }
  [[nodiscard]] std::size_t channel_count() const { return paths_.size(); }

  /// True when @p process has an implementation and tile assigned.
  [[nodiscard]] bool is_assigned(ProcessId process) const;

  /// Assigns (or re-assigns) implementation and tile to @p process.
  void assign(ProcessId process, ImplementationId impl, TileId tile);

  /// Moves an assigned process to another tile, keeping the implementation.
  void move(ProcessId process, TileId tile);

  void unassign(ProcessId process);

  [[nodiscard]] ImplementationId impl_of(ProcessId process) const;
  [[nodiscard]] TileId tile_of(ProcessId process) const;

  /// All processes currently assigned.
  [[nodiscard]] bool all_assigned() const;

  void set_path(ChannelId channel, noc::Path path);
  void clear_paths();
  [[nodiscard]] const std::optional<noc::Path>& path(ChannelId channel) const;
  [[nodiscard]] bool all_routed() const;

  void set_buffer_tokens(ChannelId channel, std::uint32_t tokens);
  [[nodiscard]] std::optional<std::uint32_t> buffer_tokens(
      ChannelId channel) const;

 private:
  struct Assignment {
    ImplementationId impl;
    TileId tile;
  };

  void check_process(ProcessId process) const;
  void check_channel(ChannelId channel) const;

  std::vector<std::optional<Assignment>> assignments_;
  std::vector<std::optional<noc::Path>> paths_;
  std::vector<std::optional<std::uint32_t>> buffers_;
};

}  // namespace rtsm::core
