#include "core/fragmentation.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace rtsm::core {

namespace {

double memory_fraction(const ResourceState& state, TileId tile) {
  const std::uint64_t total = state.platform().tile(tile).memory_bytes;
  if (total == 0) return 1.0;
  return static_cast<double>(state.memory_used(tile)) /
         static_cast<double>(total);
}

}  // namespace

bool is_free_tile(const ResourceState& state, TileId tile,
                  const FragmentationOptions& options) {
  return state.processes_hosted(tile) == 0 &&
         state.utilization(tile) <= options.free_utilization_max &&
         memory_fraction(state, tile) <= options.free_memory_fraction_max;
}

double tile_occupancy(const ResourceState& state, TileId tile) {
  const arch::Tile& t = state.platform().tile(tile);
  const double slot_fraction =
      t.process_slots == 0
          ? 1.0
          : static_cast<double>(state.processes_hosted(tile)) /
                static_cast<double>(t.process_slots);
  const double occ = std::max(
      {state.utilization(tile), memory_fraction(state, tile), slot_fraction});
  return std::clamp(occ, 0.0, 1.0);
}

double mean_occupancy(const ResourceState& state) {
  const std::vector<TileId> tiles = state.platform().tile_ids();
  if (tiles.empty()) return 0.0;
  double sum = 0.0;
  for (const TileId tile : tiles) sum += tile_occupancy(state, tile);
  return sum / static_cast<double>(tiles.size());
}

FragmentationMetrics measure_fragmentation(
    const ResourceState& state, const FragmentationOptions& options) {
  const arch::Platform& platform = state.platform();
  const std::vector<TileId> tiles = platform.tile_ids();

  FragmentationMetrics m;
  m.tile_count = tiles.size();
  if (tiles.empty()) return m;

  std::vector<double> occupancy(tiles.size(), 0.0);
  std::vector<bool> is_free(tiles.size(), false);
  double occupancy_sq = 0.0;
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    occupancy[i] = tile_occupancy(state, tiles[i]);
    m.total_occupancy += occupancy[i];
    occupancy_sq += occupancy[i] * occupancy[i];
    if (occupancy[i] > 0.0) ++m.busy_tiles;

    is_free[i] = is_free_tile(state, tiles[i], options);
    if (is_free[i]) ++m.free_tiles;
  }

  // Largest connected free region. Tiles are adjacent when their routers
  // are at Manhattan distance <= 1 (tiles on the same router touch).
  // Free tiles are bucketed by router coordinate, so each BFS pop only
  // probes its four neighbour routers (and its own) instead of scanning
  // every tile.
  const std::size_t width = platform.mesh_width();
  const std::size_t height = platform.mesh_height();
  std::vector<std::vector<std::size_t>> by_router(width * height);
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    if (!is_free[i]) continue;
    const arch::Tile& t = platform.tile(tiles[i]);
    by_router[t.y * width + t.x].push_back(i);
  }
  std::vector<bool> visited(tiles.size(), false);
  std::vector<std::size_t> stack;
  for (std::size_t seed = 0; seed < tiles.size(); ++seed) {
    if (!is_free[seed] || visited[seed]) continue;
    std::size_t region = 0;
    stack.push_back(seed);
    visited[seed] = true;
    while (!stack.empty()) {
      const std::size_t i = stack.back();
      stack.pop_back();
      ++region;
      const arch::Tile& t = platform.tile(tiles[i]);
      const std::array<std::pair<std::int64_t, std::int64_t>, 5> around = {
          {{t.x, t.y},
           {static_cast<std::int64_t>(t.x) - 1, t.y},
           {static_cast<std::int64_t>(t.x) + 1, t.y},
           {t.x, static_cast<std::int64_t>(t.y) - 1},
           {t.x, static_cast<std::int64_t>(t.y) + 1}}};
      for (const auto& [x, y] : around) {
        if (x < 0 || y < 0 || x >= static_cast<std::int64_t>(width) ||
            y >= static_cast<std::int64_t>(height)) {
          continue;
        }
        for (const std::size_t j :
             by_router[static_cast<std::size_t>(y) * width +
                       static_cast<std::size_t>(x)]) {
          if (visited[j]) continue;
          visited[j] = true;
          stack.push_back(j);
        }
      }
    }
    m.largest_free_region = std::max(m.largest_free_region, region);
  }

  // Dispersion: distance from fully-packed occupancy. The quadratic mean
  // rewards every consolidation step, not just the one that empties a
  // tile (see the header).
  if (m.total_occupancy > 1e-12) {
    m.occupancy_dispersion =
        std::clamp(1.0 - occupancy_sq / m.total_occupancy, 0.0, 1.0);
  }

  // Scatter: what share of the free capacity is *not* reachable as the
  // single largest fully-free connected region.
  const double free_capacity =
      static_cast<double>(m.tile_count) - m.total_occupancy;
  if (free_capacity > 1e-9) {
    m.free_scatter = std::clamp(
        1.0 - static_cast<double>(m.largest_free_region) / free_capacity, 0.0,
        1.0);
  }
  return m;
}

}  // namespace rtsm::core
