#pragma once

#include <string>

#include "core/mapping_context.hpp"

namespace rtsm::core {

/// Options of mapping step 1 (assign implementations to processes).
struct Step1Options {
  /// Choose the next process by desirability (paper) instead of plain
  /// process order (ablation X3).
  bool desirability_order = true;

  /// Include a Manhattan-distance communication estimate towards already
  /// placed neighbours in the option cost. The paper's example ranks by
  /// processing energy alone, so the Table 2 bench disables this; both
  /// settings produce the paper's assignment (see DESIGN.md).
  bool comm_aware = true;

  /// Reject implementations whose compute utilisation exceeds a whole tile
  /// (they could never pass step 4). Disabling exercises the feedback loop.
  bool utilization_screen = true;
};

/// Outcome of step 1.
struct Step1Outcome {
  bool success = false;
  std::string failure;
};

/// Step 1: iteratively picks the most *desirable* unassigned process — the
/// one with the largest cost gap between its cheapest and second-cheapest
/// tile-type option — selects its cheapest admissible implementation, and
/// packs it first-fit onto a concrete tile (insertion order). Fixtures
/// (pinned processes) are bound to their tiles first.
///
/// On success every process is assigned in ctx.mapping with its
/// compute/memory demand reserved in ctx.state; decisions are appended to
/// ctx.trace.step1.
[[nodiscard]] Step1Outcome run_step1(MappingContext& ctx,
                                     const Step1Options& options = {});

}  // namespace rtsm::core
