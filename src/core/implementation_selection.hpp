#pragma once

#include <string>
#include <vector>

#include "arch/platform.hpp"
#include "core/feedback.hpp"
#include "core/mapping.hpp"
#include "core/resource_state.hpp"
#include "core/trace.hpp"
#include "energy/model.hpp"
#include "kpn/application.hpp"

namespace rtsm::core {

/// Options of mapping step 1 (assign implementations to processes).
struct Step1Options {
  /// Choose the next process by desirability (paper) instead of plain
  /// process order (ablation X3).
  bool desirability_order = true;

  /// Include a Manhattan-distance communication estimate towards already
  /// placed neighbours in the option cost. The paper's example ranks by
  /// processing energy alone, so the Table 2 bench disables this; both
  /// settings produce the paper's assignment (see DESIGN.md).
  bool comm_aware = true;

  /// Reject implementations whose compute utilisation exceeds a whole tile
  /// (they could never pass step 4). Disabling exercises the feedback loop.
  bool utilization_screen = true;
};

/// Outcome of step 1.
struct Step1Outcome {
  bool success = false;
  std::string failure;
};

/// Step 1: iteratively picks the most *desirable* unassigned process — the
/// one with the largest cost gap between its cheapest and second-cheapest
/// tile-type option — selects its cheapest admissible implementation, and
/// packs it first-fit onto a concrete tile (insertion order). Fixtures
/// (pinned processes) are bound to their tiles first.
///
/// On success every process of @p app is assigned in @p mapping and its
/// compute/memory demand reserved in @p state.
[[nodiscard]] Step1Outcome run_step1(const kpn::Application& app,
                                     const arch::Platform& platform,
                                     ResourceState& state,
                                     const FeedbackSet& feedback,
                                     const Step1Options& options,
                                     const energy::EnergyModel& energy,
                                     Mapping& mapping,
                                     std::vector<Step1Record>& trace);

}  // namespace rtsm::core
