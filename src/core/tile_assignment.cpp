#include "core/tile_assignment.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "util/error.hpp"

namespace rtsm::core {

namespace {

/// A candidate reassignment: either a move of one process to a free-capacity
/// tile of the same type, or a swap of two processes across same-type tiles.
struct Candidate {
  ProcessId a;          // moved / first swapped process
  ProcessId b;          // swap partner (invalid for moves)
  TileId target;        // move target (invalid for swaps)
  double cost_after = 0.0;
  std::string describe(const kpn::Application& app,
                       const arch::Platform& platform) const {
    if (b.valid()) {
      return "swap " + app.process(a).name + " <-> " + app.process(b).name;
    }
    return "move " + app.process(a).name + " -> " + platform.tile(target).name;
  }
};

/// Per-process booked load, needed to transfer reservations between tiles.
struct Load {
  double util = 0.0;
  std::uint64_t mem = 0;
};

std::pair<ProcessId, ProcessId> ordered_pair(ProcessId x, ProcessId y) {
  return x < y ? std::pair{x, y} : std::pair{y, x};
}

Load load_of(const kpn::Application& app, const arch::Platform& platform,
             const Mapping& mapping, ProcessId pid) {
  const ImplementationId impl = mapping.impl_of(pid);
  const TileId tile = mapping.tile_of(pid);
  return {claimed_utilization(
              impl_utilization(app, pid, impl, platform.tile_clock_hz(tile))),
          app.implementation(pid, impl).memory_bytes};
}

class Search {
 public:
  Search(MappingContext& ctx, const Step2Options& options)
      : app_(ctx.app), platform_(ctx.platform), state_(ctx.state),
        feedback_(ctx.feedback), options_(options), energy_(ctx.energy),
        mapping_(ctx.mapping), trace_(ctx.trace.step2) {
    for (const ProcessId pid : app_.process_ids()) {
      if (!app_.process(pid).is_fixture()) movable_.push_back(pid);
    }
  }

  void run() {
    trace_.initial_cost = cost();
    trace_.initial_assignment = assignment_snapshot();
    switch (options_.strategy) {
      case Step2Strategy::BestImprovement:
        run_best_improvement();
        break;
      case Step2Strategy::SequentialSweep:
        run_sequential_sweep();
        break;
    }
    trace_.final_cost = cost();
  }

 private:
  double cost() const {
    return placement_cost(app_, platform_, mapping_, options_.cost_model,
                          energy_);
  }

  std::vector<std::string> assignment_snapshot() const {
    std::vector<std::string> snap;
    snap.reserve(app_.process_count());
    for (const ProcessId pid : app_.process_ids()) {
      snap.push_back(mapping_.is_assigned(pid)
                         ? platform_.tile(mapping_.tile_of(pid)).name
                         : "-");
    }
    return snap;
  }

  bool move_fits(ProcessId pid, TileId target) const {
    const Load l = load_of(app_, platform_, mapping_, pid);
    return state_.tile_fits(target, l.util, l.mem);
  }

  /// Checks a swap is capacity-feasible by tentatively releasing both sides.
  bool swap_fits(ProcessId a, ProcessId b) {
    const TileId ta = mapping_.tile_of(a);
    const TileId tb = mapping_.tile_of(b);
    const Load la = load_of(app_, platform_, mapping_, a);
    const Load lb = load_of(app_, platform_, mapping_, b);
    state_.release_tile(ta, la.util, la.mem);
    state_.release_tile(tb, lb.util, lb.mem);
    const bool ok = state_.tile_fits(tb, la.util, la.mem) &&
                    state_.tile_fits(ta, lb.util, lb.mem);
    state_.reserve_tile(ta, la.util, la.mem);
    state_.reserve_tile(tb, lb.util, lb.mem);
    return ok;
  }

  double evaluate_move(ProcessId pid, TileId target) {
    const TileId original = mapping_.tile_of(pid);
    mapping_.move(pid, target);
    const double c = cost();
    mapping_.move(pid, original);
    return c;
  }

  double evaluate_swap(ProcessId a, ProcessId b) {
    const TileId ta = mapping_.tile_of(a);
    const TileId tb = mapping_.tile_of(b);
    mapping_.move(a, tb);
    mapping_.move(b, ta);
    const double c = cost();
    mapping_.move(a, ta);
    mapping_.move(b, tb);
    return c;
  }

  void apply(const Candidate& cand) {
    if (cand.b.valid()) {
      const TileId ta = mapping_.tile_of(cand.a);
      const TileId tb = mapping_.tile_of(cand.b);
      const Load la = load_of(app_, platform_, mapping_, cand.a);
      const Load lb = load_of(app_, platform_, mapping_, cand.b);
      state_.release_tile(ta, la.util, la.mem);
      state_.release_tile(tb, lb.util, lb.mem);
      state_.reserve_tile(tb, la.util, la.mem);
      state_.reserve_tile(ta, lb.util, lb.mem);
      mapping_.move(cand.a, tb);
      mapping_.move(cand.b, ta);
    } else {
      const TileId ta = mapping_.tile_of(cand.a);
      const Load la = load_of(app_, platform_, mapping_, cand.a);
      state_.release_tile(ta, la.util, la.mem);
      state_.reserve_tile(cand.target, la.util, la.mem);
      mapping_.move(cand.a, cand.target);
    }
  }

  /// All admissible candidates for @p pid; swaps with partners in
  /// @p skip_pairs are omitted (sweep-level deduplication).
  std::vector<Candidate> candidates_for(
      ProcessId pid,
      const std::set<std::pair<ProcessId, ProcessId>>& skip_pairs) {
    std::vector<Candidate> result;
    const TileId current = mapping_.tile_of(pid);
    const TileTypeId type = platform_.tile(current).type;

    for (const TileId tile : platform_.tiles_of_type(type)) {
      if (tile == current) continue;
      if (feedback_.tile_forbidden(pid, tile)) continue;
      if (!move_fits(pid, tile)) continue;
      result.push_back(
          Candidate{pid, ProcessId{}, tile, evaluate_move(pid, tile)});
    }
    for (const ProcessId other : movable_) {
      if (other == pid) continue;
      const TileId other_tile = mapping_.tile_of(other);
      if (other_tile == current) continue;
      if (platform_.tile(other_tile).type != type) continue;
      if (skip_pairs.contains(ordered_pair(pid, other))) continue;
      if (feedback_.tile_forbidden(pid, other_tile) ||
          feedback_.tile_forbidden(other, current)) {
        continue;
      }
      if (!swap_fits(pid, other)) continue;
      result.push_back(
          Candidate{pid, other, TileId{}, evaluate_swap(pid, other)});
    }
    return result;
  }

  /// Records an iteration row. The paper's Table 2 shows the *attempted*
  /// placement even for reverted candidates, so for reverts the candidate is
  /// applied to the mapping (positions only) just long enough to snapshot.
  void record(std::uint32_t iteration, const Candidate& cand,
              double cost_before, bool kept) {
    std::vector<std::string> snapshot;
    if (kept) {
      snapshot = assignment_snapshot();
    } else {
      const TileId ta = mapping_.tile_of(cand.a);
      if (cand.b.valid()) {
        const TileId tb = mapping_.tile_of(cand.b);
        mapping_.move(cand.a, tb);
        mapping_.move(cand.b, ta);
        snapshot = assignment_snapshot();
        mapping_.move(cand.a, ta);
        mapping_.move(cand.b, tb);
      } else {
        mapping_.move(cand.a, cand.target);
        snapshot = assignment_snapshot();
        mapping_.move(cand.a, ta);
      }
    }
    trace_.records.push_back(Step2Record{
        iteration, cand.describe(app_, platform_), cost_before,
        cand.cost_after, kept, std::move(snapshot)});
  }

  void run_best_improvement() {
    std::uint32_t iteration = 0;
    while (iteration < options_.max_iterations) {
      const double before = cost();
      std::optional<Candidate> best;
      std::set<std::pair<ProcessId, ProcessId>> seen_pairs;
      for (const ProcessId pid : movable_) {
        for (Candidate& cand : candidates_for(pid, seen_pairs)) {
          if (cand.b.valid()) seen_pairs.insert(ordered_pair(cand.a, cand.b));
          if (!best || cand.cost_after < best->cost_after) best = cand;
        }
      }
      if (!best) return;
      ++iteration;
      if (best->cost_after < before - options_.min_gain) {
        apply(*best);
        record(iteration, *best, before, true);
      } else {
        record(iteration, *best, before, false);
        return;
      }
    }
  }

  void run_sequential_sweep() {
    std::uint32_t iteration = 0;
    bool improved_in_sweep = true;
    while (improved_in_sweep && iteration < options_.max_iterations) {
      improved_in_sweep = false;
      std::set<std::pair<ProcessId, ProcessId>> evaluated_pairs;
      for (const ProcessId pid : movable_) {
        if (iteration >= options_.max_iterations) break;
        auto cands = candidates_for(pid, evaluated_pairs);
        for (const Candidate& cand : cands) {
          if (cand.b.valid()) {
            evaluated_pairs.insert(ordered_pair(cand.a, cand.b));
          }
        }
        if (cands.empty()) continue;
        const auto best = std::min_element(
            cands.begin(), cands.end(),
            [](const Candidate& x, const Candidate& y) {
              return x.cost_after < y.cost_after;
            });
        const double before = cost();
        ++iteration;
        if (best->cost_after < before - options_.min_gain) {
          apply(*best);
          record(iteration, *best, before, true);
          improved_in_sweep = true;
        } else {
          record(iteration, *best, before, false);
        }
      }
    }
  }

  const kpn::Application& app_;
  const arch::Platform& platform_;
  ResourceState& state_;
  const FeedbackSet& feedback_;
  const Step2Options& options_;
  const energy::EnergyModel& energy_;
  Mapping& mapping_;
  Step2Trace& trace_;
  std::vector<ProcessId> movable_;
};

}  // namespace

void run_step2(MappingContext& ctx, const Step2Options& options) {
  require(ctx.mapping.all_assigned(),
          "step 2 requires a complete step-1 mapping");
  Search search(ctx, options);
  search.run();
}

}  // namespace rtsm::core
