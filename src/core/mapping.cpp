#include "core/mapping.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rtsm::core {

Mapping::Mapping(std::size_t process_count, std::size_t channel_count)
    : assignments_(process_count),
      paths_(channel_count),
      buffers_(channel_count) {}

bool Mapping::is_assigned(ProcessId process) const {
  check_process(process);
  return assignments_[process.value()].has_value();
}

void Mapping::assign(ProcessId process, ImplementationId impl, TileId tile) {
  check_process(process);
  require(impl.valid() && tile.valid(), "Mapping::assign with invalid ids");
  assignments_[process.value()] = Assignment{impl, tile};
}

void Mapping::move(ProcessId process, TileId tile) {
  check_process(process);
  require(assignments_[process.value()].has_value(),
          "Mapping::move of unassigned process");
  require(tile.valid(), "Mapping::move to invalid tile");
  assignments_[process.value()]->tile = tile;
}

void Mapping::unassign(ProcessId process) {
  check_process(process);
  assignments_[process.value()].reset();
}

ImplementationId Mapping::impl_of(ProcessId process) const {
  check_process(process);
  require(assignments_[process.value()].has_value(),
          "Mapping::impl_of unassigned process");
  return assignments_[process.value()]->impl;
}

TileId Mapping::tile_of(ProcessId process) const {
  check_process(process);
  require(assignments_[process.value()].has_value(),
          "Mapping::tile_of unassigned process");
  return assignments_[process.value()]->tile;
}

bool Mapping::all_assigned() const {
  return std::all_of(assignments_.begin(), assignments_.end(),
                     [](const auto& a) { return a.has_value(); });
}

void Mapping::set_path(ChannelId channel, noc::Path path) {
  check_channel(channel);
  paths_[channel.value()] = std::move(path);
}

void Mapping::clear_paths() {
  for (auto& p : paths_) p.reset();
  for (auto& b : buffers_) b.reset();
}

const std::optional<noc::Path>& Mapping::path(ChannelId channel) const {
  check_channel(channel);
  return paths_[channel.value()];
}

bool Mapping::all_routed() const {
  return std::all_of(paths_.begin(), paths_.end(),
                     [](const auto& p) { return p.has_value(); });
}

void Mapping::set_buffer_tokens(ChannelId channel, std::uint32_t tokens) {
  check_channel(channel);
  buffers_[channel.value()] = tokens;
}

std::optional<std::uint32_t> Mapping::buffer_tokens(ChannelId channel) const {
  check_channel(channel);
  return buffers_[channel.value()];
}

void Mapping::check_process(ProcessId process) const {
  require(process.valid() && process.value() < assignments_.size(),
          "Mapping: process id out of range");
}

void Mapping::check_channel(ChannelId channel) const {
  require(channel.valid() && channel.value() < paths_.size(),
          "Mapping: channel id out of range");
}

}  // namespace rtsm::core
