#pragma once

#include <cstdint>

#include "core/cost.hpp"
#include "core/mapping_context.hpp"

namespace rtsm::core {

/// Exploration strategy of step 2's local search.
enum class Step2Strategy {
  /// Evaluate all candidates every iteration and apply the single best one
  /// (Section 3: "only the best reassignment is actually performed").
  BestImprovement,
  /// Round-robin over processes in pipeline order, applying each process's
  /// best candidate when it improves and reverting otherwise. This is the
  /// behaviour Table 2 of the paper logs (see DESIGN.md assumption 4).
  SequentialSweep,
};

/// Options of mapping step 2 (assign processes to tiles).
struct Step2Options {
  Step2Strategy strategy = Step2Strategy::BestImprovement;

  /// Cost function; the paper's Table 2 uses plain hop counts.
  CommCostModel cost_model = CommCostModel::HopCount;

  /// Stop when a candidate improves by less than this (the paper's
  /// "minimum gain" threshold). Strict improvement by default.
  double min_gain = 1e-12;

  /// Hard cap on evaluated candidates (the paper's "maximum number of
  /// iterations").
  std::uint32_t max_iterations = 10'000;
};

/// Step 2: improves the greedy first-fit placement by local search. Moves
/// relocate a process to another tile of the *same type* with spare
/// capacity; swaps exchange two processes sitting on distinct tiles of the
/// same type. Same-type reassignment preserves adequacy by construction.
/// Fixtures never move. Tile reservations in ctx.state are updated to
/// follow the placement; the search is logged to ctx.trace.step2.
void run_step2(MappingContext& ctx, const Step2Options& options = {});

}  // namespace rtsm::core
