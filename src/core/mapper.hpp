#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "arch/platform.hpp"
#include "core/cancellation.hpp"
#include "core/mapping.hpp"
#include "core/resource_state.hpp"
#include "core/trace.hpp"
#include "kpn/application.hpp"

namespace rtsm::verify {
class Engine;
}  // namespace rtsm::verify

namespace rtsm::noc {
class RouteCache;
}  // namespace rtsm::noc

namespace rtsm::core {

/// Result of a mapping request.
struct MappingResult {
  /// True when a feasible (or, for mappers that skip dataflow verification,
  /// adherent) mapping was found.
  bool success = false;

  Mapping mapping{0, 0};

  /// Total energy per symbol of the returned mapping (processing +
  /// communication), nanojoule.
  double energy_nj_per_symbol = 0.0;

  /// Verified sustained period / latency from step 4, ps (0 when the mapper
  /// does not run the dataflow analysis).
  std::uint64_t achieved_period_ps = 0;
  std::uint64_t latency_ps = 0;

  /// Refinement rounds (or attempts) executed.
  std::uint32_t rounds = 0;

  /// The mapper stopped early because its CancelToken fired (a portfolio
  /// race cancelled a loser, or a time budget expired). Always paired with
  /// success == false; distinguishes "gave up on request" from "no feasible
  /// placement exists" in per-strategy statistics.
  bool cancelled = false;

  std::string failure;

  MappingTrace trace;
};

/// Strategy interface of every spatial mapper in the repository: the paper's
/// run-time heuristic (SpatialMapper) and all design-time baselines
/// implement it, so benchmarks, the runtime manager, and tests can select
/// mappers interchangeably (by name via MapperRegistry).
///
/// Contract: map() plans @p app against the residual resources in @p base
/// without modifying @p base. A successful result's mapping must be
/// committable into @p base (see mapping_fits()); commit_mapping() performs
/// the actual reservation.
class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Stable registry name, e.g. "spatial" or "annealing".
  [[nodiscard]] virtual std::string name() const = 0;

  /// One-line human-readable description of the strategy.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Maps @p app against the residual resources in @p base (the run-time
  /// scenario: other applications are already running). @p base is not
  /// modified; commit the result with commit_mapping() to admit the
  /// application.
  [[nodiscard]] virtual MappingResult map(const kpn::Application& app,
                                          const ResourceState& base) const = 0;

  /// map() under cooperative cancellation: mappers that support it
  /// (spatial, genetic, ...) poll @p cancel at round granularity and
  /// return early with result.cancelled set; the default ignores the token
  /// and runs to completion. @p cancel may be null. Used by portfolio
  /// admission to cancel racing losers and enforce a shared time budget.
  [[nodiscard]] virtual MappingResult map(const kpn::Application& app,
                                          const ResourceState& base,
                                          const CancelToken* cancel) const {
    (void)cancel;
    return map(app, base);
  }

  /// Maps @p app onto an otherwise idle @p platform.
  [[nodiscard]] MappingResult map(const kpn::Application& app,
                                  const arch::Platform& platform) const;

  /// The step-4 verification engine this mapper runs its dataflow checks
  /// through, when it has one — lets runtime managers and benches surface
  /// cache hit/miss/events-saved statistics without knowing the concrete
  /// mapper. Null for mappers that never run step 4.
  [[nodiscard]] virtual std::shared_ptr<verify::Engine> verification_engine()
      const {
    return nullptr;
  }

  /// The shared NoC route cache this mapper's step 3 routes through, when
  /// it has one — the same surfacing idiom as verification_engine(), so
  /// runtime managers and benches can report route-cache hit rates without
  /// knowing the concrete mapper. Null for mappers that route uncached (or
  /// never route).
  [[nodiscard]] virtual std::shared_ptr<noc::RouteCache> route_cache() const {
    return nullptr;
  }
};

/// Books a successful mapping's resources (tile utilisation, implementation
/// and buffer memory, link reservations) into @p state.
void commit_mapping(ResourceState& state, const kpn::Application& app,
                    const Mapping& mapping);

/// Releases everything commit_mapping() booked.
void release_mapping(ResourceState& state, const kpn::Application& app,
                     const Mapping& mapping);

/// True when @p mapping's demands (compute, memory, process slots, link
/// throughput) all fit the residual capacity of @p base, i.e.
/// commit_mapping() would succeed. Used to screen plans from design-time
/// mappers that ignore the residual state, and as a commit precondition by
/// the runtime manager.
[[nodiscard]] bool mapping_fits(const ResourceState& base,
                                const kpn::Application& app,
                                const Mapping& mapping);

}  // namespace rtsm::core
