#pragma once

#include <optional>
#include <string>

#include "core/mapping_context.hpp"

namespace rtsm::core {

/// Options of mapping step 3 (assign channels to paths).
struct Step3Options {
  /// Route heavy channels first (the paper's non-increasing throughput
  /// order); disabling is an ablation (X3).
  bool sort_by_throughput = true;

  /// Use dimension-ordered XY routes instead of adaptive shortest paths
  /// (baseline for the routing ablation).
  bool xy_routing = false;
};

/// Outcome of step 3.
struct Step3Outcome {
  bool success = false;
  std::string failure;
  /// Constraint for earlier steps when a channel was unroutable.
  std::optional<FeedbackConstraint> feedback;
};

/// Step 3: sorts channels by non-increasing throughput demand and routes
/// them incrementally; each route must have residual capacity for the
/// channel on every link, and its reservation is committed in ctx.state
/// before the next channel is routed. Routes are logged to ctx.trace.step3.
[[nodiscard]] Step3Outcome run_step3(MappingContext& ctx,
                                     const Step3Options& options = {});

}  // namespace rtsm::core
