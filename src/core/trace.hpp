#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace rtsm::core {

/// One implementation-selection decision of step 1.
struct Step1Record {
  std::string process;
  std::string implementation;
  std::string tile_type;
  std::string tile;
  /// Gap between cheapest and second-cheapest tile-type option; infinity
  /// (rendered as "default") when only one type remained.
  double desirability = 0.0;
  bool defaulted = false;
};

/// One candidate evaluation of the step-2 local search
/// (a row of the paper's Table 2).
struct Step2Record {
  std::uint32_t iteration = 0;
  /// E.g. "swap Pfx.rem <-> Frq.off" or "move Inv.OFDM -> MONTIUM2".
  std::string action;
  double cost_before = 0.0;
  double cost_after = 0.0;
  bool kept = false;
  /// Tile name per process at the END of this iteration (after keep/revert),
  /// parallel to the application's process ids.
  std::vector<std::string> assignment;
};

/// Step-2 summary.
struct Step2Trace {
  double initial_cost = 0.0;
  double final_cost = 0.0;
  std::vector<std::string> initial_assignment;
  std::vector<Step2Record> records;
};

/// One routed channel of step 3, in routing order.
struct Step3Record {
  std::string channel;
  double demand_tokens_per_s = 0.0;
  /// Router indices traversed (empty for intra-tile channels).
  std::vector<std::uint32_t> routers;
  std::size_t rr_hops = 0;
  bool success = false;
};

/// Step-4 feasibility summary.
struct Step4Trace {
  bool ran = false;
  bool feasible = false;
  std::uint64_t achieved_period_ps = 0;
  std::uint64_t latency_ps = 0;
  /// Computed buffer capacity (tokens) per channel, parallel to channel ids.
  std::vector<std::uint32_t> buffer_tokens;
  std::string message;
};

/// Full trace of one mapping attempt (all refinement rounds).
struct MappingTrace {
  /// One entry per refinement round, each holding the four step traces.
  struct Round {
    std::vector<Step1Record> step1;
    Step2Trace step2;
    std::vector<Step3Record> step3;
    Step4Trace step4;
    std::string outcome;  // "feasible", or the failure + feedback issued
  };
  std::vector<Round> rounds;
};

}  // namespace rtsm::core
