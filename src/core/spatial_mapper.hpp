#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/channel_routing.hpp"
#include "core/feasibility.hpp"
#include "core/implementation_selection.hpp"
#include "core/mapper.hpp"
#include "core/tile_assignment.hpp"
#include "energy/model.hpp"
#include "noc/route_cache.hpp"
#include "verify/engine.hpp"

namespace rtsm::core {

/// Configuration of the four-step run-time spatial mapper.
struct MapperConfig {
  Step1Options step1;
  Step2Options step2;
  Step3Options step3;
  FeasibilityOptions step4;

  /// Skip the step-2 local search (ablation X3: greedy first-fit only).
  bool run_step2 = true;

  /// Skip the dataflow feasibility check (only for experiments that measure
  /// placement quality in isolation; such mappings are adherent, not
  /// verified feasible).
  bool run_step4 = true;

  /// Maximum refinement rounds driven by feedback (Section 3's iterative
  /// refinement).
  std::uint32_t max_refinement_rounds = 8;

  energy::EnergyModel energy;

  /// Shared step-4 verification engine. When null and cache_verification
  /// is true the mapper builds a private engine at construction, so every
  /// map() call of this instance — each refinement round, each admission
  /// of a runtime manager holding it — shares one cache. Pass an engine
  /// explicitly to share it across mappers. Thread-safe.
  std::shared_ptr<verify::Engine> engine;

  /// Disable step-4 caching/warm-starting entirely (every verification
  /// recomputes from scratch; results are identical, only slower).
  bool cache_verification = true;

  /// Shared NoC route cache for step 3. When null and cache_routes is true
  /// the mapper builds a private cache at construction (same idiom as
  /// `engine`); pass one explicitly to share it across mappers. Cached
  /// routes are validated against the live load on every lookup, so
  /// results are bit-identical to uncached routing. Thread-safe.
  std::shared_ptr<noc::RouteCache> route_cache;

  /// Disable step-3 route caching entirely (every route searched from
  /// scratch; results are identical, only slower).
  bool cache_routes = true;
};

/// The paper's run-time spatial mapping algorithm: hierarchical search with
/// iterative refinement. Each round runs the four pipeline stages over a
/// shared MappingContext; when a stage fails it emits feedback constraints
/// and the driver re-runs from step 1 with the reduced search space, up to
/// max_refinement_rounds.
class SpatialMapper final : public Mapper {
 public:
  explicit SpatialMapper(MapperConfig config = {});

  [[nodiscard]] const MapperConfig& config() const { return config_; }

  [[nodiscard]] std::string name() const override { return "spatial"; }
  [[nodiscard]] std::string describe() const override;

  using Mapper::map;
  [[nodiscard]] MappingResult map(const kpn::Application& app,
                                  const ResourceState& base) const override;

  /// Cancellation-aware map(): the token is polled before every refinement
  /// round, so a cancelled call returns within one round.
  [[nodiscard]] MappingResult map(const kpn::Application& app,
                                  const ResourceState& base,
                                  const CancelToken* cancel) const override;

  [[nodiscard]] std::shared_ptr<verify::Engine> verification_engine()
      const override {
    return config_.engine;
  }

  [[nodiscard]] std::shared_ptr<noc::RouteCache> route_cache() const override {
    return config_.route_cache;
  }

 private:
  MapperConfig config_;
};

}  // namespace rtsm::core
