#pragma once

#include <cstdint>
#include <string>

#include "arch/platform.hpp"
#include "core/channel_routing.hpp"
#include "core/feasibility.hpp"
#include "core/implementation_selection.hpp"
#include "core/mapping.hpp"
#include "core/tile_assignment.hpp"
#include "core/trace.hpp"
#include "energy/model.hpp"
#include "kpn/application.hpp"

namespace rtsm::core {

/// Configuration of the four-step run-time spatial mapper.
struct MapperConfig {
  Step1Options step1;
  Step2Options step2;
  Step3Options step3;
  FeasibilityOptions step4;

  /// Skip the step-2 local search (ablation X3: greedy first-fit only).
  bool run_step2 = true;

  /// Skip the dataflow feasibility check (only for experiments that measure
  /// placement quality in isolation; such mappings are adherent, not
  /// verified feasible).
  bool run_step4 = true;

  /// Maximum refinement rounds driven by feedback (Section 3's iterative
  /// refinement).
  std::uint32_t max_refinement_rounds = 8;

  energy::EnergyModel energy;
};

/// Result of a mapping request.
struct MappingResult {
  /// True when a feasible (or, with run_step4 off, adherent) mapping was
  /// found.
  bool success = false;

  Mapping mapping{0, 0};

  /// Total energy per symbol of the returned mapping (processing +
  /// communication), nanojoule.
  double energy_nj_per_symbol = 0.0;

  /// Verified sustained period / latency from step 4, ps.
  std::uint64_t achieved_period_ps = 0;
  std::uint64_t latency_ps = 0;

  /// Refinement rounds executed.
  std::uint32_t rounds = 0;

  std::string failure;

  MappingTrace trace;
};

/// The paper's run-time spatial mapping algorithm: hierarchical search with
/// iterative refinement. Runs steps 1-4; when a step fails it emits feedback
/// constraints and the driver re-runs from step 1 with the reduced search
/// space, up to max_refinement_rounds.
class SpatialMapper {
 public:
  explicit SpatialMapper(MapperConfig config = {});

  [[nodiscard]] const MapperConfig& config() const { return config_; }

  /// Maps @p app onto an otherwise idle @p platform.
  [[nodiscard]] MappingResult map(const kpn::Application& app,
                                  const arch::Platform& platform) const;

  /// Maps @p app against the residual resources in @p base (the run-time
  /// scenario: other applications are already running). @p base is not
  /// modified; commit the result with commit_mapping() to admit the
  /// application.
  [[nodiscard]] MappingResult map(const kpn::Application& app,
                                  const ResourceState& base) const;

 private:
  MapperConfig config_;
};

/// Books a successful mapping's resources (tile utilisation, implementation
/// and buffer memory, link reservations) into @p state.
void commit_mapping(ResourceState& state, const kpn::Application& app,
                    const Mapping& mapping);

/// Releases everything commit_mapping() booked.
void release_mapping(ResourceState& state, const kpn::Application& app,
                     const Mapping& mapping);

}  // namespace rtsm::core
