#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/mapper.hpp"

namespace rtsm::core {

/// Name-indexed factory of Mapper strategies.
///
/// Benchmarks, examples and tests select mappers by string instead of
/// hard-coded types: the built-in set lives in baselines::builtin_mappers(),
/// and a bench may populate its own registry with ad-hoc variants (e.g. the
/// X3 ablations). Registration order is preserved, which keeps bench tables
/// stable.
class MapperRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Mapper>()>;

  /// Registers @p factory under @p name. A duplicate name is a *recorded*
  /// error, not an exception: the first registration wins, the rejected one
  /// is appended to errors(). (Registries are often assembled from several
  /// sources — built-ins plus bench variants — and a collision should show
  /// up in diagnostics without tearing down the whole assembly. It
  /// previously threw, which benches worked around inconsistently.)
  /// Returns whether the registration was accepted.
  bool add(const std::string& name, std::string description, Factory factory);

  /// Registration errors recorded so far (duplicate names), in occurrence
  /// order. Empty on a cleanly assembled registry.
  [[nodiscard]] const std::vector<std::string>& errors() const {
    return errors_;
  }

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Instantiates the mapper registered under @p name. Throws rtsm::Error
  /// listing the known names when @p name is unknown.
  [[nodiscard]] std::unique_ptr<Mapper> create(const std::string& name) const;

  /// Description given at registration. Throws rtsm::Error when unknown.
  [[nodiscard]] const std::string& description(const std::string& name) const;

  /// All registered names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    std::string description;
    Factory factory;
  };

  [[nodiscard]] const Entry* find(const std::string& name) const;

  std::vector<Entry> entries_;
  std::vector<std::string> errors_;
};

}  // namespace rtsm::core
