#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/mapper.hpp"

namespace rtsm::core {

/// Name-indexed factory of Mapper strategies.
///
/// Benchmarks, examples and tests select mappers by string instead of
/// hard-coded types: the built-in set lives in baselines::builtin_mappers(),
/// and a bench may populate its own registry with ad-hoc variants (e.g. the
/// X3 ablations). Registration order is preserved, which keeps bench tables
/// stable.
class MapperRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Mapper>()>;

  /// Registers @p factory under @p name. Throws rtsm::Error on duplicates.
  void add(const std::string& name, std::string description, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Instantiates the mapper registered under @p name. Throws rtsm::Error
  /// listing the known names when @p name is unknown.
  [[nodiscard]] std::unique_ptr<Mapper> create(const std::string& name) const;

  /// Description given at registration. Throws rtsm::Error when unknown.
  [[nodiscard]] const std::string& description(const std::string& name) const;

  /// All registered names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    std::string description;
    Factory factory;
  };

  [[nodiscard]] const Entry* find(const std::string& name) const;

  std::vector<Entry> entries_;
};

}  // namespace rtsm::core
