#include "core/resource_state.hpp"

#include "util/approx.hpp"
#include "util/error.hpp"

namespace rtsm::core {

namespace {
// Tolerates float accumulation when many small reservations sum to ~1.0.
constexpr double kUtilSlack = 1e-9;
}  // namespace

ResourceState::ResourceState(const arch::Platform& platform)
    : platform_(&platform),
      utilization_(platform.tile_count(), 0.0),
      memory_used_(platform.tile_count(), 0),
      processes_(platform.tile_count(), 0),
      links_(platform) {}

double ResourceState::utilization(TileId tile) const {
  check_tile(tile);
  return utilization_[tile.value()];
}

std::uint64_t ResourceState::memory_used(TileId tile) const {
  check_tile(tile);
  return memory_used_[tile.value()];
}

std::uint64_t ResourceState::memory_free(TileId tile) const {
  check_tile(tile);
  const std::uint64_t total = platform_->tile(tile).memory_bytes;
  const std::uint64_t used = memory_used_[tile.value()];
  return used >= total ? 0 : total - used;
}

std::uint32_t ResourceState::processes_hosted(TileId tile) const {
  check_tile(tile);
  return processes_[tile.value()];
}

bool ResourceState::tile_fits(TileId tile, double extra_utilization,
                              std::uint64_t extra_memory,
                              std::uint32_t extra_processes) const {
  check_tile(tile);
  if (utilization_[tile.value()] + extra_utilization > 1.0 + kUtilSlack) {
    return false;
  }
  if (processes_[tile.value()] + extra_processes >
      platform_->tile(tile).process_slots) {
    return false;
  }
  return extra_memory <= memory_free(tile);
}

void ResourceState::reserve_tile(TileId tile, double utilization,
                                 std::uint64_t memory,
                                 std::uint32_t processes) {
  require(utilization >= 0.0, "negative utilization reservation");
  require(tile_fits(tile, utilization, memory, processes),
          "tile over-reservation on '" + platform_->tile(tile).name + "'");
  utilization_[tile.value()] += utilization;
  memory_used_[tile.value()] += memory;
  processes_[tile.value()] += processes;
}

void ResourceState::release_tile(TileId tile, double utilization,
                                 std::uint64_t memory,
                                 std::uint32_t processes) {
  check_tile(tile);
  double& u = utilization_[tile.value()];
  u = u > utilization ? u - utilization : 0.0;
  std::uint64_t& m = memory_used_[tile.value()];
  m = m > memory ? m - memory : 0;
  std::uint32_t& p = processes_[tile.value()];
  p = p > processes ? p - processes : 0;
}

void ResourceState::saturate_tile(TileId tile) {
  check_tile(tile);
  utilization_[tile.value()] = 1.0;
  memory_used_[tile.value()] = platform_->tile(tile).memory_bytes;
  processes_[tile.value()] = platform_->tile(tile).process_slots;
}

bool ResourceState::approx_equals(const ResourceState& other,
                                  double rel_eps) const {
  if (platform_ != other.platform_) return false;
  if (memory_used_ != other.memory_used_ || processes_ != other.processes_) {
    return false;
  }
  for (std::size_t i = 0; i < utilization_.size(); ++i) {
    if (!approx_equal(utilization_[i], other.utilization_[i], rel_eps)) {
      return false;
    }
  }
  return links_.approx_equals(other.links_, rel_eps);
}

std::size_t ResourceState::idle_tile_count() const {
  std::size_t idle = 0;
  for (const double u : utilization_) {
    if (u == 0.0) ++idle;
  }
  return idle;
}

void ResourceState::check_tile(TileId tile) const {
  require(tile.valid() && tile.value() < utilization_.size(),
          "ResourceState: tile id out of range");
}

double impl_time_per_symbol_ns(const kpn::Application& app, ProcessId process,
                               ImplementationId impl, std::uint64_t clock_hz) {
  require(clock_hz > 0, "impl_time_per_symbol_ns: zero clock");
  const kpn::Implementation& im = app.implementation(process, impl);
  const std::uint64_t cycles =
      app.cycles_per_symbol(process, impl) * im.cycle_wcet_cc();
  return static_cast<double>(cycles) * 1e9 / static_cast<double>(clock_hz);
}

double impl_utilization(const kpn::Application& app, ProcessId process,
                        ImplementationId impl, std::uint64_t clock_hz) {
  return impl_time_per_symbol_ns(app, process, impl, clock_hz) /
         static_cast<double>(app.qos().symbol_period_ns);
}

}  // namespace rtsm::core
