#include "core/resource_state.hpp"

#include <atomic>

#include "util/approx.hpp"
#include "util/error.hpp"

namespace rtsm::core {

namespace {

/// Process-wide identity source; never reused, so stale sync tokens can be
/// told apart from a new state at a recycled address.
std::uint64_t next_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

ResourceState::ResourceState(const arch::Platform& platform)
    : platform_(&platform),
      utilization_(platform.tile_count(), 0.0),
      memory_used_(platform.tile_count(), 0),
      processes_(platform.tile_count(), 0),
      links_(platform),
      uid_(next_uid()) {
  links_.set_listener(this);
}

ResourceState::ResourceState(const ResourceState& other)
    : platform_(other.platform_),
      utilization_(other.utilization_),
      memory_used_(other.memory_used_),
      processes_(other.processes_),
      links_(other.links_),  // copy drops other's listener
      uid_(next_uid()),
      synced_from_(&other),
      synced_uid_(other.uid_),
      synced_version_(other.version_) {
  links_.set_listener(this);
}

ResourceState& ResourceState::operator=(const ResourceState& other) {
  if (this == &other) return *this;
  platform_ = other.platform_;
  utilization_ = other.utilization_;
  memory_used_ = other.memory_used_;
  processes_ = other.processes_;
  links_ = other.links_;  // LinkLoad assignment keeps our own listener
  // The value jumped arbitrarily: our old journal entries no longer
  // describe transitions of this content, so observers synced with *us*
  // must fall back to a full copy.
  ++version_;
  journal_start_version_ = version_;
  synced_from_ = &other;
  synced_uid_ = other.uid_;
  synced_version_ = other.version_;
  return *this;
}

double ResourceState::utilization(TileId tile) const {
  check_tile(tile);
  return utilization_[tile.value()];
}

std::uint64_t ResourceState::memory_used(TileId tile) const {
  check_tile(tile);
  return memory_used_[tile.value()];
}

std::uint64_t ResourceState::memory_free(TileId tile) const {
  check_tile(tile);
  const std::uint64_t total = platform_->tile(tile).memory_bytes;
  const std::uint64_t used = memory_used_[tile.value()];
  return used >= total ? 0 : total - used;
}

std::uint32_t ResourceState::processes_hosted(TileId tile) const {
  check_tile(tile);
  return processes_[tile.value()];
}

bool ResourceState::tile_fits(TileId tile, double extra_utilization,
                              std::uint64_t extra_memory,
                              std::uint32_t extra_processes) const {
  check_tile(tile);
  if (utilization_[tile.value()] + extra_utilization > 1.0 + kUtilSlack) {
    return false;
  }
  if (processes_[tile.value()] + extra_processes >
      platform_->tile(tile).process_slots) {
    return false;
  }
  return extra_memory <= memory_free(tile);
}

void ResourceState::reserve_tile(TileId tile, double utilization,
                                 std::uint64_t memory,
                                 std::uint32_t processes) {
  require(utilization >= 0.0, "negative utilization reservation");
  if (!tile_fits(tile, utilization, memory, processes)) {
    // Branch before formatting: building the message eagerly would cost a
    // heap allocation per reserve on the journal-replay hot path.
    throw Error("tile over-reservation on '" + platform_->tile(tile).name +
                "'");
  }
  utilization_[tile.value()] += utilization;
  memory_used_[tile.value()] += memory;
  processes_[tile.value()] += processes;
  note_mutation({JournalEntry::Op::ReserveTile, tile.value(), utilization,
                 memory, processes});
}

void ResourceState::release_tile(TileId tile, double utilization,
                                 std::uint64_t memory,
                                 std::uint32_t processes) {
  check_tile(tile);
  double& u = utilization_[tile.value()];
  u = u > utilization ? u - utilization : 0.0;
  std::uint64_t& m = memory_used_[tile.value()];
  m = m > memory ? m - memory : 0;
  std::uint32_t& p = processes_[tile.value()];
  p = p > processes ? p - processes : 0;
  note_mutation({JournalEntry::Op::ReleaseTile, tile.value(), utilization,
                 memory, processes});
}

void ResourceState::saturate_tile(TileId tile) {
  check_tile(tile);
  utilization_[tile.value()] = 1.0;
  memory_used_[tile.value()] = platform_->tile(tile).memory_bytes;
  processes_[tile.value()] = platform_->tile(tile).process_slots;
  note_mutation({JournalEntry::Op::SaturateTile, tile.value(), 0.0, 0, 0});
}

bool ResourceState::approx_equals(const ResourceState& other,
                                  double rel_eps) const {
  if (platform_ != other.platform_) return false;
  if (memory_used_ != other.memory_used_ || processes_ != other.processes_) {
    return false;
  }
  for (std::size_t i = 0; i < utilization_.size(); ++i) {
    if (!approx_equal(utilization_[i], other.utilization_[i], rel_eps)) {
      return false;
    }
  }
  return links_.approx_equals(other.links_, rel_eps);
}

std::size_t ResourceState::idle_tile_count() const {
  std::size_t idle = 0;
  for (const double u : utilization_) {
    if (u == 0.0) ++idle;
  }
  return idle;
}

void ResourceState::enable_journal(std::size_t capacity) {
  require(capacity > 0, "ResourceState: journal capacity must be positive");
  journal_.assign(capacity, JournalEntry{});
  journal_capacity_ = capacity;
  journal_start_version_ = version_;  // journal starts out empty
}

void ResourceState::note_mutation(const JournalEntry& entry) {
  if (journal_capacity_ > 0) {
    journal_[version_ % journal_capacity_] = entry;
    if (version_ - journal_start_version_ >= journal_capacity_) {
      // The ring wrapped: the slot just written held the oldest entry.
      journal_start_version_ = version_ + 1 - journal_capacity_;
    }
  }
  ++version_;
  synced_from_ = nullptr;
}

void ResourceState::apply(const JournalEntry& entry) {
  switch (entry.op) {
    case JournalEntry::Op::ReserveTile:
      reserve_tile(TileId{entry.index}, entry.amount, entry.memory,
                   entry.processes);
      break;
    case JournalEntry::Op::ReleaseTile:
      release_tile(TileId{entry.index}, entry.amount, entry.memory,
                   entry.processes);
      break;
    case JournalEntry::Op::SaturateTile:
      saturate_tile(TileId{entry.index});
      break;
    case JournalEntry::Op::LinkReserve:
      links_.reserve(LinkId{entry.index}, entry.amount);
      break;
    case JournalEntry::Op::LinkRelease:
      links_.release(LinkId{entry.index}, entry.amount);
      break;
  }
}

void ResourceState::refresh_snapshot_into(ResourceState& scratch) const {
  require(&scratch != this, "refresh_snapshot_into: scratch is the source");
  const bool delta_ok = scratch.synced_from_ == this &&
                        scratch.synced_uid_ == uid_ &&
                        journal_capacity_ > 0 &&
                        scratch.synced_version_ >= journal_start_version_ &&
                        scratch.synced_version_ <= version_;
  if (!delta_ok) {
    scratch = *this;  // operator= re-arms the sync token
    ++refresh_stats_.full_copies;
    return;
  }
  // Replay [scratch.synced_version_, version_) through the same public
  // mutators that produced the entries. By induction the scratch tracks the
  // source bit-for-bit: identical pre-state, identical arguments, identical
  // code path. Replay clears the scratch's token, so re-arm it afterwards.
  for (std::uint64_t v = scratch.synced_version_; v < version_; ++v) {
    scratch.apply(journal_[v % journal_capacity_]);
    ++refresh_stats_.entries_replayed;
  }
  scratch.synced_from_ = this;
  scratch.synced_uid_ = uid_;
  scratch.synced_version_ = version_;
  ++refresh_stats_.delta_refreshes;
}

void ResourceState::on_link_reserve(LinkId link, double demand) {
  note_mutation({JournalEntry::Op::LinkReserve, link.value(), demand, 0, 0});
}

void ResourceState::on_link_release(LinkId link, double demand) {
  note_mutation({JournalEntry::Op::LinkRelease, link.value(), demand, 0, 0});
}

void ResourceState::check_tile(TileId tile) const {
  require(tile.valid() && tile.value() < utilization_.size(),
          "ResourceState: tile id out of range");
}

double impl_time_per_symbol_ns(const kpn::Application& app, ProcessId process,
                               ImplementationId impl, std::uint64_t clock_hz) {
  require(clock_hz > 0, "impl_time_per_symbol_ns: zero clock");
  const kpn::Implementation& im = app.implementation(process, impl);
  const std::uint64_t cycles =
      app.cycles_per_symbol(process, impl) * im.cycle_wcet_cc();
  return static_cast<double>(cycles) * 1e9 / static_cast<double>(clock_hz);
}

double impl_utilization(const kpn::Application& app, ProcessId process,
                        ImplementationId impl, std::uint64_t clock_hz) {
  return impl_time_per_symbol_ns(app, process, impl, clock_hz) /
         static_cast<double>(app.qos().symbol_period_ns);
}

}  // namespace rtsm::core
