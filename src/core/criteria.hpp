#pragma once

#include <string>

#include "arch/platform.hpp"
#include "core/mapping.hpp"
#include "kpn/application.hpp"

namespace rtsm::core {

/// Result of a mapping-quality predicate, with a reason when violated.
struct CriteriaVerdict {
  bool ok = false;
  std::string reason;

  explicit operator bool() const { return ok; }
};

/// ADEQUATE (paper, Section 3): every process is assigned, and for each the
/// chosen implementation exists and targets the type of its assigned tile;
/// pinned processes sit on their pinned tile.
[[nodiscard]] CriteriaVerdict check_adequate(const kpn::Application& app,
                                             const arch::Platform& platform,
                                             const Mapping& mapping);

/// ADHERENT: adequate, and no resource is over-subscribed by this
/// application alone — per-tile compute utilisation <= 1 and memory
/// (implementations + consumer-side channel buffers, when sized) within
/// bounds, every channel routed on a connected path whose links all carry
/// the accumulated demand within capacity.
[[nodiscard]] CriteriaVerdict check_adherent(const kpn::Application& app,
                                             const arch::Platform& platform,
                                             const Mapping& mapping);

/// Structural path validation: the path connects the channel's mapped tiles
/// through adjacent routers (used by adherence and tests).
[[nodiscard]] CriteriaVerdict check_path_structure(
    const kpn::Application& app, const arch::Platform& platform,
    const Mapping& mapping, ChannelId channel);

}  // namespace rtsm::core
