#include "core/channel_routing.hpp"

#include <algorithm>

#include "noc/route.hpp"
#include "noc/route_cache.hpp"
#include "util/error.hpp"

namespace rtsm::core {

Step3Outcome run_step3(MappingContext& ctx, const Step3Options& options) {
  const kpn::Application& app = ctx.app;
  const arch::Platform& platform = ctx.platform;
  ResourceState& state = ctx.state;
  Mapping& mapping = ctx.mapping;
  require(mapping.all_assigned(), "step 3 requires a complete placement");

  std::vector<ChannelId> order = app.channel_ids();
  if (options.sort_by_throughput) {
    std::stable_sort(order.begin(), order.end(),
                     [&](ChannelId a, ChannelId b) {
                       return app.tokens_per_second(a) >
                              app.tokens_per_second(b);
                     });
  }

  for (const ChannelId cid : order) {
    const kpn::Channel& c = app.channel(cid);
    const TileId src = mapping.tile_of(c.src);
    const TileId dst = mapping.tile_of(c.dst);
    const double demand = app.tokens_per_second(cid);

    const noc::RoutePolicy policy = options.xy_routing
                                        ? noc::RoutePolicy::Xy
                                        : noc::RoutePolicy::Shortest;
    const auto path =
        ctx.route_cache != nullptr
            ? ctx.route_cache->route(state.links(), policy, src, dst, demand)
            : (options.xy_routing
                   ? noc::route_xy(state.links(), src, dst, demand)
                   : noc::route_shortest(state.links(), src, dst, demand));

    Step3Record record;
    record.channel = c.name;
    record.demand_tokens_per_s = demand;
    record.success = path.has_value();
    if (path) {
      for (const RouterId r : path->routers(platform)) {
        record.routers.push_back(r.value());
      }
      record.rr_hops = path->rr_hops(platform);
    }
    ctx.trace.step3.push_back(record);

    if (!path) {
      Step3Outcome out;
      out.failure = "channel '" + c.name + "' (demand " +
                    std::to_string(demand) + " tokens/s) is unroutable";
      // Feed back a placement constraint: move the movable endpoint away
      // from its congested region next round.
      const bool dst_movable = !app.process(c.dst).is_fixture();
      const bool src_movable = !app.process(c.src).is_fixture();
      if (dst_movable || src_movable) {
        FeedbackConstraint fc;
        fc.kind = FeedbackConstraint::Kind::ForbidTile;
        fc.process = dst_movable ? c.dst : c.src;
        fc.tile = dst_movable ? dst : src;
        fc.reason = out.failure;
        out.feedback = fc;
      }
      return out;
    }

    state.links().reserve_path(*path, demand);
    mapping.set_path(cid, *path);
  }
  return {true, "", std::nullopt};
}

}  // namespace rtsm::core
