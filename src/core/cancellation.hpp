#pragma once

#include <atomic>
#include <chrono>

namespace rtsm::core {

/// Cooperative cancellation for long-running mapper calls.
///
/// A token combines an explicit stop flag (request_stop(), e.g. a portfolio
/// race cancelling the losers once a winner committed) with an optional
/// wall-clock deadline fixed at construction (a shared time budget).
/// Mappers poll stop_requested() at natural checkpoints — a refinement
/// round, a GA generation — and return an unsuccessful, `cancelled` result;
/// they never abandon partial reservations, because every round works on
/// private copies anyway. Polling is optional: a mapper that ignores its
/// token simply runs to completion, it is just cancelled later.
///
/// Thread-safety: request_stop()/stop_requested() may race freely (the flag
/// is atomic); the deadline is immutable after construction. Tokens are
/// shared by pointer (see MappingContext::cancel) and are not copyable.
class CancelToken {
 public:
  /// A token that never expires on its own (cancel via request_stop()).
  CancelToken() = default;

  /// A token that additionally expires at @p deadline.
  explicit CancelToken(std::chrono::steady_clock::time_point deadline)
      : deadline_(deadline), has_deadline_(true) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed) || deadline_expired();
  }

  /// True when the deadline (if any) has passed — regardless of whether
  /// request_stop() was also called. Lets a portfolio race distinguish a
  /// strategy cancelled by the budget from one cancelled by a winner.
  [[nodiscard]] bool deadline_expired() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  [[nodiscard]] bool has_deadline() const { return has_deadline_; }
  [[nodiscard]] std::chrono::steady_clock::time_point deadline() const {
    return deadline_;
  }

 private:
  std::atomic<bool> stop_{false};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

}  // namespace rtsm::core
