#pragma once

#include "arch/platform.hpp"
#include "core/cancellation.hpp"
#include "core/feedback.hpp"
#include "core/mapping.hpp"
#include "core/resource_state.hpp"
#include "core/trace.hpp"
#include "energy/model.hpp"
#include "kpn/application.hpp"

namespace rtsm::verify {
class Engine;
}  // namespace rtsm::verify

namespace rtsm::noc {
class RouteCache;
}  // namespace rtsm::noc

namespace rtsm::core {

/// Shared working set of one mapping-pipeline round.
///
/// The four pipeline stages (steps 1-4) operate on the same application,
/// platform, residual resources, feedback constraints, partial mapping and
/// trace; the context passes them once instead of through long per-step
/// parameter lists. All members are references: the owner — a SpatialMapper
/// refinement round, a baseline, or a test — keeps the objects and controls
/// their lifetime.
struct MappingContext {
  const kpn::Application& app;
  const arch::Platform& platform;

  /// Residual resources this round maps against; stages reserve into it as
  /// they make decisions, so a later stage sees what earlier ones booked.
  ResourceState& state;

  /// Constraints accumulated by earlier refinement rounds (empty on the
  /// first round).
  const FeedbackSet& feedback;

  const energy::EnergyModel& energy;

  /// The mapping under construction.
  Mapping& mapping;

  /// Trace sink of the current round.
  MappingTrace::Round& trace;

  /// Optional shared step-4 verification engine (cached CSDF expansion +
  /// warm-started buffer sizing). Null = every run_step4 recomputes from
  /// scratch; results are identical either way.
  verify::Engine* engine = nullptr;

  /// Optional cooperative cancellation (see core/cancellation.hpp): a
  /// portfolio race stopping the losers, or a shared time budget. Stages
  /// and mappers poll it at round granularity; null = never cancelled.
  const CancelToken* cancel = nullptr;

  /// Optional shared NoC route cache for step 3 (idle-network routes
  /// validated against the live load). Null = every route is searched from
  /// scratch; results are identical either way. Last member so existing
  /// positional initializers stay valid.
  noc::RouteCache* route_cache = nullptr;
};

}  // namespace rtsm::core
