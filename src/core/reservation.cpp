#include "core/reservation.hpp"

#include "util/error.hpp"

namespace rtsm::core {

RuntimeResourceManager::RuntimeResourceManager(const arch::Platform& platform)
    : state_(platform) {}

RuntimeResourceManager::StartResult RuntimeResourceManager::start(
    const kpn::Application& app, const SpatialMapper& mapper) {
  StartResult result;
  result.mapping = mapper.map(app, state_);
  if (!result.mapping.success) return result;

  commit_mapping(state_, app, result.mapping.mapping);
  result.admitted = true;
  result.id = AppId{next_id_++};
  running_.emplace(result.id,
                   Running{std::make_shared<kpn::Application>(app),
                           result.mapping.mapping,
                           result.mapping.energy_nj_per_symbol});
  return result;
}

void RuntimeResourceManager::stop(AppId id) {
  const auto it = running_.find(id);
  require(it != running_.end(), "stop of unknown application id");
  release_mapping(state_, *it->second.app, it->second.mapping);
  running_.erase(it);
}

double RuntimeResourceManager::total_energy_nj_per_symbol() const {
  double total = 0.0;
  for (const auto& [id, run] : running_) total += run.energy_nj;
  return total;
}

}  // namespace rtsm::core
