#pragma once

#include <string>
#include <vector>

namespace rtsm::core {

/// How a portfolio race picks its winner.
enum class PortfolioSelection {
  /// Commit the first strategy that produces a feasible plan; cancel the
  /// rest. Minimizes admission latency.
  FirstFeasible,
  /// Run every strategy (budget permitting) and commit the feasible plan
  /// with the lowest energy per symbol (ties broken by configuration
  /// order). Maximizes mapping quality.
  BestEnergy,
};

[[nodiscard]] inline const char* to_string(PortfolioSelection selection) {
  switch (selection) {
    case PortfolioSelection::FirstFeasible:
      return "first-feasible";
    case PortfolioSelection::BestEnergy:
      return "best-energy";
  }
  return "?";
}

/// Configuration of portfolio admission: on a shape-library miss, race the
/// named registry strategies on independent ResourceState snapshots and
/// commit the winner through the ordinary two-phase validate/commit path.
/// The serial manager races sequentially under the shared budget; the
/// concurrent manager fans the strategies out across its worker pool and
/// cancels the losers cooperatively. An empty strategy list disables the
/// portfolio (the manager's single primary mapper runs as before).
struct PortfolioOptions {
  /// MapperRegistry names to race, in priority order: the first strategy is
  /// raced first (serial) / owned by the admitting worker (concurrent), and
  /// ties in BestEnergy selection resolve to the earliest name.
  std::vector<std::string> strategies;

  PortfolioSelection selection = PortfolioSelection::FirstFeasible;

  /// Shared wall-clock budget of one race, microseconds; <= 0 = unbounded.
  /// When the budget expires before any strategy produced a feasible plan,
  /// the race reports budget exhaustion and the manager falls back to one
  /// unbudgeted run of its primary mapper (counted in
  /// AdmissionStats::portfolio_fallbacks).
  double budget_us = 0.0;

  [[nodiscard]] bool enabled() const { return !strategies.empty(); }
};

}  // namespace rtsm::core
