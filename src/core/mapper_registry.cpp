#include "core/mapper_registry.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace rtsm::core {

bool MapperRegistry::add(const std::string& name, std::string description,
                         Factory factory) {
  require(!name.empty(), "mapper registration with empty name");
  require(static_cast<bool>(factory),
          "mapper '" + name + "' registered without a factory");
  if (find(name) != nullptr) {
    // First registration wins; the collision is recorded, not thrown — a
    // registry assembled from several sources should surface the problem
    // without losing the entries that registered cleanly.
    errors_.push_back("duplicate mapper name '" + name + "'");
    return false;
  }
  entries_.push_back(Entry{name, std::move(description), std::move(factory)});
  return true;
}

bool MapperRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

std::unique_ptr<Mapper> MapperRegistry::create(const std::string& name) const {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    throw Error("unknown mapper '" + name + "'; registered: " +
                join(names(), ", "));
  }
  return entry->factory();
}

const std::string& MapperRegistry::description(const std::string& name) const {
  const Entry* entry = find(name);
  require(entry != nullptr, "unknown mapper '" + name + "'");
  return entry->description;
}

std::vector<std::string> MapperRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

const MapperRegistry::Entry* MapperRegistry::find(
    const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

}  // namespace rtsm::core
