#include "verify/engine.hpp"

#include <utility>

#include "core/csdf_expansion.hpp"
#include "core/resource_state.hpp"
#include "csdf/buffer_sizing.hpp"
#include "util/error.hpp"

namespace rtsm::verify {

namespace {

/// The stream endpoints: first KPN source process and first KPN sink
/// process (by id). The sink's iterations define the period.
struct Endpoints {
  ProcessId source;
  ProcessId sink;
};

Endpoints find_endpoints(const kpn::Application& app) {
  Endpoints ep;
  for (const ProcessId pid : app.process_ids()) {
    if (!ep.source.valid() && app.in_channels(pid).empty()) ep.source = pid;
    if (!ep.sink.valid() && app.out_channels(pid).empty()) ep.sink = pid;
  }
  require(ep.source.valid() && ep.sink.valid(),
          "application has no stream source/sink process");
  return ep;
}

/// When the period is unreachable, blame the slowest implementation: the
/// mapped process whose per-symbol work occupies the largest fraction of
/// the period on its tile.
std::optional<core::FeedbackConstraint> blame_slowest(
    const kpn::Application& app, const arch::Platform& platform,
    const core::Mapping& mapping) {
  ProcessId worst;
  double worst_util = 0.0;
  for (const ProcessId pid : app.process_ids()) {
    if (app.process(pid).is_fixture()) continue;
    const double util = core::impl_utilization(
        app, pid, mapping.impl_of(pid),
        platform.tile_clock_hz(mapping.tile_of(pid)));
    if (util > worst_util) {
      worst_util = util;
      worst = pid;
    }
  }
  if (!worst.valid()) return std::nullopt;
  core::FeedbackConstraint fc;
  fc.kind = core::FeedbackConstraint::Kind::ForbidImplementation;
  fc.process = worst;
  fc.impl = mapping.impl_of(worst);
  fc.reason = "implementation '" +
              app.implementation(worst, mapping.impl_of(worst)).name +
              "' cannot sustain the period (utilization " +
              std::to_string(worst_util) + ")";
  return fc;
}

}  // namespace

VerificationOutcome compute_verification(
    const kpn::Application& app, const arch::Platform& platform,
    const core::Mapping& mapping, const SizingKey& key,
    const std::vector<std::uint32_t>* warm_hint) {
  core::ExpandedGraph expanded = core::expand_mapping(app, platform, mapping);
  const Endpoints ep = find_endpoints(app);

  csdf::BufferSizingConfig cfg;
  cfg.target_period_ps = key.target_period_ps;
  cfg.reference = expanded.process_actor[ep.sink.value()];
  cfg.probe = csdf::LatencyProbe{expanded.process_actor[ep.source.value()],
                                 expanded.process_actor[ep.sink.value()]};
  cfg.simulation = key.simulation;
  cfg.capacity_limit = key.capacity_limit;
  if (warm_hint != nullptr && warm_hint->size() == app.channel_count()) {
    cfg.warm_start = *warm_hint;
  }

  const auto sizing =
      csdf::size_buffers(expanded.graph, expanded.consumer_edge, cfg);

  VerificationOutcome out;
  out.feasible = sizing.feasible;
  out.achieved_period_ps = sizing.achieved_period_ps;
  out.latency_ps = sizing.latency_ps;
  out.simulations = sizing.simulations;
  out.events_simulated = sizing.events_simulated;
  out.warm_started = sizing.warm_started;
  if (sizing.feasible) {
    out.buffer_tokens = sizing.capacities;
  } else {
    out.failure = sizing.message;
    out.feedback = blame_slowest(app, platform, mapping);
  }
  return out;
}

Engine::Engine(EngineOptions options)
    : options_(options), cache_(options.max_entries) {}

std::shared_ptr<const VerificationOutcome> Engine::verify(
    const kpn::Application& app, const arch::Platform& platform,
    const core::Mapping& mapping, const SizingKey& key) {
  const MappingSignature signature =
      MappingSignature::of(app, platform, mapping, key);

  if (options_.cache) {
    if (auto cached = cache_.find(signature)) {
      const audit::LockGuard lock(mutex_);
      ++stats_.lookups;
      ++stats_.hits;
      stats_.simulations_saved += cached->simulations;
      stats_.events_saved += cached->events_simulated;
      return cached;
    }
  }

  // Miss: fetch the warm hint for this application skeleton, compute, and
  // publish. The mapper runs outside the engine lock — only the hint fetch
  // and the bookkeeping are serialized.
  const std::uint64_t skeleton = app_skeleton_hash(app);
  std::vector<std::uint32_t> hint;
  bool have_hint = false;
  if (options_.warm_start) {
    const audit::LockGuard lock(mutex_);
    const auto it = warm_hints_.find(skeleton);
    if (it != warm_hints_.end()) {
      hint = it->second;
      have_hint = true;
    }
  }

  auto outcome = std::make_shared<VerificationOutcome>(
      compute_verification(app, platform, mapping, key,
                           have_hint ? &hint : nullptr));

  {
    const audit::LockGuard lock(mutex_);
    ++stats_.lookups;
    ++stats_.misses;
    if (outcome->warm_started) ++stats_.warm_started;
    stats_.simulations += outcome->simulations;
    stats_.events_simulated += outcome->events_simulated;
    if (options_.warm_start && outcome->feasible) {
      const auto [it, inserted] =
          warm_hints_.insert_or_assign(skeleton, outcome->buffer_tokens);
      (void)it;
      if (inserted) {
        warm_hint_order_.push_back(skeleton);
        while (warm_hints_.size() > options_.max_entries) {
          warm_hints_.erase(warm_hint_order_.front());
          warm_hint_order_.pop_front();
        }
      }
    }
  }
  if (options_.cache) cache_.insert(signature, outcome);
  return outcome;
}

EngineStats Engine::stats() const {
  const audit::LockGuard lock(mutex_);
  EngineStats out = stats_;
  out.evictions = cache_.evictions();
  out.evicted_while_hot = cache_.evicted_while_hot();
  return out;
}

void Engine::clear() {
  cache_.clear();
  const audit::LockGuard lock(mutex_);
  warm_hints_.clear();
  warm_hint_order_.clear();
}

}  // namespace rtsm::verify
