#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "audit/mutex.hpp"
#include "core/feedback.hpp"
#include "verify/signature.hpp"

namespace rtsm::verify {

/// The mapping-independent part of a step-4 verification: everything the
/// CSDF expansion + buffer sizing derive from the structural mapping alone.
/// The state-dependent parts — do the buffers fit the consuming tiles'
/// residual memory, does the latency meet this application's bound — are
/// recomputed by run_step4 on every call, so one cached outcome serves any
/// number of admissions, refinement rounds and annealing candidates.
struct VerificationOutcome {
  /// True when the target period is sustainable with finite buffers.
  bool feasible = false;

  /// Minimal consumer-side buffer capacity per channel (parallel to the
  /// application's channel ids). Empty when !feasible.
  std::vector<std::uint32_t> buffer_tokens;

  /// Sustained iteration period with the chosen buffers, ps.
  std::uint64_t achieved_period_ps = 0;

  /// Worst source-start to sink-completion time of one symbol, ps.
  std::uint64_t latency_ps = 0;

  /// Sizing failure explanation when !feasible.
  std::string failure;

  /// Blame feedback for the refinement loop when !feasible (the slowest
  /// implementation on its tile), when derivable.
  std::optional<core::FeedbackConstraint> feedback;

  /// Cost of computing this outcome: simulations run and firings executed.
  /// On a cache hit the engine credits these as saved.
  std::uint64_t simulations = 0;
  std::uint64_t events_simulated = 0;

  /// True when the computation was warm-started from a previous feasible
  /// solution's capacities.
  bool warm_started = false;
};

/// Thread-safe memo of the step-4 expansion pipeline, keyed by the
/// structural MappingSignature and shared across admissions, refinement
/// rounds and search candidates. Entries hold the sized outcome rather
/// than the raw ExpandedGraph: the signature pins every input of the
/// sizing as well, so the outcome subsumes the expansion and nothing ever
/// needs to re-simulate a cached graph. Bounded LRU eviction (hits renew
/// an entry's lease) keeps the footprint flat under endless admission
/// churn while protecting the signatures that recur — a recurring
/// skeleton's candidates would be the first out of a FIFO.
class ExpansionCache {
 public:
  explicit ExpansionCache(std::size_t max_entries = 1024);

  /// Cached outcome of @p signature, or nullptr. A hit moves the entry to
  /// the front of the recency order.
  [[nodiscard]] std::shared_ptr<const VerificationOutcome> find(
      const MappingSignature& signature) const;

  /// Inserts (first writer wins on a race; later identical computations
  /// are simply dropped). Evicts the least-recently-used entry beyond
  /// max_entries.
  void insert(const MappingSignature& signature,
              std::shared_ptr<const VerificationOutcome> outcome);

  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }
  [[nodiscard]] std::uint64_t evictions() const;

  /// Evicted entries that had served at least one hit — a rough "the
  /// cache is too small" signal (cold one-shot signatures are expected to
  /// fall out; hot ones are not).
  [[nodiscard]] std::uint64_t evicted_while_hot() const;

 private:
  struct Entry {
    std::shared_ptr<const VerificationOutcome> outcome;
    /// Position in lru_ (front = most recent). Stable under splice.
    std::list<MappingSignature>::iterator where;
    std::uint64_t hits = 0;
  };

  const std::size_t max_entries_;
  /// Taken under the engine lock by Engine::stats() — hence its rank just
  /// above kVerifyEngine; never held across a simulation.
  mutable audit::Mutex mutex_{audit::LockRank::kExpansionCache,
                              "verify.expansion_cache"};
  /// mutable: a (logically const) lookup updates recency + hit counts.
  mutable std::unordered_map<MappingSignature, Entry, SignatureHash> map_
      RTSM_GUARDED_BY(mutex_);
  /// Recency order, most recent first; find() splices hits to the front.
  mutable std::list<MappingSignature> lru_ RTSM_GUARDED_BY(mutex_);
  std::uint64_t evictions_ RTSM_GUARDED_BY(mutex_) = 0;
  std::uint64_t evicted_while_hot_ RTSM_GUARDED_BY(mutex_) = 0;
};

}  // namespace rtsm::verify
