#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/feedback.hpp"
#include "verify/signature.hpp"

namespace rtsm::verify {

/// The mapping-independent part of a step-4 verification: everything the
/// CSDF expansion + buffer sizing derive from the structural mapping alone.
/// The state-dependent parts — do the buffers fit the consuming tiles'
/// residual memory, does the latency meet this application's bound — are
/// recomputed by run_step4 on every call, so one cached outcome serves any
/// number of admissions, refinement rounds and annealing candidates.
struct VerificationOutcome {
  /// True when the target period is sustainable with finite buffers.
  bool feasible = false;

  /// Minimal consumer-side buffer capacity per channel (parallel to the
  /// application's channel ids). Empty when !feasible.
  std::vector<std::uint32_t> buffer_tokens;

  /// Sustained iteration period with the chosen buffers, ps.
  std::uint64_t achieved_period_ps = 0;

  /// Worst source-start to sink-completion time of one symbol, ps.
  std::uint64_t latency_ps = 0;

  /// Sizing failure explanation when !feasible.
  std::string failure;

  /// Blame feedback for the refinement loop when !feasible (the slowest
  /// implementation on its tile), when derivable.
  std::optional<core::FeedbackConstraint> feedback;

  /// Cost of computing this outcome: simulations run and firings executed.
  /// On a cache hit the engine credits these as saved.
  std::uint64_t simulations = 0;
  std::uint64_t events_simulated = 0;

  /// True when the computation was warm-started from a previous feasible
  /// solution's capacities.
  bool warm_started = false;
};

/// Thread-safe memo of the step-4 expansion pipeline, keyed by the
/// structural MappingSignature and shared across admissions, refinement
/// rounds and search candidates. Entries hold the sized outcome rather
/// than the raw ExpandedGraph: the signature pins every input of the
/// sizing as well, so the outcome subsumes the expansion and nothing ever
/// needs to re-simulate a cached graph. Bounded FIFO eviction keeps the
/// footprint flat under endless admission churn.
class ExpansionCache {
 public:
  explicit ExpansionCache(std::size_t max_entries = 1024);

  /// Cached outcome of @p signature, or nullptr.
  [[nodiscard]] std::shared_ptr<const VerificationOutcome> find(
      const MappingSignature& signature) const;

  /// Inserts (first writer wins on a race; later identical computations
  /// are simply dropped). Evicts the oldest entry beyond max_entries.
  void insert(const MappingSignature& signature,
              std::shared_ptr<const VerificationOutcome> outcome);

  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  const std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::unordered_map<MappingSignature,
                     std::shared_ptr<const VerificationOutcome>, SignatureHash>
      map_;
  std::deque<MappingSignature> insertion_order_;
  std::uint64_t evictions_ = 0;
};

}  // namespace rtsm::verify
