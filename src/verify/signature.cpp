#include "verify/signature.hpp"

#include <bit>

#include "util/error.hpp"

namespace rtsm::verify {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a_step(std::uint64_t h, std::uint8_t byte) {
  return (h ^ byte) * kFnvPrime;
}

std::uint64_t fnv1a_word(std::uint64_t h, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h = fnv1a_step(h, static_cast<std::uint8_t>(word >> (8 * i)));
  }
  return h;
}

/// Serializer appending 64-bit words; section tags keep variable-length
/// runs (phase vectors, routes) from aliasing each other.
struct Words {
  std::vector<std::uint64_t> out;

  void put(std::uint64_t w) { out.push_back(w); }
  void put_double(double d) { out.push_back(std::bit_cast<std::uint64_t>(d)); }
  void put_string(std::string_view s) { out.push_back(fnv1a(s)); }
  void put_rates(const kpn::PhaseRates& rates) {
    put(rates.size());
    for (const std::uint32_t r : rates) put(r);
  }
};

}  // namespace

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) h = fnv1a_step(h, static_cast<std::uint8_t>(c));
  return h;
}

std::uint64_t app_skeleton_hash(const kpn::Application& app) {
  std::uint64_t h = fnv1a(app.name());
  h = fnv1a_word(h, app.process_count());
  h = fnv1a_word(h, app.channel_count());
  h = fnv1a_word(h, app.qos().symbol_period_ns);
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    h = fnv1a_word(h, c.src.value());
    h = fnv1a_word(h, c.dst.value());
    h = fnv1a_word(h, c.tokens_per_symbol);
  }
  return h;
}

MappingSignature MappingSignature::of(const kpn::Application& app,
                                      const arch::Platform& platform,
                                      const core::Mapping& mapping,
                                      const SizingKey& key) {
  require(mapping.all_assigned() && mapping.all_routed(),
          "signature requires a placed and routed mapping");

  Words w;

  // Sizing parameters.
  w.put(key.target_period_ps);
  w.put(key.capacity_limit);
  w.put(key.simulation.warmup_iterations);
  w.put(key.simulation.measured_iterations);
  w.put(key.simulation.max_events);
  w.put(key.simulation.convergence_window);
  w.put_double(key.simulation.convergence_epsilon);

  // Platform NoC parameters consumed by the expansion.
  w.put(platform.noc().router_latency_ps());
  w.put(platform.noc().hop_buffer_tokens);

  // Per process: selected implementation content + tile clock. The tile
  // identity itself is deliberately absent — only its clock matters to the
  // expansion, so equal-clock moves that keep all routes hit the cache.
  w.put(app.process_count());
  for (const ProcessId pid : app.process_ids()) {
    const ImplementationId impl = mapping.impl_of(pid);
    const kpn::Implementation& im = app.implementation(pid, impl);
    w.put_string(app.process(pid).name);
    w.put_string(im.name);
    w.put(impl.value());
    w.put(platform.tile_clock_hz(mapping.tile_of(pid)));
    w.put(im.wcet_cc.size());
    for (const std::uint32_t cc : im.wcet_cc) w.put(cc);
    w.put(im.inputs.size());
    for (const kpn::PortSpec& port : im.inputs) {
      w.put(port.channel.value());
      w.put_rates(port.rates);
    }
    w.put(im.outputs.size());
    for (const kpn::PortSpec& port : im.outputs) {
      w.put(port.channel.value());
      w.put_rates(port.rates);
    }
  }

  // Per channel: endpoints, token geometry and the exact route (link ids
  // encode the traversed routers in order).
  w.put(app.channel_count());
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    const noc::Path& path = *mapping.path(cid);
    w.put_string(c.name);
    w.put(c.src.value());
    w.put(c.dst.value());
    w.put(c.tokens_per_symbol);
    w.put(c.token_bytes);
    w.put(path.links.size());
    for (const LinkId link : path.links) w.put(link.value());
  }

  MappingSignature sig;
  sig.words_ = std::move(w.out);
  std::uint64_t h = kFnvOffset;
  for (const std::uint64_t word : sig.words_) h = fnv1a_word(h, word);
  sig.hash_ = static_cast<std::size_t>(h);
  return sig;
}

}  // namespace rtsm::verify
