#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "arch/platform.hpp"
#include "core/mapping.hpp"
#include "csdf/simulator.hpp"
#include "kpn/application.hpp"

namespace rtsm::verify {

/// The sizing-side parameters that, together with the structural mapping,
/// determine the step-4 verification outcome.
struct SizingKey {
  std::uint64_t target_period_ps = 0;
  std::uint32_t capacity_limit = 1u << 16;
  csdf::SimulationConfig simulation;
};

/// Structural fingerprint of everything the step-4 pipeline (CSDF
/// expansion + self-timed buffer sizing) consumes: per process the selected
/// implementation's content (name, phase WCETs, port rates) and the clock
/// of its tile; per channel the endpoints, token size and the exact NoC
/// route; the platform's router latency and hop-buffer depth; and the
/// SizingKey. Two mappings with equal signatures provably produce the same
/// VerificationOutcome — notably, moving a process to a *different tile of
/// the same clock* without changing any route keeps the signature equal.
///
/// The full serialized word vector is stored and compared, so equality is
/// exact (no hash-collision risk); the precomputed hash only buckets the
/// unordered_map.
class MappingSignature {
 public:
  /// Builds the signature of a placed and routed mapping.
  [[nodiscard]] static MappingSignature of(const kpn::Application& app,
                                           const arch::Platform& platform,
                                           const core::Mapping& mapping,
                                           const SizingKey& key);

  [[nodiscard]] bool operator==(const MappingSignature& other) const {
    return hash_ == other.hash_ && words_ == other.words_;
  }

  [[nodiscard]] std::size_t hash() const { return hash_; }
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t hash_ = 0;
};

struct SignatureHash {
  std::size_t operator()(const MappingSignature& s) const { return s.hash(); }
};

/// FNV-1a over a string (used for name components of the signature).
[[nodiscard]] std::uint64_t fnv1a(std::string_view s);

/// Fingerprint of an application's *skeleton* (name, structure, QoS) —
/// independent of any mapping. Keys the engine's warm-start hints, so
/// refinement rounds and re-maps of the same application share the last
/// feasible buffer capacities even when the placement changed.
[[nodiscard]] std::uint64_t app_skeleton_hash(const kpn::Application& app);

}  // namespace rtsm::verify
