#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "audit/mutex.hpp"
#include "verify/expansion_cache.hpp"
#include "verify/signature.hpp"

namespace rtsm::verify {

/// Tuning of the verification engine.
struct EngineOptions {
  /// Cache bound (FIFO eviction beyond it).
  std::size_t max_entries = 1024;

  /// Memoize outcomes by structural signature.
  bool cache = true;

  /// Seed misses with the last feasible capacities of the same application
  /// skeleton (see BufferSizingConfig::warm_start).
  bool warm_start = true;
};

/// Counters of the verification engine (value snapshot; thread-safe read).
struct EngineStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  /// Evicted cache entries that had served at least one hit (recurring
  /// signatures falling out of the LRU — a "cache too small" signal).
  std::uint64_t evicted_while_hot = 0;

  /// Misses that started from a warm hint.
  std::uint64_t warm_started = 0;

  /// Simulations / firings actually executed by misses.
  std::uint64_t simulations = 0;
  std::uint64_t events_simulated = 0;

  /// Simulations / firings the cached computation of each hit originally
  /// cost — a (conservative) lower bound on the work every hit saved:
  /// when the cached entry was itself warm-started, a fresh cold
  /// computation would have cost more than what is credited here.
  std::uint64_t simulations_saved = 0;
  std::uint64_t events_saved = 0;

  [[nodiscard]] double hit_rate() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// The step-4 verification pipeline without a cache or warm start: expand
/// the mapped application into its CSDF graph, size the consumer buffers
/// under the period constraint, and derive blame feedback on failure.
/// @p warm_hint optionally seeds the sizing (never changes the result).
[[nodiscard]] VerificationOutcome compute_verification(
    const kpn::Application& app, const arch::Platform& platform,
    const core::Mapping& mapping, const SizingKey& key,
    const std::vector<std::uint32_t>* warm_hint = nullptr);

/// Reusable, thread-safe step-4 verification engine: a structural-signature
/// cache over compute_verification() plus per-application warm-start
/// hints. One engine is shared by every refinement round of a mapper, by
/// every admission of a runtime manager, and by the inner loops of the
/// annealing / exhaustive baselines; concurrent verify() calls are safe
/// (racing misses both compute, first insert wins).
class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  /// Verifies the structural mapping, serving from the cache when the
  /// signature matches a previous verification.
  [[nodiscard]] std::shared_ptr<const VerificationOutcome> verify(
      const kpn::Application& app, const arch::Platform& platform,
      const core::Mapping& mapping, const SizingKey& key);

  [[nodiscard]] EngineStats stats() const;

  /// Drops all cached outcomes and warm hints (stats are kept).
  void clear();

  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] const EngineOptions& options() const { return options_; }

 private:
  EngineOptions options_;
  ExpansionCache cache_;

  /// Guards stats_ and warm_hints_. stats() reads the expansion cache's
  /// counters while holding it, so it ranks just below kExpansionCache.
  mutable audit::Mutex mutex_{audit::LockRank::kVerifyEngine,
                              "verify.engine"};
  EngineStats stats_ RTSM_GUARDED_BY(mutex_);
  /// Last feasible buffer capacities per application skeleton, bounded
  /// like the cache (FIFO eviction at options_.max_entries) so a stream
  /// of distinct applications cannot grow the engine without limit.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> warm_hints_
      RTSM_GUARDED_BY(mutex_);
  std::deque<std::uint64_t> warm_hint_order_ RTSM_GUARDED_BY(mutex_);
};

/// Shared constructor tail of every mapper that runs step 4: returns
/// @p engine unchanged when set, a fresh private engine when @p enabled,
/// and null otherwise.
[[nodiscard]] inline std::shared_ptr<Engine> ensure_engine(
    bool enabled, std::shared_ptr<Engine> engine) {
  if (enabled && engine == nullptr) return std::make_shared<Engine>();
  return engine;
}

}  // namespace rtsm::verify
