#include "verify/expansion_cache.hpp"

#include "util/error.hpp"

namespace rtsm::verify {

ExpansionCache::ExpansionCache(std::size_t max_entries)
    : max_entries_(max_entries) {
  require(max_entries_ > 0, "ExpansionCache needs room for at least 1 entry");
}

std::shared_ptr<const VerificationOutcome> ExpansionCache::find(
    const MappingSignature& signature) const {
  const audit::LockGuard lock(mutex_);
  const auto it = map_.find(signature);
  if (it == map_.end()) return nullptr;
  // Touch on hit: splice the entry to the front of the recency list (node
  // relinking only — no iterator is invalidated).
  lru_.splice(lru_.begin(), lru_, it->second.where);
  ++it->second.hits;
  return it->second.outcome;
}

void ExpansionCache::insert(
    const MappingSignature& signature,
    std::shared_ptr<const VerificationOutcome> outcome) {
  const audit::LockGuard lock(mutex_);
  const auto [it, inserted] = map_.try_emplace(signature);
  if (!inserted) return;  // a racing computation of the same key won
  lru_.push_front(signature);
  it->second.outcome = std::move(outcome);
  it->second.where = lru_.begin();
  while (map_.size() > max_entries_) {
    const auto victim = map_.find(lru_.back());
    if (victim->second.hits > 0) ++evicted_while_hot_;
    map_.erase(victim);
    lru_.pop_back();
    ++evictions_;
  }
}

void ExpansionCache::clear() {
  const audit::LockGuard lock(mutex_);
  map_.clear();
  lru_.clear();
}

std::size_t ExpansionCache::size() const {
  const audit::LockGuard lock(mutex_);
  return map_.size();
}

std::uint64_t ExpansionCache::evictions() const {
  const audit::LockGuard lock(mutex_);
  return evictions_;
}

std::uint64_t ExpansionCache::evicted_while_hot() const {
  const audit::LockGuard lock(mutex_);
  return evicted_while_hot_;
}

}  // namespace rtsm::verify
