#include "verify/expansion_cache.hpp"

#include "util/error.hpp"

namespace rtsm::verify {

ExpansionCache::ExpansionCache(std::size_t max_entries)
    : max_entries_(max_entries) {
  require(max_entries_ > 0, "ExpansionCache needs room for at least 1 entry");
}

std::shared_ptr<const VerificationOutcome> ExpansionCache::find(
    const MappingSignature& signature) const {
  std::lock_guard lock(mutex_);
  const auto it = map_.find(signature);
  return it == map_.end() ? nullptr : it->second;
}

void ExpansionCache::insert(
    const MappingSignature& signature,
    std::shared_ptr<const VerificationOutcome> outcome) {
  std::lock_guard lock(mutex_);
  const auto [it, inserted] = map_.emplace(signature, std::move(outcome));
  if (!inserted) return;  // a racing computation of the same key won
  insertion_order_.push_back(signature);
  while (map_.size() > max_entries_) {
    map_.erase(insertion_order_.front());
    insertion_order_.pop_front();
    ++evictions_;
  }
}

void ExpansionCache::clear() {
  std::lock_guard lock(mutex_);
  map_.clear();
  insertion_order_.clear();
}

std::size_t ExpansionCache::size() const {
  std::lock_guard lock(mutex_);
  return map_.size();
}

std::uint64_t ExpansionCache::evictions() const {
  std::lock_guard lock(mutex_);
  return evictions_;
}

}  // namespace rtsm::verify
