// Extension bench X6: fragmentation churn and defragmentation.
//
// Long admit/release churn fragments the mesh: utilisation smears over
// many partially-used tiles and the free capacity splinters, until
// requests are rejected although the summed capacity would hold them.
// This bench replays the *same* seeded arrival/departure schedule through
// the serial RuntimeManager under the three DefragPolicy settings (off /
// on-release-threshold / on-reject) and compares reject rate, admission
// latency and fragmentation. The churn mix is diversified with
// workload::hiperlan2_mode_variant (the seven demapping modes as distinct
// applications) next to small and large synthetic ARM apps.
//
// Exactness oracle: after every wave — hence after every defrag pass —
// replaying the surviving admissions onto a fresh ResourceState must
// reproduce the manager's live state (approx_equals).
//
// Results are emitted as BENCH_x6.json for the CI perf trail.
//
// Flags: --short (CI smoke: fewer waves),
//        --json PATH (default BENCH_x6.json).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/fragmentation.hpp"
#include "core/spatial_mapper.hpp"
#include "io/table.hpp"
#include "runtime/runtime_manager.hpp"
#include "runtime/stats_report.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "workload/hiperlan2.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rtsm;

/// 6x6 mesh: 10 quad-slot ARM tiles and 10 single-context MONTIUM tiles
/// interleaved over the grid, plus fast IO tiles named exactly as the
/// HIPERLAN/2 fixtures expect ("A/D", "Sink") so mode variants can be
/// admitted next to the synthetic apps. The IO clock is 8x the tile clock
/// so one A/D block paces several concurrent receivers.
arch::Platform make_x6_platform() {
  arch::NocParams noc;
  arch::Platform p("x6 churn 6x6", 6, 6, noc);
  const TileTypeId arm = p.add_tile_type("ARM", 200'000'000);
  const TileTypeId montium = p.add_tile_type("MONTIUM", 200'000'000);
  const TileTypeId io = p.add_tile_type("IO", 1'600'000'000);

  p.add_tile("A/D", io, 0, 2, 64 * 1024, /*process_slots=*/8);
  p.add_tile("Sink", io, 5, 3, 64 * 1024, /*process_slots=*/8);

  std::uint32_t arms = 0;
  std::uint32_t montiums = 0;
  for (std::uint32_t y = 0; y < 6 && arms + montiums < 20; ++y) {
    for (std::uint32_t x = 0; x < 6 && arms + montiums < 20; ++x) {
      if ((x == 0 && y == 2) || (x == 5 && y == 3)) continue;  // IO
      if ((x + y) % 2 == 0 && arms < 10) {
        p.add_tile("ARM" + std::to_string(arms++), arm, x, y, 64 * 1024,
                   /*process_slots=*/6);
      } else if (montiums < 10) {
        p.add_tile("MONT" + std::to_string(montiums++), montium, x, y,
                   64 * 1024, /*process_slots=*/1);
      }
    }
  }
  return p;
}

/// A two-process chain whose stages each claim ~0.40-0.45 of a tile: the
/// mapper co-locates them (intra-tile channels are free), so the app
/// demands one ARM tile with ~0.65 spare capacity — the victim of
/// fragmentation. Churn smears residual utilisation until no such tile
/// exists although the summed slack is ample; consolidating the small
/// residents back onto fewer tiles is exactly what re-admits it.
kpn::Application make_big_app(Rng& rng, const std::string& name) {
  kpn::QosConstraints qos;
  qos.symbol_period_ns = 4000;
  kpn::Application app(name, qos);
  const ProcessId p0 = app.add_process("P0");
  const ProcessId p1 = app.add_process("P1");
  const auto tokens =
      static_cast<std::uint32_t>(rng.uniform_int(16, 48));
  const ChannelId ch = app.connect(p0, p1, tokens);
  for (const ProcessId pid : {p0, p1}) {
    kpn::Implementation im;
    im.name = app.process(pid).name + "@ARM";
    im.tile_type = "ARM";
    // 800 cc = one 4 us period at 200 MHz; draw 0.30..0.35 of it per
    // stage, ~0.65 for the co-located pair.
    im.wcet_cc = {static_cast<std::uint32_t>(rng.uniform_int(240, 280))};
    if (pid == p0) {
      im.outputs = {{ch, {tokens}}};
    } else {
      im.inputs = {{ch, {tokens}}};
    }
    im.energy_nj_per_symbol = rng.uniform(120.0, 200.0);
    im.memory_bytes = 8 * 1024;
    app.add_implementation(pid, std::move(im));
  }
  app.validate();
  return app;
}

/// One pre-generated arrival: the application plus its lifetime in waves
/// (drawn with the stream, so every policy configuration sees the same
/// schedule).
struct Arrival {
  std::shared_ptr<const kpn::Application> app;
  std::uint32_t wave = 0;
  std::uint32_t lifetime_waves = 0;
};

std::vector<Arrival> make_schedule(std::uint32_t waves,
                                   std::uint32_t per_wave,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Arrival> schedule;
  std::uint32_t mode_counter = 0;
  std::uint32_t serial = 0;
  for (std::uint32_t wave = 0; wave < waves; ++wave) {
    for (std::uint32_t a = 0; a < per_wave; ++a) {
      Arrival arrival;
      arrival.wave = wave;
      arrival.lifetime_waves =
          static_cast<std::uint32_t>(rng.uniform_int(3, 8));
      const double kind = rng.uniform01();
      const std::string name = "x6-" + std::to_string(serial++);
      if (kind < 0.55) {
        workload::SyntheticAppParams params;
        params.process_count = 2;
        params.with_fixtures = false;
        params.tile_types = {"ARM"};
        params.max_preferred_utilization = 0.25;
        arrival.app = std::make_shared<kpn::Application>(
            workload::make_synthetic_app(rng, params, name));
      } else if (kind < 0.90) {
        arrival.app =
            std::make_shared<kpn::Application>(make_big_app(rng, name));
      } else {
        const auto mode =
            workload::kHiperlan2Modes[mode_counter++ %
                                      workload::kHiperlan2Modes.size()]
                .mode;
        arrival.app = std::make_shared<kpn::Application>(
            workload::hiperlan2_mode_variant(mode));
      }
      schedule.push_back(std::move(arrival));
    }
  }
  return schedule;
}

struct ChurnFigures {
  std::string label;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  double reject_rate = 0.0;
  double p95_us = 0.0;
  double mean_us = 0.0;
  std::uint64_t defrag_passes = 0;
  std::uint64_t migrations = 0;
  std::uint64_t migration_failures = 0;
  double migration_cost_us = 0.0;
  double mean_frag_score = 0.0;
  bool oracle_ok = true;
  /// Full StatsReport::to_json() of the run, embedded in BENCH_x6.json.
  std::string stats_json;
};

/// Replays the schedule through one manager configuration.
ChurnFigures run_churn(const arch::Platform& platform,
                       const std::vector<Arrival>& schedule,
                       std::uint32_t waves, runtime::DefragOptions defrag,
                       std::string label) {
  runtime::RuntimeManager manager(
      platform,
      {.mapper = std::make_shared<core::SpatialMapper>(), .defrag = defrag});

  ChurnFigures figures;
  figures.label = std::move(label);
  struct Live {
    AppId id;
    std::uint32_t release_wave = 0;
  };
  std::vector<Live> live;
  double frag_sum = 0.0;

  std::size_t next = 0;
  for (std::uint32_t wave = 0; wave < waves; ++wave) {
    // Departures first: everything whose lifetime ended leaves, which is
    // what punches the holes arrivals then have to fit into.
    for (auto it = live.begin(); it != live.end();) {
      if (it->release_wave <= wave) {
        manager.submit_release(it->id);
        it = live.erase(it);
      } else {
        ++it;
      }
    }

    while (next < schedule.size() && schedule[next].wave == wave) {
      manager.submit(schedule[next].app);
      ++next;
      // Interleave so each admission sees the fragmented state of the
      // moment, and releases wake the defrag trigger between waves.
      for (const auto& outcome : manager.drain()) {
        if (outcome.status == runtime::AdmitStatus::Admitted) {
          live.push_back(
              {outcome.app_id,
               schedule[next - 1].wave + schedule[next - 1].lifetime_waves});
        }
      }
    }
    manager.drain();

    // Oracle: after every wave — and therefore after every defrag pass —
    // the live state must equal a serial replay of the surviving
    // admissions onto a fresh ResourceState.
    core::ResourceState replayed(platform);
    for (const AppId id : manager.running_ids()) {
      core::commit_mapping(replayed, *manager.app_of(id),
                           manager.mapping_of(id));
    }
    if (!manager.state().approx_equals(replayed)) figures.oracle_ok = false;

    frag_sum += core::measure_fragmentation(manager.state()).score();
  }

  const runtime::AdmissionStats& stats = manager.stats();
  figures.offered = stats.offered;
  figures.admitted = stats.admitted;
  figures.rejected = stats.rejected;
  figures.reject_rate =
      stats.offered == 0
          ? 0.0
          : static_cast<double>(stats.rejected) /
                static_cast<double>(stats.offered);
  figures.p95_us = stats.latency_percentile_us(95);
  figures.mean_us = stats.mean_latency_us();
  figures.defrag_passes = stats.defrag_passes;
  figures.migrations = stats.migrations;
  figures.migration_failures = stats.migration_failures;
  figures.migration_cost_us = stats.migration_cost_us;
  figures.mean_frag_score = frag_sum / waves;
  figures.stats_json = manager.stats_report().to_json();
  return figures;
}

void print_row(io::TablePrinter& table, const ChurnFigures& f) {
  table.add_row({f.label, std::to_string(f.offered),
                 std::to_string(f.admitted), std::to_string(f.rejected),
                 rtsm::format_double(100.0 * f.reject_rate, 1) + "%",
                 rtsm::format_double(f.p95_us, 0),
                 std::to_string(f.migrations),
                 rtsm::format_double(f.mean_frag_score, 3),
                 f.oracle_ok ? "ok" : "MISMATCH"});
}

void write_json(const std::string& path, std::uint32_t waves,
                const ChurnFigures& off, const ChurnFigures& threshold,
                const ChurnFigures& on_reject) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  auto one = [&](const char* name, const ChurnFigures& c) {
    std::fprintf(
        f,
        "  \"%s\": {\"offered\": %llu, \"admitted\": %llu, "
        "\"rejected\": %llu, \"reject_rate\": %.4f, \"p95_us\": %.1f, "
        "\"mean_us\": %.1f, \"defrag_passes\": %llu, \"migrations\": %llu, "
        "\"migration_failures\": %llu, \"migration_cost_us\": %.1f, "
        "\"mean_frag_score\": %.4f, \"oracle_ok\": %s",
        name, static_cast<unsigned long long>(c.offered),
        static_cast<unsigned long long>(c.admitted),
        static_cast<unsigned long long>(c.rejected), c.reject_rate, c.p95_us,
        c.mean_us, static_cast<unsigned long long>(c.defrag_passes),
        static_cast<unsigned long long>(c.migrations),
        static_cast<unsigned long long>(c.migration_failures),
        c.migration_cost_us, c.mean_frag_score,
        c.oracle_ok ? "true" : "false");
    std::fprintf(f, ", \"stats_report\": %s}", c.stats_json.c_str());
  };
  std::fprintf(f, "{\n  \"bench\": \"x6_fragmentation_churn\",\n");
  std::fprintf(f, "  \"waves\": %u,\n", waves);
  one("defrag_off", off);
  std::fprintf(f, ",\n");
  one("defrag_threshold", threshold);
  std::fprintf(f, ",\n");
  one("defrag_on_reject", on_reject);
  std::fprintf(
      f,
      ",\n  \"reject_rate_delta_threshold\": %.4f,\n"
      "  \"reject_rate_delta_on_reject\": %.4f,\n"
      "  \"oracle\": \"%s\"\n}\n",
      off.reject_rate - threshold.reject_rate,
      off.reject_rate - on_reject.reject_rate,
      off.oracle_ok && threshold.oracle_ok && on_reject.oracle_ok
          ? "identical"
          : "MISMATCH");
  std::fclose(f);
  std::printf("Wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::string json_path = "BENCH_x6.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::printf("== X6: fragmentation churn, defrag off vs. on ============\n\n");

  const std::uint32_t waves = short_mode ? 28 : 80;
  const std::uint32_t per_wave = 4;
  const auto platform = make_x6_platform();
  const auto schedule = make_schedule(waves, per_wave, /*seed=*/20080310);

  runtime::DefragOptions off;  // policy Off

  runtime::DefragOptions threshold;
  threshold.policy = runtime::DefragPolicy::OnReleaseThreshold;
  threshold.fragmentation_threshold = 0.2;
  threshold.max_migrations_per_pass = 6;
  threshold.max_candidates = 24;

  runtime::DefragOptions on_reject = threshold;
  on_reject.policy = runtime::DefragPolicy::OnReject;

  const ChurnFigures f_off =
      run_churn(platform, schedule, waves, off, "off");
  const ChurnFigures f_threshold =
      run_churn(platform, schedule, waves, threshold, "on-release-threshold");
  const ChurnFigures f_reject =
      run_churn(platform, schedule, waves, on_reject, "on-reject");

  io::TablePrinter table({"Defrag policy", "Offered", "Admitted", "Rejected",
                          "Reject rate", "p95 us", "Migrations",
                          "Mean frag", "Oracle"});
  for (std::size_t c = 1; c < 9; ++c) table.align_right(c);
  print_row(table, f_off);
  print_row(table, f_threshold);
  print_row(table, f_reject);
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "Reject-rate delta vs. off: on-release-threshold %+.1f pp, "
      "on-reject %+.1f pp\n\n",
      100.0 * (f_off.reject_rate - f_threshold.reject_rate),
      100.0 * (f_off.reject_rate - f_reject.reject_rate));

  write_json(json_path, waves, f_off, f_threshold, f_reject);

  std::printf(
      "\nReading: the same seeded churn schedule rejects fewer\n"
      "applications when the manager compacts the mesh on release or on\n"
      "reject, at a bounded modelled migration cost, while the resource\n"
      "bookkeeping stays replay-exact after every migration pass.\n");
  return 0;
}
