// Reproduces Figure 2 of the paper: the 3x3-mesh MPSoC with two ARM tiles,
// two MONTIUM tiles, the A/D source, the Sink, and three tiles of types
// irrelevant to the case study. Coordinates are the reconstruction that
// makes Table 2's cost column reproduce exactly (DESIGN.md assumption 1).

// Figures are also written as BENCH_fig2_platform.json into the working
// directory (override with --json PATH).

#include <cstdio>
#include <cstring>
#include <string>

#include "io/dot.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "util/strings.hpp"
#include "workload/hiperlan2.hpp"

int main(int argc, char** argv) {
  using namespace rtsm;

  std::string json_path = "BENCH_fig2_platform.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::printf("== Figure 2: MPSoC layout ================================\n\n");
  const arch::Platform platform = workload::make_paper_platform();

  std::printf("%s\n", io::platform_ascii(platform).c_str());

  io::TablePrinter tiles({"Tile", "Type", "Router (x,y)", "Clock [MHz]",
                          "Memory [KiB]", "Slots"});
  tiles.align_right(3);
  tiles.align_right(4);
  tiles.align_right(5);
  for (const TileId tid : platform.tile_ids()) {
    const arch::Tile& t = platform.tile(tid);
    tiles.add_row({t.name, platform.tile_type(t.type).name,
                   "(" + std::to_string(t.x) + "," + std::to_string(t.y) + ")",
                   std::to_string(platform.tile_clock_hz(tid) / 1'000'000),
                   std::to_string(t.memory_bytes / 1024),
                   std::to_string(t.process_slots)});
  }
  std::printf("%s\n", tiles.to_string().c_str());

  const arch::NocParams& noc = platform.noc();
  std::printf("NoC: %zu routers, %zu directed links, "
              "%.0f Mtokens/s per link, %u cc router latency (%llu ns), "
              "%u-token hop buffers\n\n",
              platform.router_count(), platform.link_count(),
              noc.link_capacity_tokens_per_s / 1e6, noc.router_latency_cc,
              static_cast<unsigned long long>(noc.router_latency_ps() / 1000),
              noc.hop_buffer_tokens);

  // Distances that drive Table 2's cost column.
  io::TablePrinter dist({"From", "To", "Manhattan hops"});
  dist.align_right(2);
  const char* interesting[][2] = {
      {"A/D", "ARM1"},    {"A/D", "ARM2"},      {"ARM1", "ARM2"},
      {"ARM1", "MONTIUM2"}, {"ARM2", "MONTIUM2"}, {"MONTIUM1", "MONTIUM2"},
      {"MONTIUM1", "Sink"}, {"MONTIUM2", "Sink"}};
  for (const auto& pair : interesting) {
    dist.add_row({pair[0], pair[1],
                  std::to_string(platform.manhattan(
                      platform.tile_by_name(pair[0]),
                      platform.tile_by_name(pair[1])))});
  }
  std::printf("%s\n", dist.to_string().c_str());

  std::printf("Graphviz:\n%s\n", io::platform_to_dot(platform).c_str());

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\"bench\": \"fig2_platform\", \"tiles\": [");
  bool first = true;
  for (const TileId tid : platform.tile_ids()) {
    const arch::Tile& t = platform.tile(tid);
    std::fprintf(
        f,
        "%s{\"name\": \"%s\", \"type\": \"%s\", \"x\": %u, \"y\": %u, "
        "\"clock_mhz\": %llu, \"memory_kib\": %llu, \"slots\": %u}",
        first ? "" : ", ", io::json_escape(t.name).c_str(),
        io::json_escape(platform.tile_type(t.type).name).c_str(), t.x, t.y,
        static_cast<unsigned long long>(platform.tile_clock_hz(tid) /
                                        1'000'000),
        static_cast<unsigned long long>(t.memory_bytes / 1024),
        t.process_slots);
    first = false;
  }
  std::fprintf(f,
               "], \"noc\": {\"routers\": %zu, \"links\": %zu, "
               "\"link_mtokens_per_s\": %.1f, \"router_latency_cc\": %u, "
               "\"hop_buffer_tokens\": %u}}\n",
               platform.router_count(), platform.link_count(),
               noc.link_capacity_tokens_per_s / 1e6, noc.router_latency_cc,
               noc.hop_buffer_tokens);
  std::fclose(f);
  std::printf("Wrote %s\n", json_path.c_str());
  return 0;
}
