// Extension bench X5 — around Figure 3: how the router input-buffer depth
// (the "4" annotations between the R actors) and the NoC clock shape the
// computed consumer buffers B_i, the sustained period and the latency of
// the mapped HIPERLAN/2 receiver. Exercises the step-4 dataflow machinery
// as an ablation instrument.

// Results are also written as BENCH_x5_buffer_ablation.json into the
// working directory (override with --json PATH).

#include <cstdio>
#include <cstring>
#include <string>

#include "core/spatial_mapper.hpp"
#include "io/table.hpp"
#include "util/strings.hpp"
#include "workload/hiperlan2.hpp"

namespace {

using namespace rtsm;

struct Row {
  std::uint32_t hop_buffer;
  std::uint32_t router_cc;
  bool feasible = false;
  std::vector<std::uint32_t> buffers;
  std::uint64_t period_ps = 0;
  std::uint64_t latency_ps = 0;
};

Row run(std::uint32_t hop_buffer, std::uint32_t router_cc) {
  workload::Hiperlan2Config config;
  const auto app = workload::make_hiperlan2_receiver(config);
  // Rebuild the paper platform with modified NoC parameters.
  arch::NocParams noc;
  noc.noc_clock_hz = config.clock_hz;
  noc.link_capacity_tokens_per_s = static_cast<double>(config.clock_hz);
  noc.router_latency_cc = router_cc;
  noc.hop_buffer_tokens = hop_buffer;

  arch::Platform base = workload::make_paper_platform(config);
  arch::Platform platform(base.name(), 3, 3, noc);
  for (std::size_t t = 0; t < base.tile_type_count(); ++t) {
    const arch::TileType& type =
        base.tile_type(TileTypeId{static_cast<TileTypeId::value_type>(t)});
    platform.add_tile_type(type.name, type.clock_hz);
  }
  for (const TileId tid : base.tile_ids()) {
    const arch::Tile& tile = base.tile(tid);
    platform.add_tile(tile.name, tile.type, tile.x, tile.y, tile.memory_bytes,
                      tile.process_slots);
  }

  Row row{hop_buffer, router_cc, false, {}, 0, 0};
  const auto result =
      core::SpatialMapper(workload::paper_mapper_config()).map(app, platform);
  if (!result.success) return row;
  row.feasible = true;
  for (const ChannelId cid : app.channel_ids()) {
    row.buffers.push_back(*result.mapping.buffer_tokens(cid));
  }
  row.period_ps = result.achieved_period_ps;
  row.latency_ps = result.latency_ps;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== X5: NoC buffer depth and router latency vs. B_i =======\n\n");

  std::string json_path = "BENCH_x5_buffer_ablation.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  io::TablePrinter table({"Hop buffer", "Router [cc]", "Feasible", "B1", "B2",
                          "B3", "B4", "B(sink)", "Period [us]",
                          "Latency [us]"});
  for (std::size_t c = 0; c < 10; ++c) table.align_right(c);

  std::string rows_json;
  for (const std::uint32_t router_cc : {2u, 4u, 8u, 16u}) {
    for (const std::uint32_t hop_buffer : {1u, 2u, 4u, 8u, 16u}) {
      const Row row = run(hop_buffer, router_cc);
      std::vector<std::string> cells{std::to_string(hop_buffer),
                                     std::to_string(router_cc),
                                     row.feasible ? "yes" : "NO"};
      if (!rows_json.empty()) rows_json += ", ";
      rows_json += "{\"hop_buffer\": " + std::to_string(hop_buffer) +
                   ", \"router_cc\": " + std::to_string(router_cc) +
                   ", \"feasible\": " + (row.feasible ? "true" : "false");
      if (row.feasible) {
        rows_json += ", \"buffers\": [";
        bool first = true;
        for (const std::uint32_t b : row.buffers) {
          cells.push_back(std::to_string(b));
          rows_json += (first ? "" : ", ") + std::to_string(b);
          first = false;
        }
        cells.push_back(rtsm::format_double(row.period_ps / 1e6, 3));
        cells.push_back(rtsm::format_double(row.latency_ps / 1e6, 3));
        rows_json +=
            "], \"period_us\": " + rtsm::format_double(row.period_ps / 1e6, 6) +
            ", \"latency_us\": " + rtsm::format_double(row.latency_ps / 1e6, 6);
      } else {
        for (int i = 0; i < 7; ++i) cells.push_back("-");
      }
      rows_json += "}";
      table.add_row(cells);
    }
    table.add_rule();
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "Reading: up to 8-cycle routers the 4 us period holds and latency\n"
      "grows with router latency; the consumer buffer B3 (into the\n"
      "64-token-burst Inv.OFDM) trades off against hop-buffer depth —\n"
      "deeper router buffers absorb the in-flight stream, shrinking the\n"
      "tile-side allocation. At 16-cycle routers the 80-token channel\n"
      "serialises past the symbol period (80 x 80 ns = 6.4 us > 4 us) and\n"
      "step 4 correctly reports infeasibility. The paper's 4-cycle routers\n"
      "with 4-deep buffers sit comfortably inside the feasible region.\n");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\"bench\": \"x5_buffer_ablation\", \"rows\": [%s]}\n",
               rows_json.c_str());
  std::fclose(f);
  std::printf("Wrote %s\n", json_path.c_str());
  return 0;
}
