// Reproduces the implementation statistics of Section 4.5: the paper runs
// the HIPERLAN/2 mapping in under 4 ms on an ARM926 at 100 MHz (137 kB code,
// 110 kB peak data). Here google-benchmark times the same computation —
// the full four-step mapping and each step in isolation — on the host.
// Absolute numbers differ by the hardware gap; the claim that holds is the
// *shape*: the mapper is cheap enough to run at application start time.

#include <benchmark/benchmark.h>

#include "core/channel_routing.hpp"
#include "core/feasibility.hpp"
#include "core/implementation_selection.hpp"
#include "core/spatial_mapper.hpp"
#include "core/tile_assignment.hpp"
#include "workload/hiperlan2.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rtsm;

struct PaperCase {
  kpn::Application app = workload::make_hiperlan2_receiver();
  arch::Platform platform = workload::make_paper_platform();
  core::MapperConfig config = workload::paper_mapper_config();
};

void BM_FullMapping_Hiperlan2(benchmark::State& state) {
  const PaperCase c;
  const core::SpatialMapper mapper(c.config);
  for (auto _ : state) {
    auto result = mapper.map(c.app, c.platform);
    benchmark::DoNotOptimize(result.success);
  }
}
BENCHMARK(BM_FullMapping_Hiperlan2)->Unit(benchmark::kMicrosecond);

void BM_FullMapping_Hiperlan2_NoStep4(benchmark::State& state) {
  // The paper's <4 ms figure covers steps 1-3 plus the dataflow check; this
  // variant isolates the combinatorial part (steps 1-3).
  PaperCase c;
  c.config.run_step4 = false;
  const core::SpatialMapper mapper(c.config);
  for (auto _ : state) {
    auto result = mapper.map(c.app, c.platform);
    benchmark::DoNotOptimize(result.success);
  }
}
BENCHMARK(BM_FullMapping_Hiperlan2_NoStep4)->Unit(benchmark::kMicrosecond);

void BM_Step1_ImplementationSelection(benchmark::State& state) {
  const PaperCase c;
  for (auto _ : state) {
    core::ResourceState rs(c.platform);
    core::Mapping mapping(c.app.process_count(), c.app.channel_count());
    core::FeedbackSet feedback;
    core::MappingTrace::Round round;
    core::MappingContext ctx{c.app,   c.platform,     rs,    feedback,
                             c.config.energy, mapping, round};
    auto outcome = core::run_step1(ctx, c.config.step1);
    benchmark::DoNotOptimize(outcome.success);
  }
}
BENCHMARK(BM_Step1_ImplementationSelection)->Unit(benchmark::kMicrosecond);

void BM_Steps12_PlacementAndLocalSearch(benchmark::State& state) {
  const PaperCase c;
  for (auto _ : state) {
    core::ResourceState rs(c.platform);
    core::Mapping mapping(c.app.process_count(), c.app.channel_count());
    core::FeedbackSet feedback;
    core::MappingTrace::Round round;
    core::MappingContext ctx{c.app,   c.platform,     rs,    feedback,
                             c.config.energy, mapping, round};
    (void)core::run_step1(ctx, c.config.step1);
    core::run_step2(ctx, c.config.step2);
    benchmark::DoNotOptimize(round.step2.final_cost);
  }
}
BENCHMARK(BM_Steps12_PlacementAndLocalSearch)->Unit(benchmark::kMicrosecond);

void BM_Step4_DataflowVerification(benchmark::State& state) {
  // Step 4 dominates: it simulates the expanded CSDF graph token by token.
  const PaperCase c;
  const core::SpatialMapper mapper(c.config);
  core::MapperConfig no4 = c.config;
  no4.run_step4 = false;
  const auto placed = core::SpatialMapper(no4).map(c.app, c.platform);
  for (auto _ : state) {
    core::ResourceState rs(c.platform);
    core::Mapping mapping = placed.mapping;
    core::FeedbackSet feedback;
    core::MappingTrace::Round round;
    core::MappingContext ctx{c.app,   c.platform,     rs,    feedback,
                             c.config.energy, mapping, round};
    auto report = core::run_step4(ctx, c.config.step4);
    benchmark::DoNotOptimize(report.feasible);
  }
}
BENCHMARK(BM_Step4_DataflowVerification)->Unit(benchmark::kMillisecond);

void BM_FullMapping_Synthetic(benchmark::State& state) {
  // Mapper cost on a larger synthetic instance (8 processes, 4x4 mesh).
  Rng rng(7);
  workload::SyntheticPlatformParams pp;
  const auto platform = workload::make_synthetic_platform(rng, pp, "p");
  workload::SyntheticAppParams ap;
  ap.process_count = static_cast<std::uint32_t>(state.range(0));
  const auto app = workload::make_synthetic_app(rng, ap, "a");
  const core::SpatialMapper mapper;
  for (auto _ : state) {
    auto result = mapper.map(app, platform);
    benchmark::DoNotOptimize(result.success);
  }
}
BENCHMARK(BM_FullMapping_Synthetic)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
