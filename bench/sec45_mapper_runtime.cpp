// Reproduces the implementation statistics of Section 4.5 — the paper runs
// the HIPERLAN/2 mapping in under 4 ms on an ARM926 at 100 MHz — and
// measures the step-4 verification engine on top of it: the full four-step
// mapping, steps 1-3 in isolation, and the dominant step-4 dataflow check
// cold (no cache) vs. warm (signature cache + warm-started sizing), plus
// the adaptive simulation window. Absolute numbers differ from the paper
// by the hardware gap; the claims that hold are the *shape* (the mapper is
// cheap enough to run at application start time) and the cold/warm ratio.
//
// The warm/cold section replays the HiperLAN/2 refinement scenario: the
// same receiver is admitted, released and re-admitted over and over — the
// steady state of a run-time manager under churn — so every re-admission
// re-verifies the same structural mapping.
//
// Flags: --short (CI smoke: fewer repetitions),
//        --json PATH (default BENCH_sec45.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/channel_routing.hpp"
#include "core/feasibility.hpp"
#include "core/implementation_selection.hpp"
#include "core/spatial_mapper.hpp"
#include "runtime/runtime_manager.hpp"
#include "runtime/stats_report.hpp"
#include "util/clock.hpp"
#include "verify/engine.hpp"
#include "workload/hiperlan2.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rtsm;

struct PaperCase {
  kpn::Application app = workload::make_hiperlan2_receiver();
  arch::Platform platform = workload::make_paper_platform();
  core::MapperConfig config = workload::paper_mapper_config();
};

double median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  return samples[mid];
}

/// Times one call of @p body, microseconds.
template <typename F>
double time_us(F&& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  return elapsed_us(start);
}

/// Step-4 runner over fresh state/mapping copies, mirroring what one
/// refinement round pays.
struct Step4Bench {
  const PaperCase& c;
  core::Mapping placed;  // placed + routed, buffers unset

  explicit Step4Bench(const PaperCase& paper_case, core::Mapping mapping)
      : c(paper_case), placed(std::move(mapping)) {}

  core::FeasibilityReport run(verify::Engine* engine) {
    core::ResourceState rs(c.platform);
    core::Mapping mapping = placed;
    core::FeedbackSet feedback;
    core::MappingTrace::Round round;
    core::MappingContext ctx{c.app,  c.platform,      rs,
                             feedback, c.config.energy, mapping,
                             round,  engine};
    return core::run_step4(ctx, c.config.step4);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::string json_path = "BENCH_sec45.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const std::uint32_t reps = short_mode ? 20 : 100;

  std::printf("== sec4.5: mapper runtime & the step-4 engine =============\n\n");

  const PaperCase c;

  // -- full mapping and steps 1-3, as in the paper's 4 ms figure ---------
  std::vector<double> full_us;
  {
    core::MapperConfig cfg = c.config;
    cfg.cache_verification = false;  // the paper's mapper has no cache
    const core::SpatialMapper mapper(cfg);
    for (std::uint32_t r = 0; r < reps; ++r) {
      full_us.push_back(time_us([&] {
        const auto result = mapper.map(c.app, c.platform);
        if (!result.success) std::abort();
      }));
    }
  }
  std::vector<double> steps123_us;
  core::Mapping placed{0, 0};
  {
    core::MapperConfig no4 = c.config;
    no4.run_step4 = false;
    const core::SpatialMapper mapper(no4);
    auto result = mapper.map(c.app, c.platform);
    if (!result.success) std::abort();
    placed = std::move(result.mapping);
    for (std::uint32_t r = 0; r < reps; ++r) {
      steps123_us.push_back(time_us([&] {
        const auto res = mapper.map(c.app, c.platform);
        if (!res.success) std::abort();
      }));
    }
  }
  std::printf("Full mapping (uncached): median %7.0f us over %u reps\n",
              median(full_us), reps);
  std::printf("Steps 1-3 only:          median %7.0f us\n\n",
              median(steps123_us));

  // -- step 4 cold vs warm on the refinement scenario --------------------
  Step4Bench step4(c, placed);
  std::vector<double> cold_us;
  for (std::uint32_t r = 0; r < reps; ++r) {
    cold_us.push_back(time_us([&] {
      if (!step4.run(nullptr).feasible) std::abort();
    }));
  }
  // The cost of one cold verification in simulator work:
  verify::SizingKey key;
  key.target_period_ps =
      static_cast<std::uint64_t>(c.app.qos().symbol_period_ns) * 1000ull;
  key.capacity_limit = c.config.step4.capacity_limit;
  key.simulation = c.config.step4.simulation;
  const auto cold_outcome =
      verify::compute_verification(c.app, c.platform, placed, key);

  verify::Engine engine;
  (void)step4.run(&engine);  // populate the cache (the first admission)
  std::vector<double> warm_us;
  for (std::uint32_t r = 0; r < reps; ++r) {
    warm_us.push_back(time_us([&] {
      if (!step4.run(&engine).feasible) std::abort();
    }));
  }
  const verify::EngineStats es = engine.stats();
  const double cold_median = median(cold_us);
  const double warm_median = median(warm_us);
  const double speedup = warm_median > 0.0 ? cold_median / warm_median : 0.0;
  std::printf(
      "Step 4, cold (no cache): median %7.0f us  (%llu simulations, %llu "
      "events per verification)\n",
      cold_median, static_cast<unsigned long long>(cold_outcome.simulations),
      static_cast<unsigned long long>(cold_outcome.events_simulated));
  std::printf("Step 4, warm (cached):   median %7.0f us\n", warm_median);
  std::printf(
      "Warm/cold speedup %.1fx; cache hit rate %.2f, events saved %llu\n\n",
      speedup, es.hit_rate(),
      static_cast<unsigned long long>(es.events_saved));

  // -- admission churn: the manager-level view of the same scenario ------
  double churn_cold_ms = 0.0;
  double churn_warm_ms = 0.0;
  std::string churn_stats_json;  // cached run's StatsReport::to_json()
  {
    const std::uint32_t waves = short_mode ? 8 : 24;
    auto churn = [&](bool cached) {
      core::MapperConfig cfg = c.config;
      cfg.cache_verification = cached;
      runtime::RuntimeManager manager(
          c.platform, {.mapper = std::make_shared<core::SpatialMapper>(cfg)});
      const auto start = std::chrono::steady_clock::now();
      for (std::uint32_t wave = 0; wave < waves; ++wave) {
        const auto outcome = manager.admit(c.app);
        if (outcome.status != runtime::AdmitStatus::Admitted) std::abort();
        manager.release(outcome.app_id);
      }
      const double ms = elapsed_us(start) / 1000.0;
      if (cached) churn_stats_json = manager.stats_report().to_json();
      return ms;
    };
    churn_cold_ms = churn(false);
    churn_warm_ms = churn(true);
    std::printf(
        "Admit/release churn (%u waves of the receiver): uncached %7.1f ms, "
        "cached %7.1f ms (%.1fx)\n\n",
        waves, churn_cold_ms, churn_warm_ms,
        churn_warm_ms > 0.0 ? churn_cold_ms / churn_warm_ms : 0.0);
  }

  // -- adaptive simulation window ----------------------------------------
  verify::SizingKey adaptive_key = key;
  adaptive_key.simulation.convergence_window = 3;
  adaptive_key.simulation.convergence_epsilon = 0.01;
  const auto adaptive_outcome =
      verify::compute_verification(c.app, c.platform, placed, adaptive_key);
  const double events_saved_pct =
      cold_outcome.events_simulated > 0
          ? 100.0 *
                (1.0 - static_cast<double>(adaptive_outcome.events_simulated) /
                           static_cast<double>(cold_outcome.events_simulated))
          : 0.0;
  std::printf(
      "Adaptive window (eps 1%%, K=3): %llu events vs %llu fixed "
      "(%.0f%% saved), period %llu ps vs %llu ps\n\n",
      static_cast<unsigned long long>(adaptive_outcome.events_simulated),
      static_cast<unsigned long long>(cold_outcome.events_simulated),
      events_saved_pct,
      static_cast<unsigned long long>(adaptive_outcome.achieved_period_ps),
      static_cast<unsigned long long>(cold_outcome.achieved_period_ps));

  // -- larger synthetic instance, full mapping ---------------------------
  {
    Rng rng(7);
    workload::SyntheticPlatformParams pp;
    const auto platform = workload::make_synthetic_platform(rng, pp, "p");
    workload::SyntheticAppParams ap;
    ap.process_count = 8;
    const auto app = workload::make_synthetic_app(rng, ap, "a");
    const core::SpatialMapper mapper;
    std::vector<double> us;
    for (std::uint32_t r = 0; r < std::max<std::uint32_t>(reps / 4, 5); ++r) {
      us.push_back(time_us([&] {
        const auto result = mapper.map(app, platform);
        (void)result.success;
      }));
    }
    std::printf(
        "Synthetic 8-process app on a 4x4 mesh (cached): median %7.0f us\n\n",
        median(us));
  }

  // -- JSON for the CI perf trail ----------------------------------------
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"sec45_mapper_runtime\",\n");
  std::fprintf(f, "  \"reps\": %u,\n", reps);
  std::fprintf(f, "  \"full_mapping_us_median\": %.1f,\n", median(full_us));
  std::fprintf(f, "  \"steps123_us_median\": %.1f,\n", median(steps123_us));
  std::fprintf(f,
               "  \"step4\": {\"cold_us_median\": %.1f, \"warm_us_median\": "
               "%.1f, \"speedup\": %.2f, \"cold_simulations\": %llu, "
               "\"cold_events\": %llu, \"cache_hit_rate\": %.4f, "
               "\"events_saved\": %llu},\n",
               cold_median, warm_median, speedup,
               static_cast<unsigned long long>(cold_outcome.simulations),
               static_cast<unsigned long long>(cold_outcome.events_simulated),
               es.hit_rate(),
               static_cast<unsigned long long>(es.events_saved));
  std::fprintf(f,
               "  \"adaptive_window\": {\"fixed_events\": %llu, "
               "\"adaptive_events\": %llu, \"events_saved_pct\": %.1f, "
               "\"fixed_period_ps\": %llu, \"adaptive_period_ps\": %llu},\n",
               static_cast<unsigned long long>(cold_outcome.events_simulated),
               static_cast<unsigned long long>(
                   adaptive_outcome.events_simulated),
               events_saved_pct,
               static_cast<unsigned long long>(cold_outcome.achieved_period_ps),
               static_cast<unsigned long long>(
                   adaptive_outcome.achieved_period_ps));
  std::fprintf(f,
               "  \"admission_churn\": {\"uncached_ms\": %.2f, "
               "\"cached_ms\": %.2f, \"speedup\": %.2f, "
               "\"stats_report\": %s}\n}\n",
               churn_cold_ms, churn_warm_ms,
               churn_warm_ms > 0.0 ? churn_cold_ms / churn_warm_ms : 0.0,
               churn_stats_json.c_str());
  std::fclose(f);
  std::printf("Wrote %s\n", json_path.c_str());

  std::printf(
      "Reading: the combinatorial part of the mapper (steps 1-3) is cheap;\n"
      "step 4's dataflow verification dominates. The verification engine\n"
      "serves repeated structural mappings from its cache, so steady-state\n"
      "admission churn pays near-zero verification cost, and the adaptive\n"
      "window bounds the simulated events when a cold verification is\n"
      "unavoidable.\n");
  return 0;
}
