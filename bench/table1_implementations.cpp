// Reproduces Table 1 of the paper: the available implementations of the
// four receiver processes on ARM and MONTIUM tiles — CSDF phase vectors for
// input, output and WCET, plus the average energy per OFDM symbol.

#include <cstdio>

#include "io/paper_report.hpp"
#include "io/table.hpp"
#include "util/strings.hpp"
#include "workload/hiperlan2.hpp"

int main() {
  using namespace rtsm;

  std::printf("== Table 1: available implementations (b = 12, QPSK) =====\n\n");
  const kpn::Application app = workload::make_hiperlan2_receiver();
  std::printf("%s\n", io::render_table1(app).c_str());

  std::printf("Derived per-symbol figures (200 MHz tiles, 4 us period):\n");
  io::TablePrinter derived({"Implementation", "Cycles/symbol",
                            "Time/symbol [ns]", "Utilization",
                            "Sustains 4 us?"});
  derived.align_right(1);
  derived.align_right(2);
  derived.align_right(3);
  for (const ProcessId pid : app.process_ids()) {
    const kpn::Process& p = app.process(pid);
    if (p.is_fixture()) continue;
    for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
      const ImplementationId impl{
          static_cast<ImplementationId::value_type>(ii)};
      const kpn::Implementation& im = p.implementations[ii];
      const std::uint64_t cycles =
          app.cycles_per_symbol(pid, impl) * im.cycle_wcet_cc();
      const double ns = static_cast<double>(cycles) * 5.0;  // 5 ns/cc
      const double util = ns / 4000.0;
      derived.add_row({im.name, std::to_string(cycles), format_double(ns, 0),
                       format_double(util, 3), util <= 1.0 ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", derived.to_string().c_str());
  std::printf(
      "Note: Inv.OFDM@ARM and Rem.@ARM exceed the symbol period at 200 MHz;\n"
      "the mapper's step 4 (or the step-1 utilisation screen) rejects them,\n"
      "matching the paper's choice of MONTIUM for both kernels.\n");
  return 0;
}
