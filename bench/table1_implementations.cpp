// Reproduces Table 1 of the paper: the available implementations of the
// four receiver processes on ARM and MONTIUM tiles — CSDF phase vectors for
// input, output and WCET, plus the average energy per OFDM symbol.

// Figures are also written as BENCH_table1_implementations.json into the
// working directory (override with --json PATH).

#include <cstdio>
#include <cstring>
#include <string>

#include "io/json.hpp"
#include "io/paper_report.hpp"
#include "io/table.hpp"
#include "util/strings.hpp"
#include "workload/hiperlan2.hpp"

int main(int argc, char** argv) {
  using namespace rtsm;

  std::string json_path = "BENCH_table1_implementations.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::printf("== Table 1: available implementations (b = 12, QPSK) =====\n\n");
  const kpn::Application app = workload::make_hiperlan2_receiver();
  std::printf("%s\n", io::render_table1(app).c_str());
  std::string impl_json;

  std::printf("Derived per-symbol figures (200 MHz tiles, 4 us period):\n");
  io::TablePrinter derived({"Implementation", "Cycles/symbol",
                            "Time/symbol [ns]", "Utilization",
                            "Sustains 4 us?"});
  derived.align_right(1);
  derived.align_right(2);
  derived.align_right(3);
  for (const ProcessId pid : app.process_ids()) {
    const kpn::Process& p = app.process(pid);
    if (p.is_fixture()) continue;
    for (std::size_t ii = 0; ii < p.implementations.size(); ++ii) {
      const ImplementationId impl{
          static_cast<ImplementationId::value_type>(ii)};
      const kpn::Implementation& im = p.implementations[ii];
      const std::uint64_t cycles =
          app.cycles_per_symbol(pid, impl) * im.cycle_wcet_cc();
      const double ns = static_cast<double>(cycles) * 5.0;  // 5 ns/cc
      const double util = ns / 4000.0;
      derived.add_row({im.name, std::to_string(cycles), format_double(ns, 0),
                       format_double(util, 3), util <= 1.0 ? "yes" : "NO"});
      if (!impl_json.empty()) impl_json += ", ";
      impl_json += "{\"name\": \"" + io::json_escape(im.name) +
                   "\", \"cycles_per_symbol\": " + std::to_string(cycles) +
                   ", \"time_ns\": " + format_double(ns, 0) +
                   ", \"utilization\": " + format_double(util, 6) +
                   ", \"sustains_period\": " +
                   (util <= 1.0 ? "true" : "false") + "}";
    }
  }
  std::printf("%s\n", derived.to_string().c_str());
  std::printf(
      "Note: Inv.OFDM@ARM and Rem.@ARM exceed the symbol period at 200 MHz;\n"
      "the mapper's step 4 (or the step-1 utilisation screen) rejects them,\n"
      "matching the paper's choice of MONTIUM for both kernels.\n");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\": \"table1_implementations\", "
               "\"implementations\": [%s]}\n",
               impl_json.c_str());
  std::fclose(f);
  std::printf("Wrote %s\n", json_path.c_str());
  return 0;
}
