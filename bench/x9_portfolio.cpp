// Extension bench X9: portfolio admission across the mapper registry.
//
// A single run-time mapping heuristic trades quality for latency at one
// fixed point; which heuristic wins depends on the arrival's structure
// and on the residual state it meets. Portfolio admission refuses to
// choose: on every shape-library miss, the manager races the configured
// registry strategies on independent ResourceState snapshots and commits
// the best feasible plan (here: lowest energy per symbol) through the
// ordinary two-phase validate/commit path.
//
// This bench replays one seeded X8-style churn schedule — arrivals drawn
// from a fixed pool of mixed ARM/MONTIUM skeletons with bounded wave
// lifetimes — through every single registry strategy (exhaustive is
// excluded: branch-and-bound over churn-sized instances), then through
// the portfolio on both managers: the serial RuntimeManager races the
// strategies sequentially, the ConcurrentRuntimeManager fans them out
// across its 4-worker pool with cooperative cancellation.
//
// Exactness oracle (per wave, every configuration): replaying the
// surviving admissions onto a fresh ResourceState must reproduce the
// manager's live bookkeeping.
//
// Results are emitted as BENCH_x9.json for the CI perf trail. CI gates on
// oracle == "identical" and portfolio_reject_rate <= best_single_reject_rate
// (racing every strategy may not admit less than the best single one).
//
// Flags: --short (CI smoke: fewer waves),
//        --json PATH (default BENCH_x9.json).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.hpp"
#include "core/mapper_registry.hpp"
#include "core/portfolio.hpp"
#include "io/table.hpp"
#include "runtime/concurrent_manager.hpp"
#include "runtime/runtime_manager.hpp"
#include "runtime/stats_report.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "workload/hiperlan2.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rtsm;

/// 6x6 mesh, 10 hex-slot ARM tiles and 10 single-context MONTIUM tiles
/// interleaved, IO tiles named as the HIPERLAN/2 fixtures expect.
arch::Platform make_x9_platform() {
  arch::NocParams noc;
  arch::Platform p("x9 portfolio 6x6", 6, 6, noc);
  const TileTypeId arm = p.add_tile_type("ARM", 200'000'000);
  const TileTypeId montium = p.add_tile_type("MONTIUM", 200'000'000);
  const TileTypeId io = p.add_tile_type("IO", 1'600'000'000);

  p.add_tile("A/D", io, 0, 2, 64 * 1024, /*process_slots=*/8);
  p.add_tile("Sink", io, 5, 3, 64 * 1024, /*process_slots=*/8);

  std::uint32_t arms = 0;
  std::uint32_t montiums = 0;
  for (std::uint32_t y = 0; y < 6 && arms + montiums < 20; ++y) {
    for (std::uint32_t x = 0; x < 6 && arms + montiums < 20; ++x) {
      if ((x == 0 && y == 2) || (x == 5 && y == 3)) continue;  // IO
      if ((x + y) % 2 == 0 && arms < 10) {
        p.add_tile("ARM" + std::to_string(arms++), arm, x, y, 64 * 1024,
                   /*process_slots=*/6);
      } else if (montiums < 10) {
        p.add_tile("MONT" + std::to_string(montiums++), montium, x, y,
                   64 * 1024, /*process_slots=*/1);
      }
    }
  }
  return p;
}

/// Mixed skeleton pool: seeded synthetic ARM chains of varying width plus
/// one HIPERLAN/2 mode whose Inv.OFDM/demapping stages are MONTIUM-only —
/// the structural variety that makes different heuristics win different
/// races.
std::vector<std::shared_ptr<const kpn::Application>> make_pool(
    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::shared_ptr<const kpn::Application>> pool;
  for (std::uint32_t i = 0; i < 6; ++i) {
    workload::SyntheticAppParams params;
    params.process_count = 2 + i % 4;
    params.with_fixtures = false;
    params.tile_types = {"ARM"};
    params.max_preferred_utilization = 0.22;
    pool.push_back(std::make_shared<kpn::Application>(
        workload::make_synthetic_app(rng, params,
                                     "pool-" + std::to_string(i))));
  }
  pool.push_back(std::make_shared<kpn::Application>(
      workload::hiperlan2_mode_variant(workload::kHiperlan2Modes[0].mode)));
  return pool;
}

struct Arrival {
  std::uint32_t pool_index = 0;
  std::uint32_t wave = 0;
  std::uint32_t lifetime_waves = 0;
};

std::vector<Arrival> make_schedule(std::uint32_t waves,
                                   std::uint32_t per_wave, std::size_t pool,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Arrival> schedule;
  for (std::uint32_t wave = 0; wave < waves; ++wave) {
    for (std::uint32_t a = 0; a < per_wave; ++a) {
      Arrival arrival;
      arrival.wave = wave;
      arrival.pool_index = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<int>(pool) - 1));
      arrival.lifetime_waves =
          static_cast<std::uint32_t>(rng.uniform_int(3, 8));
      schedule.push_back(arrival);
    }
  }
  return schedule;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

struct PortfolioFigures {
  std::string label;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  double reject_rate = 0.0;
  double median_admit_us = 0.0;
  double p95_us = 0.0;
  double mean_energy_nj = 0.0;  ///< Mean energy/symbol of admitted plans.
  std::uint64_t races = 0;
  std::uint64_t fallbacks = 0;
  bool oracle_ok = true;
  std::string stats_json;  ///< Full StatsReport::to_json() of the run.
};

void finish_figures(PortfolioFigures& figures,
                    const runtime::AdmissionStats& stats,
                    const std::vector<double>& latencies,
                    double energy_sum) {
  figures.offered = stats.offered;
  figures.admitted = stats.admitted;
  figures.rejected = stats.rejected;
  figures.reject_rate =
      stats.offered == 0
          ? 0.0
          : static_cast<double>(stats.rejected) /
                static_cast<double>(stats.offered);
  figures.median_admit_us = median(latencies);
  figures.p95_us = stats.latency_percentile_us(95);
  figures.mean_energy_nj =
      stats.admitted == 0 ? 0.0
                          : energy_sum / static_cast<double>(stats.admitted);
  figures.races = stats.portfolio_races;
  figures.fallbacks = stats.portfolio_fallbacks;
}

/// One churn replay through the serial manager (single strategy when
/// options.portfolio is empty, sequential race otherwise).
PortfolioFigures run_serial(
    const arch::Platform& platform,
    const std::vector<std::shared_ptr<const kpn::Application>>& pool,
    const std::vector<Arrival>& schedule, std::uint32_t waves,
    runtime::ManagerOptions options, std::string label) {
  runtime::RuntimeManager manager(platform, std::move(options));

  PortfolioFigures figures;
  figures.label = std::move(label);
  struct Live {
    AppId id;
    std::uint32_t release_wave = 0;
  };
  std::vector<Live> live;
  std::vector<double> latencies;
  double energy_sum = 0.0;

  std::size_t next = 0;
  for (std::uint32_t wave = 0; wave < waves; ++wave) {
    for (auto it = live.begin(); it != live.end();) {
      if (it->release_wave <= wave) {
        manager.submit_release(it->id);
        it = live.erase(it);
      } else {
        ++it;
      }
    }
    while (next < schedule.size() && schedule[next].wave == wave) {
      const Arrival& arrival = schedule[next];
      manager.submit(pool[arrival.pool_index]);
      ++next;
      for (const auto& outcome : manager.drain()) {
        if (outcome.status != runtime::AdmitStatus::Admitted) continue;
        live.push_back({outcome.app_id,
                        arrival.wave + arrival.lifetime_waves});
        latencies.push_back(outcome.mapping_us);
        energy_sum += outcome.mapping.energy_nj_per_symbol;
      }
    }
    manager.drain();

    // Per-wave serial-replay oracle.
    core::ResourceState replayed(platform);
    for (const AppId id : manager.running_ids()) {
      core::commit_mapping(replayed, *manager.app_of(id),
                           manager.mapping_of(id));
    }
    if (!manager.state().approx_equals(replayed)) figures.oracle_ok = false;
  }

  finish_figures(figures, manager.stats(), latencies, energy_sum);
  figures.stats_json = manager.stats_report().to_json();
  return figures;
}

/// The same churn through the concurrent manager: admissions submitted
/// from the bench thread, the race fanned out across the worker pool.
PortfolioFigures run_concurrent(
    const arch::Platform& platform,
    const std::vector<std::shared_ptr<const kpn::Application>>& pool,
    const std::vector<Arrival>& schedule, std::uint32_t waves,
    runtime::ManagerOptions options, std::uint32_t workers,
    std::string label) {
  runtime::ConcurrentRuntimeManager manager(
      platform, std::move(options),
      {.workers = workers, .queue_capacity = 64});

  PortfolioFigures figures;
  figures.label = std::move(label);
  struct Live {
    AppId id;
    std::uint32_t release_wave = 0;
  };
  std::vector<Live> live;
  std::vector<double> latencies;
  double energy_sum = 0.0;

  std::size_t next = 0;
  for (std::uint32_t wave = 0; wave < waves; ++wave) {
    for (auto it = live.begin(); it != live.end();) {
      if (it->release_wave <= wave) {
        manager.release(it->id);
        it = live.erase(it);
      } else {
        ++it;
      }
    }
    while (next < schedule.size() && schedule[next].wave == wave) {
      const Arrival& arrival = schedule[next];
      const auto outcome = manager.admit(*pool[arrival.pool_index]);
      ++next;
      if (outcome.status != runtime::AdmitStatus::Admitted) continue;
      live.push_back({outcome.app_id,
                      arrival.wave + arrival.lifetime_waves});
      latencies.push_back(outcome.mapping_us);
      energy_sum += outcome.mapping.energy_nj_per_symbol;
    }
    manager.wait_idle();

    core::ResourceState replayed(platform);
    for (const AppId id : manager.running_ids()) {
      core::commit_mapping(replayed, *manager.app_of(id),
                           manager.mapping_of(id));
    }
    if (!manager.state_snapshot().approx_equals(replayed)) {
      figures.oracle_ok = false;
    }
  }

  finish_figures(figures, manager.stats(), latencies, energy_sum);
  figures.stats_json = manager.stats_report().to_json();
  return figures;
}

void print_row(io::TablePrinter& table, const PortfolioFigures& f) {
  table.add_row({f.label, std::to_string(f.offered),
                 std::to_string(f.admitted), std::to_string(f.rejected),
                 rtsm::format_double(100.0 * f.reject_rate, 1) + "%",
                 rtsm::format_double(f.median_admit_us, 1),
                 rtsm::format_double(f.mean_energy_nj, 1),
                 f.oracle_ok ? "ok" : "MISMATCH"});
}

void write_json(const std::string& path, std::uint32_t waves,
                const std::vector<PortfolioFigures>& singles,
                const PortfolioFigures& serial,
                const PortfolioFigures& concurrent) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  auto one = [&](const PortfolioFigures& c, bool with_report) {
    std::fprintf(
        f,
        "    \"%s\": {\"offered\": %llu, \"admitted\": %llu, "
        "\"rejected\": %llu, \"reject_rate\": %.4f, "
        "\"median_admit_us\": %.2f, \"p95_us\": %.1f, "
        "\"mean_energy_nj\": %.2f, \"races\": %llu, \"fallbacks\": %llu, "
        "\"oracle_ok\": %s",
        c.label.c_str(), static_cast<unsigned long long>(c.offered),
        static_cast<unsigned long long>(c.admitted),
        static_cast<unsigned long long>(c.rejected), c.reject_rate,
        c.median_admit_us, c.p95_us, c.mean_energy_nj,
        static_cast<unsigned long long>(c.races),
        static_cast<unsigned long long>(c.fallbacks),
        c.oracle_ok ? "true" : "false");
    if (with_report) {
      std::fprintf(f, ", \"stats_report\": %s", c.stats_json.c_str());
    }
    std::fprintf(f, "}");
  };

  const PortfolioFigures* best = nullptr;
  for (const PortfolioFigures& s : singles) {
    if (best == nullptr || s.reject_rate < best->reject_rate) best = &s;
  }
  const double portfolio_reject =
      std::max(serial.reject_rate, concurrent.reject_rate);
  bool oracle = serial.oracle_ok && concurrent.oracle_ok;
  for (const PortfolioFigures& s : singles) oracle = oracle && s.oracle_ok;

  std::fprintf(f, "{\n  \"bench\": \"x9_portfolio\",\n  \"waves\": %u,\n",
               waves);
  std::fprintf(f, "  \"configs\": {\n");
  for (const PortfolioFigures& s : singles) {
    one(s, false);
    std::fprintf(f, ",\n");
  }
  one(serial, true);
  std::fprintf(f, ",\n");
  one(concurrent, true);
  std::fprintf(f, "\n  },\n");
  std::fprintf(f,
               "  \"best_single\": \"%s\",\n"
               "  \"best_single_reject_rate\": %.4f,\n"
               "  \"portfolio_reject_rate\": %.4f,\n"
               "  \"oracle\": \"%s\"\n}\n",
               best != nullptr ? best->label.c_str() : "?",
               best != nullptr ? best->reject_rate : 1.0, portfolio_reject,
               oracle ? "identical" : "MISMATCH");
  std::fclose(f);
  std::printf("Wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::string json_path = "BENCH_x9.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::printf("== X9: portfolio admission vs. single strategies =========\n\n");

  const std::uint32_t waves = short_mode ? 16 : 48;
  const std::uint32_t per_wave = 2;
  const arch::Platform platform = make_x9_platform();
  const auto pool = make_pool(/*seed=*/4242);
  const auto schedule =
      make_schedule(waves, per_wave, pool.size(), /*seed=*/777);
  const auto registry = std::make_shared<const core::MapperRegistry>(
      baselines::builtin_mappers());

  // Every registered strategy except exhaustive (branch-and-bound does not
  // terminate in bench time on churn-sized instances).
  std::vector<std::string> strategies;
  for (const std::string& name : registry->names()) {
    if (name != "exhaustive") strategies.push_back(name);
  }

  std::vector<PortfolioFigures> singles;
  for (const std::string& name : strategies) {
    std::shared_ptr<const core::Mapper> mapper = registry->create(name);
    singles.push_back(run_serial(platform, pool, schedule, waves,
                                 {.mapper = std::move(mapper)}, name));
  }

  core::PortfolioOptions portfolio;
  portfolio.strategies = strategies;
  portfolio.selection = core::PortfolioSelection::BestEnergy;
  const PortfolioFigures serial =
      run_serial(platform, pool, schedule, waves,
                 {.portfolio = portfolio, .registry = registry},
                 "portfolio-serial");
  const PortfolioFigures concurrent =
      run_concurrent(platform, pool, schedule, waves,
                     {.portfolio = portfolio, .registry = registry},
                     /*workers=*/4, "portfolio-concurrent");

  io::TablePrinter table({"Config", "Offered", "Admitted", "Rejected",
                          "Reject%", "Med us", "Energy nJ", "Oracle"});
  for (std::size_t c = 1; c < 7; ++c) table.align_right(c);
  for (const PortfolioFigures& s : singles) print_row(table, s);
  table.add_rule();
  print_row(table, serial);
  print_row(table, concurrent);
  std::printf("%s\n", table.to_string().c_str());

  write_json(json_path, waves, singles, serial, concurrent);
  return 0;
}
