// Reproduces Figure 3 of the paper: the CSDF graph of the fully mapped
// HIPERLAN/2 receiver — process actors, one 4-cycle router actor per
// traversed router, 4-token buffers between hops, and the consumer-side
// buffer capacities B1..B4 computed by the step-4 dataflow analysis (the
// paper computes them with Wiggers et al. [11] but does not print values;
// ours are recorded in EXPERIMENTS.md).

// Figures are also written as BENCH_fig3_final_csdf.json into the working
// directory (override with --json PATH).

#include <cstdio>
#include <cstring>
#include <string>

#include "core/csdf_expansion.hpp"
#include "core/spatial_mapper.hpp"
#include "io/dot.hpp"
#include "io/json.hpp"
#include "io/paper_report.hpp"
#include "io/table.hpp"
#include "util/strings.hpp"
#include "workload/hiperlan2.hpp"

int main(int argc, char** argv) {
  using namespace rtsm;

  std::string json_path = "BENCH_fig3_final_csdf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::printf("== Figure 3: final CSDF graph of the mapped receiver =====\n\n");

  const kpn::Application app = workload::make_hiperlan2_receiver();
  const arch::Platform platform = workload::make_paper_platform();
  const core::SpatialMapper mapper(workload::paper_mapper_config());
  const core::MappingResult result = mapper.map(app, platform);
  if (!result.success) {
    std::printf("FAILED to map: %s\n", result.failure.c_str());
    return 1;
  }

  std::printf("Step 3 routing (channels by non-increasing throughput):\n%s\n",
              io::render_step3(result.trace.rounds.back().step3).c_str());

  const core::ExpandedGraph expanded =
      core::expand_mapping(app, platform, result.mapping);
  std::printf("Expanded CSDF: %zu actors (%zu processes + %zu router hops), "
              "%zu edges\n\n",
              expanded.graph.actor_count(), app.process_count(),
              expanded.graph.actor_count() - app.process_count(),
              expanded.graph.edge_count());

  io::TablePrinter buffers({"Channel", "Routers on path", "Hop buffers",
                            "B_i [tokens]", "B_i [bytes]"});
  buffers.align_right(1);
  buffers.align_right(3);
  buffers.align_right(4);
  std::size_t i = 0;
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    const std::uint32_t b = *result.mapping.buffer_tokens(cid);
    buffers.add_row(
        {"B" + std::to_string(++i) + ": " + c.name,
         std::to_string(expanded.hop_actors[cid.value()].size()),
         std::to_string(platform.noc().hop_buffer_tokens) + " tokens/hop",
         std::to_string(b), std::to_string(b * c.token_bytes)});
  }
  std::printf("%s\n", buffers.to_string().c_str());

  std::printf("Verified QoS: sustained period %.3f us (target 4.000 us), "
              "source->sink latency %.3f us\n",
              result.achieved_period_ps / 1e6, result.latency_ps / 1e6);
  std::printf("Energy: %.1f nJ/symbol processing + %.1f nJ/symbol "
              "communication = %.1f nJ/symbol\n\n",
              core::processing_energy_nj_per_symbol(app, result.mapping),
              result.energy_nj_per_symbol -
                  core::processing_energy_nj_per_symbol(app, result.mapping),
              result.energy_nj_per_symbol);

  // Buffer capacities across all seven demapping modes (b sweep).
  std::printf("B_i across demapping modes:\n");
  io::TablePrinter sweep({"Mode", "b", "B1", "B2", "B3", "B4", "B(sink)",
                          "Period [us]"});
  for (std::size_t c = 1; c <= 7; ++c) sweep.align_right(c);
  std::string sweep_json;
  for (const workload::ModeInfo& mode : workload::kHiperlan2Modes) {
    workload::Hiperlan2Config config;
    config.mode = mode.mode;
    const auto mapp = workload::make_hiperlan2_receiver(config);
    const auto mplat = workload::make_paper_platform(config);
    const auto mres = mapper.map(mapp, mplat);
    if (!sweep_json.empty()) sweep_json += ", ";
    sweep_json += "{\"mode\": \"" + std::string(mode.name) +
                  "\", \"b\": " + std::to_string(mode.output_tokens) +
                  ", \"feasible\": " + (mres.success ? "true" : "false");
    if (!mres.success) {
      sweep.add_row({std::string(mode.name), std::to_string(mode.output_tokens),
                     "-", "-", "-", "-", "-", "infeasible"});
      sweep_json += "}";
      continue;
    }
    std::vector<std::string> row{std::string(mode.name),
                                 std::to_string(mode.output_tokens)};
    sweep_json += ", \"buffers\": [";
    bool first = true;
    for (const ChannelId cid : mapp.channel_ids()) {
      row.push_back(std::to_string(*mres.mapping.buffer_tokens(cid)));
      sweep_json += (first ? "" : ", ") +
                    std::to_string(*mres.mapping.buffer_tokens(cid));
      first = false;
    }
    row.push_back(format_double(mres.achieved_period_ps / 1e6, 3));
    sweep_json += "], \"period_us\": " +
                  format_double(mres.achieved_period_ps / 1e6, 6) + "}";
    sweep.add_row(row);
  }
  std::printf("%s\n", sweep.to_string().c_str());

  std::printf("Graphviz of the expanded graph:\n%s\n",
              io::csdf_to_dot(expanded.graph).c_str());

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\": \"fig3_final_csdf\", \"actors\": %zu, "
               "\"edges\": %zu, \"period_us\": %.6f, \"latency_us\": %.6f, "
               "\"energy_nj_per_symbol\": %.6f, \"modes\": [%s]}\n",
               expanded.graph.actor_count(), expanded.graph.edge_count(),
               result.achieved_period_ps / 1e6, result.latency_ps / 1e6,
               result.energy_nj_per_symbol, sweep_json.c_str());
  std::fclose(f);
  std::printf("Wrote %s\n", json_path.c_str());
  return 0;
}
