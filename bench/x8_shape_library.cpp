// Extension bench X8: relocatable mapping-shape library.
//
// Streaming platforms see the same handful of application skeletons over
// and over (modes of a receiver, instances of a filter bank). The shape
// library exploits that: a successful full-mapper admission is
// canonicalized into a translation/rotation/reflection-invariant shape,
// and a later structurally identical arrival is admitted by re-anchoring
// the learned shape onto the live mesh — a geometric probe instead of the
// four-step mapper.
//
// This bench replays the same seeded churn schedule — arrivals drawn from
// a fixed pool of 8 skeletons with 3-8 wave lifetimes, X6-style — through
// the serial RuntimeManager with the shape library off and on, and
// compares steady-state (warm-library) admission latency, hit rate and
// anchor-probe cost. The first quarter of the waves is the cold warm-up
// phase; figures are reported per phase.
//
// Exactness oracle (per wave, both configurations): replaying the
// surviving admissions onto a fresh ResourceState must reproduce the
// manager's live state — a shape-path commit books exactly what a mapper
// commit would.
//
// Results are emitted as BENCH_x8.json for the CI perf trail. CI gates on
// oracle == "identical", warm_admit_speedup >= 5 and hit_rate_warm >= 0.7.
//
// Flags: --short (CI smoke: fewer waves),
//        --json PATH (default BENCH_x8.json).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/spatial_mapper.hpp"
#include "io/table.hpp"
#include "runtime/runtime_manager.hpp"
#include "runtime/stats_report.hpp"
#include "shapes/library.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "workload/hiperlan2.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rtsm;

/// The X6 churn platform: 6x6 mesh, 10 hex-slot ARM tiles and 10
/// single-context MONTIUM tiles interleaved, IO tiles named as the
/// HIPERLAN/2 fixtures expect.
arch::Platform make_x8_platform() {
  arch::NocParams noc;
  arch::Platform p("x8 shapes 6x6", 6, 6, noc);
  const TileTypeId arm = p.add_tile_type("ARM", 200'000'000);
  const TileTypeId montium = p.add_tile_type("MONTIUM", 200'000'000);
  const TileTypeId io = p.add_tile_type("IO", 1'600'000'000);

  p.add_tile("A/D", io, 0, 2, 64 * 1024, /*process_slots=*/8);
  p.add_tile("Sink", io, 5, 3, 64 * 1024, /*process_slots=*/8);

  std::uint32_t arms = 0;
  std::uint32_t montiums = 0;
  for (std::uint32_t y = 0; y < 6 && arms + montiums < 20; ++y) {
    for (std::uint32_t x = 0; x < 6 && arms + montiums < 20; ++x) {
      if ((x == 0 && y == 2) || (x == 5 && y == 3)) continue;  // IO
      if ((x + y) % 2 == 0 && arms < 10) {
        p.add_tile("ARM" + std::to_string(arms++), arm, x, y, 64 * 1024,
                   /*process_slots=*/6);
      } else if (montiums < 10) {
        p.add_tile("MONT" + std::to_string(montiums++), montium, x, y,
                   64 * 1024, /*process_slots=*/1);
      }
    }
  }
  return p;
}

/// The fixed skeleton pool: 7 seeded synthetic ARM chains of varying size
/// plus one HIPERLAN/2 mode (pinned fixtures — its anchors collapse to at
/// most one per symmetry). Arrivals repeat these skeletons, which is
/// exactly the recurrence the shape library converts into hits.
std::vector<std::shared_ptr<const kpn::Application>> make_pool(
    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::shared_ptr<const kpn::Application>> pool;
  for (std::uint32_t i = 0; i < 7; ++i) {
    workload::SyntheticAppParams params;
    params.process_count = 2 + i % 3;
    params.with_fixtures = false;
    params.tile_types = {"ARM"};
    params.max_preferred_utilization = 0.22;
    pool.push_back(std::make_shared<kpn::Application>(
        workload::make_synthetic_app(rng, params,
                                     "pool-" + std::to_string(i))));
  }
  pool.push_back(std::make_shared<kpn::Application>(
      workload::hiperlan2_mode_variant(workload::kHiperlan2Modes[0].mode)));
  return pool;
}

struct Arrival {
  std::uint32_t pool_index = 0;
  std::uint32_t wave = 0;
  std::uint32_t lifetime_waves = 0;
};

std::vector<Arrival> make_schedule(std::uint32_t waves,
                                   std::uint32_t per_wave, std::size_t pool,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Arrival> schedule;
  for (std::uint32_t wave = 0; wave < waves; ++wave) {
    for (std::uint32_t a = 0; a < per_wave; ++a) {
      Arrival arrival;
      arrival.wave = wave;
      arrival.pool_index = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<int>(pool) - 1));
      arrival.lifetime_waves =
          static_cast<std::uint32_t>(rng.uniform_int(3, 8));
      schedule.push_back(arrival);
    }
  }
  return schedule;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

struct ShapeFigures {
  std::string label;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  double median_cold_us = 0.0;  ///< Median admit latency, warm-up phase.
  double median_warm_us = 0.0;  ///< Median admit latency, steady state.
  double p95_us = 0.0;
  // Shape-library columns (zero when the library is off).
  double hit_rate_warm = 0.0;
  double hit_rate_total = 0.0;
  double anchor_probes_per_hit = 0.0;
  double miss_median_warm_us = 0.0;  ///< Steady-state miss-path latency.
  std::uint64_t shape_inserts = 0;
  std::uint64_t shape_evictions = 0;
  bool oracle_ok = true;
  /// Full StatsReport::to_json() of the run, embedded in BENCH_x8.json.
  std::string stats_json;
};

ShapeFigures run_churn(
    const arch::Platform& platform,
    const std::vector<std::shared_ptr<const kpn::Application>>& pool,
    const std::vector<Arrival>& schedule, std::uint32_t waves,
    std::uint32_t warmup_waves, bool with_shapes, std::string label) {
  auto shapes =
      with_shapes ? std::make_shared<shapes::ShapeLibrary>(platform) : nullptr;
  runtime::RuntimeManager manager(
      platform,
      {.mapper = std::make_shared<core::SpatialMapper>(), .shapes = shapes});

  ShapeFigures figures;
  figures.label = std::move(label);
  struct Live {
    AppId id;
    std::uint32_t release_wave = 0;
  };
  std::vector<Live> live;
  std::vector<double> cold_lat;
  std::vector<double> warm_lat;
  std::vector<double> warm_miss_lat;
  std::uint64_t hits_at_warmup = 0;
  std::uint64_t misses_at_warmup = 0;

  std::size_t next = 0;
  for (std::uint32_t wave = 0; wave < waves; ++wave) {
    if (wave == warmup_waves) {
      const runtime::AdmissionStats at = manager.stats();
      hits_at_warmup = at.shape_hits;
      misses_at_warmup = at.shape_misses;
    }
    for (auto it = live.begin(); it != live.end();) {
      if (it->release_wave <= wave) {
        manager.submit_release(it->id);
        it = live.erase(it);
      } else {
        ++it;
      }
    }

    while (next < schedule.size() && schedule[next].wave == wave) {
      const Arrival& arrival = schedule[next];
      manager.submit(pool[arrival.pool_index]);
      ++next;
      for (const auto& outcome : manager.drain()) {
        if (outcome.status != runtime::AdmitStatus::Admitted) continue;
        live.push_back({outcome.app_id,
                        arrival.wave + arrival.lifetime_waves});
        (wave < warmup_waves ? cold_lat : warm_lat)
            .push_back(outcome.mapping_us);
        if (wave >= warmup_waves && !outcome.shape_hit) {
          warm_miss_lat.push_back(outcome.mapping_us);
        }
      }
    }
    manager.drain();

    // Per-wave serial-replay oracle: the live bookkeeping equals a replay
    // of the surviving admissions — shape-path commits included — onto a
    // fresh state.
    core::ResourceState replayed(platform);
    for (const AppId id : manager.running_ids()) {
      core::commit_mapping(replayed, *manager.app_of(id),
                           manager.mapping_of(id));
    }
    if (!manager.state().approx_equals(replayed)) figures.oracle_ok = false;
  }

  const runtime::AdmissionStats stats = manager.stats();
  figures.offered = stats.offered;
  figures.admitted = stats.admitted;
  figures.rejected = stats.rejected;
  figures.median_cold_us = median(cold_lat);
  figures.median_warm_us = median(warm_lat);
  figures.p95_us = stats.latency_percentile_us(95);
  if (with_shapes) {
    const std::uint64_t warm_hits = stats.shape_hits - hits_at_warmup;
    const std::uint64_t warm_misses = stats.shape_misses - misses_at_warmup;
    figures.hit_rate_warm =
        warm_hits + warm_misses == 0
            ? 0.0
            : static_cast<double>(warm_hits) /
                  static_cast<double>(warm_hits + warm_misses);
    figures.hit_rate_total =
        stats.shape_hits + stats.shape_misses == 0
            ? 0.0
            : static_cast<double>(stats.shape_hits) /
                  static_cast<double>(stats.shape_hits + stats.shape_misses);
    figures.anchor_probes_per_hit =
        manager.shape_stats().anchor_probes_per_hit();
    figures.miss_median_warm_us = median(warm_miss_lat);
    figures.shape_inserts = stats.shape_inserts;
    figures.shape_evictions = stats.shape_evictions;
  }
  figures.stats_json = manager.stats_report().to_json();
  return figures;
}

void print_row(io::TablePrinter& table, const ShapeFigures& f) {
  table.add_row({f.label, std::to_string(f.offered),
                 std::to_string(f.admitted),
                 rtsm::format_double(f.median_cold_us, 1),
                 rtsm::format_double(f.median_warm_us, 1),
                 rtsm::format_double(100.0 * f.hit_rate_warm, 1) + "%",
                 rtsm::format_double(f.anchor_probes_per_hit, 1),
                 rtsm::format_double(f.miss_median_warm_us, 1),
                 f.oracle_ok ? "ok" : "MISMATCH"});
}

void write_json(const std::string& path, std::uint32_t waves,
                std::uint32_t warmup_waves, const ShapeFigures& off,
                const ShapeFigures& on) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  auto one = [&](const char* name, const ShapeFigures& c) {
    std::fprintf(
        f,
        "  \"%s\": {\"offered\": %llu, \"admitted\": %llu, "
        "\"rejected\": %llu, \"median_cold_us\": %.2f, "
        "\"median_warm_us\": %.2f, \"p95_us\": %.1f, "
        "\"hit_rate_warm\": %.4f, \"hit_rate_total\": %.4f, "
        "\"anchor_probes_per_hit\": %.2f, \"miss_median_warm_us\": %.2f, "
        "\"shape_inserts\": %llu, \"shape_evictions\": %llu, "
        "\"oracle_ok\": %s",
        name, static_cast<unsigned long long>(c.offered),
        static_cast<unsigned long long>(c.admitted),
        static_cast<unsigned long long>(c.rejected), c.median_cold_us,
        c.median_warm_us, c.p95_us, c.hit_rate_warm, c.hit_rate_total,
        c.anchor_probes_per_hit, c.miss_median_warm_us,
        static_cast<unsigned long long>(c.shape_inserts),
        static_cast<unsigned long long>(c.shape_evictions),
        c.oracle_ok ? "true" : "false");
    std::fprintf(f, ", \"stats_report\": %s}", c.stats_json.c_str());
  };
  const double speedup = on.median_warm_us > 0.0
                             ? off.median_warm_us / on.median_warm_us
                             : 0.0;
  std::fprintf(f, "{\n  \"bench\": \"x8_shape_library\",\n");
  std::fprintf(f, "  \"waves\": %u,\n  \"warmup_waves\": %u,\n", waves,
               warmup_waves);
  one("shapes_off", off);
  std::fprintf(f, ",\n");
  one("shapes_on", on);
  std::fprintf(f,
               ",\n  \"warm_admit_speedup\": %.2f,\n"
               "  \"hit_rate_warm\": %.4f,\n"
               "  \"oracle\": \"%s\"\n}\n",
               speedup, on.hit_rate_warm,
               off.oracle_ok && on.oracle_ok ? "identical" : "MISMATCH");
  std::fclose(f);
  std::printf("Wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::string json_path = "BENCH_x8.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::printf("== X8: shape-library admission, off vs. on ===============\n\n");

  const std::uint32_t waves = short_mode ? 32 : 96;
  const std::uint32_t warmup_waves = waves / 4;
  const std::uint32_t per_wave = 4;
  const auto platform = make_x8_platform();
  const auto pool = make_pool(/*seed=*/20080311);
  const auto schedule =
      make_schedule(waves, per_wave, pool.size(), /*seed=*/20080312);

  const ShapeFigures f_off = run_churn(platform, pool, schedule, waves,
                                       warmup_waves, false, "shapes off");
  const ShapeFigures f_on = run_churn(platform, pool, schedule, waves,
                                      warmup_waves, true, "shapes on");

  io::TablePrinter table({"Config", "Offered", "Admitted", "Cold med us",
                          "Warm med us", "Warm hit rate", "Probes/hit",
                          "Miss med us", "Oracle"});
  for (std::size_t c = 1; c < 9; ++c) table.align_right(c);
  print_row(table, f_off);
  print_row(table, f_on);
  std::printf("%s\n", table.to_string().c_str());

  const double speedup = f_on.median_warm_us > 0.0
                             ? f_off.median_warm_us / f_on.median_warm_us
                             : 0.0;
  std::printf(
      "Steady-state median admit latency: %.1f us -> %.1f us (%.1fx), "
      "warm hit rate %.1f%%\n\n",
      f_off.median_warm_us, f_on.median_warm_us, speedup,
      100.0 * f_on.hit_rate_warm);

  write_json(json_path, waves, warmup_waves, f_off, f_on);

  std::printf(
      "\nReading: once the library has learned the pool's skeletons, a\n"
      "recurring arrival is admitted by re-anchoring a canonical shape —\n"
      "a geometric fit probe — instead of running mapping steps 1-4; the\n"
      "miss path (first sighting of a skeleton, or no anchor fits) still\n"
      "pays full mapper latency, and every commit stays replay-exact.\n");
  return 0;
}
