// Extension bench X1 — the synthetic benchmark suite the paper's conclusion
// calls for: run-time mapping cost and admission success rate as the
// application and the platform grow. Demonstrates that the heuristic keeps
// its "fast and simple" run-time budget far beyond the 4-process case.

// Flags: --json PATH (default BENCH_x1.json) — machine-readable sweep
// points for the CI perf trail.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/spatial_mapper.hpp"
#include "io/table.hpp"
#include "util/strings.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rtsm;
using Clock = std::chrono::steady_clock;

struct SweepPoint {
  std::uint32_t processes;
  std::uint32_t mesh;
  double success_rate;
  double mean_us;
  double max_us;
  double mean_energy;
};

SweepPoint run_point(std::uint32_t processes, std::uint32_t mesh,
                     std::uint32_t trials) {
  const core::SpatialMapper mapper;
  std::uint32_t successes = 0;
  double total_us = 0.0;
  double max_us = 0.0;
  double total_energy = 0.0;
  for (std::uint32_t seed = 0; seed < trials; ++seed) {
    Rng rng(seed * 7919 + processes * 131 + mesh);
    workload::SyntheticPlatformParams pp;
    pp.width = mesh;
    pp.height = mesh;
    const std::uint32_t per_type = (mesh * mesh - 2) / 2;
    pp.type_counts = {{"ARM", per_type}, {"DSP", per_type}};
    const auto platform = workload::make_synthetic_platform(rng, pp, "p");
    workload::SyntheticAppParams ap;
    ap.process_count = processes;
    ap.topology = workload::Topology::ForkJoin;
    const auto app = workload::make_synthetic_app(rng, ap, "a");

    const auto t0 = Clock::now();
    const auto result = mapper.map(app, platform);
    const auto t1 = Clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    total_us += us;
    max_us = std::max(max_us, us);
    if (result.success) {
      ++successes;
      total_energy += result.energy_nj_per_symbol;
    }
  }
  return {processes, mesh,
          static_cast<double>(successes) / trials, total_us / trials, max_us,
          successes > 0 ? total_energy / successes : 0.0};
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_x1.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::printf("== X1: scalability of run-time mapping ===================\n\n");
  std::printf("Each row: %u random (app, platform) instances.\n\n", 10u);

  io::TablePrinter table({"Processes", "Mesh", "Tiles", "Success", "Mean [us]",
                          "Max [us]", "Mean energy [nJ]"});
  for (std::size_t c = 0; c < 7; ++c) table.align_right(c);

  std::vector<SweepPoint> points;
  for (const std::uint32_t mesh : {3u, 4u, 5u, 6u}) {
    const std::uint32_t tiles = mesh * mesh;
    for (const std::uint32_t processes : {4u, 8u, 12u, 16u, 24u}) {
      // Skip hopeless combinations (more single-ish processes than tiles).
      if (processes > tiles) continue;
      const SweepPoint p = run_point(processes, mesh, 10);
      points.push_back(p);
      table.add_row({std::to_string(p.processes),
                     std::to_string(mesh) + "x" + std::to_string(mesh),
                     std::to_string(tiles),
                     rtsm::format_double(p.success_rate * 100.0, 0) + "%",
                     rtsm::format_double(p.mean_us, 1),
                     rtsm::format_double(p.max_us, 1),
                     rtsm::format_double(p.mean_energy, 0)});
    }
    table.add_rule();
  }
  std::printf("%s\n", table.to_string().c_str());

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"x1_scalability_sweep\",\n  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(f,
                 "    {\"processes\": %u, \"mesh\": %u, "
                 "\"success_rate\": %.3f, \"mean_us\": %.2f, "
                 "\"max_us\": %.2f, \"mean_energy_nj\": %.1f}%s\n",
                 p.processes, p.mesh, p.success_rate, p.mean_us, p.max_us,
                 p.mean_energy, i + 1 == points.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("Wrote %s\n\n", json_path.c_str());
  std::printf(
      "Shape check vs. paper Section 4.5: the paper maps 4 processes in\n"
      "<4 ms on a 100 MHz ARM9; the heuristic stays in the microsecond-to-\n"
      "millisecond range on hosts even for 24 processes on a 6x6 mesh,\n"
      "confirming run-time viability.\n");
  return 0;
}
