// Extension bench X11: fleet-scale serving — multi-platform federation,
// background defrag and the persisted scenario trace.
//
// Three questions, one seeded mode-churn schedule:
//   - capacity:  the same overload schedule replayed against a K=1 and a
//                K=4 FleetManager (pump mode, deterministic). The fleet's
//                least-loaded dispatch + spill-over must convert the extra
//                platforms into admitted applications: the CI gate wants
//                K=4 to admit >= 1.5x what one platform does.
//   - replay:    the K=4 run is recorded as a ScenarioTrace, persisted to
//                JSON on disk, parsed back and replayed on a fresh fleet.
//                The wave-outcome logs must match bit for bit ("identical"
//                in the JSON, the CI regression gate).
//   - defrag:    a seeded admit/release churn loop fragments the fleet;
//                one arm runs deterministic defrag_tick() maintenance
//                between bursts, the other does not. Compaction must not
//                cost admissions: defrag-on rejects <= defrag-off rejects.
//
// Results are emitted as BENCH_x11.json for the CI perf trail; the
// recorded trace is persisted alongside (default BENCH_x11_trace.json).
//
// Flags: --short (CI smoke: fewer waves),
//        --json PATH (default BENCH_x11.json),
//        --trace PATH (default BENCH_x11_trace.json).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/spatial_mapper.hpp"
#include "io/table.hpp"
#include "runtime/fleet.hpp"
#include "runtime/scenario.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "workload/hiperlan2.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rtsm;

/// The X7 6x6 mesh: 10 quad-slot ARM + 10 single-context MONTIUM tiles,
/// HIPERLAN/2 IO fixtures. One instance is one platform; the fleet runs K.
arch::Platform make_x11_platform() {
  arch::NocParams noc;
  arch::Platform p("x11 fleet 6x6", 6, 6, noc);
  const TileTypeId arm = p.add_tile_type("ARM", 200'000'000);
  const TileTypeId montium = p.add_tile_type("MONTIUM", 200'000'000);
  const TileTypeId io = p.add_tile_type("IO", 1'600'000'000);

  p.add_tile("A/D", io, 0, 2, 64 * 1024, /*process_slots=*/8);
  p.add_tile("Sink", io, 5, 3, 64 * 1024, /*process_slots=*/8);

  std::uint32_t arms = 0;
  std::uint32_t montiums = 0;
  for (std::uint32_t y = 0; y < 6 && arms + montiums < 20; ++y) {
    for (std::uint32_t x = 0; x < 6 && arms + montiums < 20; ++x) {
      if ((x == 0 && y == 2) || (x == 5 && y == 3)) continue;  // IO
      if ((x + y) % 2 == 0 && arms < 10) {
        p.add_tile("ARM" + std::to_string(arms++), arm, x, y, 64 * 1024,
                   /*process_slots=*/6);
      } else if (montiums < 10) {
        p.add_tile("MONT" + std::to_string(montiums++), montium, x, y,
                   64 * 1024, /*process_slots=*/1);
      }
    }
  }
  return p;
}

runtime::FleetOptions fleet_options(std::size_t platforms) {
  runtime::FleetOptions options;
  options.platforms = platforms;
  options.workers = 0;  // pump mode: deterministic dispatch order
  options.manager.mapper = std::make_shared<core::SpatialMapper>();
  return options;
}

struct FleetRun {
  std::size_t platforms = 0;
  runtime::ScenarioStats scenario;
  runtime::FleetStats fleet;
  double elapsed_s = 0.0;
  double admitted_per_s = 0.0;
  std::string report_json;
};

FleetRun run_fleet(const arch::Platform& platform,
                   const runtime::Schedule& schedule, std::size_t platforms) {
  runtime::FleetManager fleet(platform, fleet_options(platforms));
  runtime::FleetTarget target(fleet);
  runtime::ScenarioDriver driver(target, schedule);
  const auto start = std::chrono::steady_clock::now();
  FleetRun run;
  run.platforms = platforms;
  run.scenario = driver.run();
  run.elapsed_s = elapsed_us(start) / 1e6;
  run.admitted_per_s = run.elapsed_s > 0.0
                           ? static_cast<double>(run.scenario.admitted) /
                                 run.elapsed_s
                           : 0.0;
  run.fleet = fleet.fleet_stats();
  run.report_json = fleet.stats_report().to_json();
  return run;
}

/// Seeded admit/release churn with bursts of wide apps: fragmentation
/// builds as mid-life releases punch holes across the platforms. The
/// defrag arm compacts with one deterministic defrag_tick() per burst.
struct ChurnResult {
  std::uint64_t offered = 0;
  std::uint64_t rejected = 0;
  std::uint64_t defrag_passes = 0;
  [[nodiscard]] double reject_rate() const {
    return offered > 0 ? static_cast<double>(rejected) /
                             static_cast<double>(offered)
                       : 0.0;
  }
};

ChurnResult run_churn(const arch::Platform& platform, bool with_defrag,
                      std::uint32_t bursts) {
  runtime::FleetOptions options = fleet_options(2);
  options.background_defrag.platforms_per_tick = 2;
  options.background_defrag.min_fragmentation = 0.0;  // always compact
  runtime::FleetManager fleet(platform, options);

  Rng rng(4242);  // same stream in both arms: identical offered workload
  workload::SyntheticAppParams narrow;
  narrow.process_count = 2;
  narrow.with_fixtures = false;
  narrow.tile_types = {"ARM"};
  narrow.max_preferred_utilization = 0.45;
  workload::SyntheticAppParams wide = narrow;
  wide.process_count = 7;

  ChurnResult result;
  std::vector<AppId> live;
  std::uint32_t serial = 0;
  for (std::uint32_t burst = 0; burst < bursts; ++burst) {
    // Admit a burst of narrow apps, then punch holes by releasing every
    // other one — classic fragmentation bait for the wide apps below.
    for (int i = 0; i < 10; ++i) {
      const auto app = workload::make_synthetic_app(
          rng, narrow, "n" + std::to_string(serial++));
      ++result.offered;
      const auto out = fleet.admit(app);
      if (out.status == runtime::AdmitStatus::Admitted) {
        live.push_back(out.app_id);
      } else {
        ++result.rejected;
      }
    }
    for (std::size_t i = 0; i + 1 < live.size(); i += 2) {
      fleet.release(live[i]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
    if (with_defrag) fleet.defrag_tick();
    for (int i = 0; i < 2; ++i) {
      const auto app = workload::make_synthetic_app(
          rng, wide, "w" + std::to_string(serial++));
      ++result.offered;
      const auto out = fleet.admit(app);
      if (out.status == runtime::AdmitStatus::Admitted) {
        live.push_back(out.app_id);
      } else {
        ++result.rejected;
      }
    }
  }
  result.defrag_passes = fleet.fleet_stats().defrag_passes;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::string json_path = "BENCH_x11.json";
  std::string trace_path = "BENCH_x11_trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }

  std::printf("== X11: fleet federation, defrag thread, trace replay ====\n\n");

  const auto platform = make_x11_platform();
  const std::uint64_t seed = 20080310;
  runtime::ScheduleParams params;
  params.waves = short_mode ? 14 : 36;
  params.arrivals_per_wave = 6;  // overload: one platform must saturate
  params.hiperlan_fraction = 0.4;
  params.switch_prob = 0.4;
  params.lifetime_min = 5;
  params.lifetime_max = 12;
  const runtime::Schedule schedule =
      runtime::make_mode_churn_schedule(params, seed);

  // ---- capacity: K=1 vs K=4 on the identical overload schedule --------
  const FleetRun single = run_fleet(platform, schedule, 1);
  const FleetRun quad = run_fleet(platform, schedule, 4);
  const double speedup =
      single.scenario.admitted > 0
          ? static_cast<double>(quad.scenario.admitted) /
                static_cast<double>(single.scenario.admitted)
          : 0.0;

  io::TablePrinter table({"Fleet", "Admitted", "Rejected", "Spills",
                          "Dispatch imbal.", "Admitted/s", "Oracle"});
  for (std::size_t c = 1; c < 7; ++c) table.align_right(c);
  for (const FleetRun* run : {&single, &quad}) {
    table.add_row({"K=" + std::to_string(run->platforms),
                   std::to_string(run->scenario.admitted),
                   std::to_string(run->scenario.rejected),
                   std::to_string(run->fleet.spills),
                   rtsm::format_double(run->fleet.max_imbalance, 3),
                   rtsm::format_double(run->admitted_per_s, 0),
                   run->scenario.oracle_ok ? "ok" : "MISMATCH"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Admitted throughput K=4 / K=1: %.2fx (gate: >= 1.5x)\n\n",
              speedup);

  // ---- record -> persist -> parse -> replay ---------------------------
  runtime::ScenarioTrace trace;
  trace.seed = seed;
  trace.schedule = schedule;
  trace.outcomes = quad.scenario.wave_log;
  {
    std::ofstream out(trace_path);
    out << runtime::trace_to_json(trace);
  }
  std::string replay_verdict = "MISMATCH";
  {
    std::ifstream in(trace_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const runtime::ScenarioTrace parsed =
        runtime::trace_from_json(buffer.str());
    const FleetRun replayed = run_fleet(platform, parsed.schedule, 4);
    if (runtime::outcomes_identical(replayed.scenario.wave_log,
                                    parsed.outcomes) &&
        replayed.scenario.oracle_ok) {
      replay_verdict = "identical";
    }
  }
  std::printf("Persisted trace %s; replay from disk: %s\n\n",
              trace_path.c_str(), replay_verdict.c_str());

  // ---- defrag-on vs defrag-off churn ----------------------------------
  const std::uint32_t bursts = short_mode ? 10 : 24;
  const ChurnResult defrag_off = run_churn(platform, false, bursts);
  const ChurnResult defrag_on = run_churn(platform, true, bursts);
  std::printf(
      "Churn (%u bursts, K=2): defrag-off rejected %llu/%llu (%.1f%%), "
      "defrag-on rejected %llu/%llu (%.1f%%, %llu passes)\n\n",
      bursts, static_cast<unsigned long long>(defrag_off.rejected),
      static_cast<unsigned long long>(defrag_off.offered),
      100.0 * defrag_off.reject_rate(),
      static_cast<unsigned long long>(defrag_on.rejected),
      static_cast<unsigned long long>(defrag_on.offered),
      100.0 * defrag_on.reject_rate(),
      static_cast<unsigned long long>(defrag_on.defrag_passes));

  const bool oracle_ok =
      single.scenario.oracle_ok && quad.scenario.oracle_ok;
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"x11_fleet\",\n  \"waves\": %u,\n",
               params.waves);
  for (const FleetRun* run : {&single, &quad}) {
    std::fprintf(
        f,
        "  \"k%zu\": {\"admitted\": %llu, \"rejected\": %llu, "
        "\"switches\": %llu, \"spills\": %llu, \"spill_failures\": %llu, "
        "\"max_imbalance\": %.4f, \"elapsed_s\": %.3f, "
        "\"admitted_per_s\": %.1f, \"oracle_ok\": %s, "
        "\"fleet_report\": %s},\n",
        run->platforms,
        static_cast<unsigned long long>(run->scenario.admitted),
        static_cast<unsigned long long>(run->scenario.rejected),
        static_cast<unsigned long long>(run->scenario.switches),
        static_cast<unsigned long long>(run->fleet.spills),
        static_cast<unsigned long long>(run->fleet.spill_failures),
        run->fleet.max_imbalance, run->elapsed_s, run->admitted_per_s,
        run->scenario.oracle_ok ? "true" : "false",
        run->report_json.c_str());
  }
  std::fprintf(
      f,
      "  \"fleet_speedup\": %.3f,\n"
      "  \"defrag_off_rejects\": %llu,\n"
      "  \"defrag_on_rejects\": %llu,\n"
      "  \"defrag_passes\": %llu,\n"
      "  \"trace_file\": \"%s\",\n"
      "  \"trace_replay\": \"%s\",\n"
      "  \"oracle\": \"%s\"\n}\n",
      speedup, static_cast<unsigned long long>(defrag_off.rejected),
      static_cast<unsigned long long>(defrag_on.rejected),
      static_cast<unsigned long long>(defrag_on.defrag_passes),
      trace_path.c_str(), replay_verdict.c_str(),
      oracle_ok ? "identical" : "MISMATCH");
  std::fclose(f);
  std::printf("Wrote %s\n", json_path.c_str());

  std::printf(
      "\nReading: the fleet converts K platforms into admitted streams —\n"
      "least-loaded dispatch spreads the overload, spill-over recovers\n"
      "first-choice rejects, and the recorded trace replays bit-identically\n"
      "from disk. Deterministic defrag ticks compact the platforms without\n"
      "costing admissions.\n");
  return 0;
}
