// Extension bench X4: the run-time argument of the paper's introduction.
// A design-time allocation must reserve worst-case resources for every
// application that might run; a run-time admission manager allocates
// against the actual residual state when each application starts. This
// bench replays arrival/departure scenarios through the RuntimeManager,
// compares admissions and energy, reports the admission statistics the
// manager collects, and proves that releases restore the resource state.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/spatial_mapper.hpp"
#include "io/table.hpp"
#include "runtime/runtime_manager.hpp"
#include "util/strings.hpp"
#include "workload/hiperlan2.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rtsm;

/// Design-time worst case: every application is mapped onto the idle
/// platform with its own statically reserved tiles; two applications may
/// never share a tile even when their utilisations would fit. We emulate
/// this by admitting an application only if it can be mapped on the idle
/// platform AND its statically chosen tiles are still unused.
class DesignTimeAllocator {
 public:
  DesignTimeAllocator(const arch::Platform& platform,
                      const core::Mapper& mapper)
      : platform_(platform), mapper_(mapper), tile_used_(platform.tile_count(), false) {}

  bool try_admit(const kpn::Application& app) {
    const auto result = mapper_.map(app, platform_);  // idle-platform plan
    if (!result.success) return false;
    // Static plan: the tiles it chose must all be free (worst case: no
    // sharing, no re-planning).
    std::vector<std::size_t> tiles;
    for (const ProcessId pid : app.process_ids()) {
      tiles.push_back(result.mapping.tile_of(pid).value());
    }
    for (const std::size_t t : tiles) {
      if (tile_used_[t]) return false;
    }
    for (const std::size_t t : tiles) tile_used_[t] = true;
    energy_ += result.energy_nj_per_symbol;
    return true;
  }

  [[nodiscard]] double energy() const { return energy_; }

 private:
  const arch::Platform& platform_;
  const core::Mapper& mapper_;
  std::vector<bool> tile_used_;
  double energy_ = 0.0;
};

/// Flat snapshot of a ResourceState for exact restore comparison.
struct Snapshot {
  std::vector<double> utilization;
  std::vector<std::uint64_t> memory;
  std::vector<std::uint32_t> processes;
  double links_reserved = 0.0;

  static Snapshot of(const core::ResourceState& state) {
    Snapshot snap;
    for (const TileId tid : state.platform().tile_ids()) {
      snap.utilization.push_back(state.utilization(tid));
      snap.memory.push_back(state.memory_used(tid));
      snap.processes.push_back(state.processes_hosted(tid));
    }
    snap.links_reserved = state.links().total_reserved();
    return snap;
  }

  [[nodiscard]] bool matches(const Snapshot& other) const {
    if (memory != other.memory || processes != other.processes) return false;
    for (std::size_t i = 0; i < utilization.size(); ++i) {
      if (std::abs(utilization[i] - other.utilization[i]) > 1e-9) return false;
    }
    return std::abs(links_reserved - other.links_reserved) < 1e-6;
  }
};

}  // namespace

int main() {
  std::printf("== X4: run-time vs. design-time allocation ===================\n\n");

  io::TablePrinter table({"Scenario", "Apps offered", "Run-time admits",
                          "Design-time admits", "Run-time nJ/app",
                          "Design-time nJ/app"});
  for (std::size_t c = 1; c < 6; ++c) table.align_right(c);

  for (std::uint32_t scenario = 0; scenario < 6; ++scenario) {
    Rng rng(scenario * 101 + 13);
    workload::SyntheticPlatformParams pp;
    pp.width = 4;
    pp.height = 4;
    pp.type_counts = {{"ARM", 6}, {"DSP", 6}};
    // Multi-context tiles (and IO tiles shared by several fixtures) so the
    // admission limit comes from compute capacity, not fixture slots.
    pp.process_slots = 4;
    const auto platform = workload::make_synthetic_platform(rng, pp, "p");

    // A burst of small applications arriving one by one. No shared I/O
    // fixtures: contention is purely about compute tiles and the NoC.
    const std::uint32_t offered = 6;
    std::vector<kpn::Application> apps;
    for (std::uint32_t i = 0; i < offered; ++i) {
      workload::SyntheticAppParams ap;
      ap.process_count = 3;
      ap.max_preferred_utilization = 0.35;
      ap.with_fixtures = false;
      apps.push_back(workload::make_synthetic_app(
          rng, ap, "app" + std::to_string(i)));
    }

    const auto mapper = std::make_shared<core::SpatialMapper>();
    runtime::RuntimeManager manager(platform, mapper);
    DesignTimeAllocator design(platform, *mapper);
    std::uint32_t design_admits = 0;
    for (const auto& app : apps) {
      manager.admit(app);
      if (design.try_admit(app)) ++design_admits;
    }
    const runtime::AdmissionStats& stats = manager.stats();

    table.add_row(
        {"burst-" + std::to_string(scenario), std::to_string(offered),
         std::to_string(stats.admitted), std::to_string(design_admits),
         stats.admitted > 0
             ? rtsm::format_double(manager.total_energy_nj_per_symbol() /
                                       static_cast<double>(stats.admitted),
                                   0)
             : std::string("-"),
         design_admits > 0
             ? rtsm::format_double(design.energy() / design_admits, 0)
             : std::string("-")});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Churn scenario: applications also stop, freeing resources only the
  // run-time manager can reuse. A retry policy parks rejected arrivals and
  // re-admits them when capacity returns.
  {
    Rng rng(999);
    workload::SyntheticPlatformParams pp;
    pp.width = 3;
    pp.height = 3;
    pp.type_counts = {{"ARM", 3}, {"DSP", 3}};
    const auto platform = workload::make_synthetic_platform(rng, pp, "p");
    runtime::RuntimeManager manager(
        platform, std::make_shared<core::SpatialMapper>(),
        std::make_shared<runtime::RetryAdmission>(4));

    workload::SyntheticAppParams ap;
    ap.process_count = 3;
    ap.with_fixtures = false;
    std::vector<AppId> running;
    for (std::uint32_t wave = 0; wave < 8; ++wave) {
      const auto app =
          workload::make_synthetic_app(rng, ap, "w" + std::to_string(wave));
      manager.submit(std::make_shared<kpn::Application>(app));
      // Every second wave the oldest application finishes; its release
      // wakes any parked arrivals.
      if (wave % 2 == 1 && !running.empty()) {
        manager.submit_release(running.front());
        running.erase(running.begin());
      }
      for (const auto& outcome : manager.drain()) {
        if (outcome.status == runtime::AdmitStatus::Admitted) {
          running.push_back(outcome.app_id);
        }
      }
    }
    manager.reject_waiting();

    const runtime::AdmissionStats& stats = manager.stats();
    std::printf(
        "Churn scenario (policy %s): offered %llu, admitted %llu, rejected "
        "%llu, retries %llu, releases %llu;\n  %zu still running, %zu idle "
        "tiles available for power-down\n",
        manager.policy().name().c_str(),
        static_cast<unsigned long long>(stats.offered),
        static_cast<unsigned long long>(stats.admitted),
        static_cast<unsigned long long>(stats.rejected),
        static_cast<unsigned long long>(stats.retries),
        static_cast<unsigned long long>(stats.releases),
        manager.running_count(), manager.state().idle_tile_count());
    std::printf(
        "Admission latency (mapper wall clock): mean %.0f us, p50 %.0f us, "
        "p90 %.0f us, p99 %.0f us over %zu requests\n\n",
        stats.mean_latency_us(), stats.latency_percentile_us(50),
        stats.latency_percentile_us(90), stats.latency_percentile_us(99),
        stats.latencies_us.size());
  }

  // Restore proof: admitting and then releasing an application returns the
  // ResourceState to its exact pre-admit snapshot.
  {
    const auto platform = workload::make_paper_platform();
    runtime::RuntimeManager manager(platform,
                                    std::make_shared<core::SpatialMapper>());
    const auto app = workload::make_hiperlan2_receiver();

    const Snapshot before = Snapshot::of(manager.state());
    const auto admitted = manager.admit(app);
    const bool ok = admitted.status == runtime::AdmitStatus::Admitted;
    const Snapshot loaded = Snapshot::of(manager.state());
    const bool changed = !loaded.matches(before);
    if (ok) manager.release(admitted.app_id);
    const Snapshot after = Snapshot::of(manager.state());
    std::printf(
        "Restore proof (HIPERLAN/2 on the paper platform): admitted=%s, "
        "state changed on admit=%s, state restored on release=%s\n\n",
        ok ? "yes" : "no", changed ? "yes" : "NO (bug)",
        ok && after.matches(before) ? "yes" : "NO (bug)");
  }

  std::printf(
      "Reading: with identical hardware and applications, run-time mapping\n"
      "admits more applications than a worst-case static allocation, reuses\n"
      "capacity as applications stop, and a retry policy turns rejected\n"
      "arrivals into deferred admissions — the motivation of Section 1.\n");
  return 0;
}
