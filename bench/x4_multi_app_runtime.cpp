// Extension bench X4: the run-time argument of the paper's introduction.
// A design-time allocation must reserve worst-case resources for every
// application that might run; a run-time admission manager allocates
// against the actual residual state when each application starts. This
// bench replays arrival/departure scenarios through the RuntimeManager,
// compares admissions and energy, reports the admission statistics the
// manager collects, and proves that releases restore the resource state.
//
// The burst section measures the concurrent admission path: the same
// 64-application arrival burst is pushed through the serial RuntimeManager
// and through the ConcurrentRuntimeManager's worker pool, reporting
// throughput and admission-latency percentiles, and verifying that the
// concurrent bookkeeping is exact (serial replay + full-release restore).
// Results are also emitted as BENCH_x4.json for the CI perf trail.
//
// Flags: --short (CI smoke: smaller burst, fewer scenarios),
//        --json PATH (default BENCH_x4.json).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/spatial_mapper.hpp"
#include "io/table.hpp"
#include "runtime/concurrent_manager.hpp"
#include "runtime/runtime_manager.hpp"
#include "runtime/stats_report.hpp"
#include "util/clock.hpp"
#include "util/strings.hpp"
#include "verify/engine.hpp"
#include "workload/hiperlan2.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rtsm;

/// Design-time worst case: every application is mapped onto the idle
/// platform with its own statically reserved tiles; two applications may
/// never share a tile even when their utilisations would fit. We emulate
/// this by admitting an application only if it can be mapped on the idle
/// platform AND its statically chosen tiles are still unused.
class DesignTimeAllocator {
 public:
  DesignTimeAllocator(const arch::Platform& platform,
                      const core::Mapper& mapper)
      : platform_(platform),
        mapper_(mapper),
        tile_used_(platform.tile_count(), false) {}

  bool try_admit(const kpn::Application& app) {
    const auto result = mapper_.map(app, platform_);  // idle-platform plan
    if (!result.success) return false;
    // Static plan: the tiles it chose must all be free (worst case: no
    // sharing, no re-planning).
    std::vector<std::size_t> tiles;
    for (const ProcessId pid : app.process_ids()) {
      tiles.push_back(result.mapping.tile_of(pid).value());
    }
    for (const std::size_t t : tiles) {
      if (tile_used_[t]) return false;
    }
    for (const std::size_t t : tiles) tile_used_[t] = true;
    energy_ += result.energy_nj_per_symbol;
    return true;
  }

  [[nodiscard]] double energy() const { return energy_; }

 private:
  const arch::Platform& platform_;
  const core::Mapper& mapper_;
  std::vector<bool> tile_used_;
  double energy_ = 0.0;
};

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return elapsed_us(start) / 1000.0;
}

/// One burst run's figures (serial or concurrent).
struct BurstFigures {
  double wall_ms = 0.0;
  double throughput_per_s = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t conflicts = 0;
  bool replay_ok = true;   ///< final state == serial replay of commits
  bool restore_ok = true;  ///< releasing everything restores pristine
  /// Step-4 verification engine counters of the run's mapper.
  verify::EngineStats verify;
  /// Full StatsReport::to_json() of the run, embedded in BENCH_x4.json.
  std::string stats_json;
};

void fill_percentiles(BurstFigures& figures,
                      const runtime::AdmissionStats& stats) {
  figures.p50_us = stats.latency_percentile_us(50);
  figures.p95_us = stats.latency_percentile_us(95);
  figures.p99_us = stats.latency_percentile_us(99);
  figures.admitted = stats.admitted;
  figures.rejected = stats.rejected;
  figures.conflicts = stats.conflicts;
}

/// Pushes the burst through the serial FIFO manager, one admit at a time.
BurstFigures run_serial_burst(
    const arch::Platform& platform,
    const std::vector<std::shared_ptr<const kpn::Application>>& apps) {
  runtime::RuntimeManager manager(
      platform, {.mapper = std::make_shared<core::SpatialMapper>()});
  BurstFigures figures;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& app : apps) manager.submit(app);
  manager.drain();
  figures.wall_ms = wall_ms_since(start);
  figures.throughput_per_s =
      static_cast<double>(apps.size()) / (figures.wall_ms / 1000.0);
  fill_percentiles(figures, manager.stats());

  for (const AppId id : manager.running_ids()) manager.release(id);
  figures.restore_ok =
      manager.state().approx_equals(core::ResourceState(platform));
  figures.verify = manager.verification_stats();
  figures.stats_json = manager.stats_report().to_json();
  return figures;
}

/// Pushes the burst through the concurrent manager: @p clients submitter
/// threads feed the bounded queue, @p workers workers admit.
BurstFigures run_concurrent_burst(
    const arch::Platform& platform,
    const std::vector<std::shared_ptr<const kpn::Application>>& apps,
    std::uint32_t workers, std::uint32_t clients) {
  runtime::ConcurrentOptions options;
  options.workers = workers;
  options.queue_capacity = 128;
  options.max_batch = 8;
  // One shard per worker: concurrent planners start in disjoint mesh
  // stripes, which avoids the burst-start thundering herd (every worker
  // planning the same tiles of an empty platform and colliding at commit).
  options.shards = workers;
  runtime::ConcurrentRuntimeManager manager(
      platform, {.mapper = std::make_shared<core::SpatialMapper>()}, options);

  BurstFigures figures;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> submitters;
  for (std::uint32_t c = 0; c < clients; ++c) {
    submitters.emplace_back([&, c] {
      for (std::size_t i = c; i < apps.size(); i += clients) {
        (void)manager.submit(apps[i]);
      }
    });
  }
  for (auto& s : submitters) s.join();
  manager.wait_idle();
  figures.wall_ms = wall_ms_since(start);
  figures.throughput_per_s =
      static_cast<double>(apps.size()) / (figures.wall_ms / 1000.0);
  fill_percentiles(figures, manager.stats());

  // Exactness check 1: the live state must equal a serial replay of the
  // surviving commits — no interleaving may corrupt the bookkeeping.
  core::ResourceState replayed(platform);
  for (const AppId id : manager.running_ids()) {
    core::commit_mapping(replayed, *manager.app_of(id), manager.mapping_of(id));
  }
  figures.replay_ok = manager.state_snapshot().approx_equals(replayed);

  // Exactness check 2: releasing everything restores the pristine state.
  for (const AppId id : manager.running_ids()) manager.release(id);
  figures.restore_ok =
      manager.state_snapshot().approx_equals(core::ResourceState(platform));
  figures.verify = manager.verification_stats();
  figures.stats_json = manager.stats_report().to_json();
  return figures;
}

void write_json(const std::string& path, std::size_t burst_size,
                std::uint32_t workers, const BurstFigures& serial,
                const BurstFigures& concurrent) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const double speedup =
      concurrent.wall_ms > 0.0 ? serial.wall_ms / concurrent.wall_ms : 0.0;
  auto one = [&](const char* name, const BurstFigures& b) {
    std::fprintf(f,
                 "  \"%s\": {\"wall_ms\": %.3f, \"throughput_per_s\": %.2f, "
                 "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
                 "\"admitted\": %llu, \"rejected\": %llu, "
                 "\"conflicts\": %llu, \"replay_ok\": %s, "
                 "\"restore_ok\": %s, \"verify_hit_rate\": %.4f, "
                 "\"verify_events_saved\": %llu",
                 name, b.wall_ms, b.throughput_per_s, b.p50_us, b.p95_us,
                 b.p99_us, static_cast<unsigned long long>(b.admitted),
                 static_cast<unsigned long long>(b.rejected),
                 static_cast<unsigned long long>(b.conflicts),
                 b.replay_ok ? "true" : "false",
                 b.restore_ok ? "true" : "false", b.verify.hit_rate(),
                 static_cast<unsigned long long>(b.verify.events_saved));
    std::fprintf(f, ", \"stats_report\": %s}", b.stats_json.c_str());
  };
  std::fprintf(f, "{\n  \"bench\": \"x4_multi_app_runtime\",\n");
  std::fprintf(f, "  \"burst_apps\": %zu,\n  \"workers\": %u,\n",
               burst_size, workers);
  one("serial", serial);
  std::fprintf(f, ",\n");
  one("concurrent", concurrent);
  std::fprintf(f, ",\n  \"speedup\": %.2f,\n  \"state_check\": \"%s\"\n}\n",
               speedup,
               serial.restore_ok && concurrent.replay_ok &&
                       concurrent.restore_ok
                   ? "identical"
                   : "MISMATCH");
  std::fclose(f);
  std::printf("Wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::string json_path = "BENCH_x4.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::printf("== X4: run-time vs. design-time allocation ===============\n\n");

  io::TablePrinter table({"Scenario", "Apps offered", "Run-time admits",
                          "Design-time admits", "Run-time nJ/app",
                          "Design-time nJ/app"});
  for (std::size_t c = 1; c < 6; ++c) table.align_right(c);

  const std::uint32_t scenario_count = short_mode ? 2 : 6;
  for (std::uint32_t scenario = 0; scenario < scenario_count; ++scenario) {
    Rng rng(scenario * 101 + 13);
    workload::SyntheticPlatformParams pp;
    pp.width = 4;
    pp.height = 4;
    pp.type_counts = {{"ARM", 6}, {"DSP", 6}};
    // Multi-context tiles (and IO tiles shared by several fixtures) so the
    // admission limit comes from compute capacity, not fixture slots.
    pp.process_slots = 4;
    const auto platform = workload::make_synthetic_platform(rng, pp, "p");

    // A burst of small applications arriving one by one. No shared I/O
    // fixtures: contention is purely about compute tiles and the NoC.
    const std::uint32_t offered = 6;
    std::vector<kpn::Application> apps;
    for (std::uint32_t i = 0; i < offered; ++i) {
      workload::SyntheticAppParams ap;
      ap.process_count = 3;
      ap.max_preferred_utilization = 0.35;
      ap.with_fixtures = false;
      apps.push_back(workload::make_synthetic_app(
          rng, ap, "app" + std::to_string(i)));
    }

    const auto mapper = std::make_shared<core::SpatialMapper>();
    runtime::RuntimeManager manager(platform, {.mapper = mapper});
    DesignTimeAllocator design(platform, *mapper);
    std::uint32_t design_admits = 0;
    for (const auto& app : apps) {
      manager.admit(app);
      if (design.try_admit(app)) ++design_admits;
    }
    const runtime::AdmissionStats& stats = manager.stats();

    table.add_row(
        {"burst-" + std::to_string(scenario), std::to_string(offered),
         std::to_string(stats.admitted), std::to_string(design_admits),
         stats.admitted > 0
             ? rtsm::format_double(manager.total_energy_nj_per_symbol() /
                                       static_cast<double>(stats.admitted),
                                   0)
             : std::string("-"),
         design_admits > 0
             ? rtsm::format_double(design.energy() / design_admits, 0)
             : std::string("-")});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Churn scenario: applications also stop, freeing resources only the
  // run-time manager can reuse. A retry policy parks rejected arrivals and
  // re-admits them when capacity returns.
  {
    Rng rng(999);
    workload::SyntheticPlatformParams pp;
    pp.width = 3;
    pp.height = 3;
    pp.type_counts = {{"ARM", 3}, {"DSP", 3}};
    const auto platform = workload::make_synthetic_platform(rng, pp, "p");
    runtime::RuntimeManager manager(
        platform,
        {.mapper = std::make_shared<core::SpatialMapper>(),
         .policy = std::make_shared<runtime::RetryAdmission>(4)});

    workload::SyntheticAppParams ap;
    ap.process_count = 3;
    ap.with_fixtures = false;
    std::vector<AppId> running;
    for (std::uint32_t wave = 0; wave < 8; ++wave) {
      const auto app =
          workload::make_synthetic_app(rng, ap, "w" + std::to_string(wave));
      manager.submit(std::make_shared<kpn::Application>(app));
      // Every second wave the oldest application finishes; its release
      // wakes any parked arrivals.
      if (wave % 2 == 1 && !running.empty()) {
        manager.submit_release(running.front());
        running.erase(running.begin());
      }
      for (const auto& outcome : manager.drain()) {
        if (outcome.status == runtime::AdmitStatus::Admitted) {
          running.push_back(outcome.app_id);
        }
      }
    }
    manager.reject_waiting();

    const runtime::AdmissionStats& stats = manager.stats();
    std::printf(
        "Churn scenario (policy %s): offered %llu, admitted %llu, rejected "
        "%llu, retries %llu, releases %llu;\n  %zu still running, %zu idle "
        "tiles available for power-down\n",
        manager.policy().name().c_str(),
        static_cast<unsigned long long>(stats.offered),
        static_cast<unsigned long long>(stats.admitted),
        static_cast<unsigned long long>(stats.rejected),
        static_cast<unsigned long long>(stats.retries),
        static_cast<unsigned long long>(stats.releases),
        manager.running_count(), manager.state().idle_tile_count());
    std::printf(
        "Admission latency (mapper wall clock): mean %.0f us, p50 %.0f us, "
        "p90 %.0f us, p99 %.0f us over %zu requests\n\n",
        stats.mean_latency_us(), stats.latency_percentile_us(50),
        stats.latency_percentile_us(90), stats.latency_percentile_us(99),
        static_cast<std::size_t>(stats.latencies.count()));
  }

  // Restore proof: admitting and then releasing an application returns the
  // ResourceState to its exact pre-admit snapshot.
  {
    const auto platform = workload::make_paper_platform();
    runtime::RuntimeManager manager(
        platform, {.mapper = std::make_shared<core::SpatialMapper>()});
    const auto app = workload::make_hiperlan2_receiver();

    const core::ResourceState before = manager.state().snapshot();
    const auto admitted = manager.admit(app);
    const bool ok = admitted.status == runtime::AdmitStatus::Admitted;
    const bool changed = !manager.state().approx_equals(before);
    if (ok) manager.release(admitted.app_id);
    std::printf(
        "Restore proof (HIPERLAN/2 on the paper platform): admitted=%s, "
        "state changed on admit=%s, state restored on release=%s\n\n",
        ok ? "yes" : "no", changed ? "yes" : "NO (bug)",
        ok && manager.state().approx_equals(before) ? "yes" : "NO (bug)");
  }

  // Arrival burst, serial vs. concurrent: the same burst through the FIFO
  // manager and through a 4-worker pool fed by 4 client threads. The
  // concurrent path must win on throughput and lose nothing on
  // bookkeeping exactness.
  {
    const std::size_t burst_size = short_mode ? 16 : 64;
    const std::uint32_t workers = 4;
    Rng rng(4242);
    workload::SyntheticPlatformParams pp;
    pp.width = 6;
    pp.height = 6;
    pp.type_counts = {{"ARM", 16}, {"DSP", 16}};
    pp.process_slots = 4;
    const auto platform = workload::make_synthetic_platform(rng, pp, "burst");

    std::vector<std::shared_ptr<const kpn::Application>> apps;
    for (std::size_t i = 0; i < burst_size; ++i) {
      workload::SyntheticAppParams ap;
      ap.process_count = 3;
      ap.max_preferred_utilization = 0.25;
      ap.with_fixtures = false;
      apps.push_back(std::make_shared<kpn::Application>(
          workload::make_synthetic_app(rng, ap, "b" + std::to_string(i))));
    }

    const BurstFigures serial = run_serial_burst(platform, apps);
    const BurstFigures concurrent =
        run_concurrent_burst(platform, apps, workers, /*clients=*/4);

    std::printf(
        "Burst (%zu apps): serial %7.1f ms (%6.1f apps/s, p50 %.0f us, p95 "
        "%.0f us, p99 %.0f us), admitted %llu\n",
        apps.size(), serial.wall_ms, serial.throughput_per_s, serial.p50_us,
        serial.p95_us, serial.p99_us,
        static_cast<unsigned long long>(serial.admitted));
    std::printf(
        "          %u workers %7.1f ms (%6.1f apps/s, p50 %.0f us, p95 %.0f "
        "us, p99 %.0f us), admitted %llu, conflicts %llu\n",
        workers, concurrent.wall_ms, concurrent.throughput_per_s,
        concurrent.p50_us, concurrent.p95_us, concurrent.p99_us,
        static_cast<unsigned long long>(concurrent.admitted),
        static_cast<unsigned long long>(concurrent.conflicts));
    std::printf(
        "Verification engine: serial hit rate %.2f (%llu events saved), "
        "concurrent hit rate %.2f (%llu events saved)\n",
        serial.verify.hit_rate(),
        static_cast<unsigned long long>(serial.verify.events_saved),
        concurrent.verify.hit_rate(),
        static_cast<unsigned long long>(concurrent.verify.events_saved));
    const double speedup = concurrent.wall_ms > 0.0
                               ? serial.wall_ms / concurrent.wall_ms
                               : 0.0;
    const bool state_ok =
        serial.restore_ok && concurrent.replay_ok && concurrent.restore_ok;
    std::printf(
        "Speedup %.2fx (%s); residual-state check: replay=%s, restore=%s "
        "-> %s\n\n",
        speedup, speedup > 1.0 ? "concurrent wins" : "NO speedup",
        concurrent.replay_ok ? "identical" : "MISMATCH",
        concurrent.restore_ok && serial.restore_ok ? "identical" : "MISMATCH",
        state_ok ? "identical" : "MISMATCH");

    write_json(json_path, apps.size(), workers, serial, concurrent);
  }

  std::printf(
      "Reading: with identical hardware and applications, run-time mapping\n"
      "admits more applications than a worst-case static allocation, reuses\n"
      "capacity as applications stop, re-admits deferred arrivals after a\n"
      "release, and scales admission throughput with a worker pool while\n"
      "keeping the resource bookkeeping exact.\n");
  return 0;
}
