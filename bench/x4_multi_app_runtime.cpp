// Extension bench X4: the run-time argument of the paper's introduction.
// A design-time allocation must reserve worst-case resources for every
// application that might run; a run-time mapper allocates against the
// actual residual state when each application starts. This bench replays
// arrival/departure scenarios and compares admissions and energy.

#include <cstdio>

#include "core/reservation.hpp"
#include "io/table.hpp"
#include "util/strings.hpp"
#include "workload/hiperlan2.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rtsm;

/// Design-time worst case: every application is mapped onto the idle
/// platform with its own statically reserved tiles; two applications may
/// never share a tile even when their utilisations would fit. We emulate
/// this by admitting an application only if it can be mapped on the idle
/// platform AND its statically chosen tiles are still unused.
class DesignTimeAllocator {
 public:
  DesignTimeAllocator(const arch::Platform& platform,
                      const core::SpatialMapper& mapper)
      : platform_(platform), mapper_(mapper), tile_used_(platform.tile_count(), false) {}

  bool try_admit(const kpn::Application& app) {
    const auto result = mapper_.map(app, platform_);  // idle-platform plan
    if (!result.success) return false;
    // Static plan: the tiles it chose must all be free (worst case: no
    // sharing, no re-planning).
    std::vector<std::size_t> tiles;
    for (const ProcessId pid : app.process_ids()) {
      tiles.push_back(result.mapping.tile_of(pid).value());
    }
    for (const std::size_t t : tiles) {
      if (tile_used_[t]) return false;
    }
    for (const std::size_t t : tiles) tile_used_[t] = true;
    energy_ += result.energy_nj_per_symbol;
    return true;
  }

  [[nodiscard]] double energy() const { return energy_; }

 private:
  const arch::Platform& platform_;
  const core::SpatialMapper& mapper_;
  std::vector<bool> tile_used_;
  double energy_ = 0.0;
};

}  // namespace

int main() {
  std::printf("== X4: run-time vs. design-time allocation ===================\n\n");

  const core::SpatialMapper mapper;

  io::TablePrinter table({"Scenario", "Apps offered", "Run-time admits",
                          "Design-time admits", "Run-time nJ/app",
                          "Design-time nJ/app"});
  for (std::size_t c = 1; c < 6; ++c) table.align_right(c);

  for (std::uint32_t scenario = 0; scenario < 6; ++scenario) {
    Rng rng(scenario * 101 + 13);
    workload::SyntheticPlatformParams pp;
    pp.width = 4;
    pp.height = 4;
    pp.type_counts = {{"ARM", 6}, {"DSP", 6}};
    // Multi-context tiles (and IO tiles shared by several fixtures) so the
    // admission limit comes from compute capacity, not fixture slots.
    pp.process_slots = 4;
    const auto platform = workload::make_synthetic_platform(rng, pp, "p");

    // A burst of small applications arriving one by one. No shared I/O
    // fixtures: contention is purely about compute tiles and the NoC.
    const std::uint32_t offered = 6;
    std::vector<kpn::Application> apps;
    for (std::uint32_t i = 0; i < offered; ++i) {
      workload::SyntheticAppParams ap;
      ap.process_count = 3;
      ap.max_preferred_utilization = 0.35;
      ap.with_fixtures = false;
      apps.push_back(workload::make_synthetic_app(
          rng, ap, "app" + std::to_string(i)));
    }

    core::RuntimeResourceManager runtime(platform);
    DesignTimeAllocator design(platform, mapper);
    std::uint32_t runtime_admits = 0;
    std::uint32_t design_admits = 0;
    for (const auto& app : apps) {
      if (runtime.start(app, mapper).admitted) ++runtime_admits;
      if (design.try_admit(app)) ++design_admits;
    }

    table.add_row(
        {"burst-" + std::to_string(scenario), std::to_string(offered),
         std::to_string(runtime_admits), std::to_string(design_admits),
         runtime_admits > 0
             ? rtsm::format_double(
                   runtime.total_energy_nj_per_symbol() / runtime_admits, 0)
             : std::string("-"),
         design_admits > 0
             ? rtsm::format_double(design.energy() / design_admits, 0)
             : std::string("-")});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Churn scenario: applications also stop, freeing resources only the
  // run-time mapper can reuse.
  {
    Rng rng(999);
    workload::SyntheticPlatformParams pp;
    pp.width = 3;
    pp.height = 3;
    pp.type_counts = {{"ARM", 3}, {"DSP", 3}};
    const auto platform = workload::make_synthetic_platform(rng, pp, "p");
    core::RuntimeResourceManager runtime(platform);

    workload::SyntheticAppParams ap;
    ap.process_count = 3;
    ap.with_fixtures = false;
    std::uint32_t admitted = 0;
    std::uint32_t offered = 0;
    std::vector<AppId> running;
    for (std::uint32_t wave = 0; wave < 8; ++wave) {
      const auto app =
          workload::make_synthetic_app(rng, ap, "w" + std::to_string(wave));
      ++offered;
      const auto r = runtime.start(app, mapper);
      if (r.admitted) {
        ++admitted;
        running.push_back(r.id);
      }
      // Every second wave the oldest application finishes.
      if (wave % 2 == 1 && !running.empty()) {
        runtime.stop(running.front());
        running.erase(running.begin());
      }
    }
    std::printf("Churn scenario (arrivals with departures): %u/%u admitted; "
                "%zu still running, %zu idle tiles available for power-down\n\n",
                admitted, offered, runtime.running_count(),
                runtime.state().idle_tile_count());
  }

  std::printf(
      "Reading: with identical hardware and applications, run-time mapping\n"
      "admits more applications than a worst-case static allocation and\n"
      "reuses capacity as applications stop — the motivation of Section 1.\n");
  return 0;
}
