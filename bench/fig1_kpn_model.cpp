// Reproduces Figure 1 of the paper: the decomposition of the HIPERLAN/2
// receiver into communicating processes, with per-symbol token counts on
// every channel (80 / 64 / 64 / 52 / b 32-bit samples).
//
// Figures are also written as BENCH_fig1_kpn_model.json into the working
// directory (override with --json PATH) — the convention every bench in
// this directory follows for the CI artifact trail.

#include <cstdio>
#include <cstring>
#include <string>

#include "io/dot.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "util/strings.hpp"
#include "workload/hiperlan2.hpp"

int main(int argc, char** argv) {
  using namespace rtsm;

  std::string json_path = "BENCH_fig1_kpn_model.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::printf("== Figure 1: HIPERLAN/2 receiver KPN =====================\n\n");

  for (const workload::ModeInfo& mode : workload::kHiperlan2Modes) {
    workload::Hiperlan2Config config;
    config.mode = mode.mode;
    const kpn::Application app = workload::make_hiperlan2_receiver(config);
    if (mode.mode == workload::Hiperlan2Mode::QPSK) {
      io::TablePrinter table({"Channel", "Tokens/symbol", "Bytes/symbol",
                              "Demand [Mtokens/s]"});
      table.align_right(1);
      table.align_right(2);
      table.align_right(3);
      for (const ChannelId cid : app.channel_ids()) {
        const kpn::Channel& c = app.channel(cid);
        table.add_row({c.name, std::to_string(c.tokens_per_symbol),
                       std::to_string(c.tokens_per_symbol * c.token_bytes),
                       format_double(app.tokens_per_second(cid) / 1e6, 1)});
      }
      std::printf("%s\n", table.to_string().c_str());
      std::printf("QoS: one OFDM symbol per %llu ns, %u symbols per frame\n\n",
                  static_cast<unsigned long long>(app.qos().symbol_period_ns),
                  app.qos().frame_symbols);
    }
  }

  std::printf("Demapper output b across the seven modes:\n");
  io::TablePrinter modes({"Mode", "bits/sample", "b [tokens]", "bytes/symbol"});
  modes.align_right(1);
  modes.align_right(2);
  modes.align_right(3);
  for (const workload::ModeInfo& m : workload::kHiperlan2Modes) {
    modes.add_row({std::string(m.name), std::to_string(m.bits_per_sample),
                   std::to_string(m.output_tokens),
                   std::to_string(m.output_tokens * 4)});
  }
  std::printf("%s\n", modes.to_string().c_str());
  std::printf("Paper check: minimum output 12 bytes (BPSK), maximum 384 bytes "
              "(QAM64).\n\n");

  const kpn::Application app = workload::make_hiperlan2_receiver();
  std::printf("Graphviz (QPSK instance):\n%s\n", io::kpn_to_dot(app).c_str());

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\"bench\": \"fig1_kpn_model\", \"channels\": [");
  bool first = true;
  for (const ChannelId cid : app.channel_ids()) {
    const kpn::Channel& c = app.channel(cid);
    std::fprintf(f,
                 "%s{\"name\": \"%s\", \"tokens_per_symbol\": %u, "
                 "\"bytes_per_symbol\": %u, \"mtokens_per_s\": %.3f}",
                 first ? "" : ", ", io::json_escape(c.name).c_str(),
                 c.tokens_per_symbol, c.tokens_per_symbol * c.token_bytes,
                 app.tokens_per_second(cid) / 1e6);
    first = false;
  }
  std::fprintf(f, "], \"modes\": [");
  first = true;
  for (const workload::ModeInfo& m : workload::kHiperlan2Modes) {
    std::fprintf(f,
                 "%s{\"name\": \"%s\", \"bits_per_sample\": %u, "
                 "\"b_tokens\": %u, \"bytes_per_symbol\": %u}",
                 first ? "" : ", ", std::string(m.name).c_str(),
                 m.bits_per_sample, m.output_tokens, m.output_tokens * 4);
    first = false;
  }
  std::fprintf(f,
               "], \"symbol_period_ns\": %llu, \"frame_symbols\": %u}\n",
               static_cast<unsigned long long>(app.qos().symbol_period_ns),
               app.qos().frame_symbols);
  std::fclose(f);
  std::printf("Wrote %s\n", json_path.c_str());
  return 0;
}
