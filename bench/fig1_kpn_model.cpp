// Reproduces Figure 1 of the paper: the decomposition of the HIPERLAN/2
// receiver into communicating processes, with per-symbol token counts on
// every channel (80 / 64 / 64 / 52 / b 32-bit samples).

#include <cstdio>

#include "io/dot.hpp"
#include "io/table.hpp"
#include "util/strings.hpp"
#include "workload/hiperlan2.hpp"

int main() {
  using namespace rtsm;

  std::printf("== Figure 1: HIPERLAN/2 receiver KPN =====================\n\n");

  for (const workload::ModeInfo& mode : workload::kHiperlan2Modes) {
    workload::Hiperlan2Config config;
    config.mode = mode.mode;
    const kpn::Application app = workload::make_hiperlan2_receiver(config);
    if (mode.mode == workload::Hiperlan2Mode::QPSK) {
      io::TablePrinter table({"Channel", "Tokens/symbol", "Bytes/symbol",
                              "Demand [Mtokens/s]"});
      table.align_right(1);
      table.align_right(2);
      table.align_right(3);
      for (const ChannelId cid : app.channel_ids()) {
        const kpn::Channel& c = app.channel(cid);
        table.add_row({c.name, std::to_string(c.tokens_per_symbol),
                       std::to_string(c.tokens_per_symbol * c.token_bytes),
                       format_double(app.tokens_per_second(cid) / 1e6, 1)});
      }
      std::printf("%s\n", table.to_string().c_str());
      std::printf("QoS: one OFDM symbol per %llu ns, %u symbols per frame\n\n",
                  static_cast<unsigned long long>(app.qos().symbol_period_ns),
                  app.qos().frame_symbols);
    }
  }

  std::printf("Demapper output b across the seven modes:\n");
  io::TablePrinter modes({"Mode", "bits/sample", "b [tokens]", "bytes/symbol"});
  modes.align_right(1);
  modes.align_right(2);
  modes.align_right(3);
  for (const workload::ModeInfo& m : workload::kHiperlan2Modes) {
    modes.add_row({std::string(m.name), std::to_string(m.bits_per_sample),
                   std::to_string(m.output_tokens),
                   std::to_string(m.output_tokens * 4)});
  }
  std::printf("%s\n", modes.to_string().c_str());
  std::printf("Paper check: minimum output 12 bytes (BPSK), maximum 384 bytes "
              "(QAM64).\n\n");

  const kpn::Application app = workload::make_hiperlan2_receiver();
  std::printf("Graphviz (QPSK instance):\n%s\n", io::kpn_to_dot(app).c_str());
  return 0;
}
