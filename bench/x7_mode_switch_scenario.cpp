// Extension bench X7: mode-switch scenario — in-place vs. naive.
//
// The paper's run-time premise is that applications arrive, leave and
// *change mode* while the platform is live (the HIPERLAN/2 receiver has
// seven demapping modes). This bench generates one seeded mode-churn +
// priority-mix schedule (runtime::make_mode_churn_schedule) and replays
// it three ways:
//   - in-place:   switch_mode() pins the name-matched processes, re-plans
//                 only the delta through the shared step-4 verification
//                 cache, and rolls back to the old mode on misfit;
//   - naive:      release + readmit — the baseline; a failed readmission
//                 loses the application (nothing to roll back to);
//   - concurrent: the in-place path through the ConcurrentRuntimeManager
//                 (inline pump mode), proving the driver runs either
//                 manager.
// Compared: losses/rejects, switch latency p50/p95 (the in-place pinned
// replan is cheaper and hits the verification cache), rollback counts,
// preemption activity. The serial-replay oracle must hold after every
// wave of every configuration.
//
// Results are emitted as BENCH_x7.json for the CI perf trail (the CI
// bench-smoke job gates on oracle == "identical").
//
// Flags: --short (CI smoke: fewer waves),
//        --json PATH (default BENCH_x7.json).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/spatial_mapper.hpp"
#include "io/table.hpp"
#include "runtime/scenario.hpp"
#include "runtime/stats_report.hpp"
#include "util/strings.hpp"
#include "workload/hiperlan2.hpp"

namespace {

using namespace rtsm;

/// 6x6 mesh as in bench X6: 10 quad-slot ARM tiles and 10 single-context
/// MONTIUM tiles interleaved, IO tiles named as the HIPERLAN/2 fixtures
/// expect, IO clock 8x so one A/D block paces several receivers.
arch::Platform make_x7_platform() {
  arch::NocParams noc;
  arch::Platform p("x7 mode churn 6x6", 6, 6, noc);
  const TileTypeId arm = p.add_tile_type("ARM", 200'000'000);
  const TileTypeId montium = p.add_tile_type("MONTIUM", 200'000'000);
  const TileTypeId io = p.add_tile_type("IO", 1'600'000'000);

  p.add_tile("A/D", io, 0, 2, 64 * 1024, /*process_slots=*/8);
  p.add_tile("Sink", io, 5, 3, 64 * 1024, /*process_slots=*/8);

  std::uint32_t arms = 0;
  std::uint32_t montiums = 0;
  for (std::uint32_t y = 0; y < 6 && arms + montiums < 20; ++y) {
    for (std::uint32_t x = 0; x < 6 && arms + montiums < 20; ++x) {
      if ((x == 0 && y == 2) || (x == 5 && y == 3)) continue;  // IO
      if ((x + y) % 2 == 0 && arms < 10) {
        p.add_tile("ARM" + std::to_string(arms++), arm, x, y, 64 * 1024,
                   /*process_slots=*/6);
      } else if (montiums < 10) {
        p.add_tile("MONT" + std::to_string(montiums++), montium, x, y,
                   64 * 1024, /*process_slots=*/1);
      }
    }
  }
  return p;
}

struct RunFigures {
  std::string label;
  runtime::ScenarioStats scenario;
  runtime::AdmissionStats manager;
  double verify_hit_rate = 0.0;
  double switch_p50_us = 0.0;
  double switch_p95_us = 0.0;
  /// Full StatsReport::to_json() of the run, embedded in BENCH_x7.json.
  std::string stats_json;
};

RunFigures summarize(std::string label, const runtime::ScenarioStats& s,
                     const runtime::AdmissionStats& m, double hit_rate) {
  RunFigures f;
  f.label = std::move(label);
  f.scenario = s;
  f.manager = m;
  f.verify_hit_rate = hit_rate;
  f.switch_p50_us = s.switch_latency.percentile_us(50);
  f.switch_p95_us = s.switch_latency.percentile_us(95);
  return f;
}

RunFigures run_serial(const arch::Platform& platform,
                      const runtime::Schedule& schedule, bool naive,
                      std::string label) {
  runtime::RuntimeManager manager(
      platform, {.mapper = std::make_shared<core::SpatialMapper>()});
  runtime::SerialTarget target(manager);
  runtime::ScenarioOptions options;
  options.naive_switch = naive;
  runtime::ScenarioDriver driver(target, schedule, options);
  const runtime::ScenarioStats stats = driver.run();
  RunFigures figures = summarize(std::move(label), stats, manager.stats(),
                                 manager.verification_stats().hit_rate());
  figures.stats_json = manager.stats_report().to_json();
  return figures;
}

RunFigures run_concurrent(const arch::Platform& platform,
                          const runtime::Schedule& schedule,
                          std::string label) {
  runtime::ConcurrentOptions options;
  options.workers = 0;  // inline pump: deterministic, still the full path
  runtime::ConcurrentRuntimeManager manager(
      platform, {.mapper = std::make_shared<core::SpatialMapper>()}, options);
  runtime::ConcurrentTarget target(manager);
  runtime::ScenarioDriver driver(target, schedule);
  const runtime::ScenarioStats stats = driver.run();
  RunFigures figures = summarize(std::move(label), stats, manager.stats(),
                                 manager.verification_stats().hit_rate());
  figures.stats_json = manager.stats_report().to_json();
  return figures;
}

void print_row(io::TablePrinter& table, const RunFigures& f) {
  const runtime::ScenarioStats& s = f.scenario;
  table.add_row({f.label, std::to_string(s.admitted),
                 std::to_string(s.rejected),
                 std::to_string(s.switches),
                 std::to_string(s.switches_in_place),
                 std::to_string(s.switches_rolled_back),
                 std::to_string(s.naive_switch_losses),
                 rtsm::format_double(f.switch_p50_us, 0),
                 rtsm::format_double(f.switch_p95_us, 0),
                 std::to_string(f.manager.preemption_grants),
                 rtsm::format_double(100.0 * f.verify_hit_rate, 0) + "%",
                 s.oracle_ok ? "ok" : "MISMATCH"});
}

void write_one(std::FILE* f, const char* name, const RunFigures& r) {
  const runtime::ScenarioStats& s = r.scenario;
  std::fprintf(
      f,
      "  \"%s\": {\"arrivals\": %llu, \"admitted\": %llu, "
      "\"rejected\": %llu, \"switches\": %llu, \"in_place\": %llu, "
      "\"replanned\": %llu, \"rolled_back\": %llu, \"losses\": %llu, "
      "\"switch_p50_us\": %.1f, \"switch_p95_us\": %.1f, "
      "\"preemption_grants\": %llu, \"preemption_evictions\": %llu, "
      "\"verify_hit_rate\": %.4f, \"oracle_ok\": %s",
      name, static_cast<unsigned long long>(s.arrivals),
      static_cast<unsigned long long>(s.admitted),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.switches),
      static_cast<unsigned long long>(s.switches_in_place),
      static_cast<unsigned long long>(s.switches_replanned),
      static_cast<unsigned long long>(s.switches_rolled_back),
      static_cast<unsigned long long>(s.naive_switch_losses),
      r.switch_p50_us, r.switch_p95_us,
      static_cast<unsigned long long>(r.manager.preemption_grants),
      static_cast<unsigned long long>(r.manager.preemption_evictions),
      r.verify_hit_rate, s.oracle_ok ? "true" : "false");
  std::fprintf(f, ", \"stats_report\": %s}", r.stats_json.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::string json_path = "BENCH_x7.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::printf(
      "== X7: mode-switch scenario, in-place vs. naive ==========\n\n");

  const auto platform = make_x7_platform();
  runtime::ScheduleParams params;
  params.waves = short_mode ? 20 : 56;
  params.arrivals_per_wave = 3;
  params.hiperlan_fraction = 0.4;
  params.switch_prob = 0.5;
  params.high_priority_fraction = 0.15;
  const runtime::Schedule schedule =
      runtime::make_mode_churn_schedule(params, /*seed=*/20080310);

  const RunFigures inplace =
      run_serial(platform, schedule, /*naive=*/false, "in-place");
  const RunFigures naive =
      run_serial(platform, schedule, /*naive=*/true, "naive");
  const RunFigures concurrent =
      run_concurrent(platform, schedule, "concurrent in-place");

  io::TablePrinter table({"Switch path", "Admitted", "Rejected", "Switches",
                          "In-place", "Rolled back", "Lost", "sw p50 us",
                          "sw p95 us", "Preempt", "Verify hit", "Oracle"});
  for (std::size_t c = 1; c < 12; ++c) table.align_right(c);
  print_row(table, inplace);
  print_row(table, naive);
  print_row(table, concurrent);
  std::printf("%s\n", table.to_string().c_str());

  const double p95_speedup = inplace.switch_p95_us > 0.0
                                 ? naive.switch_p95_us / inplace.switch_p95_us
                                 : 0.0;
  std::printf(
      "Switch p95: in-place %.0f us vs. naive %.0f us (%.1fx); naive lost "
      "%llu applications, in-place rolled back %llu (kept running).\n\n",
      inplace.switch_p95_us, naive.switch_p95_us, p95_speedup,
      static_cast<unsigned long long>(naive.scenario.naive_switch_losses),
      static_cast<unsigned long long>(
          inplace.scenario.switches_rolled_back));

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"x7_mode_switch_scenario\",\n");
  std::fprintf(f, "  \"waves\": %u,\n", params.waves);
  write_one(f, "inplace", inplace);
  std::fprintf(f, ",\n");
  write_one(f, "naive", naive);
  std::fprintf(f, ",\n");
  write_one(f, "concurrent_inplace", concurrent);
  std::fprintf(
      f,
      ",\n  \"switch_p95_speedup\": %.3f,\n"
      "  \"naive_losses\": %llu,\n"
      "  \"oracle\": \"%s\"\n}\n",
      p95_speedup,
      static_cast<unsigned long long>(naive.scenario.naive_switch_losses),
      inplace.scenario.oracle_ok && naive.scenario.oracle_ok &&
              concurrent.scenario.oracle_ok
          ? "identical"
          : "MISMATCH");
  std::fclose(f);
  std::printf("Wrote %s\n", json_path.c_str());

  std::printf(
      "\nReading: the same seeded mode-churn + priority schedule keeps\n"
      "every stream alive when modes switch in place (misfits roll back\n"
      "to the old mode), while the naive release+readmit baseline loses\n"
      "streams and pays a full replan per switch; the pinned replan's\n"
      "verification-cache hits show up as the lower switch p95.\n");
  return 0;
}
